// EXP-I (paper §5.2.4): "short interval, periodic polling of a large
// network ... can introduce a significant overhead on the network."
//
// A management station polls N agents (3 MIB-II variables each) at a sweep
// of intervals; we report the management bytes/s on the wire and the
// fraction of a 10 Mb/s shared segment they consume.

#include <cstdio>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "snmp/manager.hpp"
#include "snmp/mib2.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Row {
  int agents;
  double interval_s;
  double mgmt_bps;
  double capacity_fraction;
  double response_rate;
};

Row run(int agents, sim::Duration interval) {
  sim::Simulator sim;
  apps::SharedLanOptions options;
  options.hosts = agents;
  options.add_probe_host = false;
  options.install_sinks = false;
  apps::SharedLanTestbed bed(sim, options);

  snmp::Manager manager(bed.station());
  std::uint64_t polls = 0, responses = 0;
  sim::PeriodicTask poller(sim, interval, [&] {
    for (int i = 0; i < agents; ++i) {
      ++polls;
      manager.get(bed.host_ip(i),
                  {snmp::mib2::kSysUpTime,
                   snmp::mib2::if_column(snmp::mib2::kIfInOctets, 1),
                   snmp::mib2::if_column(snmp::mib2::kIfOutOctets, 1)},
                  [&](const snmp::SnmpResult& r) {
                    if (r.ok) ++responses;
                  });
    }
  });

  bench::RateWatcher watcher(sim, bed.network(),
                             net::TrafficClass::kManagement);
  const auto window = sim::Duration::sec(30);
  sim.run_for(window);
  poller.cancel();
  // Grace period so polls issued near the window's end can still answer.
  sim.run_for(sim::Duration::sec(2));

  Row row;
  row.agents = agents;
  row.interval_s = interval.to_seconds();
  row.mgmt_bps = watcher.mean_bps();
  row.capacity_fraction = row.mgmt_bps / bed.segment().bandwidth_bps();
  row.response_rate =
      polls ? static_cast<double>(responses) / static_cast<double>(polls) : 0;
  return row;
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-I: intrusiveness of periodic SNMP polling (paper §5.2.4)");
  std::printf("station polls every agent for 3 MIB-II variables per round on\n"
              "a shared 10 Mb/s Ethernet.\n\n");

  util::TextTable table({"agents", "poll interval", "management load",
                         "fraction of 10 Mb/s", "poll success"});
  for (int agents : {4, 16, 48}) {
    for (auto interval : {sim::Duration::ms(100), sim::Duration::sec(1),
                          sim::Duration::sec(10)}) {
      const Row row = run(agents, interval);
      table.add_row({std::to_string(row.agents),
                     util::TextTable::fmt(row.interval_s, 1) + " s",
                     bench::fmt_mbps(row.mgmt_bps),
                     util::TextTable::fmt_percent(row.capacity_fraction),
                     util::TextTable::fmt_percent(row.response_rate)});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape (paper): overhead scales with agents/interval; at\n"
      "48 agents x 100 ms the management plane alone consumes a noticeable\n"
      "slice of the LAN — \"if not properly architected, [SNMP approaches]\n"
      "too can be intrusive.\"\n");
  return 0;
}
