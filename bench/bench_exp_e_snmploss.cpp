// EXP-E (paper §5.2.4): "During very high load test situations, SNMP
// requests and responses, including traps, were lost. This was likely due
// to the SNMP being transported over the unreliable User Datagram Protocol
// (UDP)."
//
// A management station polls an agent and the agent emits periodic traps
// while background load sweeps the shared Ethernet from idle to beyond
// saturation. We report poll success (within timeout, no retry), overall
// success (with one retry), and trap delivery, against segment utilization.

#include <cstdio>
#include <memory>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "snmp/agent.hpp"
#include "snmp/manager.hpp"
#include "snmp/mib2.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Row {
  double offered_mbps;
  double utilization;
  double poll_success;   // responses / polls
  double poll_timeouts;  // timed out after retries
  double traps_delivered;
  double excessive_collision_drops;
};

Row run(double offered_bps) {
  sim::Simulator sim;
  apps::SharedLanOptions options;
  options.hosts = 6;
  options.add_probe_host = false;
  apps::SharedLanTestbed bed(sim, options);

  // Background load: two independent senders splitting the offered rate.
  apps::TrafficSink sink_a(bed.host(3));
  apps::TrafficSink sink_b(bed.host(4));
  std::vector<std::unique_ptr<apps::CbrTraffic>> sources;
  if (offered_bps > 0) {
    apps::CbrTraffic::Config cfg;
    cfg.rate_bps = offered_bps / 2.0;
    cfg.packet_bytes = 1000;
    sources.push_back(std::make_unique<apps::CbrTraffic>(
        bed.host(1), bed.host_ip(3), cfg));
    sources.push_back(std::make_unique<apps::CbrTraffic>(
        bed.host(2), bed.host_ip(4), cfg));
    for (auto& s : sources) s->start();
  }

  // The station polls host0's agent every 100 ms; agent traps every 50 ms.
  snmp::Manager::Config mgr_cfg;
  mgr_cfg.timeout = sim::Duration::ms(250);
  mgr_cfg.retries = 1;
  mgr_cfg.trap_queue_capacity = 4096;  // isolate wire loss from queue loss
  mgr_cfg.trap_service_time = sim::Duration::us(100);
  snmp::Manager manager(bed.station(), mgr_cfg);

  std::uint64_t polls = 0, first_try_ok = 0, ok = 0, failed = 0;
  sim::PeriodicTask poller(sim, sim::Duration::ms(100), [&] {
    ++polls;
    const auto sent_before = manager.counters().retries;
    manager.get(bed.host_ip(0), {snmp::mib2::kSysUpTime},
                [&, sent_before](const snmp::SnmpResult& r) {
                  if (r.ok) {
                    ++ok;
                    if (manager.counters().retries == sent_before) {
                      ++first_try_ok;
                    }
                  } else {
                    ++failed;
                  }
                });
  });

  // The agent on host0 also needs a handle to emit traps.
  snmp::Agent agent_trapper(bed.host(0), [] {
    snmp::Agent::Config cfg;
    cfg.port = 1161;  // the testbed already installed an agent on 161
    cfg.register_mib2 = false;
    return cfg;
  }());
  std::uint64_t traps_sent = 0;
  sim::PeriodicTask trapper(sim, sim::Duration::ms(50), [&] {
    ++traps_sent;
    agent_trapper.send_trap(bed.station().primary_ip(),
                            snmp::Oid{1, 3, 6, 1, 4, 1, 42, 0, 1});
  });

  sim.run_for(sim::Duration::sec(20));
  poller.cancel();
  trapper.cancel();
  sim.run_for(sim::Duration::sec(2));

  Row row;
  row.offered_mbps = offered_bps / 1e6;
  row.utilization = bed.segment().utilization(sim.now());
  row.poll_success = polls ? static_cast<double>(first_try_ok) /
                                 static_cast<double>(polls)
                           : 0.0;
  row.poll_timeouts =
      polls ? static_cast<double>(failed) / static_cast<double>(polls) : 0.0;
  row.traps_delivered =
      traps_sent ? static_cast<double>(manager.counters().traps_received) /
                       static_cast<double>(traps_sent)
                 : 0.0;
  row.excessive_collision_drops =
      static_cast<double>(bed.segment().stats().excessive_collision_drops);
  return row;
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-E: SNMP request/response/trap loss under load (paper §5.2.4)");
  std::printf("shared 10 Mb/s Ethernet; station polls agent every 100 ms\n"
              "(250 ms timeout, 1 retry); agent traps every 50 ms.\n\n");

  util::TextTable table({"offered load", "segment util",
                         "polls ok 1st try", "polls failed (w/ retry)",
                         "traps delivered", "collision drops"});
  for (double mbps : {0.0, 4.0, 8.0, 9.5, 11.0, 14.0, 20.0}) {
    const Row row = run(mbps * 1e6);
    table.add_row({util::TextTable::fmt(row.offered_mbps, 1) + " Mb/s",
                   util::TextTable::fmt_percent(row.utilization),
                   util::TextTable::fmt_percent(row.poll_success),
                   util::TextTable::fmt_percent(row.poll_timeouts),
                   util::TextTable::fmt_percent(row.traps_delivered),
                   util::TextTable::fmt(row.excessive_collision_drops, 0)});
  }
  table.print();
  std::printf(
      "\nexpected shape (paper): near-perfect delivery until the segment\n"
      "approaches saturation, then requests, responses, and traps are lost\n"
      "(UDP gives no recovery; the retry hides some but not all of it).\n");
  return 0;
}
