// EXP-B (paper §5.1.3): the price of the serial test sequencer is
// senescence — "the minimum time between samples for a given path was now
// C*S*T, where T is the time it takes to do a single sample for a single
// path." We run the cycling sequencer over the C*S path matrix, measure
// the per-path inter-sample interval from tuple timestamps, and compare it
// with the predicted C*S*T (T measured from a solo calibration run).

#include <cstdio>
#include <map>

#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

core::HighFidelityMonitor::Config probe_config() {
  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_length = 8192;
  cfg.probe.inter_send = sim::Duration::ms(30);
  cfg.probe.message_count = 8;  // T ~ 8*30ms + result exchange
  cfg.max_concurrent = 1;
  return cfg;
}

// Measures T: one path, one sample, start to finish.
double calibrate_T() {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  apps::Testbed bed(sim, options);
  core::HighFidelityMonitor monitor(bed.network(), probe_config());
  core::MonitorRequest request;
  request.paths.push_back(
      core::PathRequest{bed.path(0, 0), {core::Metric::kThroughput}});
  double finished = 0.0;
  monitor.director().submit(request, [&](const core::PathMetricTuple& t) {
    finished = t.value.measured_at.to_seconds();
  });
  sim.run_for(sim::Duration::sec(30));
  return finished;
}

struct Row {
  int paths;
  double predicted_s;
  double measured_mean_s;
  double measured_max_s;
  double db_senescence_s;
};

Row run(int clients, int servers, double T) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = servers;
  options.clients = clients;
  apps::Testbed bed(sim, options);
  core::HighFidelityMonitor monitor(bed.network(), probe_config());

  core::MonitorRequest request;
  request.paths = bed.full_matrix({core::Metric::kThroughput});
  request.mode = core::MonitorRequest::Mode::kContinuous;

  std::map<std::string, double> last_seen;
  util::Accumulator intervals;
  double max_interval = 0.0;
  monitor.director().submit(request, [&](const core::PathMetricTuple& t) {
    const std::string key = t.path.to_string();
    const double now = t.value.measured_at.to_seconds();
    auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      const double gap = now - it->second;
      intervals.add(gap);
      if (gap > max_interval) max_interval = gap;
    }
    last_seen[key] = now;
  });

  const int n_paths = clients * servers;
  // Long enough for several full cycles of the matrix.
  sim.run_for(sim::Duration::seconds(6.0 * n_paths * T + 10.0));

  // Database view of the same thing: age of the newest sample.
  util::Accumulator db_age;
  for (int s = 0; s < servers; ++s) {
    for (int c = 0; c < clients; ++c) {
      auto age = monitor.database().senescence(
          bed.path(s, c), core::Metric::kThroughput, sim.now());
      if (age) db_age.add(age->to_seconds());
    }
  }
  return Row{n_paths, n_paths * T, intervals.mean(), max_interval,
             db_age.mean()};
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-B: sequenced-monitor senescence = C*S*T (paper §5.1.3)");

  const double T = calibrate_T();
  std::printf("calibrated single-sample time T = %.3f s "
              "(burst of 8 messages at P=30 ms + result exchange)\n\n", T);

  util::TextTable table({"paths (C*S)", "predicted C*S*T",
                         "measured mean inter-sample", "measured max",
                         "mean db age at end"});
  struct Case {
    int c, s;
  };
  for (const Case& k : {Case{3, 1}, Case{3, 3}, Case{9, 3}}) {
    const Row row = run(k.c, k.s, T);
    table.add_row({std::to_string(row.paths),
                   util::TextTable::fmt(row.predicted_s, 2) + " s",
                   util::TextTable::fmt(row.measured_mean_s, 2) + " s",
                   util::TextTable::fmt(row.measured_max_s, 2) + " s",
                   util::TextTable::fmt(row.db_senescence_s, 2) + " s"});
  }
  table.print();
  std::printf(
      "\nexpected shape: measured inter-sample interval grows linearly with\n"
      "the path count and tracks the paper's C*S*T prediction; the parallel\n"
      "monitor of EXP-A holds it at ~T at 27x the peak overhead.\n");
  return 0;
}
