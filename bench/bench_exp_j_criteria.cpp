// EXP-J (paper §4.4, §6, §7): the evaluation-criteria matrix — fidelity,
// intrusiveness, scalability — for the three monitor implementations. The
// paper scores these subjectively ("the high fidelity implementation ...
// lacks scalability and is intrusive; the scalable ... implementation has
// the potential ... but [fidelity] concerns"; §7 proposes the hybrid).
// We make the comparison quantitative on one scenario:
//   fidelity      = throughput-estimate error vs ground truth, and the mean
//                   senescence of the database at steady state;
//   intrusiveness = monitoring + management bytes/s on the wire;
//   scalability   = how intrusiveness grows from 6 to 24 monitored paths.

#include <cmath>
#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "bench/bench_util.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/hybrid_monitor.hpp"
#include "core/scalable_monitor.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

constexpr double kAppRateBps = 8192.0 * 8.0 / 0.030;  // RTDS offered load

struct Score {
  double throughput_err;  // relative error vs ground truth
  double senescence_s;    // mean db age at end of run
  double overhead_bps;    // monitoring+management mean load
};

struct Scenario {
  sim::Simulator sim;
  std::unique_ptr<apps::Testbed> bed;
  std::vector<core::PathRequest> paths;
  std::vector<std::unique_ptr<apps::TrafficSink>> sinks;
  std::vector<std::unique_ptr<apps::CbrTraffic>> sources;

  explicit Scenario(int servers, int clients) {
    apps::TestbedOptions options;
    options.servers = servers;
    options.clients = clients;
    bed = std::make_unique<apps::Testbed>(sim, options);
    paths = bed->full_matrix({core::Metric::kThroughput});
    // Identical load for every implementation: each server runs the RTDS-
    // rate application stream toward client 0 plus 2 Mb/s of unrelated
    // cross-traffic toward the station. Counter-based estimators see both;
    // path probes see neither.
    sinks.push_back(std::make_unique<apps::TrafficSink>(bed->client(0)));
    sinks.push_back(std::make_unique<apps::TrafficSink>(bed->station()));
    for (int i = 0; i < servers; ++i) {
      apps::CbrTraffic::Config app_cfg;
      app_cfg.rate_bps = kAppRateBps;
      app_cfg.packet_bytes = 8192;
      sources.push_back(std::make_unique<apps::CbrTraffic>(
          bed->server(i), bed->client_ip(0), app_cfg));
      apps::CbrTraffic::Config cross_cfg;
      cross_cfg.rate_bps = 2e6;
      cross_cfg.packet_bytes = 1000;
      sources.push_back(std::make_unique<apps::CbrTraffic>(
          bed->server(i), bed->station().primary_ip(), cross_cfg));
    }
    for (auto& src : sources) src->start();
  }

  // Offered RTDS-like load on every monitored path's source: approximated
  // by CBR from each server to its first client (keeps ground truth
  // simple: the probe should report ~the app rate on an uncongested
  // switched fabric).
  Score finish(core::MeasurementDatabase& db, bench::RateWatcher& monitoring,
               bench::RateWatcher& management) {
    util::Accumulator age, err;
    for (const auto& pr : paths) {
      auto last = db.last_known(pr.path, core::Metric::kThroughput);
      auto sen = db.senescence(pr.path, core::Metric::kThroughput, sim.now());
      if (sen) age.add(sen->to_seconds());
      if (last && last->value.value > 0) {
        err.add(std::abs(last->value.value - kAppRateBps) / kAppRateBps);
      } else {
        err.add(1.0);  // never measured = 100% error
      }
    }
    return Score{err.mean(), age.mean(),
                 monitoring.mean_bps() + management.mean_bps()};
  }
};

Score run_high_fidelity(int servers, int clients) {
  Scenario s(servers, clients);
  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_length = 8192;
  cfg.probe.inter_send = sim::Duration::ms(30);
  cfg.probe.message_count = 8;
  cfg.max_concurrent = 1;
  core::HighFidelityMonitor monitor(s.bed->network(), cfg);
  core::MonitorRequest request;
  request.paths = s.paths;
  request.mode = core::MonitorRequest::Mode::kContinuous;
  monitor.director().submit(request, nullptr);
  bench::RateWatcher mon(s.sim, s.bed->network(),
                         net::TrafficClass::kMonitoring);
  bench::RateWatcher mgmt(s.sim, s.bed->network(),
                          net::TrafficClass::kManagement);
  s.sim.run_for(sim::Duration::sec(60));
  return s.finish(monitor.database(), mon, mgmt);
}

Score run_scalable(int servers, int clients) {
  Scenario s(servers, clients);
  core::ScalableMonitor monitor(s.bed->network(), s.bed->station());
  core::MonitorRequest request;
  request.paths = s.paths;
  request.mode = core::MonitorRequest::Mode::kPeriodic;
  request.period = sim::Duration::sec(5);
  monitor.director().submit(request, nullptr);
  bench::RateWatcher mon(s.sim, s.bed->network(),
                         net::TrafficClass::kMonitoring);
  bench::RateWatcher mgmt(s.sim, s.bed->network(),
                          net::TrafficClass::kManagement);
  s.sim.run_for(sim::Duration::sec(60));
  return s.finish(monitor.database(), mon, mgmt);
}

Score run_hybrid(int servers, int clients) {
  Scenario s(servers, clients);
  core::HybridMonitor::Config cfg;
  cfg.probe.message_length = 8192;
  cfg.probe.inter_send = sim::Duration::ms(30);
  cfg.probe.message_count = 8;
  cfg.background_period = sim::Duration::sec(5);
  core::HybridMonitor monitor(s.bed->network(), s.bed->station(), cfg);
  monitor.start(s.paths, nullptr);
  // Targeted refresh sweep every 20 s (within the 30 s fidelity-authority
  // window): the hybrid keeps high-fidelity data fresh for a fraction of
  // the always-on probing cost.
  auto sweep = [&monitor, &s] {
    for (const auto& pr : s.paths) {
      monitor.probe_now(pr.path, core::Metric::kThroughput);
    }
  };
  sweep();
  sim::PeriodicTask refresher(s.sim, sim::Duration::sec(20), sweep);
  bench::RateWatcher mon(s.sim, s.bed->network(),
                         net::TrafficClass::kMonitoring);
  bench::RateWatcher mgmt(s.sim, s.bed->network(),
                          net::TrafficClass::kManagement);
  s.sim.run_for(sim::Duration::sec(60));
  auto score = s.finish(monitor.database(), mon, mgmt);
  monitor.stop();
  return score;
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-J: criteria matrix — fidelity / intrusiveness / scalability "
      "(paper §4.4, §6, §7)");
  std::printf("scenario: S x C path matrix on the switched testbed; RTDS\n"
              "offered load %.2f Mb/s per path source.\n\n", kAppRateBps / 1e6);

  struct Impl {
    const char* name;
    Score (*run)(int, int);
  };
  const Impl impls[] = {{"high-fidelity (NTTCP, serial)", run_high_fidelity},
                        {"scalable (SNMP poll 5 s)", run_scalable},
                        {"hybrid (SNMP + targeted NTTCP)", run_hybrid}};

  util::TextTable table({"implementation", "throughput err (6 paths)",
                         "senescence 6 / 24 paths", "overhead (6 paths)",
                         "overhead (24 paths)"});
  for (const Impl& impl : impls) {
    const Score small = impl.run(2, 3);   // 6 paths
    const Score large = impl.run(4, 6);   // 24 paths
    table.add_row(
        {impl.name, util::TextTable::fmt_percent(small.throughput_err),
         util::TextTable::fmt(small.senescence_s, 1) + " s / " +
             util::TextTable::fmt(large.senescence_s, 1) + " s",
         bench::fmt_mbps(small.overhead_bps),
         bench::fmt_mbps(large.overhead_bps)});
  }
  table.print();
  std::printf(
      "\nexpected shape (paper §6): high fidelity -> accurate but intrusive\n"
      "and slow to cover many paths; scalable -> cheap but inaccurate\n"
      "(counter semantics, clock granularity); hybrid (§7) -> near-NTTCP\n"
      "fidelity at near-SNMP steady-state overhead.\n");
  return 0;
}
