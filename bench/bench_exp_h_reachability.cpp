// EXP-H (paper §4.3, instrumentation points): media-layer reachability by
// sniffing "packets whose source address is that of the source host being
// tested" is unsound:
//   1. asymmetric routes — "receiving packets from a host does not mean
//      that you can transmit packets to that host";
//   2. switched media — "sniffing may not be possible since a
//      non-broadcast media is used."
// We build both situations and compare the media-layer verdict against the
// application-layer echo probe and against ground truth.

#include <cstdio>

#include "net/topology.hpp"
#include "nttcp/reachability.hpp"
#include "rmon/probe.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

const char* verdict(bool v) { return v ? "reachable" : "unreachable"; }

struct Outcome {
  bool truth;        // can monitor actually deliver to the target?
  bool media_layer;  // sniffer heard frames from the target's MAC
  bool app_layer;    // echo probe round trip succeeded
};

// Scenario 1: shared segment + routed backhaul with an asymmetric reverse
// route through a dead router. The target's periodic beacons still arrive
// on the monitor's segment, so the sniffer keeps seeing its MAC even
// though nothing can be delivered *to* it.
Outcome scenario_asymmetric() {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(41));
  auto& lan = network.add_segment("lan", 10e6);
  auto& monitor = network.add_host("monitor");
  auto& target = network.add_host("target");
  auto& ra = network.add_router("ra");
  auto& rb = network.add_router("rb");
  network.attach(monitor, lan, net::IpAddr(10, 0, 0, 1), 24);
  network.attach(ra, lan, net::IpAddr(10, 0, 0, 2), 24);
  network.attach(rb, lan, net::IpAddr(10, 0, 0, 3), 24);
  // Target reaches the LAN through either router.
  network.connect(target, net::IpAddr(10, 1, 0, 1), ra,
                  net::IpAddr(10, 1, 0, 2), 24, 10e6);
  network.connect(target, net::IpAddr(10, 2, 0, 1), rb,
                  net::IpAddr(10, 2, 0, 2), 24, 10e6);
  network.auto_route();
  // Asymmetry: monitor -> target is forced through rb; target -> monitor
  // uses ra. Then rb dies: the forward direction is broken while the
  // reverse keeps working.
  monitor.routing().add(net::Prefix(net::IpAddr(10, 1, 0, 1), 32),
                        net::IpAddr(10, 0, 0, 3), &monitor.nic(0));
  rb.set_up(false);

  // The target beacons periodically (as the paper assumes: "periodic
  // messages sent from the source host of interest").
  monitor.udp().bind(7000, nullptr);
  auto& beacon = target.udp().bind(0, nullptr);
  sim::PeriodicTask beacons(sim, sim::Duration::ms(100), [&] {
    beacon.send_to(net::IpAddr(10, 0, 0, 1), 7000, 64, nullptr,
                   net::TrafficClass::kApplication);
  });

  // Media-layer sniffer on the monitor's segment.
  rmon::Probe probe(monitor, lan);

  // Application-layer probe from the monitor toward the target.
  nttcp::EchoResponder responder(target);
  bool app_reachable = false;
  nttcp::ReachabilityProbe app_probe(
      monitor, net::IpAddr(10, 1, 0, 1),
      [&](const nttcp::ReachabilityResult& r) { app_reachable = r.reachable; });
  sim.schedule_in(sim::Duration::sec(1), [&] { app_probe.start(); });
  sim.run_for(sim::Duration::sec(5));

  // The sniffer sees ra's MAC forwarding the target's beacons — at the
  // media layer the source *host* is identified by the frames it causes on
  // this segment, i.e. traffic arriving for the monitor from ra's port.
  const bool media_sees =
      probe.frames_seen_from(ra.nic(0).mac()) > 0;
  return Outcome{false, media_sees, app_reachable};
}

// Scenario 2: switched segment — unicast between third parties is
// invisible, so the sniffer never hears a perfectly healthy host.
Outcome scenario_switched() {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(43));
  auto& sw = network.add_switch("sw");
  auto& monitor = network.add_host("monitor");
  auto& target = network.add_host("target");
  auto& peer = network.add_host("peer");
  network.attach(monitor, sw, net::IpAddr(10, 0, 0, 1), 24, 100e6);
  network.attach(target, sw, net::IpAddr(10, 0, 0, 2), 24, 100e6);
  network.attach(peer, sw, net::IpAddr(10, 0, 0, 3), 24, 100e6);
  network.auto_route();

  // Target talks busily — but to the peer, not the monitor.
  peer.udp().bind(7000, nullptr);
  monitor.udp().bind(7000, nullptr);
  auto& chat = target.udp().bind(0, nullptr);
  // Prime the MAC tables so later unicast is not flooded.
  chat.send_to(net::IpAddr(10, 0, 0, 3), 7000, 64, nullptr,
               net::TrafficClass::kApplication);
  auto& prime = peer.udp().bind(0, nullptr);
  prime.send_to(net::IpAddr(10, 0, 0, 2), 7000, 64, nullptr,
                net::TrafficClass::kApplication);
  sim.run_for(sim::Duration::ms(100));

  std::uint64_t heard = 0;
  monitor.nic(0).set_promiscuous(true);
  monitor.nic(0).add_tap([&](const net::Frame& f) {
    if (f.src == target.nic(0).mac() && !f.dst.is_broadcast() &&
        f.dst != monitor.nic(0).mac()) {
      ++heard;
    }
  });
  sim::PeriodicTask chatter(sim, sim::Duration::ms(50), [&] {
    chat.send_to(net::IpAddr(10, 0, 0, 3), 7000, 256, nullptr,
                 net::TrafficClass::kApplication);
  });

  nttcp::EchoResponder responder(target);
  bool app_reachable = false;
  nttcp::ReachabilityProbe app_probe(
      monitor, net::IpAddr(10, 0, 0, 2),
      [&](const nttcp::ReachabilityResult& r) { app_reachable = r.reachable; });
  sim.schedule_in(sim::Duration::sec(1), [&] { app_probe.start(); });
  sim.run_for(sim::Duration::sec(5));

  return Outcome{true, heard > 0, app_reachable};
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-H: media-layer vs application-layer reachability (paper §4.3)");

  util::TextTable table({"scenario", "ground truth", "media-layer sniffing",
                         "application-layer probe"});
  const Outcome a = scenario_asymmetric();
  table.add_row({"asymmetric routes, forward path dead", verdict(a.truth),
                 std::string(verdict(a.media_layer)) +
                     (a.media_layer != a.truth ? "  <-- WRONG" : ""),
                 std::string(verdict(a.app_layer)) +
                     (a.app_layer != a.truth ? "  <-- WRONG" : "")});
  const Outcome s = scenario_switched();
  table.add_row({"switched segment, healthy host", verdict(s.truth),
                 std::string(verdict(s.media_layer)) +
                     (s.media_layer != s.truth ? "  <-- WRONG" : ""),
                 std::string(verdict(s.app_layer)) +
                     (s.app_layer != s.truth ? "  <-- WRONG" : "")});
  table.print();
  std::printf(
      "\nexpected shape (paper §4.3): sniffing yields a false positive under\n"
      "asymmetric routing (frames flow in, nothing can flow out) and a false\n"
      "negative on switched media (nothing to sniff); only the application-\n"
      "layer probe matches ground truth in both scenarios.\n");
  return 0;
}
