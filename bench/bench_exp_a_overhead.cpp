// EXP-A (paper §5.1.3, "Fidelity Versus Scalability Tradeoff"):
// peak monitoring overhead of probing all C*S paths in parallel versus
// through the serial test sequencer.
//
// Paper's numbers for C=9, S=3, L=8192 B, P=30 ms:
//   parallel : C*S*(L/P) = 59 Mb/s  ("a single application is consuming a
//              significant percentage of the capacity of both the FDDI and
//              ATM networks")
//   sequenced: L/P = 2.18 Mb/s
//
// We reproduce both rows (plus a C,S sweep) and report the measured peak
// monitoring load on the wire; wire figures sit slightly above the paper's
// application-level formula because UDP/IP/frame overheads are real here.

#include <cstdio>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Row {
  int clients;
  int servers;
  std::size_t concurrency;  // TestSequencer::kUnlimited = parallel
  double peak_bps;
  double mean_bps;
};

Row run(int clients, int servers, std::size_t concurrency,
        sim::Duration window) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = servers;
  options.clients = clients;
  apps::Testbed bed(sim, options);

  core::HighFidelityMonitor::Config cfg;
  cfg.probe.message_length = 8192;
  cfg.probe.inter_send = sim::Duration::ms(30);
  // Bursts long enough that parallel mode keeps every path active for the
  // whole window.
  cfg.probe.message_count = static_cast<std::uint32_t>(
      window / cfg.probe.inter_send);
  cfg.max_concurrent = concurrency;
  core::HighFidelityMonitor monitor(bed.network(), cfg);

  core::MonitorRequest request;
  request.paths = bed.full_matrix({core::Metric::kThroughput});
  request.mode = core::MonitorRequest::Mode::kContinuous;
  monitor.director().submit(request, nullptr);

  bench::RateWatcher watcher(sim, bed.network(),
                             net::TrafficClass::kMonitoring);
  sim.run_for(window);
  return Row{clients, servers, concurrency, watcher.peak_bps(),
             watcher.mean_bps()};
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-A: peak monitoring overhead, parallel vs sequenced (paper §5.1.3)");

  const double L = 8192.0, P = 0.030;
  std::printf("probe config: L=8192 B, P=30 ms (RTDS-mimicking, §5.1.2)\n");
  std::printf("paper formula: parallel=C*S*(L/P), sequenced=L/P\n\n");

  util::TextTable table({"C", "S", "mode", "paper (app-level)",
                         "measured peak (wire)", "measured mean (wire)"});
  struct Case {
    int c, s;
  };
  const Case cases[] = {{3, 1}, {9, 3}, {12, 4}};
  const auto window = sim::Duration::sec(10);
  for (const Case& k : cases) {
    const double paper_parallel = k.c * k.s * L * 8.0 / P;
    const double paper_seq = L * 8.0 / P;
    const Row parallel =
        run(k.c, k.s, core::TestSequencer::kUnlimited, window);
    const Row seq = run(k.c, k.s, 1, window);
    table.add_row({std::to_string(k.c), std::to_string(k.s), "parallel",
                   bench::fmt_mbps(paper_parallel),
                   bench::fmt_mbps(parallel.peak_bps),
                   bench::fmt_mbps(parallel.mean_bps)});
    table.add_row({std::to_string(k.c), std::to_string(k.s), "sequenced",
                   bench::fmt_mbps(paper_seq), bench::fmt_mbps(seq.peak_bps),
                   bench::fmt_mbps(seq.mean_bps)});
  }
  table.print();

  std::printf(
      "\nheadline row (C=9,S=3): paper reports 59 Mb/s parallel vs 2.18 Mb/s\n"
      "sequenced; the sequencer trades this %0.0fx overhead reduction for\n"
      "senescence (EXP-B).\n",
      27.0);

  // Ablation: intermediate sequencer concurrency (design-choice sweep).
  util::print_banner("EXP-A ablation: sequencer concurrency k (C=9, S=3)");
  util::TextTable ablation({"max_concurrent", "peak (wire)", "mean (wire)"});
  for (std::size_t k : {std::size_t(1), std::size_t(3), std::size_t(9),
                        core::TestSequencer::kUnlimited}) {
    const Row row = run(9, 3, k, window);
    ablation.add_row({k == core::TestSequencer::kUnlimited
                          ? std::string("unlimited")
                          : std::to_string(k),
                      bench::fmt_mbps(row.peak_bps),
                      bench::fmt_mbps(row.mean_bps)});
  }
  ablation.print();
  return 0;
}
