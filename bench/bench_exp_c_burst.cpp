// EXP-C (paper §5.1.3.1, "High Fidelity Data Collection"): burst-length
// tradeoff. "Experiments have shown that bursts which are too short yield
// inaccurate results because they are too susceptible to transient
// conditions. For each application, an optimal burst size should be found
// through experimentation."
//
// We measure the same path repeatedly with different burst lengths N while
// bursty on/off cross-traffic perturbs the shared segment, and report the
// coefficient of variation of the throughput estimate (accuracy) against
// the bytes each burst injects (intrusiveness).

#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "nttcp/nttcp.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Row {
  std::uint32_t burst;
  double mean_mbps;
  double cv;
  double rel_rmse;  // per-sample RMS error vs the long-burst reference
  double bytes_per_sample;
  int failures;
};

Row run(std::uint32_t burst, int repetitions, double reference_bps) {
  sim::Simulator sim;
  apps::SharedLanOptions options;
  options.hosts = 4;
  options.add_probe_host = false;
  apps::SharedLanTestbed bed(sim, options);

  // Transient cross-traffic: 6 Mb/s bursts, mean 200 ms on / 300 ms off.
  bed.host(3).udp().bind(7009, nullptr);
  apps::OnOffTraffic::Config cross;
  cross.rate_bps = 6e6;
  cross.packet_bytes = 1000;
  cross.mean_on = sim::Duration::ms(200);
  cross.mean_off = sim::Duration::ms(300);
  cross.dst_port = 7009;
  apps::OnOffTraffic onoff(bed.host(2), bed.host_ip(3), cross, util::Rng(99));
  onoff.start();

  nttcp::NttcpConfig cfg;
  cfg.message_length = 1024;
  cfg.inter_send = sim::Duration::ms(2);
  cfg.message_count = burst;
  cfg.result_timeout = sim::Duration::sec(10);

  util::SampleSet throughputs;
  std::uint64_t bytes = 0;
  int failures = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    bool done = false;
    nttcp::NttcpResult result;
    nttcp::NttcpProbe probe(bed.host(0), bed.host_ip(1), cfg,
                            [&](const nttcp::NttcpResult& r) {
                              result = r;
                              done = true;
                            });
    probe.start();
    // Space samples out so each burst sees an independent traffic phase.
    sim.run_for(sim::Duration::seconds(
        cfg.inter_send.to_seconds() * burst + 2.0));
    if (!done || !result.completed || result.messages_received < 2) {
      ++failures;
      continue;
    }
    throughputs.add(result.throughput_bps);
    bytes += result.probe_bytes_on_wire;
  }
  onoff.stop();

  Row row;
  row.burst = burst;
  row.mean_mbps = throughputs.mean() / 1e6;
  row.cv = throughputs.count() >= 2 && throughputs.mean() > 0
               ? throughputs.stddev() / throughputs.mean()
               : 0.0;
  if (reference_bps > 0 && !throughputs.empty()) {
    double se = 0.0;
    for (double x : throughputs.samples()) {
      const double rel = (x - reference_bps) / reference_bps;
      se += rel * rel;
    }
    row.rel_rmse = std::sqrt(se / static_cast<double>(throughputs.count()));
  } else {
    row.rel_rmse = 0.0;
  }
  row.bytes_per_sample =
      throughputs.count() == 0
          ? 0.0
          : static_cast<double>(bytes) / static_cast<double>(throughputs.count());
  row.failures = failures;
  return row;
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-C: burst length vs measurement stability (paper §5.1.3.1)");
  std::printf("path host0->host1 on a shared 10 Mb/s Ethernet with bursty\n"
              "6 Mb/s on/off cross-traffic; 30 samples per burst length.\n\n");

  // Reference: the long-run achievable throughput of this stream under the
  // same traffic mix (burst long enough to average over many on/off
  // phases).
  const Row reference = run(512, 6, 0.0);
  std::printf("long-burst reference throughput: %.3f Mb/s\n\n",
              reference.mean_mbps);

  util::TextTable table({"burst N", "mean estimate", "CV",
                         "rel. RMS error vs reference",
                         "bytes injected/sample", "failed"});
  for (std::uint32_t burst : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const Row row = run(burst, 30, reference.mean_mbps * 1e6);
    table.add_row({std::to_string(row.burst),
                   util::TextTable::fmt(row.mean_mbps, 3) + " Mb/s",
                   util::TextTable::fmt(row.cv, 3),
                   util::TextTable::fmt_percent(row.rel_rmse),
                   util::TextTable::fmt(row.bytes_per_sample / 1024.0, 1) +
                       " KiB",
                   std::to_string(row.failures)});
  }
  table.print();
  std::printf(
      "\nexpected shape (paper): bursts that are \"too short ... yield\n"
      "inaccurate results because they are too susceptible to transient\n"
      "conditions\" — tiny bursts land inside a single on/off phase (or a\n"
      "queue drain) and mis-estimate badly; accuracy improves with burst\n"
      "length while the injected bytes (intrusiveness) grow linearly.\n");
  return 0;
}
