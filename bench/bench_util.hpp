#pragma once

// Shared helpers for the experiment harnesses (bench_exp_*). Each bench
// prints the paper's claim next to the measured reproduction using
// util::TextTable.

#include <array>
#include <cstdint>
#include <functional>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace netmon::bench {

// Samples total wire bytes of one traffic class on a fixed tick and tracks
// the peak and mean rate observed. Attach before starting load.
class RateWatcher {
 public:
  RateWatcher(sim::Simulator& sim, const net::Network& network,
              net::TrafficClass cls,
              sim::Duration tick = sim::Duration::ms(100))
      : network_(network), cls_(cls), tick_(tick) {
    last_ = total();
    first_ = last_;
    task_ = sim::PeriodicTask(sim, tick_, [this] { sample(); });
  }

  double peak_bps() const { return peak_bps_; }
  double mean_bps() const {
    return samples_ == 0 ? 0.0 : sum_bps_ / static_cast<double>(samples_);
  }
  std::uint64_t total_bytes() const { return total() - first_; }

 private:
  std::uint64_t total() const {
    return network_.octets_by_class()[static_cast<std::size_t>(cls_)];
  }
  void sample() {
    const std::uint64_t now = total();
    const double bps =
        static_cast<double>(now - last_) * 8.0 / tick_.to_seconds();
    last_ = now;
    if (bps > peak_bps_) peak_bps_ = bps;
    sum_bps_ += bps;
    ++samples_;
  }

  const net::Network& network_;
  net::TrafficClass cls_;
  sim::Duration tick_;
  std::uint64_t last_ = 0;
  std::uint64_t first_ = 0;
  double peak_bps_ = 0.0;
  double sum_bps_ = 0.0;
  std::uint64_t samples_ = 0;
  sim::PeriodicTask task_;
};

inline std::string fmt_mbps(double bps) {
  return util::TextTable::fmt_rate_mbps(bps);
}

}  // namespace netmon::bench
