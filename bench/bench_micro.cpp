// Microbenchmarks (google-benchmark) for the hot substrate paths: event
// queue, BER codec, MIB walks, the measurement database, and a full
// simulated UDP round trip.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "core/lane_scheduler.hpp"
#include "core/measurement_db.hpp"
#include "ctrl/control_plane.hpp"
#include "net/topology.hpp"
#include "net/udp.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "snmp/mib.hpp"
#include "snmp/mib2.hpp"
#include "snmp/pdu.hpp"

using namespace netmon;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_in(sim::Duration::us((i * 37) % 1000 + 1),
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// Same workload with the self-observability registry attached: the pair
// quantifies the instrumentation overhead on the hottest path (budget <5%;
// sampled histograms + counter increments — see src/obs/metrics.hpp).
void BM_EventQueueScheduleRunObserved(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  obs::Registry registry;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.attach_observability(registry, "sim");
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_in(sim::Duration::us((i * 37) % 1000 + 1),
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRunObserved)->Arg(1000)->Arg(100000);

void BM_PeriodicTimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    auto handle = sim.schedule_periodic(sim::Duration::us(10),
                                        [&fired] { ++fired; });
    sim.run_for(sim::Duration::ms(100));
    handle.cancel();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_PeriodicTimerChain);

// 1000 concurrent periodic probes at staggered cadences: the wheel's bucket
// path (link, cascade, batch dispatch) rather than the solo fast path.
void BM_ConcurrentPeriodicTimers(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(sim.schedule_periodic(
          sim::Duration::us(100 + (i * 7) % 400), [&fired] { ++fired; }));
    }
    sim.run_for(sim::Duration::ms(10));
    for (auto& h : handles) h.cancel();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_ConcurrentPeriodicTimers);

// The lane scheduler's admission cycle: enqueue 1024 gated probes, then
// complete them one at a time so every finish() re-runs the pick() scan
// over the still-queued entries. Arg is the lane count — 1 is the serial
// sequencer special case (no gates), 4 adds the budget and link-disjoint
// gates with footprints that collide often enough to force scan skips.
void BM_LaneSchedulerAdmissionCycle(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  constexpr int kTasks = 1024;
  for (auto _ : state) {
    core::SchedulerConfig cfg;
    cfg.lanes = lanes;
    cfg.budget_bps = 1e6 * static_cast<double>(lanes);
    cfg.link_disjoint = lanes > 1;
    core::LaneScheduler sched(cfg);
    std::deque<core::LaneScheduler::Done> running;
    for (int i = 0; i < kTasks; ++i) {
      core::ProbeProfile profile;
      profile.offered_bps = 1e6;
      profile.priority = static_cast<core::ProbeClass>(i % 3);
      profile.footprint = {static_cast<core::LinkKey>(i % 16),
                           static_cast<core::LinkKey>(100 + i % 7)};
      sched.enqueue(
          [&running](core::LaneScheduler::Done done) {
            running.push_back(std::move(done));
          },
          profile);
    }
    while (!running.empty()) {
      auto done = std::move(running.front());
      running.pop_front();
      done();
    }
    benchmark::DoNotOptimize(sched.completed());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_LaneSchedulerAdmissionCycle)->Arg(1)->Arg(4);

// The pathological shape the 10k-path soak exposed (DESIGN.md §11/§15): a
// deep queue whose head is blocked on a handful of shared links, so every
// release used to rescan the whole deferred prefix (O(deferred × footprint)
// per admission, quadratic over the drain). Arg is the task count; all
// footprints draw from 6 links, so at most 3 disjoint probes run at once
// and the queue stays deep for the entire drain. The indexed admission gate
// (link→waiter index + budget watermark) makes each release wake only the
// entries whose blocking link actually freed.
void BM_LaneSchedulerContendedDrain(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::SchedulerConfig cfg;
    cfg.lanes = 4;
    cfg.link_disjoint = true;
    core::LaneScheduler sched(cfg);
    std::deque<core::LaneScheduler::Done> running;
    for (int i = 0; i < tasks; ++i) {
      core::ProbeProfile profile;
      profile.priority = static_cast<core::ProbeClass>(i % 3);
      profile.footprint = {static_cast<core::LinkKey>(i % 3),
                           static_cast<core::LinkKey>(3 + (i / 3) % 3)};
      sched.enqueue(
          [&running](core::LaneScheduler::Done done) {
            running.push_back(std::move(done));
          },
          profile);
    }
    while (!running.empty()) {
      auto done = std::move(running.front());
      running.pop_front();
      done();
    }
    benchmark::DoNotOptimize(sched.completed());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_LaneSchedulerContendedDrain)->Arg(1024)->Arg(8192);

snmp::Message sample_message() {
  snmp::Message msg;
  msg.community = "public";
  msg.pdu.type = snmp::PduType::kResponse;
  msg.pdu.request_id = 42;
  for (std::uint32_t i = 0; i < 8; ++i) {
    msg.pdu.varbinds.push_back(snmp::VarBind{
        snmp::mib2::if_column(snmp::mib2::kIfInOctets, i + 1),
        snmp::SnmpValue(snmp::Counter32{123456789u + i})});
  }
  return msg;
}

void BM_BerEncode(benchmark::State& state) {
  const snmp::Message msg = sample_message();
  for (auto _ : state) {
    auto bytes = msg.encode();
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_BerEncode);

void BM_BerDecode(benchmark::State& state) {
  const auto bytes = sample_message().encode();
  for (auto _ : state) {
    auto msg = snmp::Message::decode(bytes);
    benchmark::DoNotOptimize(msg.pdu.varbinds.size());
  }
}
BENCHMARK(BM_BerDecode);

void BM_MibGetNextWalk(benchmark::State& state) {
  snmp::MibTree tree;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    tree.add_const(snmp::Oid{1, 3, 6, 1, 4, 1, 42,
                             static_cast<std::uint32_t>(i)},
                   snmp::SnmpValue(i));
  }
  for (auto _ : state) {
    snmp::Oid cursor{1};
    int visited = 0;
    while (auto next = tree.get_next(cursor)) {
      cursor = next->oid;
      ++visited;
    }
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MibGetNextWalk)->Arg(64)->Arg(1024);

void BM_MeasurementDbRecord(benchmark::State& state) {
  core::Path path(
      core::ProcessEndpoint{"a", net::IpAddr(10, 0, 0, 1), 1},
      core::ProcessEndpoint{"b", net::IpAddr(10, 0, 0, 2), 1});
  core::MeasurementDatabase db;
  std::int64_t t = 0;
  for (auto _ : state) {
    db.record(path, core::Metric::kThroughput,
              core::MetricValue::of(1e6, sim::TimePoint::from_nanos(++t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasurementDbRecord);

// Steady-state record+current over a working set of 27 paths x 3 metrics,
// keyed by Path (interning wrapper) vs. by dense PathId (hot API).
std::vector<core::Path> sample_paths() {
  std::vector<core::Path> paths;
  for (int i = 0; i < 27; ++i) {
    paths.emplace_back(
        core::ProcessEndpoint{"src", net::IpAddr(10, 0, std::uint8_t(i / 8), std::uint8_t(i % 8 + 1)), 1},
        core::ProcessEndpoint{"dst", net::IpAddr(10, 1, std::uint8_t(i / 8), std::uint8_t(i % 8 + 1)), 1});
  }
  return paths;
}

void BM_MeasurementDbWorkingSetByPath(benchmark::State& state) {
  const auto paths = sample_paths();
  core::MeasurementDatabase db;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (const core::Path& p : paths) {
      for (std::size_t m = 0; m < core::kMetricCount; ++m) {
        const auto metric = static_cast<core::Metric>(m);
        const auto now = sim::TimePoint::from_nanos(++t);
        db.record(p, metric, core::MetricValue::of(1.0, now));
        auto cur = db.current(p, metric, now, sim::Duration::sec(1));
        benchmark::DoNotOptimize(cur);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * paths.size() *
                          core::kMetricCount);
}
BENCHMARK(BM_MeasurementDbWorkingSetByPath);

void BM_MeasurementDbWorkingSetById(benchmark::State& state) {
  const auto paths = sample_paths();
  core::MeasurementDatabase db;
  std::vector<core::PathId> ids;
  for (const core::Path& p : paths) ids.push_back(db.id_of(p));
  std::int64_t t = 0;
  for (auto _ : state) {
    for (const core::PathId id : ids) {
      for (std::size_t m = 0; m < core::kMetricCount; ++m) {
        const auto metric = static_cast<core::Metric>(m);
        const auto now = sim::TimePoint::from_nanos(++t);
        db.record(id, metric, core::MetricValue::of(1.0, now));
        auto cur = db.current(id, metric, now, sim::Duration::sec(1));
        benchmark::DoNotOptimize(cur);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * ids.size() *
                          core::kMetricCount);
}
BENCHMARK(BM_MeasurementDbWorkingSetById);

// Observed twin of the PathId working set: senescence accounting (interval
// histograms + per-read age) rides along on every record/current.
void BM_MeasurementDbWorkingSetByIdObserved(benchmark::State& state) {
  const auto paths = sample_paths();
  obs::Registry registry;
  core::MeasurementDatabase db;
  db.attach_observability(registry, "db");
  std::vector<core::PathId> ids;
  for (const core::Path& p : paths) ids.push_back(db.id_of(p));
  std::int64_t t = 0;
  for (auto _ : state) {
    for (const core::PathId id : ids) {
      for (std::size_t m = 0; m < core::kMetricCount; ++m) {
        const auto metric = static_cast<core::Metric>(m);
        const auto now = sim::TimePoint::from_nanos(++t);
        db.record(id, metric, core::MetricValue::of(1.0, now));
        auto cur = db.current(id, metric, now, sim::Duration::sec(1));
        benchmark::DoNotOptimize(cur);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * ids.size() *
                          core::kMetricCount);
}
BENCHMARK(BM_MeasurementDbWorkingSetByIdObserved);

// Tiered-store ingest (DESIGN.md §13): round-robin over a working set whose
// sealed pages overflow the bounded pool, so every record() amortizes page
// rollover, rollup into coarser tiers, and deterministic eviction — the
// steady-state churn cost, not the warm-up cost.
void BM_TieredIngest(benchmark::State& state) {
  core::TieredStorageConfig config;
  config.page_points = 16;
  config.rollup_factor = 8;
  config.tiers = 3;
  config.max_pages = 256;  // 64 series x 3 open pages + churn headroom
  core::MeasurementDatabase db(/*history_depth=*/2, config);
  std::vector<core::PathId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(db.id_of(core::Path(
        core::ProcessEndpoint{
            "s", net::IpAddr(10, 2, std::uint8_t(i / 8), std::uint8_t(i % 8 + 1)), 1},
        core::ProcessEndpoint{"d", net::IpAddr(10, 3, 0, 1), 1})));
  }
  std::int64_t t = 0;
  std::size_t next = 0;
  for (auto _ : state) {
    const auto now = sim::TimePoint::from_nanos(++t);
    db.record(ids[next], core::Metric::kThroughput,
              core::MetricValue::of(1e6, now));
    if (++next == ids.size()) next = 0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["evictions"] =
      static_cast<double>(db.tiered().evictions());
}
BENCHMARK(BM_TieredIngest);

// Time-range query against a prefilled 100k-sample series at 1 ms cadence.
// The resolution argument (ms) picks the serving tier: 0 forces raw tier 0
// (~100k points stitched), 8 the first rollup, 64 the coarsest tier.
void BM_RangeQuery(benchmark::State& state) {
  core::TieredStorageConfig config;
  config.page_points = 64;
  config.rollup_factor = 8;
  config.tiers = 3;
  config.max_pages = 4096;  // retains the full series: query cost only
  core::MeasurementDatabase db(/*history_depth=*/2, config);
  const core::PathId id = db.id_of(core::Path(
      core::ProcessEndpoint{"s", net::IpAddr(10, 4, 0, 1), 1},
      core::ProcessEndpoint{"d", net::IpAddr(10, 4, 0, 2), 1}));
  constexpr std::int64_t kStep = 1'000'000;  // 1 ms
  constexpr std::int64_t kSamples = 100'000;
  for (std::int64_t i = 1; i <= kSamples; ++i) {
    db.record(id, core::Metric::kOneWayLatency,
              core::MetricValue::of(0.001, sim::TimePoint::from_nanos(i * kStep)));
  }
  const auto resolution = sim::Duration::ms(state.range(0));
  const auto t0 = sim::TimePoint::from_nanos(0);
  const auto t1 = sim::TimePoint::from_nanos((kSamples + 1) * kStep);
  double points = 0.0;
  for (auto _ : state) {
    auto result = db.query(id, core::Metric::kOneWayLatency, t0, t1,
                           resolution);
    benchmark::DoNotOptimize(result.points.data());
    points = static_cast<double>(result.points.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["points"] = points;
}
BENCHMARK(BM_RangeQuery)->Arg(0)->Arg(8)->Arg(64);

// Control-plane rule evaluation on the tuple hot path (DESIGN.md §12).
// Arg(0): liveness bookkeeping only. Arg(1): priority boost enabled, so
// every latency tuple additionally feeds the per-path P² p90 sketch and
// runs the volatility drift check. No manager is attached, so evaluation
// cost is isolated from actuation cost.
void BM_ControlPolicyEvaluate(benchmark::State& state) {
  const bool with_drift = state.range(0) != 0;
  sim::Simulator sim;
  net::Network network(sim, util::Rng(3));
  ctrl::ControlConfig config;
  config.enabled = true;
  config.route_failover = false;
  config.probe_retuning = false;
  config.priority_boost = with_drift;
  ctrl::ControlPlane plane(sim, network, config);

  const auto paths = sample_paths();
  std::vector<core::PathMetricTuple> tuples;
  std::int64_t t = 0;
  for (const core::Path& p : paths) {
    core::PathMetricTuple tuple;
    tuple.path = p;
    tuple.metric = core::Metric::kOneWayLatency;
    // Mild jitter: exercises the sketch without tripping the drift rule
    // on every sample.
    const std::int64_t seq = ++t;
    tuple.value = core::MetricValue::of(0.001 + 0.0001 * (seq % 7),
                                        sim::TimePoint::from_nanos(seq));
    tuples.push_back(tuple);
  }

  for (auto _ : state) {
    for (const auto& tuple : tuples) {
      plane.observe_tuple("bench", tuple);
    }
    benchmark::DoNotOptimize(plane.stats().tuples_seen);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_ControlPolicyEvaluate)->Arg(0)->Arg(1);

void BM_SimulatedUdpRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network network(sim, util::Rng(1));
    auto& a = network.add_host("a");
    auto& b = network.add_host("b");
    network.connect(a, net::IpAddr(10, 0, 0, 1), b, net::IpAddr(10, 0, 0, 2),
                    24, 100e6, sim::Duration::us(10));
    network.auto_route();
    int received = 0;
    auto* reply_to = &a.udp().bind(7001, [&](const net::Packet&) { ++received; });
    (void)reply_to;
    auto& echo = b.udp().bind(7000, nullptr);
    b.udp().bind(7002, nullptr);
    auto& sock = a.udp().bind(0, nullptr);
    echo.set_handler([&](const net::Packet& p) {
      echo.send_to(p.src, 7001, p.payload_bytes, nullptr, p.traffic_class);
    });
    for (int i = 0; i < 100; ++i) {
      sock.send_to(net::IpAddr(10, 0, 0, 2), 7000, 256, nullptr,
                   net::TrafficClass::kOther);
    }
    sim.run();
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SimulatedUdpRoundTrip);

}  // namespace

BENCHMARK_MAIN();
