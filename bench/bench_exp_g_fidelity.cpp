// EXP-G (paper §5.2.4): "Neither the RMON probe nor the Cisco router was
// capable of matching the fidelity of the NTTCP network analysis tool.
// Both systems provide a number [of] metrics that may be used to
// approximate end-to-end throughput (e.g., utilization, octets
// transferred, ...). Clock granularity appears to be limited in both the
// probe and the router."
//
// An RTDS-like application stream runs host0 -> host1 on a shared segment
// with unrelated cross-traffic. Ground truth is the application's own
// goodput at the receiver. Estimators compared:
//   * NTTCP probe (application layer, mimicking L and P),
//   * SNMP ifOutOctets polling on the source host,
//   * RMON etherStats octet rate on the segment.
// A second sweep shows how management-station clock granularity corrupts
// the counter-based estimate.

#include <cmath>
#include <cstdio>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/scalable_monitor.hpp"
#include "nttcp/nttcp.hpp"
#include "rmon/probe.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Estimates {
  double truth_mbps;
  double nttcp_mbps;
  double snmp_mbps;
  double rmon_mbps;
};

Estimates run(double cross_mbps, sim::Duration station_granularity,
              sim::Duration poll_gap) {
  sim::Simulator sim;
  apps::SharedLanOptions options;
  options.hosts = 4;
  options.clocks.offset_spread = sim::Duration::ms(5);
  apps::SharedLanTestbed bed(sim, options);
  // COTS-grade station clock for this run.
  bed.station().clock().set_granularity(station_granularity);
  rmon::Probe probe(bed.probe_host(), bed.segment());

  // The monitored application: RTDS-like stream (L=2048, P=10ms ~ 1.6 Mb/s).
  apps::RtdsServer::Config app_cfg;
  app_cfg.message_length = 2048;
  app_cfg.period = sim::Duration::ms(10);
  apps::RtdsServer app(bed.host(0), app_cfg);
  apps::RtdsClient client(bed.host(1), apps::RtdsClient::Config{});
  app.start();
  client.connect(bed.host_ip(0));

  // Unrelated cross-traffic from the same source host.
  apps::TrafficSink sink(bed.host(2));
  apps::CbrTraffic::Config cross;
  cross.rate_bps = cross_mbps * 1e6;
  cross.packet_bytes = 1000;
  apps::CbrTraffic cbr(bed.host(0), bed.host_ip(2), cross);
  if (cross_mbps > 0) cbr.start();

  sim.run_for(sim::Duration::sec(2));  // warm-up

  // --- ground truth over the measurement window ---------------------------
  const auto t0 = sim.now();
  const auto tracks0 = client.tracks_received();

  // --- NTTCP estimate (application layer) ---------------------------------
  // Deferred past the SNMP poll window so the counter estimate is not also
  // measuring the monitor's own probe traffic.
  nttcp::NttcpConfig probe_cfg;
  probe_cfg.message_length = app_cfg.message_length;
  probe_cfg.inter_send = app_cfg.period;
  probe_cfg.message_count = 64;
  double nttcp_bps = 0.0;
  nttcp::NttcpProbe nttcp_probe(bed.host(0), bed.host_ip(1), probe_cfg,
                                [&](const nttcp::NttcpResult& r) {
                                  nttcp_bps = r.throughput_bps;
                                });
  sim.schedule_in(sim::Duration::seconds(1.2), [&] { nttcp_probe.start(); });

  // --- SNMP counter estimate (transfer layer on the source host) ----------
  core::ScalableMonitor::Config mon_cfg;
  mon_cfg.sensor.throughput_poll_gap = poll_gap;
  core::ScalableMonitor monitor(bed.network(), bed.station(), mon_cfg);
  double snmp_bps = 0.0;
  core::MonitorRequest request;
  request.paths.push_back(core::PathRequest{
      core::Path(core::ProcessEndpoint{"rtds", bed.host_ip(0), 0},
                 core::ProcessEndpoint{"rtds", bed.host_ip(1), 0}),
      {core::Metric::kThroughput}});
  monitor.director().submit(request, [&](const core::PathMetricTuple& t) {
    if (t.value.valid) snmp_bps = t.value.value;
  });

  // --- RMON estimate (media layer, whole segment) -------------------------
  const std::uint64_t rmon_octets0 = probe.ether_stats().octets;

  sim.run_for(sim::Duration::sec(3));

  const double window_s = (sim.now() - t0).to_seconds();
  const double truth_bps =
      static_cast<double>(client.tracks_received() - tracks0) *
      app_cfg.message_length * 8.0 / window_s;
  const double rmon_bps =
      static_cast<double>(probe.ether_stats().octets - rmon_octets0) * 8.0 /
      window_s;

  app.stop();
  cbr.stop();
  return Estimates{truth_bps / 1e6, nttcp_bps / 1e6, snmp_bps / 1e6,
                   rmon_bps / 1e6};
}

std::string err(double est, double truth) {
  if (est <= 0.0) return "n/a";
  return util::TextTable::fmt_percent(std::abs(est - truth) / truth);
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-G: estimator fidelity, NTTCP vs SNMP counters vs RMON (§5.2.4)");
  std::printf("RTDS-like stream (2048 B / 10 ms = 1.64 Mb/s app-level) on a\n"
              "shared 10 Mb/s Ethernet; ground truth = receiver goodput.\n\n");

  util::TextTable table({"cross-traffic", "truth", "NTTCP (err)",
                         "SNMP ifOutOctets (err)", "RMON segment (err)"});
  for (double cross : {0.0, 2.0, 5.0}) {
    const Estimates e =
        run(cross, sim::Duration::us(1), sim::Duration::ms(500));
    table.add_row({util::TextTable::fmt(cross, 1) + " Mb/s",
                   util::TextTable::fmt(e.truth_mbps, 2) + " Mb/s",
                   util::TextTable::fmt(e.nttcp_mbps, 2) + " Mb/s (" +
                       err(e.nttcp_mbps, e.truth_mbps) + ")",
                   util::TextTable::fmt(e.snmp_mbps, 2) + " Mb/s (" +
                       err(e.snmp_mbps, e.truth_mbps) + ")",
                   util::TextTable::fmt(e.rmon_mbps, 2) + " Mb/s (" +
                       err(e.rmon_mbps, e.truth_mbps) + ")"});
  }
  table.print();
  std::printf(
      "\nexpected shape (paper): the application-layer NTTCP probe tracks the\n"
      "path's goodput regardless of cross-traffic, while counter-based SNMP\n"
      "and segment-level RMON absorb every byte the interface/segment\n"
      "carries and drift arbitrarily far from the path's own figure.\n");

  util::print_banner(
      "EXP-G clock-granularity sweep (station clock; poll gap 50 ms)");
  util::TextTable gran({"station clock tick", "SNMP estimate", "error"});
  for (auto tick : {sim::Duration::us(1), sim::Duration::ms(10),
                    sim::Duration::ms(100), sim::Duration::ms(500)}) {
    const Estimates e = run(0.0, tick, sim::Duration::ms(50));
    gran.add_row({tick.to_string(),
                  e.snmp_mbps > 0
                      ? util::TextTable::fmt(e.snmp_mbps, 2) + " Mb/s"
                      : "failed (zero elapsed ticks)",
                  err(e.snmp_mbps, e.truth_mbps)});
  }
  gran.print();
  std::printf(
      "\nexpected shape (paper): \"clock granularity appears to be limited\" —\n"
      "once the reading quantum approaches the poll gap, the rate estimate\n"
      "degrades and finally becomes impossible.\n");
  return 0;
}
