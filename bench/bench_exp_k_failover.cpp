// EXP-K (paper §1 + §5.1, Figures 1 and 5): the system's purpose — the
// monitor feeds the resource manager, which reconfigures the RTDS service
// from its replicated pool when the active server fails. At t=10 s the
// active server is cut off from the network (its interface goes down, the
// process keeps running — a pure communications failure). We report the
// reconfiguration latency and the client-observed outage, sweeping the
// monitoring policy: probe timeout/attempts and the strike threshold.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "manager/resource_manager.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Policy {
  const char* name;
  sim::Duration reach_timeout;
  int reach_attempts;
  int strikes;
};

struct Row {
  double reconfig_latency_s;
  double outage_s;
  double monitoring_mbps;  // mean monitoring load before the failure
  bool recovered;
};

Row run(const Policy& policy) {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 3;
  options.clients = 9;  // the paper's 27-path configuration
  apps::Testbed bed(sim, options);

  std::vector<std::unique_ptr<apps::RtdsServer>> servers;
  for (int s = 0; s < bed.server_count(); ++s) {
    servers.push_back(std::make_unique<apps::RtdsServer>(
        bed.server(s), apps::RtdsServer::Config{}));
  }
  servers[0]->start();
  std::vector<std::unique_ptr<apps::RtdsClient>> clients;
  for (int c = 0; c < bed.client_count(); ++c) {
    clients.push_back(std::make_unique<apps::RtdsClient>(
        bed.client(c), apps::RtdsClient::Config{}));
    clients.back()->connect(bed.server_ip(0));
  }

  core::HighFidelityMonitor::Config mon_cfg;
  mon_cfg.reach.timeout = policy.reach_timeout;
  mon_cfg.reach.attempts = policy.reach_attempts;
  core::HighFidelityMonitor monitor(bed.network(), mon_cfg);

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.metrics = {core::Metric::kReachability};
  rm_cfg.strikes = policy.strikes;
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  mgr::ManagedApplication app;
  app.name = "rtds";
  for (int s = 0; s < bed.server_count(); ++s) {
    app.server_pool.push_back(bed.server_ip(s));
  }
  for (int c = 0; c < bed.client_count(); ++c) {
    app.client_pool.push_back(bed.client_ip(c));
  }
  app.port = apps::kRtdsPort;

  double reconfig_at = -1.0;
  manager.set_reconfiguration_callback(
      [&](const mgr::ReconfigurationEvent& event) {
        if (reconfig_at < 0) reconfig_at = event.at.to_seconds();
        for (int s = 0; s < bed.server_count(); ++s) {
          if (bed.server_ip(s) == event.new_server) {
            servers[s]->start();
          } else {
            servers[s]->stop();
          }
        }
        for (auto& client : clients) client->connect(event.new_server);
      });
  manager.manage(app, bed.server_ip(0));

  sim.run_for(sim::Duration::sec(10));
  const auto mon_octets =
      bed.network().octets_by_class()[static_cast<std::size_t>(
          net::TrafficClass::kMonitoring)];
  const double failure_at = sim.now().to_seconds();
  // Network isolation: the interface dies, not the host.
  bed.server(0).nic(0).set_up(false);
  sim.run_for(sim::Duration::sec(120));

  Row row;
  row.monitoring_mbps = static_cast<double>(mon_octets) * 8.0 / 10.0 / 1e6;
  row.reconfig_latency_s = reconfig_at < 0 ? -1 : reconfig_at - failure_at;
  double outage = 0.0;
  bool all_recovered = manager.reconfigurations() >= 1;
  for (auto& client : clients) {
    outage = std::max(outage, client->longest_gap().to_seconds());
    auto since = client->time_since_last_track();
    if (!since || since->to_seconds() > 1.0) all_recovered = false;
  }
  row.outage_s = outage;
  row.recovered = all_recovered;
  return row;
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-K: end-to-end survivability — failover driven by the monitor "
      "(paper §1/§5.1)");
  std::printf("S=3, C=9 (27 monitored paths); the active RTDS server's NIC\n"
              "dies at t=10 s; reachability sweeps cycle through the serial\n"
              "sequencer.\n\n");

  const Policy policies[] = {
      {"aggressive (100 ms x1, 1 strike)", sim::Duration::ms(100), 1, 1},
      {"default    (500 ms x3, 2 strikes)", sim::Duration::ms(500), 3, 2},
      {"cautious   (500 ms x3, 3 strikes)", sim::Duration::ms(500), 3, 3},
      {"lethargic  (1 s x3, 3 strikes)", sim::Duration::sec(1), 3, 3},
  };
  util::TextTable table({"policy", "reconfig latency", "worst client outage",
                         "steady monitoring load", "recovered"});
  for (const Policy& policy : policies) {
    const Row row = run(policy);
    table.add_row(
        {policy.name,
         row.reconfig_latency_s < 0
             ? "never"
             : util::TextTable::fmt(row.reconfig_latency_s, 1) + " s",
         util::TextTable::fmt(row.outage_s, 1) + " s",
         util::TextTable::fmt(row.monitoring_mbps, 3) + " Mb/s",
         row.recovered ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nexpected shape: detection latency scales with probe timeout x\n"
      "attempts x strikes (failed paths hold the serial sequencer for the\n"
      "full timeout, so cautious policies also slow the sweep); the service\n"
      "survives the failure under every policy.\n");
  return 0;
}
