#!/usr/bin/env sh
# Runs the microbenchmark suite and records the results as JSON so runs can
# be diffed across commits.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output.json]
#   build-dir defaults to ./build (must already be configured and built)
#   output    defaults to BENCH_micro.json in the repo root
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_micro.json"}

bench_bin="$build_dir/bench/bench_micro"
if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}"

echo "wrote $out"
