// EXP-D (paper §5.1.3.2, "Intrusiveness Versus Fidelity Tradeoff"):
// "It was determined that the overhead of the clock offset calculation was
// significantly intrusive compared to the overhead of running a clock
// synchronization protocol (e.g. NTP)."
//
// We measure one-way latency on a path between hosts with offset+drifting
// clocks three ways — no correction, per-sample in-band offset exchange
// (K-packet sweep), and NTP-synchronized clocks — and report both the
// latency error against ground truth and the bytes each approach puts on
// the wire per latency sample.

#include <cmath>
#include <cstdio>

#include "apps/testbed.hpp"
#include "clock/ntp.hpp"
#include "nttcp/nttcp.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

constexpr int kSamplesPerRun = 16;

struct Row {
  std::string method;
  double latency_ms;
  double error_ms;      // |measured - ground truth|
  double bytes_per_sample;
};

apps::Testbed make_bed(sim::Simulator& sim) {
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  options.clocks.offset_spread = sim::Duration::ms(25);
  options.clocks.drift_ppm_spread = 50.0;
  return apps::Testbed(sim, options);
}

// Ground truth: same topology, perfect clocks.
double ground_truth_latency() {
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  options.clocks.offset_spread = sim::Duration::ns(0);
  options.clocks.drift_ppm_spread = 0.0;
  apps::Testbed bed(sim, options);
  nttcp::NttcpConfig cfg;
  cfg.message_count = kSamplesPerRun;
  cfg.inter_send = sim::Duration::ms(10);
  double latency = 0.0;
  nttcp::NttcpProbe probe(bed.server(0), bed.client_ip(0), cfg,
                          [&](const nttcp::NttcpResult& r) {
                            latency = r.latency.median();
                          });
  probe.start();
  sim.run_for(sim::Duration::sec(10));
  return latency;
}

Row run(const std::string& method, bool in_band, int exchanges, bool use_ntp,
        double truth_s) {
  sim::Simulator sim;
  apps::Testbed bed = make_bed(sim);

  std::unique_ptr<clk::NtpServer> ntp_server;
  std::vector<std::unique_ptr<clk::NtpClient>> ntp_clients;
  std::uint64_t ntp_bytes = 0;
  if (use_ntp) {
    ntp_server = std::make_unique<clk::NtpServer>(bed.station());
    for (net::Host* host : {&bed.server(0), &bed.client(0)}) {
      clk::NtpClient::Config ntp_cfg;
      ntp_cfg.poll_interval = sim::Duration::sec(16);
      ntp_clients.push_back(std::make_unique<clk::NtpClient>(
          *host, bed.station().primary_ip(), ntp_cfg));
      ntp_clients.back()->start();
    }
    sim.run_for(sim::Duration::sec(60));  // let NTP converge
  }

  nttcp::NttcpConfig cfg;
  cfg.message_count = kSamplesPerRun;
  cfg.inter_send = sim::Duration::ms(10);
  cfg.in_band_offset = in_band;
  cfg.offset.exchanges = exchanges;

  double latency = 0.0;
  std::uint64_t probe_bytes = 0;
  std::uint64_t offset_bytes = 0;
  const int runs = 4;
  for (int i = 0; i < runs; ++i) {
    nttcp::NttcpProbe probe(bed.server(0), bed.client_ip(0), cfg,
                            [&](const nttcp::NttcpResult& r) {
                              latency = r.latency.median();
                              offset_bytes += r.offset_bytes_on_wire;
                            });
    probe.start();
    sim.run_for(sim::Duration::sec(5));
    (void)probe_bytes;
  }
  if (use_ntp) {
    for (const auto& client : ntp_clients) ntp_bytes += client->bytes_sent();
    // NTP responses roughly double the client-side figure.
    ntp_bytes *= 2;
  }

  Row row;
  row.method = method;
  row.latency_ms = latency * 1e3;
  row.error_ms = std::abs(latency - truth_s) * 1e3;
  const double samples = static_cast<double>(runs) * kSamplesPerRun;
  // Correction bytes only — the burst itself is common to all methods.
  row.bytes_per_sample =
      (static_cast<double>(offset_bytes) + static_cast<double>(ntp_bytes)) /
      samples;
  return row;
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-D: in-band clock-offset computation vs NTP (paper §5.1.3.2)");
  const double truth = ground_truth_latency();
  std::printf("ground-truth one-way latency (perfect clocks): %.3f ms\n",
              truth * 1e3);
  std::printf("host clocks: +-25 ms offset, +-50 ppm drift\n\n");

  util::TextTable table({"method", "measured latency", "|error|",
                         "correction bytes / latency sample"});
  auto add = [&](const Row& row) {
    table.add_row({row.method,
                   util::TextTable::fmt(row.latency_ms, 3) + " ms",
                   util::TextTable::fmt(row.error_ms, 3) + " ms",
                   util::TextTable::fmt(row.bytes_per_sample, 1) + " B"});
  };
  add(run("uncorrected clocks", false, 0, false, truth));
  for (int k : {4, 16, 64}) {
    add(run("in-band offset, K=" + std::to_string(k), true, k, false, truth));
  }
  add(run("NTP-synced clocks (16 s poll)", false, 0, true, truth));
  table.print();

  std::printf(
      "\nexpected shape (paper): uncorrected clocks are useless for one-way\n"
      "latency; the in-band exchange fixes accuracy but costs hundreds of\n"
      "bytes per sample (and grows with K); NTP amortizes synchronization\n"
      "across all measurements for a fraction of the per-sample cost.\n");
  return 0;
}
