// EXP-F (paper §5.2.4): "Experiments were also performed to test the
// ability of SunNet Manager to accept large numbers of traps within a
// short period of time. ... Results were dependent upon the platform
// configuration (e.g., memory, CPU). Experiments showed that the
// management station could be overrun by asynchronous traps."
//
// Fixed-size trap bursts are launched at management stations with
// different queue capacities (memory) and per-trap service times (CPU);
// we report how many traps reach the trap-reporting application level.

#include <cstdio>

#include "apps/testbed.hpp"
#include "snmp/agent.hpp"
#include "snmp/manager.hpp"
#include "util/table.hpp"

using namespace netmon;

namespace {

struct Row {
  int burst;
  std::size_t queue;
  double service_ms;
  std::uint64_t received;
  std::uint64_t processed;
  std::uint64_t dropped;
};

Row run(int burst, std::size_t queue_capacity, double service_ms) {
  sim::Simulator sim;
  apps::SharedLanOptions options;
  options.hosts = 2;
  options.add_probe_host = false;
  options.bandwidth_bps = 100e6;  // keep the wire out of the equation
  apps::SharedLanTestbed bed(sim, options);

  snmp::Manager::Config cfg;
  cfg.trap_queue_capacity = queue_capacity;
  cfg.trap_service_time = sim::Duration::seconds(service_ms / 1e3);
  snmp::Manager manager(bed.station(), cfg);

  snmp::Agent::Config agent_cfg;
  agent_cfg.port = 1161;
  agent_cfg.register_mib2 = false;
  snmp::Agent agent(bed.host(0), agent_cfg);

  // Paced just above the wire's drain rate so the element's own transmit
  // queue is not the bottleneck: the measurement isolates the *station*
  // (the paper's "fixed numbers of traps were launched").
  for (int i = 0; i < burst; ++i) {
    sim.schedule_in(sim::Duration::us(200) * i, [&agent, &bed] {
      agent.send_trap(bed.station().primary_ip(),
                      snmp::Oid{1, 3, 6, 1, 4, 1, 42, 0, 1});
    });
  }
  sim.run_for(sim::Duration::sec(60));

  const auto& c = manager.counters();
  return Row{burst, queue_capacity, service_ms, c.traps_received,
             c.traps_processed, c.traps_dropped};
}

}  // namespace

int main() {
  util::print_banner(
      "EXP-F: management station overrun by trap floods (paper §5.2.4)");
  std::printf("traps sent back-to-back on a fast LAN; station modeled as a\n"
              "finite queue (memory) drained at a per-trap service time "
              "(CPU).\n\n");

  util::TextTable table({"burst", "queue (memory)", "service/trap (CPU)",
                         "reached station", "processed", "dropped"});
  for (int burst : {10, 50, 100, 500, 1000}) {
    for (std::size_t queue : {std::size_t(16), std::size_t(64),
                              std::size_t(256)}) {
      const Row row = run(burst, queue, 2.0);
      table.add_row({std::to_string(row.burst), std::to_string(row.queue),
                     util::TextTable::fmt(row.service_ms, 1) + " ms",
                     std::to_string(row.received),
                     std::to_string(row.processed),
                     std::to_string(row.dropped)});
    }
  }
  table.print();

  util::print_banner("EXP-F ablation: CPU speed at fixed queue=64");
  util::TextTable cpu({"burst", "service/trap", "processed", "dropped"});
  for (double service_ms : {0.2, 2.0, 10.0}) {
    const Row row = run(500, 64, service_ms);
    cpu.add_row({std::to_string(row.burst),
                 util::TextTable::fmt(row.service_ms, 1) + " ms",
                 std::to_string(row.processed), std::to_string(row.dropped)});
  }
  cpu.print();
  std::printf(
      "\nexpected shape (paper): small bursts are absorbed; once the burst\n"
      "exceeds what queue + service rate can drain, the excess is dropped —\n"
      "and the loss point moves with platform memory and CPU exactly as the\n"
      "paper observed with SunNet Manager.\n");
  return 0;
}
