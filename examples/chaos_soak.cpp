// Scripted chaos against the supervised monitor (DESIGN.md §9): a FaultPlan
// flaps a client link, crashes the active server, and wedges the primary
// sensor permanently — while the supervision layer (deadline -> retry ->
// breaker -> fallback) keeps (path, metric) tuples flowing and the resource
// manager fails the RTDS over to the replica. Re-run it with the same seed
// and the fault log and counters replay identically.
//
// The soak also watches itself (DESIGN.md §10): an obs::Registry collects
// simulator, director, and wire-intrusiveness telemetry, dumps it to stdout,
// and — given a second argument — exports the deterministic JSON snapshot
// CI archives next to the benchmark results.
//
//   $ ./chaos_soak [seed] [obs-snapshot.json]

#include <cstdio>
#include <cstdlib>

#include "apps/testbed.hpp"
#include "core/scalable_monitor.hpp"
#include "fault/chaos_sensor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "manager/resource_manager.hpp"
#include "obs/intrusiveness.hpp"
#include "obs/metrics.hpp"

using namespace netmon;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1234;

  // Self-observability: declared before the simulator and monitor so the
  // registry outlives everything attached to it (the simulator and the
  // director both detach in their destructors).
  obs::TraceSink trace(4096);
  obs::Registry registry;
  registry.set_trace(&trace);

  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 2;
  options.clients = 2;
  options.seed = seed;
  apps::Testbed bed(sim, options);
  sim.attach_observability(registry, "sim");

  // Scalable (SNMP) monitor with the full supervision stack enabled.
  core::ScalableMonitor::Config cfg;
  cfg.manager.timeout = sim::Duration::ms(250);
  cfg.manager.retries = 1;
  cfg.supervision.deadline = sim::Duration::sec(2);
  cfg.supervision.max_retries = 1;
  cfg.supervision.backoff_base = sim::Duration::ms(100);
  cfg.supervision.breaker_threshold = 3;
  cfg.supervision.breaker_open_for = sim::Duration::sec(8);
  core::ScalableMonitor monitor(bed.network(), bed.station(), cfg);
  monitor.director().attach_observability(registry, "monitor");
  obs::IntrusivenessMeter meter(sim, bed.network(), registry,
                                "net.intrusiveness", sim::Duration::ms(500));

  // The primary reachability sensor is wrapped in a ChaosSensor so the plan
  // can wedge it; the raw SNMP sensor stays registered as the fallback.
  fault::ChaosSensor chaos(sim, monitor.sensor());
  monitor.director().register_sensor(core::Metric::kReachability, &chaos);
  monitor.director().register_fallback(core::Metric::kReachability,
                                       &monitor.sensor());

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.mode = core::MonitorRequest::Mode::kPeriodic;
  rm_cfg.period = sim::Duration::sec(1);
  rm_cfg.metrics = {core::Metric::kReachability};
  rm_cfg.strikes = 2;
  rm_cfg.failure_fraction = 0.5;
  mgr::ResourceManager manager(monitor.director(), rm_cfg);
  manager.set_reconfiguration_callback(
      [](const mgr::ReconfigurationEvent& event) {
        std::printf("[t=%7.3fs] RECONFIGURATION %s -> %s (%s)\n",
                    event.at.to_seconds(),
                    event.old_server.to_string().c_str(),
                    event.new_server.to_string().c_str(),
                    event.reason.c_str());
      });

  mgr::ManagedApplication app;
  app.name = "rtds";
  app.server_pool = {bed.server_ip(0), bed.server_ip(1)};
  app.client_pool = {bed.client_ip(0), bed.client_ip(1)};
  app.port = 5000;
  manager.manage(app, bed.server_ip(0));

  // The scripted chaos: everything below replays identically per seed.
  fault::FaultInjector injector(sim);
  for (const auto& link : bed.network().links()) {
    injector.register_link(link->name(), *link);
  }
  injector.register_host("server0", bed.server(0));
  injector.register_sensor("primary", chaos);

  fault::FaultPlan plan;
  plan.seed = seed;
  plan.link_flap(sim::Duration::sec(3), "client0<->backbone", /*cycles=*/2,
                 sim::Duration::ms(400), sim::Duration::ms(400));
  plan.host_crash(sim::Duration::sec(10), "server0");
  plan.sensor_mode(sim::Duration::sec(20), "primary",
                   fault::ChaosSensor::Mode::kHang);
  injector.arm(plan);

  std::printf("chaos soak, seed %llu: link flaps @3s, server0 crash @10s, "
              "sensor hang @20s\n\n",
              static_cast<unsigned long long>(seed));
  sim.run_until(sim::TimePoint::from_nanos(sim::Duration::sec(40).nanos()));

  std::printf("\nfault log:\n");
  for (const auto& record : injector.log()) {
    std::printf("  [t=%7.3fs] %s\n", record.at.to_seconds(),
                record.description.c_str());
  }

  const core::DirectorStats& stats = monitor.director().stats();
  std::printf("\nsupervision:\n");
  std::printf("  started %llu, completed %llu, failed %llu\n",
              static_cast<unsigned long long>(stats.measurements_started),
              static_cast<unsigned long long>(stats.measurements_completed),
              static_cast<unsigned long long>(stats.measurements_failed));
  std::printf("  timeouts %llu, late %llu, retries %llu, fallbacks %llu, "
              "breaker skips %llu, exhausted %llu\n",
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.late_completions),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.fallbacks),
              static_cast<unsigned long long>(stats.breaker_skips),
              static_cast<unsigned long long>(stats.exhausted));
  std::printf("  sequencer: completed %llu, abandoned %llu, double-done %llu, "
              "queued %zu\n",
              static_cast<unsigned long long>(
                  monitor.director().sequencer().completed()),
              static_cast<unsigned long long>(
                  monitor.director().sequencer().abandoned()),
              static_cast<unsigned long long>(
                  monitor.director().sequencer().double_dones()),
              monitor.director().sequencer().queued());

  std::printf("\nmanager:\n");
  std::printf("  active server:    %s\n",
              manager.active_server("rtds").to_string().c_str());
  std::printf("  reconfigurations: %llu\n",
              static_cast<unsigned long long>(manager.reconfigurations()));
  std::printf("  tuples consumed:  %llu (degraded %llu, stale %llu)\n",
              static_cast<unsigned long long>(manager.tuples_consumed()),
              static_cast<unsigned long long>(manager.degraded_tuples()),
              static_cast<unsigned long long>(manager.stale_tuples()));

  std::printf("\nobservability (%zu metrics, %llu trace events):\n",
              registry.size(),
              static_cast<unsigned long long>(trace.emitted()));
  std::printf("%s", registry.export_text().c_str());

  if (argc > 2) {
    std::FILE* out = std::fopen(argv[2], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[2]);
      return 1;
    }
    const std::string json = registry.export_json();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("\nobs snapshot written to %s\n", argv[2]);
  }
  return 0;
}
