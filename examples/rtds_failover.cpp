// The HiPer-D survivability scenario end to end (paper §1 + §5.1):
// the Radar Track Data Server streams tracks to clients; the network
// resource monitor watches the full server x client path matrix; when the
// active server host dies, the resource manager picks a replacement from
// the pool, restarts the service there, and repoints the clients.
//
//   $ ./rtds_failover

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/rtds.hpp"
#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "manager/resource_manager.hpp"

using namespace netmon;

int main() {
  sim::Simulator sim;

  // The paper's pools: S=3 servers, C=9 clients (27 monitored paths).
  apps::TestbedOptions options;
  options.servers = 3;
  options.clients = 9;
  apps::Testbed bed(sim, options);

  // RTDS server processes on every pool member; only the active one runs.
  std::vector<std::unique_ptr<apps::RtdsServer>> servers;
  for (int s = 0; s < bed.server_count(); ++s) {
    servers.push_back(std::make_unique<apps::RtdsServer>(
        bed.server(s), apps::RtdsServer::Config{}));
  }
  servers[0]->start();

  std::vector<std::unique_ptr<apps::RtdsClient>> clients;
  for (int c = 0; c < bed.client_count(); ++c) {
    clients.push_back(std::make_unique<apps::RtdsClient>(
        bed.client(c), apps::RtdsClient::Config{}));
    clients.back()->connect(bed.server_ip(0));
  }

  // High-fidelity monitor with the serial test sequencer.
  core::HighFidelityMonitor::Config mon_cfg;
  mon_cfg.probe.message_length = 8192;
  mon_cfg.probe.inter_send = sim::Duration::ms(5);
  mon_cfg.probe.message_count = 4;
  mon_cfg.probe.result_timeout = sim::Duration::ms(500);
  core::HighFidelityMonitor monitor(bed.network(), mon_cfg);

  mgr::ResourceManager::Config rm_cfg;
  rm_cfg.metrics = {core::Metric::kReachability};
  rm_cfg.strikes = 2;
  mgr::ResourceManager manager(monitor.director(), rm_cfg);

  mgr::ManagedApplication app;
  app.name = "rtds";
  for (int s = 0; s < bed.server_count(); ++s) {
    app.server_pool.push_back(bed.server_ip(s));
  }
  for (int c = 0; c < bed.client_count(); ++c) {
    app.client_pool.push_back(bed.client_ip(c));
  }
  app.port = apps::kRtdsPort;

  manager.set_reconfiguration_callback(
      [&](const mgr::ReconfigurationEvent& event) {
        std::printf("[t=%8.3fs] RECONFIGURATION: %s -> %s (%s)\n",
                    event.at.to_seconds(), event.old_server.to_string().c_str(),
                    event.new_server.to_string().c_str(),
                    event.reason.c_str());
        for (int s = 0; s < bed.server_count(); ++s) {
          if (bed.server_ip(s) == event.new_server) {
            servers[s]->start();
          } else {
            servers[s]->stop();
          }
        }
        for (auto& client : clients) client->connect(event.new_server);
      });
  manager.manage(app, bed.server_ip(0));

  std::printf("RTDS on %s; monitoring %d paths...\n",
              bed.server_ip(0).to_string().c_str(),
              bed.server_count() * bed.client_count());

  sim.run_for(sim::Duration::sec(10));
  std::printf("[t=%8.3fs] client0 has %llu tracks so far\n",
              sim.now().to_seconds(),
              static_cast<unsigned long long>(clients[0]->tracks_received()));

  std::printf("[t=%8.3fs] KILLING active server host %s\n",
              sim.now().to_seconds(), bed.server_ip(0).to_string().c_str());
  bed.server(0).set_up(false);

  sim.run_for(sim::Duration::sec(60));

  std::printf("\nafter failover:\n");
  std::printf("  active server:      %s\n",
              manager.active_server("rtds").to_string().c_str());
  std::printf("  reconfigurations:   %llu\n",
              static_cast<unsigned long long>(manager.reconfigurations()));
  std::printf("  tuples consumed:    %llu\n",
              static_cast<unsigned long long>(manager.tuples_consumed()));
  for (int c = 0; c < 3; ++c) {
    std::printf("  client%d: %llu tracks, longest gap %.2fs\n", c,
                static_cast<unsigned long long>(clients[c]->tracks_received()),
                clients[c]->longest_gap().to_seconds());
  }
  return 0;
}
