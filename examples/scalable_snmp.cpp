// The scalable COTS monitor (paper §5.2): a management station polls
// MIB-II agents over SNMP and an RMON probe watches a shared Ethernet
// segment, raising threshold traps as background load comes and goes.
//
//   $ ./scalable_snmp

#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/scalable_monitor.hpp"
#include "rmon/probe.hpp"

using namespace netmon;

int main() {
  sim::Simulator sim;

  apps::SharedLanOptions options;
  options.hosts = 5;
  options.clocks.granularity = sim::Duration::ms(10);  // COTS clock ticks
  apps::SharedLanTestbed bed(sim, options);

  rmon::Probe probe(bed.probe_host(), bed.segment());
  core::ScalableMonitor monitor(bed.network(), bed.station());

  // Threshold traps: rising at 30% utilization, falling at 10%.
  monitor.arm_utilization_alarm(probe, 0.30, 0.10, sim::Duration::ms(500));
  monitor.set_trap_callback([&](const snmp::TrapEvent& event) {
    const bool rising = event.trap_oid == rmon::rmon_mib::kRisingAlarmTrap;
    std::printf("[t=%8.3fs] TRAP from %s: %s utilization threshold\n",
                sim.now().to_seconds(), event.source.to_string().c_str(),
                rising ? "RISING above" : "FALLING below");
  });

  // Periodic SNMP-based monitoring of two application paths.
  core::MonitorRequest request;
  for (int target : {1, 2}) {
    request.paths.push_back(core::PathRequest{
        core::Path(core::ProcessEndpoint{"app", bed.host_ip(0), 0},
                   core::ProcessEndpoint{"app", bed.host_ip(target), 0}),
        {core::Metric::kThroughput, core::Metric::kReachability,
         core::Metric::kOneWayLatency}});
  }
  request.mode = core::MonitorRequest::Mode::kPeriodic;
  request.period = sim::Duration::sec(2);

  monitor.director().submit(request, [&](const core::PathMetricTuple& t) {
    if (!t.value.valid) {
      std::printf("[t=%8.3fs] %-12s %s: measurement failed\n",
                  sim.now().to_seconds(), core::to_string(t.metric),
                  t.path.destination().host.to_string().c_str());
      return;
    }
    if (t.metric == core::Metric::kThroughput) {
      std::printf("[t=%8.3fs] %-12s src=%s: %.3f Mb/s (ifOutOctets estimate)\n",
                  sim.now().to_seconds(), "throughput",
                  t.path.source().host.to_string().c_str(),
                  t.value.value / 1e6);
    } else if (t.metric == core::Metric::kOneWayLatency) {
      std::printf("[t=%8.3fs] %-12s dst=%s: %.3f ms (RTT/2 on 10ms clock)\n",
                  sim.now().to_seconds(), "latency",
                  t.path.destination().host.to_string().c_str(),
                  t.value.value * 1e3);
    } else {
      std::printf("[t=%8.3fs] %-12s dst=%s: %s\n", sim.now().to_seconds(),
                  "reachability",
                  t.path.destination().host.to_string().c_str(),
                  t.value.value >= 0.5 ? "up" : "DOWN");
    }
  });

  // Load pattern: quiet, then a 6 Mb/s burst, then quiet again.
  bed.host(4).udp().bind(7009, nullptr);
  apps::CbrTraffic::Config cross;
  cross.rate_bps = 6e6;
  cross.packet_bytes = 1000;
  cross.dst_port = 7009;
  apps::CbrTraffic burst(bed.host(3), bed.host_ip(4), cross);

  sim.schedule_in(sim::Duration::sec(4), [&] {
    std::printf("[t=%8.3fs] -- starting 6 Mb/s background burst --\n",
                sim.now().to_seconds());
    burst.start();
  });
  sim.schedule_in(sim::Duration::sec(10), [&] {
    std::printf("[t=%8.3fs] -- stopping background burst --\n",
                sim.now().to_seconds());
    burst.stop();
  });

  sim.run_for(sim::Duration::sec(16));

  std::printf("\nRMON probe saw %llu frames / %llu octets; station: %llu traps "
              "(%llu dropped at queue)\n",
              static_cast<unsigned long long>(probe.ether_stats().packets),
              static_cast<unsigned long long>(probe.ether_stats().octets),
              static_cast<unsigned long long>(
                  monitor.manager().counters().traps_processed),
              static_cast<unsigned long long>(
                  monitor.manager().counters().traps_dropped));
  return 0;
}
