// The hybrid monitor the paper's Future Work proposes (§7): cheap SNMP
// background polling, with targeted high-fidelity NTTCP probes triggered
// by RMON utilization traps and by anomalous background samples.
//
//   $ ./hybrid_monitor

#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/hybrid_monitor.hpp"
#include "rmon/probe.hpp"

using namespace netmon;

int main() {
  sim::Simulator sim;

  apps::SharedLanOptions options;
  options.hosts = 5;
  apps::SharedLanTestbed bed(sim, options);
  rmon::Probe probe(bed.probe_host(), bed.segment());

  core::HybridMonitor::Config cfg;
  cfg.probe.message_length = 2048;
  cfg.probe.inter_send = sim::Duration::ms(10);
  cfg.probe.message_count = 8;
  cfg.background_period = sim::Duration::sec(3);
  core::HybridMonitor monitor(bed.network(), bed.station(), cfg);
  monitor.arm_utilization_alarm(probe, 0.30, 0.10, sim::Duration::ms(500));

  std::vector<core::PathRequest> paths;
  for (int target : {1, 2}) {
    paths.push_back(core::PathRequest{
        core::Path(core::ProcessEndpoint{"app", bed.host_ip(0), 0},
                   core::ProcessEndpoint{"app", bed.host_ip(target), 0}),
        {core::Metric::kReachability, core::Metric::kThroughput}});
  }
  monitor.start(paths, [&](const core::PathMetricTuple& t) {
    std::printf("[t=%8.3fs] %-15s %-40s %s\n", sim.now().to_seconds(),
                core::to_string(t.metric), t.path.to_string().c_str(),
                t.value.valid
                    ? (t.metric == core::Metric::kThroughput
                           ? (std::to_string(t.value.value / 1e6) + " Mb/s")
                                 .c_str()
                           : (t.value.value >= 0.5 ? "ok" : "FAIL"))
                    : "failed");
  });

  // Phase 1: calm network (background polling only).
  sim.run_for(sim::Duration::sec(6));
  std::printf("-- calm: %llu escalations, %llu targeted probes\n",
              static_cast<unsigned long long>(monitor.escalations()),
              static_cast<unsigned long long>(
                  monitor.targeted_measurements()));

  // Phase 2: congestion spike -> RMON trap -> targeted NTTCP probes.
  bed.host(4).udp().bind(7009, nullptr);
  apps::CbrTraffic::Config cross;
  cross.rate_bps = 7e6;
  cross.packet_bytes = 1000;
  cross.dst_port = 7009;
  apps::CbrTraffic burst(bed.host(3), bed.host_ip(4), cross);
  std::printf("-- injecting 7 Mb/s congestion --\n");
  burst.start();
  sim.run_for(sim::Duration::sec(6));
  burst.stop();

  // Phase 3: host failure -> background anomaly -> escalation.
  std::printf("-- killing host1 --\n");
  bed.host(1).set_up(false);
  sim.run_for(sim::Duration::sec(8));

  std::printf("\ntotals: %llu escalations, %llu targeted probes\n",
              static_cast<unsigned long long>(monitor.escalations()),
              static_cast<unsigned long long>(
                  monitor.targeted_measurements()));
  const auto totals = bed.network().octets_by_class();
  std::printf("bytes by class: app=%llu monitoring=%llu management=%llu\n",
              static_cast<unsigned long long>(totals[0]),
              static_cast<unsigned long long>(totals[1]),
              static_cast<unsigned long long>(totals[2]));
  monitor.stop();
  return 0;
}
