// Quickstart: build a small simulated network, stand up the high-fidelity
// network resource monitor, and ask it for (path, metric) tuples — the
// paper's Figure 2 in ~60 lines of user code.
//
//   $ ./quickstart

#include <cstdio>

#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"

using namespace netmon;

int main() {
  sim::Simulator sim;

  // A 2-server / 3-client slice of the HiPer-D testbed. The builder also
  // installs NTTCP sinks and echo responders (the measurement endpoints).
  apps::TestbedOptions options;
  options.servers = 2;
  options.clients = 3;
  apps::Testbed bed(sim, options);

  // The high-fidelity monitor: NTTCP probes configured with the monitored
  // application's message length L and inter-send period P (paper §5.1.2).
  core::HighFidelityMonitor::Config config;
  config.probe.message_length = 8192;                  // L
  config.probe.inter_send = sim::Duration::ms(30);     // P
  config.probe.message_count = 16;                     // burst length
  config.max_concurrent = 1;                           // the test sequencer
  core::HighFidelityMonitor monitor(bed.network(), config);

  // A monitoring request, as the resource manager would send it: the full
  // server x client path list with the metrics to collect on each path.
  core::MonitorRequest request;
  request.paths = bed.full_matrix(
      {core::Metric::kThroughput, core::Metric::kReachability});
  request.mode = core::MonitorRequest::Mode::kOnce;

  std::printf("path                                         metric            value\n");
  std::printf("-------------------------------------------- ----------------- ----------\n");
  monitor.director().submit(request, [](const core::PathMetricTuple& t) {
    std::string value;
    if (!t.value.valid) {
      value = "FAILED";
    } else if (t.metric == core::Metric::kThroughput) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f Mb/s", t.value.value / 1e6);
      value = buf;
    } else {
      value = t.value.value >= 0.5 ? "reachable" : "unreachable";
    }
    std::printf("%-44s %-17s %s\n", t.path.to_string().c_str(),
                core::to_string(t.metric), value.c_str());
  });

  sim.run_for(sim::Duration::sec(60));

  // The measurement database also holds everything for later queries.
  std::printf("\nmeasurement database: %llu records, %zu series\n",
              static_cast<unsigned long long>(
                  monitor.database().records_written()),
              monitor.database().tracked_series());
  std::printf("monitoring bytes injected on the wire: %llu\n",
              static_cast<unsigned long long>(
                  monitor.sensor().probe_bytes_on_wire()));
  return 0;
}
