file(REMOVE_RECURSE
  "CMakeFiles/test_rmon.dir/rmon_test.cpp.o"
  "CMakeFiles/test_rmon.dir/rmon_test.cpp.o.d"
  "test_rmon"
  "test_rmon.pdb"
  "test_rmon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
