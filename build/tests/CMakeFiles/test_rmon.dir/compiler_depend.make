# Empty compiler generated dependencies file for test_rmon.
# This may be replaced when dependencies are built.
