file(REMOVE_RECURSE
  "CMakeFiles/test_nttcp.dir/nttcp_test.cpp.o"
  "CMakeFiles/test_nttcp.dir/nttcp_test.cpp.o.d"
  "test_nttcp"
  "test_nttcp.pdb"
  "test_nttcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nttcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
