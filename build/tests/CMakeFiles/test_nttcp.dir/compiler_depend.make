# Empty compiler generated dependencies file for test_nttcp.
# This may be replaced when dependencies are built.
