file(REMOVE_RECURSE
  "CMakeFiles/test_manager.dir/manager_test.cpp.o"
  "CMakeFiles/test_manager.dir/manager_test.cpp.o.d"
  "test_manager"
  "test_manager.pdb"
  "test_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
