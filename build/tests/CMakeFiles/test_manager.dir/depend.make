# Empty dependencies file for test_manager.
# This may be replaced when dependencies are built.
