file(REMOVE_RECURSE
  "CMakeFiles/test_snmp.dir/snmp_test.cpp.o"
  "CMakeFiles/test_snmp.dir/snmp_test.cpp.o.d"
  "test_snmp"
  "test_snmp.pdb"
  "test_snmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
