# Empty dependencies file for test_snmp.
# This may be replaced when dependencies are built.
