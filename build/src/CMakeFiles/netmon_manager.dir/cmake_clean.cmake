file(REMOVE_RECURSE
  "CMakeFiles/netmon_manager.dir/manager/resource_manager.cpp.o"
  "CMakeFiles/netmon_manager.dir/manager/resource_manager.cpp.o.d"
  "libnetmon_manager.a"
  "libnetmon_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
