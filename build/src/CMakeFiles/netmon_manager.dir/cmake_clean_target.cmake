file(REMOVE_RECURSE
  "libnetmon_manager.a"
)
