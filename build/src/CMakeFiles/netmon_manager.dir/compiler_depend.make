# Empty compiler generated dependencies file for netmon_manager.
# This may be replaced when dependencies are built.
