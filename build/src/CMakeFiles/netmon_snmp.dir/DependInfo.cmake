
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snmp/agent.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/agent.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/agent.cpp.o.d"
  "/root/repo/src/snmp/ber.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/ber.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/ber.cpp.o.d"
  "/root/repo/src/snmp/manager.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/manager.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/manager.cpp.o.d"
  "/root/repo/src/snmp/mib.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/mib.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/mib.cpp.o.d"
  "/root/repo/src/snmp/mib2.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/mib2.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/mib2.cpp.o.d"
  "/root/repo/src/snmp/oid.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/oid.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/oid.cpp.o.d"
  "/root/repo/src/snmp/pdu.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/pdu.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/pdu.cpp.o.d"
  "/root/repo/src/snmp/value.cpp" "src/CMakeFiles/netmon_snmp.dir/snmp/value.cpp.o" "gcc" "src/CMakeFiles/netmon_snmp.dir/snmp/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
