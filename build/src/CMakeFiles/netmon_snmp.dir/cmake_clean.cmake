file(REMOVE_RECURSE
  "CMakeFiles/netmon_snmp.dir/snmp/agent.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/agent.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/ber.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/ber.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/manager.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/manager.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/mib.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/mib.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/mib2.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/mib2.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/oid.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/oid.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/pdu.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/pdu.cpp.o.d"
  "CMakeFiles/netmon_snmp.dir/snmp/value.cpp.o"
  "CMakeFiles/netmon_snmp.dir/snmp/value.cpp.o.d"
  "libnetmon_snmp.a"
  "libnetmon_snmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_snmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
