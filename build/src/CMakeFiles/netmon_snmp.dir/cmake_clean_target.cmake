file(REMOVE_RECURSE
  "libnetmon_snmp.a"
)
