# Empty dependencies file for netmon_snmp.
# This may be replaced when dependencies are built.
