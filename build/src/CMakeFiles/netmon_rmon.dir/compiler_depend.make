# Empty compiler generated dependencies file for netmon_rmon.
# This may be replaced when dependencies are built.
