file(REMOVE_RECURSE
  "libnetmon_rmon.a"
)
