file(REMOVE_RECURSE
  "CMakeFiles/netmon_rmon.dir/rmon/alarm.cpp.o"
  "CMakeFiles/netmon_rmon.dir/rmon/alarm.cpp.o.d"
  "CMakeFiles/netmon_rmon.dir/rmon/capture.cpp.o"
  "CMakeFiles/netmon_rmon.dir/rmon/capture.cpp.o.d"
  "CMakeFiles/netmon_rmon.dir/rmon/history.cpp.o"
  "CMakeFiles/netmon_rmon.dir/rmon/history.cpp.o.d"
  "CMakeFiles/netmon_rmon.dir/rmon/probe.cpp.o"
  "CMakeFiles/netmon_rmon.dir/rmon/probe.cpp.o.d"
  "libnetmon_rmon.a"
  "libnetmon_rmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_rmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
