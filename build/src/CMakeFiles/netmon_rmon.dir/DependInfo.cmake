
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmon/alarm.cpp" "src/CMakeFiles/netmon_rmon.dir/rmon/alarm.cpp.o" "gcc" "src/CMakeFiles/netmon_rmon.dir/rmon/alarm.cpp.o.d"
  "/root/repo/src/rmon/capture.cpp" "src/CMakeFiles/netmon_rmon.dir/rmon/capture.cpp.o" "gcc" "src/CMakeFiles/netmon_rmon.dir/rmon/capture.cpp.o.d"
  "/root/repo/src/rmon/history.cpp" "src/CMakeFiles/netmon_rmon.dir/rmon/history.cpp.o" "gcc" "src/CMakeFiles/netmon_rmon.dir/rmon/history.cpp.o.d"
  "/root/repo/src/rmon/probe.cpp" "src/CMakeFiles/netmon_rmon.dir/rmon/probe.cpp.o" "gcc" "src/CMakeFiles/netmon_rmon.dir/rmon/probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netmon_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
