# Empty dependencies file for netmon_util.
# This may be replaced when dependencies are built.
