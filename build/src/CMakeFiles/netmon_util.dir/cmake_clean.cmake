file(REMOVE_RECURSE
  "CMakeFiles/netmon_util.dir/util/logging.cpp.o"
  "CMakeFiles/netmon_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/netmon_util.dir/util/rng.cpp.o"
  "CMakeFiles/netmon_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/netmon_util.dir/util/stats.cpp.o"
  "CMakeFiles/netmon_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/netmon_util.dir/util/table.cpp.o"
  "CMakeFiles/netmon_util.dir/util/table.cpp.o.d"
  "libnetmon_util.a"
  "libnetmon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
