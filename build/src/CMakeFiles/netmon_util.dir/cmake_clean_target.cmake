file(REMOVE_RECURSE
  "libnetmon_util.a"
)
