file(REMOVE_RECURSE
  "libnetmon_sim.a"
)
