# Empty compiler generated dependencies file for netmon_sim.
# This may be replaced when dependencies are built.
