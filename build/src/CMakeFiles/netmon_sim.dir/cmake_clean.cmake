file(REMOVE_RECURSE
  "CMakeFiles/netmon_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/netmon_sim.dir/sim/simulator.cpp.o.d"
  "libnetmon_sim.a"
  "libnetmon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
