file(REMOVE_RECURSE
  "libnetmon_core.a"
)
