# Empty dependencies file for netmon_core.
# This may be replaced when dependencies are built.
