
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/high_fidelity_monitor.cpp" "src/CMakeFiles/netmon_core.dir/core/high_fidelity_monitor.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/high_fidelity_monitor.cpp.o.d"
  "/root/repo/src/core/hybrid_monitor.cpp" "src/CMakeFiles/netmon_core.dir/core/hybrid_monitor.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/hybrid_monitor.cpp.o.d"
  "/root/repo/src/core/measurement_db.cpp" "src/CMakeFiles/netmon_core.dir/core/measurement_db.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/measurement_db.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/CMakeFiles/netmon_core.dir/core/path.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/path.cpp.o.d"
  "/root/repo/src/core/scalable_monitor.cpp" "src/CMakeFiles/netmon_core.dir/core/scalable_monitor.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/scalable_monitor.cpp.o.d"
  "/root/repo/src/core/sensor_director.cpp" "src/CMakeFiles/netmon_core.dir/core/sensor_director.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/sensor_director.cpp.o.d"
  "/root/repo/src/core/sequencer.cpp" "src/CMakeFiles/netmon_core.dir/core/sequencer.cpp.o" "gcc" "src/CMakeFiles/netmon_core.dir/core/sequencer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netmon_nttcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_rmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
