file(REMOVE_RECURSE
  "CMakeFiles/netmon_core.dir/core/high_fidelity_monitor.cpp.o"
  "CMakeFiles/netmon_core.dir/core/high_fidelity_monitor.cpp.o.d"
  "CMakeFiles/netmon_core.dir/core/hybrid_monitor.cpp.o"
  "CMakeFiles/netmon_core.dir/core/hybrid_monitor.cpp.o.d"
  "CMakeFiles/netmon_core.dir/core/measurement_db.cpp.o"
  "CMakeFiles/netmon_core.dir/core/measurement_db.cpp.o.d"
  "CMakeFiles/netmon_core.dir/core/path.cpp.o"
  "CMakeFiles/netmon_core.dir/core/path.cpp.o.d"
  "CMakeFiles/netmon_core.dir/core/scalable_monitor.cpp.o"
  "CMakeFiles/netmon_core.dir/core/scalable_monitor.cpp.o.d"
  "CMakeFiles/netmon_core.dir/core/sensor_director.cpp.o"
  "CMakeFiles/netmon_core.dir/core/sensor_director.cpp.o.d"
  "CMakeFiles/netmon_core.dir/core/sequencer.cpp.o"
  "CMakeFiles/netmon_core.dir/core/sequencer.cpp.o.d"
  "libnetmon_core.a"
  "libnetmon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
