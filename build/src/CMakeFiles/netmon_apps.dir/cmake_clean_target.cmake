file(REMOVE_RECURSE
  "libnetmon_apps.a"
)
