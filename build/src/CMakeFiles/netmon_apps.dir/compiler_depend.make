# Empty compiler generated dependencies file for netmon_apps.
# This may be replaced when dependencies are built.
