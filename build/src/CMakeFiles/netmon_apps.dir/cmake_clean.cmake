file(REMOVE_RECURSE
  "CMakeFiles/netmon_apps.dir/apps/rtds.cpp.o"
  "CMakeFiles/netmon_apps.dir/apps/rtds.cpp.o.d"
  "CMakeFiles/netmon_apps.dir/apps/testbed.cpp.o"
  "CMakeFiles/netmon_apps.dir/apps/testbed.cpp.o.d"
  "CMakeFiles/netmon_apps.dir/apps/traffic.cpp.o"
  "CMakeFiles/netmon_apps.dir/apps/traffic.cpp.o.d"
  "libnetmon_apps.a"
  "libnetmon_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
