file(REMOVE_RECURSE
  "libnetmon_net.a"
)
