# Empty dependencies file for netmon_net.
# This may be replaced when dependencies are built.
