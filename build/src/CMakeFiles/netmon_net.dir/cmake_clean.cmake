file(REMOVE_RECURSE
  "CMakeFiles/netmon_net.dir/net/address.cpp.o"
  "CMakeFiles/netmon_net.dir/net/address.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/host.cpp.o"
  "CMakeFiles/netmon_net.dir/net/host.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/link.cpp.o"
  "CMakeFiles/netmon_net.dir/net/link.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/nic.cpp.o"
  "CMakeFiles/netmon_net.dir/net/nic.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/packet.cpp.o"
  "CMakeFiles/netmon_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/routing.cpp.o"
  "CMakeFiles/netmon_net.dir/net/routing.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/shared_segment.cpp.o"
  "CMakeFiles/netmon_net.dir/net/shared_segment.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/switch.cpp.o"
  "CMakeFiles/netmon_net.dir/net/switch.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/tcp.cpp.o"
  "CMakeFiles/netmon_net.dir/net/tcp.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/topology.cpp.o"
  "CMakeFiles/netmon_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/netmon_net.dir/net/udp.cpp.o"
  "CMakeFiles/netmon_net.dir/net/udp.cpp.o.d"
  "libnetmon_net.a"
  "libnetmon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
