
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/CMakeFiles/netmon_net.dir/net/address.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/address.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/netmon_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/netmon_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/CMakeFiles/netmon_net.dir/net/nic.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/nic.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/netmon_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/netmon_net.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/routing.cpp.o.d"
  "/root/repo/src/net/shared_segment.cpp" "src/CMakeFiles/netmon_net.dir/net/shared_segment.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/shared_segment.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/netmon_net.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/switch.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/netmon_net.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/netmon_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/topology.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/CMakeFiles/netmon_net.dir/net/udp.cpp.o" "gcc" "src/CMakeFiles/netmon_net.dir/net/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
