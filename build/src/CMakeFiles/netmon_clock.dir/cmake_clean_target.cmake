file(REMOVE_RECURSE
  "libnetmon_clock.a"
)
