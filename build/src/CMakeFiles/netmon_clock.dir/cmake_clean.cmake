file(REMOVE_RECURSE
  "CMakeFiles/netmon_clock.dir/clock/host_clock.cpp.o"
  "CMakeFiles/netmon_clock.dir/clock/host_clock.cpp.o.d"
  "CMakeFiles/netmon_clock.dir/clock/ntp.cpp.o"
  "CMakeFiles/netmon_clock.dir/clock/ntp.cpp.o.d"
  "libnetmon_clock.a"
  "libnetmon_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
