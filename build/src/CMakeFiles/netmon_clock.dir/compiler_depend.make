# Empty compiler generated dependencies file for netmon_clock.
# This may be replaced when dependencies are built.
