
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/host_clock.cpp" "src/CMakeFiles/netmon_clock.dir/clock/host_clock.cpp.o" "gcc" "src/CMakeFiles/netmon_clock.dir/clock/host_clock.cpp.o.d"
  "/root/repo/src/clock/ntp.cpp" "src/CMakeFiles/netmon_clock.dir/clock/ntp.cpp.o" "gcc" "src/CMakeFiles/netmon_clock.dir/clock/ntp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
