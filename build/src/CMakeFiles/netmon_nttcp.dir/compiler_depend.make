# Empty compiler generated dependencies file for netmon_nttcp.
# This may be replaced when dependencies are built.
