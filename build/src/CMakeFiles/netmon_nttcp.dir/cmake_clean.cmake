file(REMOVE_RECURSE
  "CMakeFiles/netmon_nttcp.dir/nttcp/clock_offset.cpp.o"
  "CMakeFiles/netmon_nttcp.dir/nttcp/clock_offset.cpp.o.d"
  "CMakeFiles/netmon_nttcp.dir/nttcp/nttcp.cpp.o"
  "CMakeFiles/netmon_nttcp.dir/nttcp/nttcp.cpp.o.d"
  "CMakeFiles/netmon_nttcp.dir/nttcp/reachability.cpp.o"
  "CMakeFiles/netmon_nttcp.dir/nttcp/reachability.cpp.o.d"
  "libnetmon_nttcp.a"
  "libnetmon_nttcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_nttcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
