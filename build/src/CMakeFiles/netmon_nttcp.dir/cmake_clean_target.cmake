file(REMOVE_RECURSE
  "libnetmon_nttcp.a"
)
