# Empty compiler generated dependencies file for bench_exp_j_criteria.
# This may be replaced when dependencies are built.
