file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_j_criteria.dir/bench_exp_j_criteria.cpp.o"
  "CMakeFiles/bench_exp_j_criteria.dir/bench_exp_j_criteria.cpp.o.d"
  "bench_exp_j_criteria"
  "bench_exp_j_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_j_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
