# Empty dependencies file for bench_exp_d_clockoffset.
# This may be replaced when dependencies are built.
