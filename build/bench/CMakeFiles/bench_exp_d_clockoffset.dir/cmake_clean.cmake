file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_d_clockoffset.dir/bench_exp_d_clockoffset.cpp.o"
  "CMakeFiles/bench_exp_d_clockoffset.dir/bench_exp_d_clockoffset.cpp.o.d"
  "bench_exp_d_clockoffset"
  "bench_exp_d_clockoffset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_d_clockoffset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
