file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_h_reachability.dir/bench_exp_h_reachability.cpp.o"
  "CMakeFiles/bench_exp_h_reachability.dir/bench_exp_h_reachability.cpp.o.d"
  "bench_exp_h_reachability"
  "bench_exp_h_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_h_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
