# Empty compiler generated dependencies file for bench_exp_h_reachability.
# This may be replaced when dependencies are built.
