# Empty dependencies file for bench_exp_a_overhead.
# This may be replaced when dependencies are built.
