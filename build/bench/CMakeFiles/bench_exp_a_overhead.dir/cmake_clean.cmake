file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_a_overhead.dir/bench_exp_a_overhead.cpp.o"
  "CMakeFiles/bench_exp_a_overhead.dir/bench_exp_a_overhead.cpp.o.d"
  "bench_exp_a_overhead"
  "bench_exp_a_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_a_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
