file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_b_senescence.dir/bench_exp_b_senescence.cpp.o"
  "CMakeFiles/bench_exp_b_senescence.dir/bench_exp_b_senescence.cpp.o.d"
  "bench_exp_b_senescence"
  "bench_exp_b_senescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_b_senescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
