# Empty dependencies file for bench_exp_b_senescence.
# This may be replaced when dependencies are built.
