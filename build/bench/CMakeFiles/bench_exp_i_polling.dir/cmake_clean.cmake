file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_i_polling.dir/bench_exp_i_polling.cpp.o"
  "CMakeFiles/bench_exp_i_polling.dir/bench_exp_i_polling.cpp.o.d"
  "bench_exp_i_polling"
  "bench_exp_i_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_i_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
