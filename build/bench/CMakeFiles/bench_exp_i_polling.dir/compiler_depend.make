# Empty compiler generated dependencies file for bench_exp_i_polling.
# This may be replaced when dependencies are built.
