file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_c_burst.dir/bench_exp_c_burst.cpp.o"
  "CMakeFiles/bench_exp_c_burst.dir/bench_exp_c_burst.cpp.o.d"
  "bench_exp_c_burst"
  "bench_exp_c_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_c_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
