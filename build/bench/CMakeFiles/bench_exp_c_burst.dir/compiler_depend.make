# Empty compiler generated dependencies file for bench_exp_c_burst.
# This may be replaced when dependencies are built.
