# Empty dependencies file for bench_exp_k_failover.
# This may be replaced when dependencies are built.
