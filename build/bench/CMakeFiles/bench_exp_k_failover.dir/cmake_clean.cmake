file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_k_failover.dir/bench_exp_k_failover.cpp.o"
  "CMakeFiles/bench_exp_k_failover.dir/bench_exp_k_failover.cpp.o.d"
  "bench_exp_k_failover"
  "bench_exp_k_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_k_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
