# Empty compiler generated dependencies file for bench_exp_g_fidelity.
# This may be replaced when dependencies are built.
