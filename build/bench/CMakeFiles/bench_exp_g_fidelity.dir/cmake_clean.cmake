file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_g_fidelity.dir/bench_exp_g_fidelity.cpp.o"
  "CMakeFiles/bench_exp_g_fidelity.dir/bench_exp_g_fidelity.cpp.o.d"
  "bench_exp_g_fidelity"
  "bench_exp_g_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_g_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
