# Empty compiler generated dependencies file for bench_exp_e_snmploss.
# This may be replaced when dependencies are built.
