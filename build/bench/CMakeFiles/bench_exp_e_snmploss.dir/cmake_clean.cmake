file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_e_snmploss.dir/bench_exp_e_snmploss.cpp.o"
  "CMakeFiles/bench_exp_e_snmploss.dir/bench_exp_e_snmploss.cpp.o.d"
  "bench_exp_e_snmploss"
  "bench_exp_e_snmploss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_e_snmploss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
