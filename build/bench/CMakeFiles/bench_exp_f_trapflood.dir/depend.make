# Empty dependencies file for bench_exp_f_trapflood.
# This may be replaced when dependencies are built.
