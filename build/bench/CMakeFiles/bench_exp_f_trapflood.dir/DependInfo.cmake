
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_exp_f_trapflood.cpp" "bench/CMakeFiles/bench_exp_f_trapflood.dir/bench_exp_f_trapflood.cpp.o" "gcc" "bench/CMakeFiles/bench_exp_f_trapflood.dir/bench_exp_f_trapflood.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netmon_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_rmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_nttcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
