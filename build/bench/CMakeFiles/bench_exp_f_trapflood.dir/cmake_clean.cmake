file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_f_trapflood.dir/bench_exp_f_trapflood.cpp.o"
  "CMakeFiles/bench_exp_f_trapflood.dir/bench_exp_f_trapflood.cpp.o.d"
  "bench_exp_f_trapflood"
  "bench_exp_f_trapflood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_f_trapflood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
