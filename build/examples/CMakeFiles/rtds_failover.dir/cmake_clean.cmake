file(REMOVE_RECURSE
  "CMakeFiles/rtds_failover.dir/rtds_failover.cpp.o"
  "CMakeFiles/rtds_failover.dir/rtds_failover.cpp.o.d"
  "rtds_failover"
  "rtds_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
