# Empty dependencies file for rtds_failover.
# This may be replaced when dependencies are built.
