# Empty compiler generated dependencies file for hybrid_monitor.
# This may be replaced when dependencies are built.
