file(REMOVE_RECURSE
  "CMakeFiles/hybrid_monitor.dir/hybrid_monitor.cpp.o"
  "CMakeFiles/hybrid_monitor.dir/hybrid_monitor.cpp.o.d"
  "hybrid_monitor"
  "hybrid_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
