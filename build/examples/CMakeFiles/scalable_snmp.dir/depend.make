# Empty dependencies file for scalable_snmp.
# This may be replaced when dependencies are built.
