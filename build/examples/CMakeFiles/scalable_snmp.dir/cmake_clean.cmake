file(REMOVE_RECURSE
  "CMakeFiles/scalable_snmp.dir/scalable_snmp.cpp.o"
  "CMakeFiles/scalable_snmp.dir/scalable_snmp.cpp.o.d"
  "scalable_snmp"
  "scalable_snmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalable_snmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
