#!/usr/bin/env sh
# Line-coverage gate over src/. Expects a build tree configured with the
# `coverage` preset (NETMON_COVERAGE=ON) whose tests have already run, so
# the .gcda counters are populated:
#
#   cmake --preset coverage && cmake --build --preset coverage -j
#   ctest --preset coverage
#   scripts/coverage.sh [build-dir] [floor-percent]
#
# The floor is a ratchet: raise it when coverage rises, never lower it to
# make a red build green. Uses gcovr when installed; otherwise falls back
# to aggregating raw gcov per-file summaries over src/*.cpp.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-coverage"}
# 91.4% measured at the last check (src/core/tiered_store included); 89
# leaves headroom for tool (gcovr vs raw gcov) and platform variance.
floor=${2:-"${COVERAGE_FLOOR:-89}"}

if [ ! -d "$build_dir" ]; then
  echo "error: $build_dir not found; configure with --preset coverage first" >&2
  exit 1
fi
# Absolute: the gcov fallback runs from a scratch directory.
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)

if command -v gcovr >/dev/null 2>&1; then
  exec gcovr --root "$repo_root" --filter "$repo_root/src/" \
       --object-directory "$build_dir" \
       --print-summary --fail-under-line "$floor"
fi

# Fallback: one gcov summary per translation unit. Each src/*.cpp is built
# into the library exactly once, so summing per-file "Lines executed" rows
# (cpp files only — headers repeat across TUs) matches gcovr's line number
# closely enough to enforce the same floor.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

find "$build_dir" -name '*.gcda' -path '*src*' > "$tmp/gcda"
if [ ! -s "$tmp/gcda" ]; then
  echo "error: no .gcda files under $build_dir - did the tests run?" >&2
  exit 1
fi

(cd "$tmp" && xargs gcov -n < gcda > report.txt 2>/dev/null) || true

awk -v floor="$floor" '
  /^File / {
    file = $0
    gsub(/^File \047|\047$/, "", file)
    keep = (file ~ /\/src\/.*\.cpp$/)
    next
  }
  keep && /^Lines executed:/ {
    line = $0
    sub(/^Lines executed:/, "", line)
    split(line, parts, "% of ")
    covered += parts[1] / 100.0 * parts[2]
    total += parts[2]
    keep = 0
  }
  END {
    if (total == 0) { print "no src/ coverage data found"; exit 1 }
    pct = 100.0 * covered / total
    printf "line coverage over src/*.cpp: %.1f%% (floor %s%%)\n", pct, floor
    if (pct < floor) { print "FAIL: coverage below floor"; exit 1 }
  }' "$tmp/report.txt"
