#pragma once

// Streaming statistics helpers used by sensors, benches, and tests.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace netmon::util {

// Welford-style streaming accumulator: O(1) memory, numerically stable.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Coefficient of variation (stddev/mean); 0 when mean is 0.
  double cv() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores all samples; supports exact quantiles. Use for bounded experiment
// sample sets, not unbounded streams.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  // q in [0,1]; linear interpolation between closest ranks.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Counts events per fixed-width bucket of a key (e.g. time). Used by benches
// to build time series.
class Histogram {
 public:
  explicit Histogram(double bucket_width) : width_(bucket_width) {}
  void add(double key, double weight = 1.0);
  double bucket_width() const { return width_; }
  // Bucket index -> accumulated weight; missing buckets are zero.
  const std::vector<double>& buckets() const { return buckets_; }
  double total() const { return total_; }

 private:
  double width_;
  std::vector<double> buckets_;
  double total_ = 0.0;
};

}  // namespace netmon::util
