#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netmon::util {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::cv() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / std::abs(m);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double x : samples_) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::out_of_range("quantile: q not in [0,1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void Histogram::add(double key, double weight) {
  if (key < 0.0) return;
  const auto idx = static_cast<std::size_t>(key / width_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += weight;
  total_ += weight;
}

}  // namespace netmon::util
