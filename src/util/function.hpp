#pragma once

// Move-only callable wrapper with small-buffer optimization. Unlike
// std::function it never allocates for callables that fit the inline buffer
// (and are nothrow-move-constructible), which makes it suitable for the
// simulator's per-event hot path: a lambda capturing `this` plus a few words
// is stored in place. Larger callables transparently fall back to the heap.

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace netmon::util {

template <class Signature, std::size_t InlineBytes = 48>
class SmallFunction;

template <class R, class... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
  static_assert(InlineBytes >= sizeof(void*),
                "inline buffer must hold at least a pointer");

 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT: mirror std::function

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT: converting, like std::function
    construct<D>(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction& operator=(F&& f) {
    reset();
    construct<D>(std::forward<F>(f));
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    if (invoke_ == nullptr) throw std::bad_function_call();
    return invoke_(&storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMoveTo, kDestroy };

  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* self, void* dest);

  template <class F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= InlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <class F, bool Inline>
  struct Vtable {
    static F* get(void* s) {
      if constexpr (Inline) {
        return std::launder(reinterpret_cast<F*>(s));
      } else {
        return *std::launder(reinterpret_cast<F**>(s));
      }
    }
    static R invoke(void* s, Args&&... args) {
      return (*get(s))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* dest) {
      if constexpr (Inline) {
        F* f = get(self);
        if (op == Op::kMoveTo) ::new (dest) F(std::move(*f));
        f->~F();
      } else {
        if (op == Op::kMoveTo) {
          ::new (dest) (F*)(get(self));  // steal the heap pointer
        } else {
          delete get(self);
        }
      }
    }
  };

  template <class F, class Arg>
  void construct(Arg&& f) {
    if constexpr (fits_inline<F>()) {
      ::new (&storage_) F(std::forward<Arg>(f));
      invoke_ = &Vtable<F, true>::invoke;
      manage_ = &Vtable<F, true>::manage;
    } else {
      ::new (&storage_) (F*)(new F(std::forward<Arg>(f)));
      invoke_ = &Vtable<F, false>::invoke;
      manage_ = &Vtable<F, false>::manage;
    }
  }

  void move_from(SmallFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kMoveTo, &other.storage_, &storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, &storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace netmon::util
