#pragma once

// Fixed-capacity ring buffer; oldest entries are overwritten when full.
// Used by the measurement database and RMON history group.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace netmon::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("RingBuffer capacity 0");
    storage_.reserve(capacity_);
  }

  void push(T value) {
    if (storage_.size() < capacity_) {
      storage_.push_back(std::move(value));
    } else {
      storage_[head_] = std::move(value);
      if (++head_ == capacity_) head_ = 0;  // no div on the hot push path
    }
  }

  std::size_t size() const { return storage_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return storage_.empty(); }
  bool full() const { return storage_.size() == capacity_; }

  // i = 0 is the oldest retained entry; i = size()-1 the newest.
  const T& operator[](std::size_t i) const {
    if (i >= storage_.size()) throw std::out_of_range("RingBuffer index");
    return storage_[(head_ + i) % storage_.size()];
  }

  const T& newest() const {
    if (empty()) throw std::out_of_range("RingBuffer empty");
    return (*this)[size() - 1];
  }
  const T& oldest() const {
    if (empty()) throw std::out_of_range("RingBuffer empty");
    return (*this)[0];
  }

  void clear() {
    storage_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<T> storage_;
};

}  // namespace netmon::util
