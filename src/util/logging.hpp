#pragma once

// Minimal leveled logger. The simulator installs a time-source hook so every
// record carries the current simulated time rather than wall-clock time.

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace netmon::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Installed by the simulator; returns a "[t=...]" prefix for records.
  void set_time_source(std::function<std::string()> source) {
    time_source_ = std::move(source);
  }
  void clear_time_source() { time_source_ = nullptr; }

  // Redirect output (tests capture records this way). Default: stderr.
  void set_sink(std::function<void(std::string_view)> sink) {
    sink_ = std::move(sink);
  }
  void clear_sink() { sink_ = nullptr; }

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<std::string()> time_source_;
  std::function<void(std::string_view)> sink_;
};

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  logger.write(level, component, os.str());
}

#define NETMON_LOG(level, component, ...) \
  ::netmon::util::log((level), (component), __VA_ARGS__)

#define NETMON_TRACE(component, ...) \
  NETMON_LOG(::netmon::util::LogLevel::kTrace, component, __VA_ARGS__)
#define NETMON_DEBUG(component, ...) \
  NETMON_LOG(::netmon::util::LogLevel::kDebug, component, __VA_ARGS__)
#define NETMON_INFO(component, ...) \
  NETMON_LOG(::netmon::util::LogLevel::kInfo, component, __VA_ARGS__)
#define NETMON_WARN(component, ...) \
  NETMON_LOG(::netmon::util::LogLevel::kWarn, component, __VA_ARGS__)
#define NETMON_ERROR(component, ...) \
  NETMON_LOG(::netmon::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace netmon::util
