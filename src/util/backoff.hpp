#pragma once

// Deterministic jittered exponential backoff, shared by every layer that
// retries (DESIGN.md §9 supervision retries, §14 federation reconnect).
// The delay doubles per attempt from `base` up to `cap`, then a jitter in
// [0, 25%) of the delay is added, derived by hashing a caller-supplied key
// (typically the retrying entity's identity mixed with the attempt number).
// Two runs of the same scenario therefore back off identically, while
// entities sharing a failure do not retry in lockstep.

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace netmon::util {

// splitmix64-style finalizer: decorrelates structured keys (ids, attempt
// counters packed into bit fields) into uniform jitter.
inline std::uint64_t mix64(std::uint64_t h) {
  h *= 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

// Delay before retry number `attempt` (1-based: the first retry uses `base`).
// `key` seeds the jitter and should already encode the attempt if successive
// retries of one entity must jitter independently.
inline sim::Duration jittered_backoff(sim::Duration base, sim::Duration max,
                                      int attempt, std::uint64_t key) {
  std::int64_t ns = base.nanos();
  const std::int64_t cap = std::max<std::int64_t>(ns, max.nanos());
  for (int i = 1; i < attempt && ns < cap; ++i) ns *= 2;
  if (ns > cap) ns = cap;
  const std::uint64_t h = mix64(key);
  return sim::Duration::ns(ns + static_cast<std::int64_t>(h % 1024) * ns / 4096);
}

// Bound policy: the (base, cap) pair components carry in their configs.
struct BackoffPolicy {
  sim::Duration base = sim::Duration::ms(100);
  sim::Duration max = sim::Duration::sec(5);

  sim::Duration delay(int attempt, std::uint64_t key) const {
    return jittered_backoff(base, max, attempt, key);
  }
};

}  // namespace netmon::util
