#include "util/rng.hpp"

// Rng is header-only; this translation unit anchors the library target.
