#pragma once

// Plain-text table and CSV emission for the benchmark harnesses. Benches
// print the paper's rows next to measured values with these helpers.

#include <cstdint>
#include <string>
#include <vector>

namespace netmon::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& add_row(std::vector<std::string> cells);
  // Render with column alignment, a header underline, and pipe separators.
  std::string to_string() const;
  std::string to_csv() const;
  void print() const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmt_rate_mbps(double bits_per_second, int precision = 2);
  static std::string fmt_bytes(std::uint64_t bytes);
  static std::string fmt_percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner used by benches: "== EXP-A: ... ==".
void print_banner(const std::string& title);

}  // namespace netmon::util
