#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace netmon::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_rate_mbps(double bits_per_second, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f Mb/s", precision,
                bits_per_second / 1e6);
  return buf;
}

std::string TextTable::fmt_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string TextTable::fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_banner(const std::string& title) {
  std::printf("\n== %s ==\n\n", title.c_str());
}

}  // namespace netmon::util
