#include "util/logging.hpp"

#include <cstdio>

namespace netmon::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  std::string record;
  if (time_source_) {
    record += time_source_();
    record += ' ';
  }
  record += level_name(level);
  record += " [";
  record += component;
  record += "] ";
  record += msg;
  if (sink_) {
    sink_(record);
  } else {
    std::fprintf(stderr, "%s\n", record.c_str());
  }
}

}  // namespace netmon::util
