#pragma once

// Deterministic random source. Every stochastic component takes an explicit
// Rng (or a seed) so whole-system runs are reproducible from a single seed.

#include <cstdint>
#include <random>

namespace netmon::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  // Derive an independent child stream (for per-component determinism that
  // is insensitive to the order other components draw in).
  Rng fork() { return Rng(engine_() ^ 0xD1B54A32D192ED03ull); }

  double uniform() { return uniform(0.0, 1.0); }
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  std::uint64_t next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace netmon::util
