#pragma once

// Deterministic replication event log (DESIGN.md §14). Child and parent
// append one line per protocol event — session open/resume, page sent /
// merged / shed, gap reported / applied, duplicate skipped — each stamped
// with the simulation clock. Because the simulator is deterministic, two
// same-seed runs must produce byte-identical export_text(); the federation
// tests diff exactly that.

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace netmon::fed {

class ReplicationLog {
 public:
  struct Entry {
    sim::TimePoint at;
    std::string line;
  };

  void append(sim::TimePoint at, std::string line) {
    entries_.push_back(Entry{at, std::move(line)});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  std::string export_text() const {
    std::ostringstream os;
    for (const Entry& e : entries_) {
      os << "t=" << e.at.nanos() << " " << e.line << "\n";
    }
    return os.str();
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace netmon::fed
