#pragma once

// Federation wire protocol (DESIGN.md §14): the framing and message codec a
// zone monitor (child) uses to stream sealed tiered-store pages and
// current-value deltas to its parent manager over the simulated TCP stack.
//
// Framing: every message travels as
//   magic 0xF5 0xED | type u8 | payload_len u32 LE | payload | crc32 u32 LE
// where the CRC (IEEE 802.3 polynomial) covers type, length, and payload.
// TCP already guarantees ordered lossless delivery; the CRC defends against
// the remaining failure modes — a buggy peer, a truncated spool replay, or
// corruption injected by the fault layer below the reliability line — by
// turning damage into a clean WireError instead of a misparse.
//
// Page payloads are delta-encoded: each TierPoint's first_ns is a zigzag
// varint offset from the previous point's last_ns (absolute for the first),
// last_ns an offset from its own first_ns, so a steady sampling cadence
// costs two or three bytes of timestamps per point instead of sixteen.
// Values stay raw IEEE doubles — aggregates do not compress predictably and
// bit-exactness matters more than the four bytes a float cast would save.
//
// The decoder never trusts a byte: every read is bounds-checked, varints
// are length-capped, declared lengths are sanity-capped (1 MiB), and any
// violation — bad magic, CRC mismatch, short payload, trailing garbage,
// counts that disagree — throws WireError. Truncated input is simply
// incomplete: FrameParser::next() returns nullopt until more bytes arrive.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "core/tiered_store.hpp"

namespace netmon::fed {

struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// One endpoint of a declared path, enough for the parent to reconstruct the
// child's core::Path in its own database.
struct WireEndpoint {
  std::string process;
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
};

// Child -> parent, first message of every session. `incarnation` increments
// across child restarts so the parent can tell a resumed stream from a
// reborn one (both replay from the acked watermarks either way).
struct HelloMsg {
  std::string zone;
  std::uint64_t incarnation = 0;
  std::uint16_t version = 1;
};

struct SeriesWatermark {
  std::uint32_t series = 0;
  std::uint64_t page_seq = 0;  // highest contiguously merged page
};

// Parent -> child: session accepted; here is everything I have durably
// merged from your zone. The child prunes its spool to these watermarks and
// replays only what lies above them.
struct HelloAckMsg {
  std::uint64_t incarnation = 0;
  std::vector<SeriesWatermark> watermarks;
};

// Child -> parent, once per series per session before its first page or
// delta: binds the child's dense series index to a (path, metric) identity.
struct SeriesDeclMsg {
  std::uint32_t series = 0;
  std::uint8_t metric = 0;
  std::vector<WireEndpoint> endpoints;
};

// One sealed page. `page_seq` numbers sealed pages per series from 1,
// consecutively — the replication protocol's unit of acknowledgment.
struct PageMsg {
  std::uint32_t series = 0;
  std::uint64_t page_seq = 0;
  std::uint8_t tier = 0;
  std::vector<core::TierPoint> points;
};

// One current-value sample, for parent-side freshness between page seals.
struct DeltaMsg {
  std::uint32_t series = 0;
  std::int64_t at_ns = 0;
  double value = 0.0;
  bool valid = false;
};

// Parent -> child: pages of `series` up to and including `page_seq` are
// merged; the child may drop them from its spool.
struct AckMsg {
  std::uint32_t series = 0;
  std::uint64_t page_seq = 0;
};

// Child -> parent: pages [from_seq, to_seq] of `series` were shed under
// spool pressure and will never arrive; `points` is the honest point count
// lost. The parent advances its watermark past the hole and accounts the
// loss instead of waiting forever.
struct GapMsg {
  std::uint32_t series = 0;
  std::uint64_t from_seq = 0;
  std::uint64_t to_seq = 0;
  std::uint64_t points = 0;
};

// Child -> parent liveness beacon (child-clock timestamp), so a quiet zone
// with no sealing activity still reads as alive.
struct HeartbeatMsg {
  std::int64_t at_ns = 0;
};

using Message = std::variant<HelloMsg, HelloAckMsg, SeriesDeclMsg, PageMsg,
                             DeltaMsg, AckMsg, GapMsg, HeartbeatMsg>;

// Serializes one message into a complete frame.
std::vector<std::byte> encode(const Message& message);

// IEEE CRC-32 (reflected, 0xEDB88320), exposed for tests.
std::uint32_t crc32(const std::byte* data, std::size_t n);

// Incremental frame decoder for a TCP byte stream: feed() arbitrary chunks,
// then drain next() until it returns nullopt (incomplete tail retained for
// the next feed). Malformed input throws WireError; the caller is expected
// to treat that as fatal for the connection and reset() before reuse.
class FrameParser {
 public:
  void feed(std::span<const std::byte> data);
  std::optional<Message> next();
  void reset();
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace netmon::fed
