#include "fed/parent.hpp"

#include <algorithm>

namespace netmon::fed {

FedParent::FedParent(net::Host& host, core::MeasurementDatabase& db,
                     FedParentConfig config)
    : sim_(host.simulator()), host_(host), db_(db), config_(config) {}

FedParent::~FedParent() { stop(); }

void FedParent::start() {
  if (listening_) return;
  listening_ = true;
  host_.tcp().listen(config_.port,
                     [this](std::shared_ptr<net::TcpConnection> conn) {
                       on_accept(std::move(conn));
                     });
  log_.append(sim_.now(), "parent listening port=" +
                              std::to_string(config_.port));
}

void FedParent::stop() {
  if (!listening_) return;
  listening_ = false;
  host_.tcp().stop_listening(config_.port);
  for (auto& s : sessions_) {
    if (s->conn) {
      s->conn->set_close_handler(nullptr);
      s->conn->set_receive_handler(nullptr);
      s->conn->abort();
    }
  }
  sessions_.clear();
  for (auto& [name, zone] : zones_) zone.session = nullptr;
  detach_observability();
}

void FedParent::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  auto session = std::make_unique<Session>();
  Session* s = session.get();
  s->conn = std::move(conn);
  sessions_.push_back(std::move(session));
  s->conn->set_receive_handler(
      [this, s](std::span<const std::byte> data) { on_receive(s, data); });
  s->conn->set_close_handler([this, s] { mark_dead(s); });
}

void FedParent::mark_dead(Session* s) {
  if (s->dead) return;
  s->dead = true;
  auto zit = zones_.find(s->zone);
  if (zit != zones_.end() && zit->second.session == s) {
    zit->second.session = nullptr;
  }
  if (!s->zone.empty()) {
    log_.append(sim_.now(), "session closed zone=" + s->zone);
  }
  // Defer destruction: this may run inside the connection's own callback.
  if (!sweep_scheduled_) {
    sweep_scheduled_ = true;
    sim_.schedule_in(sim::Duration::ns(0), [this] { sweep_dead(); });
  }
}

void FedParent::sweep_dead() {
  sweep_scheduled_ = false;
  std::erase_if(sessions_, [](const std::unique_ptr<Session>& s) {
    return s->dead;
  });
}

void FedParent::on_receive(Session* s, std::span<const std::byte> data) {
  if (s->dead) return;
  s->parser.feed(data);
  try {
    while (auto m = s->parser.next()) {
      on_message(s, *m);
      if (s->dead) return;  // a handler may have killed the session
    }
  } catch (const WireError& e) {
    protocol_error(s, e.what());
  }
}

void FedParent::on_message(Session* s, const Message& m) {
  if (const auto* hello = std::get_if<HelloMsg>(&m)) {
    handle_hello(s, *hello);
    return;
  }
  // Every other message requires a bound zone.
  ZoneState* zone = session_zone(s);
  if (zone == nullptr) {
    protocol_error(s, "message before Hello");
    return;
  }
  zone->last_heard = sim_.now();
  if (const auto* decl = std::get_if<SeriesDeclMsg>(&m)) {
    handle_decl(s, *decl);
  } else if (const auto* page = std::get_if<PageMsg>(&m)) {
    handle_page(s, *page);
  } else if (const auto* delta = std::get_if<DeltaMsg>(&m)) {
    handle_delta(s, *delta);
  } else if (const auto* gap = std::get_if<GapMsg>(&m)) {
    handle_gap(s, *gap);
  } else if (std::get_if<HeartbeatMsg>(&m) != nullptr) {
    ++stats_.heartbeats;
  } else {
    protocol_error(s, "unexpected message from child");
  }
}

void FedParent::handle_hello(Session* s, const HelloMsg& m) {
  if (m.zone.empty()) {
    protocol_error(s, "empty zone in Hello");
    return;
  }
  auto [zit, inserted] = zones_.try_emplace(m.zone);
  ZoneState& zone = zit->second;
  if (!inserted) ++stats_.resumes;
  if (zone.session != nullptr && zone.session != s) {
    // A reconnecting child supersedes its old (half-dead) session.
    Session* old = zone.session;
    zone.session = nullptr;
    old->conn->set_close_handler(nullptr);
    old->conn->abort();
    mark_dead(old);
  }
  zone.session = s;
  zone.incarnation = m.incarnation;
  zone.last_heard = sim_.now();
  s->zone = m.zone;
  ++stats_.sessions;

  HelloAckMsg ack;
  ack.incarnation = m.incarnation;
  ack.watermarks.reserve(zone.watermarks.size());
  for (const auto& [series, w] : zone.watermarks) {
    ack.watermarks.push_back(SeriesWatermark{series, w});
  }
  log_.append(sim_.now(), "hello zone=" + m.zone + " incarnation=" +
                              std::to_string(m.incarnation) + " watermarks=" +
                              std::to_string(ack.watermarks.size()));
  send_to(s, ack);
}

void FedParent::handle_decl(Session* s, const SeriesDeclMsg& m) {
  ZoneState& zone = zones_[s->zone];
  if (m.endpoints.size() < 2 || m.metric >= core::kMetricCount) {
    protocol_error(s, "malformed series declaration");
    return;
  }
  std::vector<core::ProcessEndpoint> endpoints;
  endpoints.reserve(m.endpoints.size());
  for (const WireEndpoint& e : m.endpoints) {
    endpoints.push_back(
        core::ProcessEndpoint{e.process, net::IpAddr(e.ip), e.port});
  }
  SeriesBinding binding;
  binding.id = db_.id_of(core::Path(std::move(endpoints)));
  binding.metric = static_cast<core::Metric>(m.metric);
  const bool fresh = zone.series.emplace(m.series, binding).second;
  if (fresh) ++stats_.series_declared;
}

void FedParent::handle_page(Session* s, const PageMsg& m) {
  ZoneState& zone = zones_[s->zone];
  auto bit = zone.series.find(m.series);
  if (bit == zone.series.end()) {
    protocol_error(s, "page for undeclared series");
    return;
  }
  if (page_hook_) page_hook_(s->zone, m);
  std::uint64_t& w = zone.watermarks[m.series];
  if (m.page_seq <= w) {
    ++stats_.duplicates_skipped;
    log_.append(sim_.now(), "dup zone=" + s->zone + " series=" +
                                std::to_string(m.series) + " seq=" +
                                std::to_string(m.page_seq));
  } else {
    if (m.page_seq > w + 1) {
      // Pages vanished without a GapMsg (a gap report lost with a dying
      // session). Count the hole; the child's conservation stats surface
      // the mismatch in tests.
      stats_.implicit_gap_pages += m.page_seq - 1 - w;
      log_.append(sim_.now(), "implicit gap zone=" + s->zone + " series=" +
                                  std::to_string(m.series) + " seqs=[" +
                                  std::to_string(w + 1) + "," +
                                  std::to_string(m.page_seq - 1) + "]");
    }
    db_.merge_points(bit->second.id, bit->second.metric, m.points.data(),
                     m.points.size());
    w = m.page_seq;
    ++stats_.pages_merged;
    stats_.points_merged += m.points.size();
    log_.append(sim_.now(), "merge zone=" + s->zone + " series=" +
                                std::to_string(m.series) + " seq=" +
                                std::to_string(m.page_seq) + " points=" +
                                std::to_string(m.points.size()));
  }
  send_to(s, AckMsg{m.series, w});
}

void FedParent::handle_delta(Session* s, const DeltaMsg& m) {
  ZoneState& zone = zones_[s->zone];
  auto bit = zone.series.find(m.series);
  if (bit == zone.series.end()) {
    protocol_error(s, "delta for undeclared series");
    return;
  }
  core::MetricValue value;
  value.value = m.value;
  value.valid = m.valid;
  value.measured_at = sim::TimePoint::from_nanos(m.at_ns);
  db_.record_current(bit->second.id, bit->second.metric, value);
  ++stats_.deltas_applied;
}

void FedParent::handle_gap(Session* s, const GapMsg& m) {
  ZoneState& zone = zones_[s->zone];
  ++stats_.gap_reports;
  std::uint64_t& w = zone.watermarks[m.series];
  if (m.to_seq <= w) {
    // Already covered: either a re-reported gap or a shed page that was in
    // flight and got merged anyway. Skipping keeps every point counted
    // exactly once (as merged, there).
    log_.append(sim_.now(), "gap skipped zone=" + s->zone + " series=" +
                                std::to_string(m.series) + " seqs=[" +
                                std::to_string(m.from_seq) + "," +
                                std::to_string(m.to_seq) + "]");
  } else {
    if (m.from_seq > w + 1) stats_.implicit_gap_pages += m.from_seq - 1 - w;
    ++stats_.gaps_applied;
    stats_.points_lost += m.points;
    zone.points_lost += m.points;
    w = m.to_seq;
    log_.append(sim_.now(), "gap zone=" + s->zone + " series=" +
                                std::to_string(m.series) + " seqs=[" +
                                std::to_string(m.from_seq) + "," +
                                std::to_string(m.to_seq) + "] points=" +
                                std::to_string(m.points));
  }
  send_to(s, AckMsg{m.series, w});
}

FedParent::ZoneState* FedParent::session_zone(Session* s) {
  if (s->zone.empty()) return nullptr;
  auto it = zones_.find(s->zone);
  return it == zones_.end() ? nullptr : &it->second;
}

void FedParent::protocol_error(Session* s, const std::string& why) {
  ++stats_.protocol_errors;
  log_.append(sim_.now(), "protocol error" +
                              (s->zone.empty() ? std::string()
                                               : " zone=" + s->zone) +
                              ": " + why);
  s->conn->set_close_handler(nullptr);
  s->conn->abort();
  mark_dead(s);
}

void FedParent::send_to(Session* s, const Message& m) {
  const std::vector<std::byte> frame = encode(m);
  s->conn->send(std::span<const std::byte>(frame.data(), frame.size()));
  if (std::get_if<AckMsg>(&m) != nullptr) ++stats_.acks_sent;
}

bool FedParent::zone_known(const std::string& zone) const {
  return zones_.count(zone) != 0;
}

std::optional<sim::Duration> FedParent::zone_silence(const std::string& zone,
                                                     sim::TimePoint now) const {
  auto it = zones_.find(zone);
  if (it == zones_.end()) return std::nullopt;
  return now - it->second.last_heard;
}

bool FedParent::zone_stale(const std::string& zone, sim::TimePoint now) const {
  auto it = zones_.find(zone);
  if (it == zones_.end()) return true;  // never heard of it: maximally stale
  if (it->second.session == nullptr) return true;
  return now - it->second.last_heard > config_.stale_after;
}

std::optional<sim::Duration> FedParent::zone_senescence(
    const std::string& zone, core::PathId id, core::Metric metric,
    sim::TimePoint now) const {
  const auto local = db_.senescence(id, metric, now);
  const auto silence = zone_silence(zone, now);
  if (!zone_stale(zone, now)) return local;
  if (!local) return silence;
  if (!silence) return local;
  return std::max(*local, *silence);
}

std::optional<core::Measurement> FedParent::zone_current(
    const std::string& zone, core::PathId id, core::Metric metric,
    sim::TimePoint now, sim::Duration max_age) const {
  if (zone_stale(zone, now)) return std::nullopt;
  return db_.current(id, metric, now, max_age);
}

std::vector<std::string> FedParent::zones() const {
  std::vector<std::string> names;
  names.reserve(zones_.size());
  for (const auto& [name, zone] : zones_) names.push_back(name);
  return names;
}

std::uint64_t FedParent::zone_points_lost(const std::string& zone) const {
  auto it = zones_.find(zone);
  return it == zones_.end() ? 0 : it->second.points_lost;
}

void FedParent::attach_observability(obs::Registry& registry,
                                     const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  registry.gauge_fn(prefix + ".sessions", [this] {
    return static_cast<double>(stats_.sessions);
  });
  registry.gauge_fn(prefix + ".resumes", [this] {
    return static_cast<double>(stats_.resumes);
  });
  registry.gauge_fn(prefix + ".series_declared", [this] {
    return static_cast<double>(stats_.series_declared);
  });
  registry.gauge_fn(prefix + ".pages_merged", [this] {
    return static_cast<double>(stats_.pages_merged);
  });
  registry.gauge_fn(prefix + ".points_merged", [this] {
    return static_cast<double>(stats_.points_merged);
  });
  registry.gauge_fn(prefix + ".duplicates_skipped", [this] {
    return static_cast<double>(stats_.duplicates_skipped);
  });
  registry.gauge_fn(prefix + ".deltas_applied", [this] {
    return static_cast<double>(stats_.deltas_applied);
  });
  registry.gauge_fn(prefix + ".points_lost", [this] {
    return static_cast<double>(stats_.points_lost);
  });
  registry.gauge_fn(prefix + ".protocol_errors", [this] {
    return static_cast<double>(stats_.protocol_errors);
  });
  registry.gauge_fn(prefix + ".live_sessions", [this] {
    return static_cast<double>(sessions_.size());
  });
}

void FedParent::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::fed
