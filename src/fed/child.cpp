#include "fed/child.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/backoff.hpp"

namespace netmon::fed {

namespace {

// FNV-1a over the zone name: the stable identity half of the backoff jitter
// key (the attempt number is the varying half).
std::uint64_t zone_key(const std::string& zone) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : zone) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FedChild::FedChild(net::Host& host, core::MeasurementDatabase& db,
                   FedChildConfig config)
    : sim_(host.simulator()), host_(host), db_(db), config_(std::move(config)) {}

FedChild::~FedChild() { stop(); }

void FedChild::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  db_.tiered().set_seal_hook(
      [this](std::uint32_t series, std::size_t tier,
             const core::TierPoint* points, std::size_t n) {
        on_seal(series, tier, points, n);
      });
  db_.set_record_hook([this](core::PathId id, core::Metric metric,
                             const core::MetricValue& value) {
    on_record(id, metric, value);
  });
  log_.append(sim_.now(), "child " + config_.zone + " start");
  connect();
}

void FedChild::stop() {
  if (!started_) return;
  started_ = false;
  running_ = false;
  session_up_ = false;
  db_.tiered().set_seal_hook(nullptr);
  db_.set_record_hook(nullptr);
  retry_timer_.cancel();
  heartbeat_timer_.cancel();
  if (conn_) {
    conn_->set_close_handler(nullptr);
    conn_->set_receive_handler(nullptr);
    conn_->abort();
    conn_.reset();
  }
  detach_observability();
}

void FedChild::crash() {
  ++stats_.crashes;
  running_ = false;
  session_up_ = false;
  retry_timer_.cancel();
  heartbeat_timer_.cancel();
  if (conn_) {
    // A crashed process sends nothing; just drop our end. The RST of
    // abort() dies on the (also crashed) host's down interfaces.
    conn_->set_close_handler(nullptr);
    conn_->set_receive_handler(nullptr);
    conn_->abort();
    conn_.reset();
  }
  parser_.reset();
  declared_.clear();
  last_delta_ns_.clear();
  in_flight_ = 0;
  for (SpooledPage& p : spool_) p.sent = false;
  for (auto& [series, gaps] : pending_gaps_) {
    for (PendingGap& g : gaps) g.sent = false;
  }
  attempt_ = 0;
  log_.append(sim_.now(), "child " + config_.zone + " crash");
}

void FedChild::restart() {
  if (running_ || !started_) return;
  ++incarnation_;
  ++stats_.restarts;
  running_ = true;
  log_.append(sim_.now(), "child " + config_.zone + " restart incarnation=" +
                              std::to_string(incarnation_));
  connect();
}

void FedChild::on_seal(std::uint32_t series, std::size_t tier,
                       const core::TierPoint* points, std::size_t n) {
  if (tier != 0 || n == 0) return;  // only raw pages travel; rollups are local
  const std::uint64_t seq = ++next_seq_[series];
  ++stats_.pages_spooled;
  stats_.points_spooled += n;
  while (spool_.size() >= config_.spool_max_pages) {
    // Shed the oldest page not currently in flight (preserves per-series
    // seq ordering of what the parent will observe); only a spool smaller
    // than the send window can force an in-flight page out.
    auto victim = std::find_if(spool_.begin(), spool_.end(),
                               [](const SpooledPage& p) { return !p.sent; });
    if (victim == spool_.end()) victim = spool_.begin();
    if (victim->sent && in_flight_ > 0) --in_flight_;
    ++stats_.pages_shed;
    stats_.points_shed += victim->points.size();
    pending_gaps_[victim->series].push_back(
        PendingGap{victim->page_seq, victim->page_seq, victim->points.size(),
                   false});
    log_.append(sim_.now(), "shed series=" + std::to_string(victim->series) +
                                " seq=" + std::to_string(victim->page_seq) +
                                " points=" +
                                std::to_string(victim->points.size()));
    spool_.erase(victim);
  }
  spool_.push_back(SpooledPage{
      series, seq, false, false,
      std::vector<core::TierPoint>(points, points + n)});
  log_.append(sim_.now(), "spool series=" + std::to_string(series) + " seq=" +
                              std::to_string(seq) + " points=" +
                              std::to_string(n));
  if (session_up_) pump();
}

void FedChild::on_record(core::PathId id, core::Metric metric,
                         const core::MetricValue& value) {
  if (!session_up_) {
    ++stats_.deltas_suppressed;
    return;
  }
  const std::uint32_t series =
      static_cast<std::uint32_t>(db_.series_slot(id, metric));
  const std::int64_t at_ns = value.measured_at.nanos();
  if (config_.delta_min_gap.nanos() > 0) {
    auto it = last_delta_ns_.find(series);
    if (it != last_delta_ns_.end() &&
        at_ns - it->second < config_.delta_min_gap.nanos()) {
      ++stats_.deltas_suppressed;
      return;
    }
  }
  declare_series(series);
  send_message(DeltaMsg{series, at_ns, value.value, value.valid});
  last_delta_ns_[series] = at_ns;
  ++stats_.deltas_sent;
}

void FedChild::connect() {
  if (!running_ || conn_) return;
  ++stats_.connects;
  log_.append(sim_.now(), "connect attempt=" + std::to_string(attempt_ + 1));
  conn_ = host_.tcp().connect(config_.parent_ip, config_.parent_port);
  conn_->set_traffic_class(net::TrafficClass::kMonitoring);
  conn_->set_established_handler([this] {
    parser_.reset();
    send_message(HelloMsg{config_.zone, incarnation_, 1});
  });
  conn_->set_receive_handler(
      [this](std::span<const std::byte> data) { on_receive(data); });
  conn_->set_close_handler([this] { session_lost("connection closed"); });
}

void FedChild::schedule_reconnect() {
  ++attempt_;
  const sim::Duration delay = util::jittered_backoff(
      config_.retry_base, config_.retry_max, attempt_,
      zone_key(config_.zone) ^ static_cast<std::uint64_t>(attempt_));
  log_.append(sim_.now(), "backoff attempt=" + std::to_string(attempt_) +
                              " delay=" + delay.to_string());
  retry_timer_ = sim_.schedule_in(delay, [this] {
    conn_.reset();  // safe here: not inside a connection callback
    connect();
  });
}

void FedChild::session_lost(const char* why) {
  if (!running_) return;
  if (!session_up_) {
    ++stats_.connect_failures;
  }
  session_up_ = false;
  heartbeat_timer_.cancel();
  parser_.reset();
  declared_.clear();
  in_flight_ = 0;
  for (SpooledPage& p : spool_) p.sent = false;
  for (auto& [series, gaps] : pending_gaps_) {
    for (PendingGap& g : gaps) g.sent = false;
  }
  log_.append(sim_.now(), std::string("session lost: ") + why);
  schedule_reconnect();
}

void FedChild::on_session_up(const HelloAckMsg& ack) {
  if (ack.incarnation != incarnation_) return;  // stale ack of a former life
  attempt_ = 0;
  session_up_ = true;
  ++stats_.sessions;
  last_ack_progress_ = sim_.now();
  for (const SeriesWatermark& w : ack.watermarks) {
    std::uint64_t& a = acked_[w.series];
    a = std::max(a, w.page_seq);
  }
  // Prune to the parent's watermarks: everything at or below is durably
  // merged (acked in a previous session, possibly after we crashed).
  std::size_t pruned = 0;
  std::erase_if(spool_, [&](const SpooledPage& p) {
    auto it = acked_.find(p.series);
    const bool acked = it != acked_.end() && p.page_seq <= it->second;
    if (acked) {
      ++pruned;
      ++stats_.pages_acked;
    }
    return acked;
  });
  for (auto& [series, gaps] : pending_gaps_) {
    auto it = acked_.find(series);
    if (it == acked_.end()) continue;
    std::erase_if(gaps, [&](const PendingGap& g) {
      return g.to_seq <= it->second;
    });
  }
  log_.append(sim_.now(),
              "session up incarnation=" + std::to_string(incarnation_) +
                  " pruned=" + std::to_string(pruned) +
                  " spool=" + std::to_string(spool_.size()));
  heartbeat_timer_ = sim_.schedule_periodic(config_.heartbeat_period,
                                            [this] { heartbeat_tick(); });
  pump();
}

void FedChild::on_receive(std::span<const std::byte> data) {
  parser_.feed(data);
  try {
    while (auto m = parser_.next()) {
      if (const auto* ack = std::get_if<HelloAckMsg>(&*m)) {
        on_session_up(*ack);
      } else if (const auto* ack = std::get_if<AckMsg>(&*m)) {
        on_ack(*ack);
      }
      // Anything else from the parent is ignored (forward compatibility).
    }
  } catch (const WireError& e) {
    log_.append(sim_.now(), std::string("wire error: ") + e.what());
    parser_.reset();
    if (conn_) conn_->abort();  // close handler drives the reconnect
  }
}

void FedChild::on_ack(const AckMsg& ack) {
  std::uint64_t& a = acked_[ack.series];
  a = std::max(a, ack.page_seq);
  last_ack_progress_ = sim_.now();
  std::erase_if(spool_, [&](const SpooledPage& p) {
    if (p.series != ack.series || p.page_seq > a) return false;
    if (p.sent && in_flight_ > 0) --in_flight_;
    ++stats_.pages_acked;
    return true;
  });
  auto git = pending_gaps_.find(ack.series);
  if (git != pending_gaps_.end()) {
    std::erase_if(git->second,
                  [&](const PendingGap& g) { return g.to_seq <= a; });
  }
  pump();
}

void FedChild::declare_series(std::uint32_t series) {
  if (declared_.count(series) != 0) return;
  const core::PathId id = db_.slot_path(series);
  const core::Path& path = db_.path_of(id);
  SeriesDeclMsg decl;
  decl.series = series;
  decl.metric = static_cast<std::uint8_t>(db_.slot_metric(series));
  decl.endpoints.reserve(path.endpoints().size());
  for (const core::ProcessEndpoint& e : path.endpoints()) {
    decl.endpoints.push_back(WireEndpoint{e.process, e.host.raw(), e.port});
  }
  send_message(decl);
  declared_.insert(series);
}

void FedChild::pump() {
  if (!session_up_) return;
  // Per-series walk in seq order over spooled pages and pending gaps, so
  // the parent always observes each series' sequence contiguously: a gap
  // report never overtakes the pages sealed before it.
  std::map<std::uint32_t, std::vector<SpooledPage*>> by_series;
  for (SpooledPage& p : spool_) by_series[p.series].push_back(&p);
  for (auto& [series, gaps] : pending_gaps_) {
    if (!gaps.empty()) by_series.try_emplace(series);
  }
  constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();
  for (auto& [series, pages] : by_series) {
    std::vector<PendingGap>* gaps = nullptr;
    if (auto git = pending_gaps_.find(series); git != pending_gaps_.end()) {
      gaps = &git->second;
    }
    std::size_t gi = 0;
    std::size_t pi = 0;
    for (;;) {
      const std::uint64_t gseq =
          (gaps != nullptr && gi < gaps->size()) ? (*gaps)[gi].from_seq : kNone;
      const std::uint64_t pseq = pi < pages.size() ? pages[pi]->page_seq : kNone;
      if (gseq == kNone && pseq == kNone) break;
      if (gseq < pseq) {
        PendingGap& g = (*gaps)[gi++];
        if (g.sent) continue;
        declare_series(series);
        send_message(GapMsg{series, g.from_seq, g.to_seq, g.points});
        g.sent = true;
        ++stats_.gap_reports;
        log_.append(sim_.now(), "gap series=" + std::to_string(series) +
                                    " seqs=[" + std::to_string(g.from_seq) +
                                    "," + std::to_string(g.to_seq) +
                                    "] points=" + std::to_string(g.points));
      } else {
        SpooledPage* p = pages[pi++];
        if (p->sent) continue;
        if (in_flight_ >= config_.window_pages) return;  // window full
        declare_series(series);
        send_message(PageMsg{series, p->page_seq, 0, p->points});
        p->sent = true;
        if (p->ever_sent) ++stats_.pages_resent;
        p->ever_sent = true;
        ++stats_.pages_sent;
        ++in_flight_;
      }
    }
  }
}

void FedChild::heartbeat_tick() {
  if (!session_up_) return;
  if (in_flight_ > 0 &&
      sim_.now() - last_ack_progress_ > config_.ack_timeout) {
    log_.append(sim_.now(), "ack timeout, aborting session");
    if (conn_) conn_->abort();  // close handler drives the reconnect
    return;
  }
  send_message(HeartbeatMsg{sim_.now().nanos()});
}

void FedChild::send_message(const Message& m) {
  const std::vector<std::byte> frame = encode(m);
  conn_->send(std::span<const std::byte>(frame.data(), frame.size()));
}

std::uint64_t FedChild::watermark_lag_pages() const {
  // Pages sealed but not yet known-merged by the parent (shed ones
  // included until their gap is acknowledged past).
  std::uint64_t lag = 0;
  for (const auto& [series, next] : next_seq_) {
    auto it = acked_.find(series);
    const std::uint64_t acked = it == acked_.end() ? 0 : it->second;
    lag += next - std::min(next, acked);
  }
  return lag;
}

void FedChild::attach_observability(obs::Registry& registry,
                                    const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  registry.gauge_fn(prefix + ".spool.pages",
                    [this] { return static_cast<double>(spool_.size()); });
  registry.gauge_fn(prefix + ".spool.points", [this] {
    std::uint64_t points = 0;
    for (const SpooledPage& p : spool_) points += p.points.size();
    return static_cast<double>(points);
  });
  registry.gauge_fn(prefix + ".watermark_lag_pages", [this] {
    return static_cast<double>(watermark_lag_pages());
  });
  registry.gauge_fn(prefix + ".session_up",
                    [this] { return session_up_ ? 1.0 : 0.0; });
  registry.gauge_fn(prefix + ".incarnation", [this] {
    return static_cast<double>(incarnation_);
  });
  registry.gauge_fn(prefix + ".pages_spooled", [this] {
    return static_cast<double>(stats_.pages_spooled);
  });
  registry.gauge_fn(prefix + ".pages_shed", [this] {
    return static_cast<double>(stats_.pages_shed);
  });
  registry.gauge_fn(prefix + ".pages_sent", [this] {
    return static_cast<double>(stats_.pages_sent);
  });
  registry.gauge_fn(prefix + ".pages_acked", [this] {
    return static_cast<double>(stats_.pages_acked);
  });
  registry.gauge_fn(prefix + ".deltas_sent", [this] {
    return static_cast<double>(stats_.deltas_sent);
  });
  registry.gauge_fn(prefix + ".gap_reports", [this] {
    return static_cast<double>(stats_.gap_reports);
  });
  registry.gauge_fn(prefix + ".sessions", [this] {
    return static_cast<double>(stats_.sessions);
  });
}

void FedChild::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::fed
