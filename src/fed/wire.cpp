#include "fed/wire.hpp"

#include <array>
#include <bit>

namespace netmon::fed {

namespace {

constexpr std::byte kMagic0{0xF5};
constexpr std::byte kMagic1{0xED};
constexpr std::size_t kHeaderBytes = 2 + 1 + 4;  // magic, type, payload_len
constexpr std::size_t kMaxPayload = 1u << 20;    // sanity cap, not a limit hit
constexpr std::size_t kMaxString = 4096;
constexpr std::size_t kMaxListElems = 1u << 16;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kSeriesDecl = 3,
  kPage = 4,
  kDelta = 5,
  kAck = 6,
  kGap = 7,
  kHeartbeat = 8,
};

// --- primitive writers (little-endian, LEB128 varints) ---

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(out, static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(out, static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::vector<std::byte>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

void put_f64(std::vector<std::byte>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    put_u8(out, static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void put_string(std::vector<std::byte>& out, const std::string& s) {
  if (s.size() > kMaxString) throw WireError("fed: string too long to encode");
  put_varint(out, s.size());
  for (char c : s) out.push_back(static_cast<std::byte>(c));
}

// --- bounds-checked payload reader ---

struct Reader {
  const std::byte* p;
  const std::byte* end;

  std::uint8_t u8() {
    if (p == end) throw WireError("fed: payload underrun");
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint16_t u16() {
    std::uint16_t v = u8();
    return static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw WireError("fed: varint too long");
  }
  std::int64_t svarint() { return unzigzag(varint()); }
  double f64() {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return std::bit_cast<double>(bits);
  }
  std::string string() {
    const std::uint64_t n = varint();
    if (n > kMaxString) throw WireError("fed: string too long");
    if (static_cast<std::size_t>(end - p) < n) {
      throw WireError("fed: payload underrun");
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
  std::uint64_t list_len() {
    const std::uint64_t n = varint();
    if (n > kMaxListElems) throw WireError("fed: list too long");
    return n;
  }
  void done() const {
    if (p != end) throw WireError("fed: trailing bytes in payload");
  }
};

// --- message payload codecs ---

struct PayloadEncoder {
  std::vector<std::byte>& out;

  MsgType operator()(const HelloMsg& m) {
    put_string(out, m.zone);
    put_varint(out, m.incarnation);
    put_u16(out, m.version);
    return MsgType::kHello;
  }
  MsgType operator()(const HelloAckMsg& m) {
    put_varint(out, m.incarnation);
    put_varint(out, m.watermarks.size());
    for (const SeriesWatermark& w : m.watermarks) {
      put_varint(out, w.series);
      put_varint(out, w.page_seq);
    }
    return MsgType::kHelloAck;
  }
  MsgType operator()(const SeriesDeclMsg& m) {
    put_varint(out, m.series);
    put_u8(out, m.metric);
    put_varint(out, m.endpoints.size());
    for (const WireEndpoint& e : m.endpoints) {
      put_string(out, e.process);
      put_u32(out, e.ip);
      put_u16(out, e.port);
    }
    return MsgType::kSeriesDecl;
  }
  MsgType operator()(const PageMsg& m) {
    put_varint(out, m.series);
    put_varint(out, m.page_seq);
    put_u8(out, m.tier);
    put_varint(out, m.points.size());
    std::int64_t prev_last = 0;
    for (const core::TierPoint& pt : m.points) {
      put_svarint(out, pt.first_ns - prev_last);
      put_svarint(out, pt.last_ns - pt.first_ns);
      put_f64(out, pt.min);
      put_f64(out, pt.max);
      put_f64(out, pt.sum);
      put_varint(out, pt.count);
      put_varint(out, pt.valid_count);
      prev_last = pt.last_ns;
    }
    return MsgType::kPage;
  }
  MsgType operator()(const DeltaMsg& m) {
    put_varint(out, m.series);
    put_svarint(out, m.at_ns);
    put_f64(out, m.value);
    put_u8(out, m.valid ? 1 : 0);
    return MsgType::kDelta;
  }
  MsgType operator()(const AckMsg& m) {
    put_varint(out, m.series);
    put_varint(out, m.page_seq);
    return MsgType::kAck;
  }
  MsgType operator()(const GapMsg& m) {
    put_varint(out, m.series);
    put_varint(out, m.from_seq);
    put_varint(out, m.to_seq);
    put_varint(out, m.points);
    return MsgType::kGap;
  }
  MsgType operator()(const HeartbeatMsg& m) {
    put_svarint(out, m.at_ns);
    return MsgType::kHeartbeat;
  }
};

std::uint32_t narrow_u32(std::uint64_t v, const char* what) {
  if (v > 0xFFFFFFFFull) throw WireError(std::string("fed: ") + what);
  return static_cast<std::uint32_t>(v);
}

Message decode_payload(MsgType type, Reader r) {
  switch (type) {
    case MsgType::kHello: {
      HelloMsg m;
      m.zone = r.string();
      m.incarnation = r.varint();
      m.version = r.u16();
      r.done();
      return m;
    }
    case MsgType::kHelloAck: {
      HelloAckMsg m;
      m.incarnation = r.varint();
      const std::uint64_t n = r.list_len();
      m.watermarks.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        SeriesWatermark w;
        w.series = narrow_u32(r.varint(), "watermark series overflow");
        w.page_seq = r.varint();
        m.watermarks.push_back(w);
      }
      r.done();
      return m;
    }
    case MsgType::kSeriesDecl: {
      SeriesDeclMsg m;
      m.series = narrow_u32(r.varint(), "series overflow");
      m.metric = r.u8();
      const std::uint64_t n = r.list_len();
      m.endpoints.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        WireEndpoint e;
        e.process = r.string();
        e.ip = r.u32();
        e.port = r.u16();
        m.endpoints.push_back(std::move(e));
      }
      r.done();
      return m;
    }
    case MsgType::kPage: {
      PageMsg m;
      m.series = narrow_u32(r.varint(), "series overflow");
      m.page_seq = r.varint();
      m.tier = r.u8();
      const std::uint64_t n = r.list_len();
      m.points.reserve(n);
      std::int64_t prev_last = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        core::TierPoint pt;
        pt.first_ns = prev_last + r.svarint();
        pt.last_ns = pt.first_ns + r.svarint();
        pt.min = r.f64();
        pt.max = r.f64();
        pt.sum = r.f64();
        pt.count = narrow_u32(r.varint(), "point count overflow");
        pt.valid_count = narrow_u32(r.varint(), "point valid_count overflow");
        if (pt.valid_count > pt.count) {
          throw WireError("fed: point valid_count > count");
        }
        if (pt.last_ns < pt.first_ns) {
          throw WireError("fed: point time range inverted");
        }
        prev_last = pt.last_ns;
        m.points.push_back(pt);
      }
      r.done();
      return m;
    }
    case MsgType::kDelta: {
      DeltaMsg m;
      m.series = narrow_u32(r.varint(), "series overflow");
      m.at_ns = r.svarint();
      m.value = r.f64();
      const std::uint8_t valid = r.u8();
      if (valid > 1) throw WireError("fed: delta valid flag out of range");
      m.valid = valid != 0;
      r.done();
      return m;
    }
    case MsgType::kAck: {
      AckMsg m;
      m.series = narrow_u32(r.varint(), "series overflow");
      m.page_seq = r.varint();
      r.done();
      return m;
    }
    case MsgType::kGap: {
      GapMsg m;
      m.series = narrow_u32(r.varint(), "series overflow");
      m.from_seq = r.varint();
      m.to_seq = r.varint();
      m.points = r.varint();
      if (m.to_seq < m.from_seq) throw WireError("fed: gap range inverted");
      r.done();
      return m;
    }
    case MsgType::kHeartbeat: {
      HeartbeatMsg m;
      m.at_ns = r.svarint();
      r.done();
      return m;
    }
  }
  throw WireError("fed: unknown message type");
}

}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t n) {
  // Reflected IEEE 802.3 polynomial; table built on first use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<std::uint8_t>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::byte> encode(const Message& message) {
  std::vector<std::byte> payload;
  const MsgType type = std::visit(PayloadEncoder{payload}, message);
  if (payload.size() > kMaxPayload) throw WireError("fed: payload too large");

  std::vector<std::byte> frame;
  frame.reserve(kHeaderBytes + payload.size() + 4);
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  put_u8(frame, static_cast<std::uint8_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  // CRC over type + length + payload (everything after the magic).
  const std::uint32_t crc = crc32(frame.data() + 2, frame.size() - 2);
  put_u32(frame, crc);
  return frame;
}

void FrameParser::feed(std::span<const std::byte> data) {
  // Compact the consumed prefix before growing, so a long-lived connection
  // does not accrete every frame it ever parsed.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void FrameParser::reset() {
  buf_.clear();
  pos_ = 0;
}

std::optional<Message> FrameParser::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return std::nullopt;
  const std::byte* h = buf_.data() + pos_;
  if (h[0] != kMagic0 || h[1] != kMagic1) {
    throw WireError("fed: bad frame magic");
  }
  const std::uint8_t type = static_cast<std::uint8_t>(h[2]);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(h[3 + i]))
           << (8 * i);
  }
  if (len > kMaxPayload) throw WireError("fed: declared payload too large");
  const std::size_t total = kHeaderBytes + len + 4;
  if (avail < total) return std::nullopt;

  const std::uint32_t computed = crc32(h + 2, 1 + 4 + len);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(h[kHeaderBytes + len + i]))
              << (8 * i);
  }
  if (computed != stored) throw WireError("fed: frame CRC mismatch");

  Reader r{h + kHeaderBytes, h + kHeaderBytes + len};
  Message m = decode_payload(static_cast<MsgType>(type), r);
  pos_ += total;
  return m;
}

}  // namespace netmon::fed
