#pragma once

// Federation parent (DESIGN.md §14): the manager-side replication endpoint.
// It listens for zone monitors, merges their streamed pages into its own
// MeasurementDatabase's tiered store (idempotently: per-(zone, series)
// watermarks make replayed pages no-ops), applies current-value deltas to
// the ring/last-known fast path, accounts child-reported gaps as honest
// point loss, and keeps a liveness view that marks a silent zone stale
// instead of serving its last values as fresh.
//
// Watermark semantics. For each declared series the parent tracks W = the
// highest contiguously applied page sequence. A page with seq <= W is a
// duplicate from a replay — skipped and re-acked. seq == W+1 merges and
// advances W. A GapMsg covering [from, to] with to > W accounts its points
// as lost and advances W past the hole; one with to <= W duplicates a gap
// (or covers a page that slipped through before shedding) and is skipped,
// keeping merged-vs-lost accounting conservative: every spooled point is
// counted exactly once, as merged or as lost.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/measurement_db.hpp"
#include "fed/replication_log.hpp"
#include "fed/wire.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon::fed {

struct FedParentConfig {
  std::uint16_t port = 7171;
  // A zone with no traffic (pages, deltas, or heartbeats) for longer than
  // this reads as stale: zone_current() stops answering and
  // zone_senescence() is floored by the silence.
  sim::Duration stale_after = sim::Duration::sec(3);
};

class FedParent {
 public:
  FedParent(net::Host& host, core::MeasurementDatabase& db,
            FedParentConfig config);
  ~FedParent();
  FedParent(const FedParent&) = delete;
  FedParent& operator=(const FedParent&) = delete;

  // Start/stop listening. Idempotent.
  void start();
  void stop();

  // --- liveness / zone-aware reads ---
  bool zone_known(const std::string& zone) const;
  // Time since the zone was last heard from; nullopt for unknown zones.
  std::optional<sim::Duration> zone_silence(const std::string& zone,
                                            sim::TimePoint now) const;
  bool zone_stale(const std::string& zone, sim::TimePoint now) const;
  // Senescence of a replicated series as the parent must report it: the
  // local database age, floored by the zone's silence once the zone is
  // stale — a dead child cannot make its data look fresh.
  std::optional<sim::Duration> zone_senescence(const std::string& zone,
                                               core::PathId id,
                                               core::Metric metric,
                                               sim::TimePoint now) const;
  // Current value, refusing to answer from a stale zone.
  std::optional<core::Measurement> zone_current(const std::string& zone,
                                                core::PathId id,
                                                core::Metric metric,
                                                sim::TimePoint now,
                                                sim::Duration max_age) const;

  std::vector<std::string> zones() const;
  std::uint64_t zone_points_lost(const std::string& zone) const;

  struct Stats {
    std::uint64_t sessions = 0;  // Hellos accepted
    std::uint64_t resumes = 0;   // Hello for an already-known zone
    std::uint64_t series_declared = 0;
    std::uint64_t pages_merged = 0;
    std::uint64_t points_merged = 0;
    std::uint64_t duplicates_skipped = 0;  // replayed pages (zero re-merge)
    std::uint64_t deltas_applied = 0;
    std::uint64_t gap_reports = 0;  // GapMsg frames received
    std::uint64_t gaps_applied = 0;
    std::uint64_t points_lost = 0;  // from applied gaps — honest loss
    std::uint64_t implicit_gap_pages = 0;  // seq jumps with no GapMsg
    std::uint64_t heartbeats = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t protocol_errors = 0;
  };
  const Stats& stats() const { return stats_; }
  const ReplicationLog& log() const { return log_; }

  // Test instrumentation: observe each page just before it is merged (or
  // skipped); lets crash tests fire at exact protocol moments.
  using PageHook = std::function<void(const std::string& zone, const PageMsg&)>;
  void set_page_hook(PageHook hook) { page_hook_ = std::move(hook); }

  // "<prefix>.*" gauges mirroring Stats plus per-zone staleness.
  void attach_observability(obs::Registry& registry,
                            const std::string& prefix = "fed.parent");
  void detach_observability();

 private:
  struct Session {
    std::shared_ptr<net::TcpConnection> conn;
    FrameParser parser;
    std::string zone;  // empty until Hello
    bool dead = false;
  };
  struct SeriesBinding {
    core::PathId id = core::kInvalidPathId;
    core::Metric metric = core::Metric::kThroughput;
  };
  struct ZoneState {
    std::uint64_t incarnation = 0;
    sim::TimePoint last_heard{};
    Session* session = nullptr;
    std::map<std::uint32_t, SeriesBinding> series;
    std::map<std::uint32_t, std::uint64_t> watermarks;
    std::uint64_t points_lost = 0;
  };

  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void on_receive(Session* s, std::span<const std::byte> data);
  void on_message(Session* s, const Message& m);
  void handle_hello(Session* s, const HelloMsg& m);
  void handle_decl(Session* s, const SeriesDeclMsg& m);
  void handle_page(Session* s, const PageMsg& m);
  void handle_delta(Session* s, const DeltaMsg& m);
  void handle_gap(Session* s, const GapMsg& m);
  ZoneState* session_zone(Session* s);
  void protocol_error(Session* s, const std::string& why);
  void mark_dead(Session* s);
  void sweep_dead();
  void send_to(Session* s, const Message& m);

  sim::Simulator& sim_;
  net::Host& host_;
  core::MeasurementDatabase& db_;
  FedParentConfig config_;
  bool listening_ = false;

  std::vector<std::unique_ptr<Session>> sessions_;
  bool sweep_scheduled_ = false;
  std::map<std::string, ZoneState> zones_;
  Stats stats_;
  ReplicationLog log_;
  PageHook page_hook_;

  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::fed
