#pragma once

// Federation child (DESIGN.md §14): the zone monitor's replication agent.
// It taps its MeasurementDatabase twice — a record hook streams current-value
// deltas for parent-side freshness, and the tiered store's seal hook copies
// every sealed tier-0 page into a bounded outbound spool — and drives one TCP
// session to the parent manager.
//
// Robustness model. The spool, the per-series page sequence counters, and
// the pending gap reports are the child's durable state: crash() wipes only
// the session (connection, parser, in-flight window) and restart() comes
// back under a new incarnation, re-negotiates via Hello/HelloAck watermarks,
// and replays exactly the spooled pages the parent has not acknowledged —
// acked data is never re-sent, unacked data is never lost while spooled.
// When the spool fills (parent slow, partitioned, or gone) the oldest sealed
// page is shed and recorded as a pending GapMsg: a truthful "pages [a,b]
// with N points are gone" the parent accounts instead of waiting for.
// Pending gaps are retained until an ack covers them, so a gap lost with a
// dying session is re-reported on resume. Reconnects use the shared
// deterministic jittered backoff (util/backoff.hpp).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/measurement_db.hpp"
#include "fed/replication_log.hpp"
#include "fed/wire.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon::fed {

struct FedChildConfig {
  std::string zone = "zone";
  net::IpAddr parent_ip{};
  std::uint16_t parent_port = 7171;
  // Spool bound, in sealed pages across all series. Full => shed oldest.
  std::size_t spool_max_pages = 512;
  // Max sent-but-unacked pages per session (application-level window; TCP's
  // own buffering is unbounded, this is the backpressure that matters).
  std::size_t window_pages = 32;
  // Reconnect backoff bounds (deterministically jittered per attempt).
  sim::Duration retry_base = sim::Duration::ms(200);
  sim::Duration retry_max = sim::Duration::sec(10);
  // Liveness beacon period while a session is up.
  sim::Duration heartbeat_period = sim::Duration::ms(500);
  // In-flight pages unacked for longer than this mean the parent is
  // unreachable mid-session (established TCP retransmits forever and never
  // reports failure): abort and re-enter backoff.
  sim::Duration ack_timeout = sim::Duration::sec(3);
  // Minimum spacing between streamed deltas per series; 0 streams every
  // recorded sample.
  sim::Duration delta_min_gap{};
};

class FedChild {
 public:
  FedChild(net::Host& host, core::MeasurementDatabase& db,
           FedChildConfig config);
  ~FedChild();
  FedChild(const FedChild&) = delete;
  FedChild& operator=(const FedChild&) = delete;

  // Installs the database hooks and starts connecting. Idempotent.
  void start();
  // Uninstalls hooks and tears the session down (test teardown).
  void stop();

  // Process-crash simulation: volatile session state is lost, durable state
  // (spool, sequence counters, pending gaps, incarnation) survives. The
  // caller pairs this with a fault-plan host crash; no reconnecting happens
  // until restart().
  void crash();
  // Come back from a crash under a new incarnation and re-negotiate.
  void restart();

  bool session_established() const { return session_up_; }
  std::size_t spool_pages() const { return spool_.size(); }

  struct Stats {
    std::uint64_t pages_spooled = 0;
    std::uint64_t points_spooled = 0;
    std::uint64_t pages_shed = 0;
    std::uint64_t points_shed = 0;
    std::uint64_t pages_sent = 0;    // PageMsg frames, replays included
    std::uint64_t pages_resent = 0;  // sent again in a later session
    std::uint64_t pages_acked = 0;
    std::uint64_t deltas_sent = 0;
    std::uint64_t deltas_suppressed = 0;  // no session or rate-limited
    std::uint64_t gap_reports = 0;        // GapMsg frames sent
    std::uint64_t connects = 0;           // connection attempts
    std::uint64_t connect_failures = 0;
    std::uint64_t sessions = 0;  // HelloAck received
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
  };
  const Stats& stats() const { return stats_; }
  const ReplicationLog& log() const { return log_; }
  std::uint64_t incarnation() const { return incarnation_; }

  // "<prefix>.{spool.pages,spool.points,watermark_lag_pages,...}" gauges
  // plus counters mirroring Stats into the registry (and thus the SelfMib).
  void attach_observability(obs::Registry& registry,
                            const std::string& prefix = "fed.child");
  void detach_observability();

 private:
  struct SpooledPage {
    std::uint32_t series = 0;
    std::uint64_t page_seq = 0;
    bool sent = false;       // in flight this session
    bool ever_sent = false;  // sent in any session (resend accounting)
    std::vector<core::TierPoint> points;
  };
  struct PendingGap {
    std::uint64_t from_seq = 0;
    std::uint64_t to_seq = 0;
    std::uint64_t points = 0;
    bool sent = false;  // reported this session (kept until acked past)
  };

  void on_seal(std::uint32_t series, std::size_t tier,
               const core::TierPoint* points, std::size_t n);
  void on_record(core::PathId id, core::Metric metric,
                 const core::MetricValue& value);
  void connect();
  void schedule_reconnect();
  void on_session_up(const HelloAckMsg& ack);
  void on_receive(std::span<const std::byte> data);
  void on_ack(const AckMsg& ack);
  void session_lost(const char* why);
  void declare_series(std::uint32_t series);
  void pump();  // send gaps + unsent pages up to the window
  void heartbeat_tick();
  void send_message(const Message& m);
  std::uint64_t watermark_lag_pages() const;

  sim::Simulator& sim_;
  net::Host& host_;
  core::MeasurementDatabase& db_;
  FedChildConfig config_;

  // --- durable (survives crash()) ---
  std::deque<SpooledPage> spool_;  // global seal order (= shed order)
  std::map<std::uint32_t, std::uint64_t> next_seq_;  // per-series seal count
  std::map<std::uint32_t, std::uint64_t> acked_;     // parent watermarks
  std::map<std::uint32_t, std::vector<PendingGap>> pending_gaps_;
  std::uint64_t incarnation_ = 1;
  Stats stats_;
  ReplicationLog log_;

  // --- volatile (lost on crash()) ---
  bool started_ = false;
  bool running_ = false;   // false between crash() and restart()
  bool session_up_ = false;
  std::shared_ptr<net::TcpConnection> conn_;
  FrameParser parser_;
  std::set<std::uint32_t> declared_;
  std::size_t in_flight_ = 0;
  sim::TimePoint last_ack_progress_{};
  std::map<std::uint32_t, std::int64_t> last_delta_ns_;
  int attempt_ = 0;
  sim::EventHandle retry_timer_;
  sim::EventHandle heartbeat_timer_;

  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::fed
