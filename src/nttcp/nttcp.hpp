#pragma once

// NTTCP-style active network analysis tool (after Irey/Harrison/Marlow's
// NSWC-DD tool, paper ref [1]): a source sends a burst of N messages of
// length L every P to a sink, which measures application-level end-to-end
// throughput and per-message one-way latency and reports the results back.
// Configured with the monitored application's own L and P it "mimics the
// behavior" of that application (paper §5.1.2.3) — the high-fidelity sensor.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "nttcp/clock_offset.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace netmon::nttcp {

constexpr std::uint16_t kNttcpPort = 5037;

enum class Protocol { kUdp, kTcp };

struct NttcpConfig {
  std::uint32_t message_length = 8192;          // L (bytes per message)
  sim::Duration inter_send = sim::Duration::ms(30);  // P
  std::uint32_t message_count = 32;             // N (burst length)
  Protocol protocol = Protocol::kUdp;
  std::uint16_t port = kNttcpPort;
  // One-way-latency clock handling: when true, run the in-band offset
  // exchange before the burst (intrusive); when false, trust the host
  // clocks (i.e. assume NTP keeps them synchronized).
  bool in_band_offset = false;
  ClockOffsetConfig offset;
  sim::Duration result_timeout = sim::Duration::sec(5);
  net::TrafficClass traffic_class = net::TrafficClass::kMonitoring;
};

struct NttcpResult {
  bool completed = false;  // result report received (probe-level liveness)
  std::uint32_t messages_sent = 0;
  std::uint32_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  sim::Duration receive_span{};   // sink: first-to-last message arrival
  double throughput_bps = 0.0;    // application-level goodput at the sink
  double loss_fraction = 0.0;
  // One-way latency, seconds, after offset correction (UDP mode only).
  util::SampleSet latency;
  sim::Duration offset_applied{};
  std::uint64_t offset_bytes_on_wire = 0;
  // Total wire bytes this probe injected (intrusiveness contribution).
  std::uint64_t probe_bytes_on_wire = 0;
};

// Wire messages exchanged by source and sink (UDP mode).
struct NttcpPacket : net::Payload {
  enum class Kind : std::uint8_t { kStart, kData, kEnd, kResult };
  Kind kind = Kind::kData;
  std::uint64_t burst_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t count = 0;
  std::uint32_t length = 0;
  sim::TimePoint sent_local;  // source clock at transmission
  // kResult fields:
  std::uint32_t received = 0;
  std::uint64_t bytes = 0;
  sim::Duration span{};
  std::vector<std::int64_t> latency_ns;  // raw (uncorrected) one-way samples
};

// Persistent measurement sink. In UDP mode it collects per-burst arrival
// statistics and answers END with a RESULT datagram; it also answers
// in-band clock-offset exchanges. In TCP mode it accepts connections and
// consumes the stream.
class NttcpSink {
 public:
  NttcpSink(net::Host& host, std::uint16_t port = kNttcpPort);

  net::Host& host() { return host_; }
  std::uint64_t bursts_completed() const { return bursts_completed_; }

 private:
  struct BurstState {
    std::uint32_t expected = 0;
    std::uint32_t received = 0;
    std::uint64_t bytes = 0;
    sim::TimePoint first_arrival;
    sim::TimePoint last_arrival;
    std::vector<std::int64_t> latency_ns;
  };

  void on_datagram(const net::Packet& packet);

  net::Host& host_;
  net::UdpSocket& socket_;
  std::unordered_map<std::uint64_t, BurstState> bursts_;
  std::vector<std::shared_ptr<net::TcpConnection>> tcp_conns_;
  std::uint64_t bursts_completed_ = 0;
};

// One measurement run from this host to a sink. Construct, then start().
// The callback fires exactly once (with completed=false on timeout).
class NttcpProbe {
 public:
  using Callback = std::function<void(const NttcpResult&)>;

  NttcpProbe(net::Host& host, net::IpAddr sink, NttcpConfig config,
             Callback done);
  ~NttcpProbe();
  NttcpProbe(const NttcpProbe&) = delete;
  NttcpProbe& operator=(const NttcpProbe&) = delete;

  void start();
  void cancel();

  // Wire footprint of one full burst of this configuration, in bits/s of
  // peak load — the paper's overhead formula L/P applied to wire sizes.
  static double peak_load_bps(const NttcpConfig& config);

 private:
  void begin_burst();
  void send_data();
  void send_end();
  void on_datagram(const net::Packet& packet);
  void finish(bool completed);
  void run_tcp();

  net::Host& host_;
  net::IpAddr sink_;
  NttcpConfig config_;
  Callback done_;
  net::UdpSocket* socket_ = nullptr;  // UDP mode
  std::shared_ptr<net::TcpConnection> connection_;  // TCP mode
  std::unique_ptr<ClockOffsetEstimator> offset_estimator_;
  std::uint64_t burst_id_;
  std::uint32_t next_seq_ = 0;
  int end_retries_left_ = 5;
  NttcpResult result_;
  sim::EventHandle send_timer_;
  sim::EventHandle end_timer_;
  sim::EventHandle timeout_timer_;
  sim::TimePoint tcp_start_{};
  bool finished_ = false;
};

}  // namespace netmon::nttcp
