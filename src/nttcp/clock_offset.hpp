#pragma once

// In-band clock-offset estimation: the mechanism NTTCP used before the
// HiPer-D team concluded (§5.1.3.2) that its overhead was "significantly
// intrusive compared to ... running a clock synchronization protocol".
// K request/reply exchanges are performed against the probe peer; the
// exchange with the smallest round trip provides the offset estimate.

#include <cstdint>
#include <functional>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "sim/simulator.hpp"

namespace netmon::nttcp {

struct ClockOffsetConfig {
  int exchanges = 16;
  std::uint32_t packet_bytes = 32;
  sim::Duration spacing = sim::Duration::ms(10);
  sim::Duration timeout = sim::Duration::ms(500);
};

struct ClockOffsetResult {
  bool ok = false;
  // Estimated (remote - local) clock offset.
  sim::Duration offset{};
  sim::Duration min_round_trip{};
  int replies = 0;
  std::uint64_t bytes_on_wire = 0;  // both directions, incl. headers
};

// Payload for the ping-pong exchange (also understood by NttcpSink).
struct OffsetExchange : net::Payload {
  std::uint32_t seq = 0;
  bool reply = false;
  sim::TimePoint t1;  // requester transmit (requester clock)
  sim::TimePoint t2;  // responder receive (responder clock)
  sim::TimePoint t3;  // responder transmit (responder clock)
};

class ClockOffsetEstimator {
 public:
  using Callback = std::function<void(const ClockOffsetResult&)>;

  ClockOffsetEstimator(net::Host& host, net::IpAddr peer, std::uint16_t port,
                       ClockOffsetConfig config, Callback done);
  void start();

 private:
  void send_next();
  void finish();
  void on_reply(const net::Packet& packet);

  net::Host& host_;
  net::IpAddr peer_;
  std::uint16_t port_;
  ClockOffsetConfig config_;
  Callback done_;
  net::UdpSocket& socket_;
  int sent_ = 0;
  ClockOffsetResult result_;
  bool have_best_ = false;
  sim::EventHandle timeout_;
};

// Installs an offset responder on an existing UDP handler path; used by
// NttcpSink. Standalone responder for tests:
class OffsetResponder {
 public:
  OffsetResponder(net::Host& host, std::uint16_t port);
  std::uint64_t replies_sent() const { return replies_sent_; }

 private:
  net::Host& host_;
  net::UdpSocket& socket_;
  std::uint64_t replies_sent_ = 0;
};

// Shared reply logic (host receives request `p` on `socket`).
void reply_to_offset_request(net::Host& host, net::UdpSocket& socket,
                             const net::Packet& p);

}  // namespace netmon::nttcp
