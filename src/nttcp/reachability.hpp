#pragma once

// Application-layer reachability probing (the accurate instrumentation
// point, paper §4.3): a UDP echo exchange with timeout and retries. The
// unsound media-layer alternative — sniffing for frames from the source
// host — is available through rmon::Probe::frames_seen_from and compared
// against this probe in EXP-H.

#include <cstdint>
#include <functional>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "sim/simulator.hpp"

namespace netmon::nttcp {

constexpr std::uint16_t kEchoPort = 5038;

struct EchoPayload : net::Payload {
  std::uint32_t seq = 0;
  bool reply = false;
};

struct ReachabilityResult {
  bool reachable = false;
  int attempts_used = 0;
  sim::Duration round_trip{};  // of the successful attempt
};

class EchoResponder {
 public:
  EchoResponder(net::Host& host, std::uint16_t port = kEchoPort);
  std::uint64_t echoes() const { return echoes_; }

 private:
  net::Host& host_;
  net::UdpSocket& socket_;
  std::uint64_t echoes_ = 0;
};

class ReachabilityProbe {
 public:
  struct Config {
    std::uint16_t port = kEchoPort;
    std::uint32_t payload_bytes = 32;
    sim::Duration timeout = sim::Duration::ms(500);
    int attempts = 3;
    net::TrafficClass traffic_class = net::TrafficClass::kMonitoring;
  };

  using Callback = std::function<void(const ReachabilityResult&)>;

  ReachabilityProbe(net::Host& host, net::IpAddr target, Config config,
                    Callback done);
  ReachabilityProbe(net::Host& host, net::IpAddr target, Callback done);
  ~ReachabilityProbe();
  ReachabilityProbe(const ReachabilityProbe&) = delete;
  ReachabilityProbe& operator=(const ReachabilityProbe&) = delete;

  void start();

 private:
  void attempt();
  void on_reply(const net::Packet& packet);
  void finish(bool reachable, sim::Duration rtt);

  net::Host& host_;
  net::IpAddr target_;
  Config config_;
  Callback done_;
  net::UdpSocket* socket_ = nullptr;
  int attempts_made_ = 0;
  std::uint32_t seq_ = 0;
  sim::TimePoint sent_at_{};
  sim::EventHandle timeout_;
  bool finished_ = false;
};

}  // namespace netmon::nttcp
