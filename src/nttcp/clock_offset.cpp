#include "nttcp/clock_offset.hpp"

#include <memory>

namespace netmon::nttcp {

void reply_to_offset_request(net::Host& host, net::UdpSocket& socket,
                             const net::Packet& p) {
  auto req = net::payload_as<OffsetExchange>(p);
  if (!req || req->reply) return;
  auto reply = std::make_shared<OffsetExchange>(*req);
  reply->reply = true;
  reply->t2 = host.clock().local_now();
  reply->t3 = host.clock().local_now();
  socket.send_to(p.src, p.src_port, p.payload_bytes, std::move(reply),
                 net::TrafficClass::kMonitoring);
}

OffsetResponder::OffsetResponder(net::Host& host, std::uint16_t port)
    : host_(host),
      socket_(host.udp().bind(port, [this](const net::Packet& p) {
        reply_to_offset_request(host_, socket_, p);
        ++replies_sent_;
      })) {}

ClockOffsetEstimator::ClockOffsetEstimator(net::Host& host, net::IpAddr peer,
                                           std::uint16_t port,
                                           ClockOffsetConfig config,
                                           Callback done)
    : host_(host),
      peer_(peer),
      port_(port),
      config_(config),
      done_(std::move(done)),
      socket_(host.udp().bind(
          0, [this](const net::Packet& p) { on_reply(p); })) {}

void ClockOffsetEstimator::start() {
  timeout_ = host_.simulator().schedule_in(
      config_.timeout +
          config_.spacing * static_cast<std::int64_t>(config_.exchanges),
      [this] { finish(); });
  send_next();
}

void ClockOffsetEstimator::send_next() {
  if (sent_ >= config_.exchanges) return;
  auto req = std::make_shared<OffsetExchange>();
  req->seq = static_cast<std::uint32_t>(++sent_);
  req->t1 = host_.clock().local_now();
  socket_.send_to(peer_, port_, config_.packet_bytes, std::move(req),
                  net::TrafficClass::kMonitoring);
  // Request + expected reply wire cost (headers included).
  result_.bytes_on_wire +=
      2ull * (config_.packet_bytes + 28 + net::Frame::kFrameOverheadBytes);
  if (sent_ < config_.exchanges) {
    host_.simulator().schedule_in(config_.spacing, [this] { send_next(); });
  }
}

void ClockOffsetEstimator::on_reply(const net::Packet& packet) {
  auto reply = net::payload_as<OffsetExchange>(packet);
  if (!reply || !reply->reply) return;
  const sim::TimePoint t4 = host_.clock().local_now();
  const std::int64_t rtt_ns =
      (t4 - reply->t1).nanos() - (reply->t3 - reply->t2).nanos();
  const std::int64_t offset_ns =
      ((reply->t2 - reply->t1).nanos() + (reply->t3 - t4).nanos()) / 2;
  ++result_.replies;
  if (!have_best_ || rtt_ns < result_.min_round_trip.nanos()) {
    have_best_ = true;
    result_.min_round_trip = sim::Duration::ns(rtt_ns);
    result_.offset = sim::Duration::ns(offset_ns);
  }
  if (result_.replies >= config_.exchanges) {
    timeout_.cancel();
    finish();
  }
}

void ClockOffsetEstimator::finish() {
  if (!done_) return;
  result_.ok = result_.replies > 0;
  auto done = std::move(done_);
  done_ = nullptr;
  done(result_);
}

}  // namespace netmon::nttcp
