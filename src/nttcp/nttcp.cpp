#include "nttcp/nttcp.hpp"

#include "util/logging.hpp"

namespace netmon::nttcp {

namespace {
// Wire cost of a UDP datagram carrying `payload` bytes.
std::uint64_t udp_wire_bytes(std::uint32_t payload) {
  return payload + 28 + net::Frame::kFrameOverheadBytes;
}
std::uint64_t next_burst_id() {
  static std::uint64_t counter = 0;
  return ++counter;
}
constexpr std::uint32_t kControlBytes = 32;   // START/END payloads
constexpr std::uint32_t kResultBaseBytes = 64;
}  // namespace

// ------------------------------------------------------------------ sink

NttcpSink::NttcpSink(net::Host& host, std::uint16_t port)
    : host_(host),
      socket_(host.udp().bind(
          port, [this](const net::Packet& p) { on_datagram(p); })) {
  // TCP mode: accept, consume the stream, let the peer-driven close clean up.
  host_.tcp().listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    tcp_conns_.push_back(conn);
    conn->set_receive_handler([](std::span<const std::byte>) {});
    conn->set_close_handler([this, weak = std::weak_ptr(conn)] {
      if (auto c = weak.lock()) {
        c->close();
        std::erase(tcp_conns_, c);
      }
    });
  });
}

void NttcpSink::on_datagram(const net::Packet& packet) {
  // Offset exchanges share the sink port.
  if (net::payload_as<OffsetExchange>(packet)) {
    reply_to_offset_request(host_, socket_, packet);
    return;
  }
  auto msg = net::payload_as<NttcpPacket>(packet);
  if (!msg) return;

  switch (msg->kind) {
    case NttcpPacket::Kind::kStart: {
      BurstState state;
      state.expected = msg->count;
      bursts_[msg->burst_id] = state;
      break;
    }
    case NttcpPacket::Kind::kData: {
      auto it = bursts_.find(msg->burst_id);
      if (it == bursts_.end()) {
        // START was lost; open implicitly so data still counts.
        it = bursts_.emplace(msg->burst_id, BurstState{}).first;
        it->second.expected = msg->count;
      }
      BurstState& state = it->second;
      const sim::TimePoint arrival = host_.clock().local_now();
      if (state.received == 0) state.first_arrival = arrival;
      state.last_arrival = arrival;
      ++state.received;
      state.bytes += packet.payload_bytes;
      state.latency_ns.push_back((arrival - msg->sent_local).nanos());
      break;
    }
    case NttcpPacket::Kind::kEnd: {
      auto it = bursts_.find(msg->burst_id);
      if (it == bursts_.end()) {
        // Everything was lost; report an empty result.
        it = bursts_.emplace(msg->burst_id, BurstState{}).first;
      }
      const BurstState& state = it->second;
      auto result = std::make_shared<NttcpPacket>();
      result->kind = NttcpPacket::Kind::kResult;
      result->burst_id = msg->burst_id;
      result->count = msg->count;
      result->received = state.received;
      result->bytes = state.bytes;
      result->span = state.received > 1
                         ? state.last_arrival - state.first_arrival
                         : sim::Duration::ns(0);
      result->latency_ns = state.latency_ns;
      const auto size = static_cast<std::uint32_t>(
          kResultBaseBytes + 8 * result->latency_ns.size());
      socket_.send_to(packet.src, packet.src_port, size, std::move(result),
                      net::TrafficClass::kMonitoring);
      ++bursts_completed_;
      break;
    }
    case NttcpPacket::Kind::kResult:
      break;  // sinks do not receive results
  }
}

// ----------------------------------------------------------------- probe

NttcpProbe::NttcpProbe(net::Host& host, net::IpAddr sink, NttcpConfig config,
                       Callback done)
    : host_(host),
      sink_(sink),
      config_(config),
      done_(std::move(done)),
      burst_id_(next_burst_id()) {}

NttcpProbe::~NttcpProbe() { cancel(); }

void NttcpProbe::cancel() {
  send_timer_.cancel();
  end_timer_.cancel();
  timeout_timer_.cancel();
  if (connection_) connection_->abort();
}

double NttcpProbe::peak_load_bps(const NttcpConfig& config) {
  const double wire =
      static_cast<double>(udp_wire_bytes(config.message_length)) * 8.0;
  return wire / config.inter_send.to_seconds();
}

void NttcpProbe::start() {
  if (config_.protocol == Protocol::kTcp) {
    run_tcp();
    return;
  }
  socket_ = &host_.udp().bind(
      0, [this](const net::Packet& p) { on_datagram(p); });

  timeout_timer_ = host_.simulator().schedule_in(
      config_.inter_send * config_.message_count + config_.result_timeout,
      [this] { finish(false); });

  if (config_.in_band_offset) {
    offset_estimator_ = std::make_unique<ClockOffsetEstimator>(
        host_, sink_, config_.port, config_.offset,
        [this](const ClockOffsetResult& r) {
          if (r.ok) {
            result_.offset_applied = r.offset;
            result_.offset_bytes_on_wire = r.bytes_on_wire;
            result_.probe_bytes_on_wire += r.bytes_on_wire;
          }
          begin_burst();
        });
    offset_estimator_->start();
  } else {
    begin_burst();
  }
}

void NttcpProbe::begin_burst() {
  auto start = std::make_shared<NttcpPacket>();
  start->kind = NttcpPacket::Kind::kStart;
  start->burst_id = burst_id_;
  start->count = config_.message_count;
  start->length = config_.message_length;
  socket_->send_to(sink_, config_.port, kControlBytes, std::move(start),
                   config_.traffic_class);
  result_.probe_bytes_on_wire += udp_wire_bytes(kControlBytes);
  send_timer_ = host_.simulator().schedule_in(config_.inter_send,
                                              [this] { send_data(); });
}

void NttcpProbe::send_data() {
  auto data = std::make_shared<NttcpPacket>();
  data->kind = NttcpPacket::Kind::kData;
  data->burst_id = burst_id_;
  data->seq = next_seq_++;
  data->count = config_.message_count;
  data->length = config_.message_length;
  data->sent_local = host_.clock().local_now();
  socket_->send_to(sink_, config_.port, config_.message_length,
                   std::move(data), config_.traffic_class);
  ++result_.messages_sent;
  result_.probe_bytes_on_wire += udp_wire_bytes(config_.message_length);

  if (next_seq_ < config_.message_count) {
    send_timer_ = host_.simulator().schedule_in(config_.inter_send,
                                                [this] { send_data(); });
  } else {
    // Give the last message time to drain before asking for results.
    end_timer_ = host_.simulator().schedule_in(config_.inter_send,
                                               [this] { send_end(); });
  }
}

void NttcpProbe::send_end() {
  if (finished_) return;
  auto end = std::make_shared<NttcpPacket>();
  end->kind = NttcpPacket::Kind::kEnd;
  end->burst_id = burst_id_;
  end->count = config_.message_count;
  socket_->send_to(sink_, config_.port, kControlBytes, std::move(end),
                   config_.traffic_class);
  result_.probe_bytes_on_wire += udp_wire_bytes(kControlBytes);
  if (--end_retries_left_ > 0) {
    end_timer_ = host_.simulator().schedule_in(sim::Duration::ms(200),
                                               [this] { send_end(); });
  }
}

void NttcpProbe::on_datagram(const net::Packet& packet) {
  auto msg = net::payload_as<NttcpPacket>(packet);
  if (!msg || msg->kind != NttcpPacket::Kind::kResult ||
      msg->burst_id != burst_id_) {
    return;
  }
  end_timer_.cancel();
  result_.messages_received = msg->received;
  result_.bytes_received = msg->bytes;
  result_.receive_span = msg->span;
  if (msg->span.nanos() > 0) {
    result_.throughput_bps =
        static_cast<double>(msg->bytes) * 8.0 / msg->span.to_seconds();
  }
  result_.loss_fraction =
      result_.messages_sent == 0
          ? 0.0
          : 1.0 - static_cast<double>(msg->received) /
                      static_cast<double>(result_.messages_sent);
  for (std::int64_t raw_ns : msg->latency_ns) {
    // Raw sample = arrival(sink clock) - send(source clock); subtracting
    // the estimated (sink - source) offset recovers true one-way latency.
    result_.latency.add(
        static_cast<double>(raw_ns - result_.offset_applied.nanos()) / 1e9);
  }
  finish(true);
}

void NttcpProbe::finish(bool completed) {
  if (finished_) return;
  finished_ = true;
  cancel();
  result_.completed = completed;
  if (socket_ != nullptr) {
    socket_->close();
    socket_ = nullptr;
  }
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(result_);
  }
}

void NttcpProbe::run_tcp() {
  tcp_start_ = host_.simulator().now();
  const std::uint64_t total_bytes =
      std::uint64_t(config_.message_length) * config_.message_count;
  timeout_timer_ = host_.simulator().schedule_in(
      config_.result_timeout + sim::Duration::seconds(
          static_cast<double>(total_bytes) * 8.0 / 1e6),  // generous floor
      [this] { finish(false); });

  connection_ = host_.tcp().connect(sink_, config_.port);
  connection_->set_traffic_class(config_.traffic_class);
  connection_->set_established_handler([this, total_bytes] {
    connection_->send_bytes(total_bytes);
    connection_->close();
  });
  connection_->set_close_handler([this, total_bytes] {
    const auto elapsed = host_.simulator().now() - tcp_start_;
    const auto& counters = connection_->counters();
    result_.messages_sent = config_.message_count;
    result_.messages_received = static_cast<std::uint32_t>(
        counters.bytes_acked / config_.message_length);
    result_.bytes_received = counters.bytes_acked;
    result_.receive_span = elapsed;
    if (elapsed.nanos() > 0) {
      result_.throughput_bps = static_cast<double>(counters.bytes_acked) *
                               8.0 / elapsed.to_seconds();
    }
    result_.probe_bytes_on_wire =
        counters.segments_sent *
        (net::Packet::kIpHeaderBytes + net::Packet::kTcpHeaderBytes +
         net::Frame::kFrameOverheadBytes) +
        counters.bytes_sent;
    finish(counters.bytes_acked >= total_bytes);
  });
}

// TCP sinks are plain acceptors that consume the stream; provide a helper
// so applications can host one next to the UDP sink.
namespace {
}  // namespace

}  // namespace netmon::nttcp
