#include "nttcp/reachability.hpp"

#include <memory>

namespace netmon::nttcp {

EchoResponder::EchoResponder(net::Host& host, std::uint16_t port)
    : host_(host),
      socket_(host.udp().bind(port, [this](const net::Packet& p) {
        auto req = net::payload_as<EchoPayload>(p);
        if (!req || req->reply) return;
        auto reply = std::make_shared<EchoPayload>(*req);
        reply->reply = true;
        socket_.send_to(p.src, p.src_port, p.payload_bytes, std::move(reply),
                        p.traffic_class);
        ++echoes_;
      })) {}

ReachabilityProbe::ReachabilityProbe(net::Host& host, net::IpAddr target,
                                     Config config, Callback done)
    : host_(host), target_(target), config_(config), done_(std::move(done)) {}

ReachabilityProbe::ReachabilityProbe(net::Host& host, net::IpAddr target,
                                     Callback done)
    : ReachabilityProbe(host, target, Config{}, std::move(done)) {}

ReachabilityProbe::~ReachabilityProbe() { timeout_.cancel(); }

void ReachabilityProbe::start() {
  socket_ = &host_.udp().bind(
      0, [this](const net::Packet& p) { on_reply(p); });
  attempt();
}

void ReachabilityProbe::attempt() {
  if (attempts_made_ >= config_.attempts) {
    finish(false, sim::Duration::ns(0));
    return;
  }
  ++attempts_made_;
  auto req = std::make_shared<EchoPayload>();
  req->seq = ++seq_;
  sent_at_ = host_.simulator().now();
  socket_->send_to(target_, config_.port, config_.payload_bytes,
                   std::move(req), config_.traffic_class);
  timeout_ = host_.simulator().schedule_in(config_.timeout,
                                           [this] { attempt(); });
}

void ReachabilityProbe::on_reply(const net::Packet& packet) {
  auto reply = net::payload_as<EchoPayload>(packet);
  if (!reply || !reply->reply || reply->seq != seq_) return;
  timeout_.cancel();
  finish(true, host_.simulator().now() - sent_at_);
}

void ReachabilityProbe::finish(bool reachable, sim::Duration rtt) {
  if (finished_) return;
  finished_ = true;
  timeout_.cancel();
  if (socket_ != nullptr) {
    socket_->close();
    socket_ = nullptr;
  }
  ReachabilityResult result;
  result.reachable = reachable;
  result.attempts_used = attempts_made_;
  result.round_trip = rtt;
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(result);
  }
}

}  // namespace netmon::nttcp
