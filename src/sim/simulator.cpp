#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::sim {

std::string Duration::to_string() const {
  char buf[64];
  if (ns_ % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(ns_ / 1'000'000'000));
  } else if (ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ns_ / 1'000'000));
  } else if (ns_ % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(ns_ / 1'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

EventHandle Simulator::schedule_at(TimePoint when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time in the past");
  }
  const std::uint32_t idx = core_->acquire(detail::EventCore::Kind::kOneShot);
  detail::EventCore::Slot& s = core_->slot(idx);
  s.fn = std::move(fn);
  s.next_ns = when.nanos();
  s.next_seq = next_seq_++;
  // One-shots live in the timer wheel too: O(1) insert/expire instead of a
  // log-depth heap sift. Only events due at exactly now() (or colliding with
  // a stopped run's cursor) fall back to the heap, which settles exact
  // (time, seq) order for them as before.
  core_->wheel().advance(now_.nanos());
  if (!core_->wheel().insert(idx, s.next_ns)) {
    heap_.push(HeapNode{s.next_ns, s.next_seq, idx, s.gen});
  }
  observe_schedule(s.next_ns - now_.nanos());
  return EventHandle(core_, idx, s.gen);
}

EventHandle Simulator::schedule_in(Duration delay, Callback fn) {
  if (delay.is_negative()) {
    throw std::logic_error("Simulator::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration period, Callback fn) {
  if (period <= Duration::ns(0)) {
    throw std::logic_error("Simulator::schedule_periodic: period must be > 0");
  }
  const std::uint32_t idx = core_->acquire(detail::EventCore::Kind::kPeriodic);
  detail::EventCore::Slot& s = core_->slot(idx);
  s.fn = std::move(fn);
  s.period_ns = period.nanos();
  s.next_ns = now_.nanos() + period.nanos();
  s.next_seq = next_seq_++;
  // Everything still linked expires after now() (due buckets are flushed
  // before any event at now() fires), so the cursor may catch up — fewer
  // cascade hops for the new entry.
  core_->wheel().advance(now_.nanos());
  if (!core_->wheel().insert(idx, s.next_ns)) {
    heap_.push(HeapNode{s.next_ns, s.next_seq, idx, s.gen});
  }
  observe_schedule(s.next_ns - now_.nanos());
  return EventHandle(core_, idx, s.gen);
}

bool Simulator::advance_to_next(std::int64_t horizon) {
  batch_.clear();
  batch_pos_ = 0;
  TimerWheel& wheel = core_->wheel();
  for (;;) {
    const std::int64_t heap_at =
        heap_.empty() ? TimerWheel::kNever : heap_.top().at;
    const std::int64_t flush_to = heap_at < horizon ? heap_at : horizon;
    expired_.clear();
    const std::int64_t boundary =
        wheel.expire_earliest_until(flush_to, expired_);
    if (boundary == TimerWheel::kNever) {
      // Next is a heap event within the horizon, or nothing at all.
      return heap_at != TimerWheel::kNever && heap_at <= horizon;
    }
    if (expired_.empty()) continue;  // pure cascade, keep draining
    if (boundary < heap_at) {
      // No queued heap event can tie with these firings: dispatch directly,
      // skipping the heap round trip. Order within the batch is by seq.
      for (const std::uint32_t idx : expired_) {
        const detail::EventCore::Slot& s = core_->slot(idx);
        batch_.push_back(DueTimer{idx, s.gen, s.next_seq});
      }
      if (batch_.size() > 1) {
        std::sort(batch_.begin(), batch_.end(),
                  [](const DueTimer& a, const DueTimer& b) {
                    return a.seq < b.seq;
                  });
      }
      batch_at_ = boundary;
      return true;
    }
    // Tie with the heap top at the same timestamp: merge through the heap,
    // which settles the exact (time, seq) interleaving.
    for (const std::uint32_t idx : expired_) {
      const detail::EventCore::Slot& s = core_->slot(idx);
      heap_.push(HeapNode{s.next_ns, s.next_seq, idx, s.gen});
    }
  }
}

void Simulator::dispatch_heap(HeapNode& node) {
  assert(node.at >= now_.nanos());
  now_ = TimePoint::from_nanos(node.at);
  run_due(node.slot, node.gen);
}

void Simulator::run_due(std::uint32_t idx, std::uint32_t gen) {
  detail::EventCore& core = *core_;
  if (!core.matches(idx, gen)) return;  // cancelled while queued or batched
  detail::EventCore::Slot& s = core.slot(idx);  // chunked storage: stable
  if (s.kind == detail::EventCore::Kind::kOneShot) {
    Callback fn = std::move(s.fn);
    core.release(idx);  // frees the slot before user code runs
    ++executed_;
    fn();
    return;
  }
  ++executed_;
  // The callback runs in place; cancel() from inside it is deferred via the
  // firing flag so the executing object is never destroyed mid-call.
  core.begin_firing(idx);
  s.fn();
  core.end_firing();
  if (!core.matches(idx, gen)) return;  // defensive
  if (s.cancel_requested) {
    core.release(idx);
    return;
  }
  s.next_ns += s.period_ns;  // fixed cadence, no drift
  s.next_seq = next_seq_++;  // seq assigned after the callback, as before
  if (!core.wheel().insert(idx, s.next_ns)) {
    heap_.push(HeapNode{s.next_ns, s.next_seq, idx, s.gen});
  }
}

void Simulator::run(std::uint64_t limit) {
  std::uint64_t fired = 0;
  while (!stop_requested_ && fired < limit) {
    if (batch_pos_ < batch_.size()) {
      const DueTimer due = batch_[batch_pos_++];
      now_ = TimePoint::from_nanos(batch_at_);
      run_due(due.slot, due.gen);
      ++fired;
      continue;
    }
    if (!advance_to_next(TimerWheel::kNever)) break;
    if (!batch_.empty()) continue;
    HeapNode node = heap_.pop();
    dispatch_heap(node);
    ++fired;
  }
  stop_requested_ = false;
}

void Simulator::run_until(TimePoint deadline) {
  const std::int64_t dl = deadline.nanos();
  while (!stop_requested_) {
    if (batch_pos_ < batch_.size()) {
      if (batch_at_ > dl) break;  // leftover batch from a stopped run
      const DueTimer due = batch_[batch_pos_++];
      now_ = TimePoint::from_nanos(batch_at_);
      run_due(due.slot, due.gen);
      continue;
    }
    if (!advance_to_next(dl)) break;
    if (!batch_.empty()) continue;
    HeapNode node = heap_.pop();  // single peek inside advance_to_next,
    dispatch_heap(node);          // one move-out pop here
  }
  const bool stopped = stop_requested_;
  stop_requested_ = false;
  if (!stopped && now_ < deadline) now_ = deadline;
}

void Simulator::attach_logger() {
  util::Logger::instance().set_time_source([this] {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%.6f]", now_.to_seconds());
    return std::string(buf);
  });
}

void Simulator::detach_logger() {
  util::Logger::instance().clear_time_source();
}

void Simulator::attach_observability(obs::Registry& registry,
                                     const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  obs_schedules_ = &registry.counter(prefix + ".schedules");
  obs_horizon_ = &registry.histogram(prefix + ".schedule_horizon_ns");
  obs_depth_ = &registry.histogram(prefix + ".queue_depth");
  registry.gauge_fn(prefix + ".events_executed",
                    [this] { return static_cast<double>(executed_); });
  registry.gauge_fn(prefix + ".pending_events", [this] {
    return static_cast<double>(pending_events());
  });
  registry.gauge_fn(prefix + ".now_seconds",
                    [this] { return now_.to_seconds(); });
}

void Simulator::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
  obs_schedules_ = nullptr;
  obs_horizon_ = nullptr;
  obs_depth_ = nullptr;
}

}  // namespace netmon::sim
