#include "sim/simulator.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::sim {

std::string Duration::to_string() const {
  char buf[64];
  if (ns_ % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(ns_ / 1'000'000'000));
  } else if (ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ns_ / 1'000'000));
  } else if (ns_ % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(ns_ / 1'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

EventHandle Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time in the past");
  }
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle Simulator::schedule_in(Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) {
    throw std::logic_error("Simulator::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration period,
                                         std::function<void()> fn) {
  if (period <= Duration::ns(0)) {
    throw std::logic_error("Simulator::schedule_periodic: period must be > 0");
  }
  // The shared alive flag spans all repetitions: cancelling the returned
  // handle stops the chain even though each firing re-schedules itself.
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  auto self = this;
  *tick = [self, period, fn = std::move(fn), alive, tick]() {
    fn();
    if (*alive) {
      self->queue_.push(
          Event{self->now_ + period, self->next_seq_++, *tick, alive});
    }
  };
  queue_.push(Event{now_ + period, next_seq_++, *tick, alive});
  return EventHandle(std::move(alive));
}

void Simulator::dispatch(Event& ev) {
  assert(ev.at >= now_);
  now_ = ev.at;
  if (*ev.alive) {
    ++executed_;
    ev.fn();
  }
}

void Simulator::run(std::uint64_t limit) {
  stopped_ = false;
  std::uint64_t fired = 0;
  while (!queue_.empty() && !stopped_ && fired < limit) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
    ++fired;
  }
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.at > deadline) break;
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::attach_logger() {
  util::Logger::instance().set_time_source([this] {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%.6f]", now_.to_seconds());
    return std::string(buf);
  });
}

void Simulator::detach_logger() {
  util::Logger::instance().clear_time_source();
}

}  // namespace netmon::sim
