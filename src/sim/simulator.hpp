#pragma once

// Deterministic discrete-event simulator. All substrates (network, clocks,
// SNMP, probes) are driven by events scheduled here. Ties at equal timestamps
// break by insertion order, so a given seed reproduces a run exactly.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace netmon::sim {

// Handle for cancelling a scheduled event. Cancellation is lazy: the event
// stays queued but its body is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() { if (alive_) *alive_ = false; }
  bool valid() const { return alive_ != nullptr; }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  EventHandle schedule_at(TimePoint when, std::function<void()> fn);
  EventHandle schedule_in(Duration delay, std::function<void()> fn);

  // Repeats fn every `period` starting at now()+period, until cancelled.
  EventHandle schedule_periodic(Duration period, std::function<void()> fn);

  // Run until the queue drains or `limit` events have fired.
  void run(std::uint64_t limit = UINT64_MAX);
  // Run events with time <= deadline; leaves now() == deadline.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }
  // Stop the current run() after the in-flight event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  // Installs/removes the "[t=...]" prefix on the global logger.
  void attach_logger();
  void detach_logger();

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event& ev);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// RAII helper used by periodic components: cancels its event on destruction.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> fn)
      : handle_(sim.schedule_periodic(period, std::move(fn))) {}
  PeriodicTask(PeriodicTask&& o) noexcept : handle_(o.handle_) {
    o.handle_ = EventHandle{};
  }
  PeriodicTask& operator=(PeriodicTask&& o) noexcept {
    if (this != &o) {
      handle_.cancel();
      handle_ = o.handle_;
      o.handle_ = EventHandle{};
    }
    return *this;
  }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask() { handle_.cancel(); }
  void cancel() { handle_.cancel(); }
  bool active() const { return handle_.pending(); }

 private:
  EventHandle handle_;
};

}  // namespace netmon::sim
