#pragma once

// Deterministic discrete-event simulator. All substrates (network, clocks,
// SNMP, probes) are driven by events scheduled here. Ties at equal timestamps
// break by insertion order, so a given seed reproduces a run exactly.
//
// Hot-path layout (see DESIGN.md "Event core internals"):
//  - callbacks live in a generation-counted slot table with chunked, stable
//    storage; one-shot callbacks are moved out exactly once when they fire;
//  - both one-shot and periodic timers live in a hierarchical timing wheel:
//    O(1) insert and expiry, and steady-state periodic probes allocate
//    nothing per tick. Firings that cannot tie with a queued heap event are
//    dispatched directly in seq order, skipping the heap entirely;
//  - a 4-ary min-heap of 24-byte POD nodes keyed (time, seq) settles exact
//    ordering for events scheduled at the current instant and for wheel
//    firings that tie with a queued event; callbacks never travel through
//    the heap;
//  - EventHandle references a slot generation: cancel() is O(1) and stale
//    handles (fired events, re-used slots) degrade to no-ops;
//  - callbacks use a small-buffer-optimized move-only wrapper, so lambdas
//    capturing `this` plus a few words never touch the heap allocator.

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_heap.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"
#include "util/function.hpp"

namespace netmon::sim {

// Small-buffer-optimized event callback: 48 inline bytes covers `this` plus
// several captured words without an allocation.
using Callback = util::SmallFunction<void(), 48>;

namespace detail {

// Generation-counted slot table plus the periodic timer wheel. Shared (via
// shared_ptr) between the Simulator and outstanding EventHandles, so a
// handle that outlives its event — or even the run — cancels safely in O(1).
// Slots are stored in fixed chunks so their addresses are stable: a periodic
// callback can be invoked in place even if firing it schedules new events
// and grows the table.
class EventCore {
 public:
  static constexpr std::uint32_t kNil = TimerWheel::kNil;

  enum class Kind : std::uint8_t { kFree, kOneShot, kPeriodic };

  struct Slot {
    std::uint32_t gen = 0;
    Kind kind = Kind::kFree;
    bool cancel_requested = false;  // cancel() arrived while firing
    std::uint32_t next_free = kNil;
    std::int64_t period_ns = 0;  // periodic only
    std::int64_t next_ns = 0;    // absolute time of the next firing
    std::uint64_t next_seq = 0;  // tie-break seq of the next firing
    Callback fn;
  };

  std::uint32_t acquire(Kind kind) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = slot(idx).next_free;
    } else {
      if ((count_ & kChunkMask) == 0) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      idx = static_cast<std::uint32_t>(count_++);
      wheel_.ensure_capacity(count_);
    }
    Slot& s = slot(idx);
    s.kind = kind;
    s.cancel_requested = false;
    s.next_free = kNil;
    return idx;
  }

  void release(std::uint32_t idx) {
    Slot& s = slot(idx);
    s.fn = Callback{};
    s.kind = Kind::kFree;
    s.cancel_requested = false;
    ++s.gen;  // invalidates every outstanding handle and queued heap node
    s.next_free = free_head_;
    free_head_ = idx;
  }

  bool matches(std::uint32_t idx, std::uint32_t gen) const {
    if (idx >= count_) return false;
    const Slot& s = slot(idx);
    return s.kind != Kind::kFree && s.gen == gen;
  }

  bool pending(std::uint32_t idx, std::uint32_t gen) const {
    return matches(idx, gen) && !slot(idx).cancel_requested;
  }

  void cancel(std::uint32_t idx, std::uint32_t gen) {
    if (!matches(idx, gen)) return;
    if (idx == firing_) {
      // Cancellation from inside the firing callback: the callback object is
      // executing, so defer the release to the dispatcher.
      slot(idx).cancel_requested = true;
      return;
    }
    // One-shots and periodics both live in the wheel; remove() is a no-op
    // for ids currently queued in the heap or a dispatch batch instead.
    wheel_.remove(idx);
    release(idx);
  }

  // Destroys every live callback and invalidates all slots. Called from the
  // simulator's destructor to break shared_ptr cycles: a callback capturing
  // an EventHandle would otherwise keep this core alive through itself.
  // Outstanding handles turn stale (cancel() becomes a no-op).
  void shutdown() {
    for (std::uint32_t i = 0; i < count_; ++i) {
      Slot& s = slot(i);
      if (s.kind != Kind::kFree) {
        s.fn = Callback{};
        s.kind = Kind::kFree;
        ++s.gen;
      }
    }
  }

  Slot& slot(std::uint32_t idx) { return chunks_[idx >> kChunkShift][idx & kChunkMask]; }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  TimerWheel& wheel() { return wheel_; }
  const TimerWheel& wheel() const { return wheel_; }
  void begin_firing(std::uint32_t idx) { firing_ = idx; }
  void end_firing() { firing_ = kNil; }

 private:
  static constexpr unsigned kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t count_ = 0;
  std::uint32_t free_head_ = kNil;
  std::uint32_t firing_ = kNil;
  TimerWheel wheel_;
};

}  // namespace detail

// Handle for cancelling a scheduled event. Cancellation of a queued one-shot
// is lazy (the heap node is skipped when popped); cancellation of a periodic
// timer unlinks it from the wheel immediately. Handles are generation
// checked: once the event has fired (one-shot) or been cancelled, the handle
// goes stale and further cancel() calls are no-ops.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (core_) core_->cancel(slot_, gen_);
  }
  bool valid() const { return core_ != nullptr; }
  // True while the event is still scheduled to fire (periodic: not yet
  // cancelled; one-shot: not yet fired or cancelled).
  bool pending() const { return core_ && core_->pending(slot_, gen_); }

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<detail::EventCore> core, std::uint32_t slot,
              std::uint32_t gen)
      : core_(std::move(core)), slot_(slot), gen_(gen) {}
  std::shared_ptr<detail::EventCore> core_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  Simulator() : core_(std::make_shared<detail::EventCore>()) {}
  ~Simulator() {
    detach_observability();
    core_->shutdown();
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  EventHandle schedule_at(TimePoint when, Callback fn);
  EventHandle schedule_in(Duration delay, Callback fn);

  // Repeats fn every `period` starting at now()+period, until cancelled.
  EventHandle schedule_periodic(Duration period, Callback fn);

  // Run until the queue drains or `limit` events have fired.
  void run(std::uint64_t limit = UINT64_MAX);
  // Run events with time <= deadline; leaves now() == deadline.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }
  // Stop the current run() after the in-flight event completes. A stop
  // requested while not running makes the next run()/run_until() return
  // immediately; each run call consumes (resets) the request on exit.
  void stop() { stop_requested_ = true; }

  bool empty() const { return pending_events() == 0; }
  std::size_t pending_events() const {
    return heap_.size() + core_->wheel().size() + (batch_.size() - batch_pos_);
  }
  std::uint64_t events_executed() const { return executed_; }

  // Installs/removes the "[t=...]" prefix on the global logger.
  void attach_logger();
  void detach_logger();

  // Self-observability (DESIGN.md §10). Registers under "<prefix>.":
  // schedule counters, a sampled schedule-horizon histogram (ns between
  // scheduling an event and its due time — the sim-time latency an event
  // waits before firing), a sampled queue-depth histogram, and live
  // gauge_fns for events_executed / pending_events / now. Purely passive:
  // attaching never schedules events, so event order — and the event-core
  // golden trace — is unchanged. Detached (default) the hot path pays one
  // null check; with NETMON_OBS_ENABLED=0 it pays nothing.
  void attach_observability(obs::Registry& registry,
                            const std::string& prefix = "sim");
  void detach_observability();

 private:
  // 1-in-64 sampling keeps histogram updates off the schedule fast path:
  // a pair of P² observations costs a few hundred ns, the raw schedule
  // path ~200 ns, so the amortized attached overhead stays under the 5%
  // bench budget. The first schedule is always observed (tick starts at
  // 0), so short workloads still populate the histograms.
  static constexpr std::uint32_t kObsSampleMask = 63;

  void observe_schedule(std::int64_t horizon_ns) {
    if constexpr (obs::kCompiledIn) {
      if (obs_schedules_ == nullptr) return;
      obs_schedules_->inc();
      if ((obs_tick_++ & kObsSampleMask) == 0) {
        obs_horizon_->observe(static_cast<double>(horizon_ns));
        obs_depth_->observe(static_cast<double>(pending_events()));
      }
    } else {
      (void)horizon_ns;
    }
  }
  struct HeapNode {  // 24-byte POD; callbacks stay in the slot table
    std::int64_t at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct NodeLess {
    bool operator()(const HeapNode& a, const HeapNode& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  struct DueTimer {
    std::uint32_t slot;
    std::uint32_t gen;
    std::uint64_t seq;
  };

  // Flushes due timer-wheel buckets until the globally next event is known:
  // either the heap top, or a batch of periodic firings (batch_ non-empty)
  // that cannot tie with any queued one-shot and so skips the heap. Returns
  // false if nothing is schedulable at or before `horizon`.
  bool advance_to_next(std::int64_t horizon);
  void dispatch_heap(HeapNode& node);
  void run_due(std::uint32_t idx, std::uint32_t gen);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  EventHeap<HeapNode, NodeLess> heap_;
  std::shared_ptr<detail::EventCore> core_;
  std::vector<std::uint32_t> expired_;  // scratch: ids from wheel expiry
  std::vector<DueTimer> batch_;         // direct-dispatch wheel batch
  std::size_t batch_pos_ = 0;
  std::int64_t batch_at_ = 0;

  // Observability handles (null while detached; owned by the registry).
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  obs::Counter* obs_schedules_ = nullptr;
  obs::Histogram* obs_horizon_ = nullptr;
  obs::Histogram* obs_depth_ = nullptr;
  std::uint32_t obs_tick_ = 0;
};

// RAII helper used by periodic components: cancels its event on destruction.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(Simulator& sim, Duration period, Callback fn)
      : handle_(sim.schedule_periodic(period, std::move(fn))) {}
  PeriodicTask(PeriodicTask&& o) noexcept : handle_(o.handle_) {
    o.handle_ = EventHandle{};
  }
  PeriodicTask& operator=(PeriodicTask&& o) noexcept {
    if (this != &o) {
      handle_.cancel();
      handle_ = o.handle_;
      o.handle_ = EventHandle{};
    }
    return *this;
  }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask() { handle_.cancel(); }
  void cancel() { handle_.cancel(); }
  bool active() const { return handle_.pending(); }

 private:
  EventHandle handle_;
};

}  // namespace netmon::sim
