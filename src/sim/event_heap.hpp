#pragma once

// 4-ary min-heap used by the simulator's event queue. Compared to
// std::priority_queue<Event> it (a) supports moving the minimum element out
// on pop — std::priority_queue::top() is const so popping forces a full copy
// of the event — and (b) the wider fanout halves the tree depth, trading one
// extra comparison per level for far fewer cache-missing levels on large
// queues. Sifts are hole-based: the displaced element is held in a register
// while ancestors/descendants shift, one move per level instead of a swap.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace netmon::sim {

template <class T, class Less>
class EventHeap {
 public:
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const T& top() const { return items_.front(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() { items_.clear(); }

  void push(T item) {
    items_.push_back(std::move(item));
    std::size_t i = items_.size() - 1;
    if (i == 0) return;
    T hole = std::move(items_[i]);
    while (i != 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less_(hole, items_[parent])) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(hole);
  }

  // Removes and returns the minimum element (moved out, never copied).
  T pop() {
    T min = std::move(items_.front());
    T last = std::move(items_.back());
    items_.pop_back();
    const std::size_t n = items_.size();
    if (n != 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first_child = i * kArity + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end = std::min(first_child + kArity, n);
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (less_(items_[c], items_[best])) best = c;
        }
        if (!less_(items_[best], last)) break;
        items_[i] = std::move(items_[best]);
        i = best;
      }
      items_[i] = std::move(last);
    }
    return min;
  }

 private:
  static constexpr std::size_t kArity = 4;

  [[no_unique_address]] Less less_;
  std::vector<T> items_;
};

}  // namespace netmon::sim
