#pragma once

// Simulated time as a strong type over integer nanoseconds. Integer ticks
// keep event ordering exact and runs bit-reproducible.

#include <cstdint>
#include <string>

namespace netmon::sim {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ns(std::int64_t v) { return Duration(v); }
  static constexpr Duration us(std::int64_t v) { return Duration(v * 1'000); }
  static constexpr Duration ms(std::int64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration sec(std::int64_t v) {
    return Duration(v * 1'000'000'000);
  }
  static constexpr Duration seconds(double v) {
    return Duration(static_cast<std::int64_t>(v * 1e9));
  }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint(ns); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ns_ + d.nanos());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ns_ - d.nanos());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::ns(ns_ - o.ns_);
  }
  TimePoint& operator+=(Duration d) { ns_ += d.nanos(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace netmon::sim
