#pragma once

// Hierarchical timing wheel for one-shot and periodic timers (Varghese &
// Lauck style,
// bucket layout after Tokio's wheel). Eleven levels of 64 buckets cover the
// full 64-bit nanosecond tick space: level n buckets span 64^n ticks, and an
// entry lives at the level where its expiry first differs from the wheel's
// `elapsed` cursor. Insert and remove are O(1); finding the earliest
// occupied bucket is two ctz instructions (a per-wheel level summary mask,
// then that level's 64-bit occupancy word).
//
// The wheel does NOT fire timers itself. expire_earliest_until() pops the
// earliest bucket, cascades entries that are not yet exact down a level, and
// reports entries whose expiry equals the bucket boundary as "due"; the
// simulator either dispatches those directly or pushes them into its event
// heap when they tie with a queued heap event, which settles exact
// (time, seq) order. Entries are identified by small integer ids supplied by the caller
// (the simulator's slot ids), so a bucket is an intrusive doubly-linked list
// of ids and steady-state re-arming allocates nothing.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace netmon::sim {

class TimerWheel {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::int64_t kNever =
      std::numeric_limits<std::int64_t>::max();

  TimerWheel() {
    for (std::uint32_t& h : heads_) h = kNil;
  }

  // Make ids [0, n) addressable. Amortized O(1); called as slots grow.
  void ensure_capacity(std::size_t n) {
    if (entries_.size() < n) entries_.resize(n);
  }

  // Insert `id` with absolute expiry `expiry_ns`. Returns false (without
  // inserting) iff the expiry is not in the future of the wheel cursor —
  // the caller should then treat the timer as immediately due.
  //
  // A wheel holding exactly one timer keeps it in a dedicated front slot
  // (`solo_`) and skips the bucket machinery entirely; a lone fast probe
  // chain therefore re-arms and expires without any cascading. The second
  // concurrent timer demotes the front slot into the buckets.
  bool insert(std::uint32_t id, std::int64_t expiry_ns) {
    if (expiry_ns <= elapsed_) return false;
    Entry& e = entries_[id];
    e.expiry = expiry_ns;
    if (size_ == 0) {
      solo_ = id;
      e.linked = true;
    } else {
      if (solo_ != kNil) {  // demote the front slot to the buckets
        Entry& s = entries_[solo_];
        link(solo_, s);
        solo_ = kNil;
      }
      link(id, e);
    }
    ++size_;
    return true;
  }

  // O(1) removal of a linked entry; no-op for unlinked ids.
  void remove(std::uint32_t id) {
    Entry& e = entries_[id];
    if (!e.linked) return;
    if (solo_ == id) {
      solo_ = kNil;
      e.linked = false;
    } else {
      unlink(e);
    }
    --size_;
  }

  // Advance the cursor. Precondition: every linked entry expires strictly
  // after `t` (the simulator guarantees this by flushing due buckets before
  // firing any event at time t). A fresher cursor means fewer cascade hops
  // for subsequent inserts.
  void advance(std::int64_t t) {
    if (t > elapsed_) elapsed_ = t;
  }

  bool linked(std::uint32_t id) const { return entries_[id].linked; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::int64_t elapsed() const { return elapsed_; }

  // Lower bound on the earliest expiry in the wheel (exact when the earliest
  // occupied bucket is at level 0); kNever when empty.
  std::int64_t next_boundary() const {
    if (solo_ != kNil) return entries_[solo_].expiry;
    if (level_mask_ == 0) return kNever;
    const unsigned level = static_cast<unsigned>(std::countr_zero(level_mask_));
    const unsigned slot =
        static_cast<unsigned>(std::countr_zero(occupancy_[level]));
    return boundary_of(level, slot);
  }

  // If the earliest occupied bucket's boundary is <= `horizon`: advance the
  // cursor to that boundary, pop the bucket, re-file entries that are not
  // yet due (cascading them at least one level down), append ids of entries
  // expiring exactly at the boundary to `due` (in unspecified order — the
  // caller orders them by sequence number), and return the boundary.
  // Otherwise return kNever and leave the wheel untouched.
  std::int64_t expire_earliest_until(std::int64_t horizon,
                                     std::vector<std::uint32_t>& due) {
    if (solo_ != kNil) {  // sole entry: no buckets to scan or cascade
      Entry& e = entries_[solo_];
      if (e.expiry > horizon) return kNever;
      elapsed_ = e.expiry;
      e.linked = false;
      due.push_back(solo_);
      solo_ = kNil;
      --size_;
      return elapsed_;
    }
    if (level_mask_ == 0) return kNever;
    const unsigned level = static_cast<unsigned>(std::countr_zero(level_mask_));
    const unsigned slot =
        static_cast<unsigned>(std::countr_zero(occupancy_[level]));
    const std::int64_t boundary = boundary_of(level, slot);
    if (boundary > horizon) return kNever;

    elapsed_ = boundary;
    std::uint32_t id = heads_[level * kSlots + slot];
    heads_[level * kSlots + slot] = kNil;
    occupancy_[level] &= ~(std::uint64_t{1} << slot);
    if (occupancy_[level] == 0) {
      level_mask_ &= static_cast<std::uint16_t>(~(1u << level));
    }
    while (id != kNil) {
      Entry& e = entries_[id];
      const std::uint32_t next = e.next;
      e.linked = false;
      if (e.expiry <= boundary) {
        due.push_back(id);
        --size_;
      } else {
        link(id, e);  // cascades strictly below `level`
      }
      id = next;
    }
    return boundary;
  }

 private:
  static constexpr std::size_t kLevels = 11;  // 11 * 6 bits >= 64
  static constexpr std::size_t kSlots = 64;
  static constexpr unsigned kBitsPerLevel = 6;

  struct Entry {
    std::int64_t expiry = 0;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint16_t bucket = 0;  // level * kSlots + slot, for unlink
    bool linked = false;
  };

  std::int64_t boundary_of(std::size_t level, unsigned slot) const {
    const unsigned shift = kBitsPerLevel * static_cast<unsigned>(level);
    std::uint64_t above = static_cast<std::uint64_t>(elapsed_);
    if (shift + kBitsPerLevel < 64) {
      above &= ~((std::uint64_t{1} << (shift + kBitsPerLevel)) - 1);
    } else {
      above = 0;
    }
    return static_cast<std::int64_t>(above | (std::uint64_t{slot} << shift));
  }

  void link(std::uint32_t id, Entry& e) {
    // The level is where expiry and the cursor first differ; within it the
    // slot index is strictly greater than the cursor's, so per-level ctz
    // always yields the earliest pending bucket.
    const std::uint64_t diff = static_cast<std::uint64_t>(e.expiry) ^
                               static_cast<std::uint64_t>(elapsed_);
    const unsigned level =
        (63u - static_cast<unsigned>(std::countl_zero(diff))) / kBitsPerLevel;
    const unsigned slot = static_cast<unsigned>(
        (static_cast<std::uint64_t>(e.expiry) >> (kBitsPerLevel * level)) &
        (kSlots - 1));
    const std::uint16_t bucket =
        static_cast<std::uint16_t>(level * kSlots + slot);
    e.bucket = bucket;
    e.prev = kNil;
    e.next = heads_[bucket];
    if (e.next != kNil) entries_[e.next].prev = id;
    heads_[bucket] = id;
    e.linked = true;
    occupancy_[level] |= std::uint64_t{1} << slot;
    level_mask_ |= static_cast<std::uint16_t>(1u << level);
  }

  void unlink(Entry& e) {
    if (e.prev != kNil) {
      entries_[e.prev].next = e.next;
    } else {
      heads_[e.bucket] = e.next;
    }
    if (e.next != kNil) entries_[e.next].prev = e.prev;
    if (heads_[e.bucket] == kNil) {
      const std::size_t level = e.bucket / kSlots;
      occupancy_[level] &= ~(std::uint64_t{1} << (e.bucket % kSlots));
      if (occupancy_[level] == 0) {
        level_mask_ &= static_cast<std::uint16_t>(~(1u << level));
      }
    }
    e.linked = false;
    e.next = kNil;
    e.prev = kNil;
  }

  std::int64_t elapsed_ = 0;  // all linked entries expire strictly after this
  std::size_t size_ = 0;
  std::uint32_t solo_ = kNil;  // set iff size_ == 1 and buckets are empty
  std::uint16_t level_mask_ = 0;  // bit n set iff occupancy_[n] != 0
  std::uint64_t occupancy_[kLevels] = {};
  std::uint32_t heads_[kLevels * kSlots];  // initialized to kNil in ctor
  std::vector<Entry> entries_;
};

}  // namespace netmon::sim
