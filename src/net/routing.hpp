#pragma once

// Static IP routing table with longest-prefix match. Tables are normally
// filled by Network::auto_route(); individual entries can be overridden to
// create asymmetric routes (paper §4.3: "In an environment where asymmetric
// routes exist between two hosts, information may flow in one direction but
// not in the other").

#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace netmon::net {

class Nic;

struct Route {
  Prefix prefix;
  // Unspecified gateway means the destination is directly attached.
  IpAddr gateway;
  Nic* out = nullptr;
};

class RoutingTable {
 public:
  // Later insertions win among routes of equal prefix length.
  void add(Prefix prefix, IpAddr gateway, Nic* out);
  // Removes every route whose prefix equals `prefix` exactly.
  void remove(Prefix prefix);
  void clear() { routes_.clear(); }

  std::optional<Route> lookup(IpAddr dst) const;
  std::size_t size() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }
  std::string to_string() const;

 private:
  std::vector<Route> routes_;
};

}  // namespace netmon::net
