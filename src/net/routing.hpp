#pragma once

// Static IP routing table with longest-prefix match. Tables are normally
// filled by Network::auto_route(); individual entries can be overridden to
// create asymmetric routes (paper §4.3: "In an environment where asymmetric
// routes exist between two hosts, information may flow in one direction but
// not in the other").

#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace netmon::net {

class Nic;

struct Route {
  Prefix prefix;
  // Unspecified gateway means the destination is directly attached.
  IpAddr gateway;
  Nic* out = nullptr;
};

class RoutingTable {
 public:
  // Later insertions win among routes of equal prefix length.
  void add(Prefix prefix, IpAddr gateway, Nic* out);
  // Removes every route whose prefix equals `prefix` exactly.
  void remove(Prefix prefix);
  void clear() {
    routes_.clear();
    standby_.clear();
  }

  std::optional<Route> lookup(IpAddr dst) const;
  std::size_t size() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }
  std::string to_string() const;

  // Pre-provisioned alternate routes (DESIGN.md §12). A standby entry is
  // invisible to lookup() until swap_standby() exchanges it with the active
  // entries of the exact same prefix, so a control-plane failover — and its
  // rollback, which is the same swap again — changes one table atomically
  // and never leaves the prefix unrouted.
  void add_standby(Prefix prefix, IpAddr gateway, Nic* out);
  bool has_standby(Prefix prefix) const;
  // Swaps the active and standby route sets for `prefix`. Either side may
  // be empty (a standby /32 over a default route swaps in leaving nothing
  // behind; the swap back restores it), so the operation is always its own
  // inverse. Returns false (and changes nothing) only when neither side
  // holds an entry for the prefix.
  bool swap_standby(Prefix prefix);
  std::size_t standby_size() const { return standby_.size(); }
  const std::vector<Route>& standby_routes() const { return standby_; }

 private:
  std::vector<Route> routes_;
  std::vector<Route> standby_;
};

}  // namespace netmon::net
