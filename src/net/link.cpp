#include "net/link.hpp"

#include <stdexcept>

namespace netmon::net {

Link::Link(sim::Simulator& sim, std::string name, double bandwidth_bps,
           sim::Duration propagation_delay)
    : sim_(sim),
      name_(std::move(name)),
      bandwidth_bps_(bandwidth_bps),
      propagation_(propagation_delay) {
  if (bandwidth_bps_ <= 0) throw std::invalid_argument("Link: bandwidth <= 0");
}

void Link::attach(Nic* nic) {
  if (nic == nullptr) throw std::invalid_argument("Link::attach: null nic");
  if (ends_[0] == nullptr) {
    ends_[0] = nic;
  } else if (ends_[1] == nullptr) {
    ends_[1] = nic;
  } else {
    throw std::logic_error("Link::attach: already has two endpoints");
  }
  nic->attach(this);
}

int Link::direction_of(const Nic& nic) const {
  if (&nic == ends_[0]) return 0;
  if (&nic == ends_[1]) return 1;
  throw std::logic_error("Link: nic not attached");
}

void Link::on_frame_queued(Nic& nic) { try_transmit(direction_of(nic)); }

std::vector<Nic*> Link::attached_nics() const {
  std::vector<Nic*> out;
  for (Nic* nic : ends_) {
    if (nic != nullptr) out.push_back(nic);
  }
  return out;
}

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up_) {
    ++generation_;  // invalidate frames in flight
    busy_ = {false, false};
  } else {
    for (int dir = 0; dir < 2; ++dir) try_transmit(dir);
  }
}

void Link::try_transmit(int dir) {
  if (!up_ || busy_[dir]) return;
  Nic* src = ends_[dir];
  Nic* dst = ends_[1 - dir];
  if (src == nullptr || dst == nullptr) return;
  auto frame = src->dequeue();
  if (!frame) return;

  busy_[dir] = true;
  const double bits = static_cast<double>(frame->size_bytes()) * 8.0;
  const auto serialization = sim::Duration::seconds(bits / bandwidth_bps_);
  const std::uint64_t gen = generation_;

  sim_.schedule_in(serialization, [this, dir, gen, f = *frame] {
    if (gen != generation_) return;  // link went down mid-transmission
    busy_[dir] = false;
    ends_[dir]->note_transmitted(f);
    octets_carried_ += f.size_bytes();
    octets_by_class_[static_cast<std::size_t>(f.packet.traffic_class)] +=
        f.size_bytes();
    try_transmit(dir);
  });
  // Fault injection (scripted loss/corruption/delay windows): the frame
  // still occupied the link for its serialization time; it is lost, damaged,
  // or late in transit.
  const FaultVerdict verdict = apply_fault_hook(*frame);
  if (verdict.drop || verdict.corrupt) return;
  sim_.schedule_in(serialization + propagation_ + verdict.extra_delay,
                   [this, dir, gen, f = *frame] {
    if (gen != generation_) {
      ++frames_dropped_down_;
      return;
    }
    ends_[1 - dir]->deliver(f);
  });
}

Link::~Link() { detach_observability(); }

void Link::attach_observability(obs::Registry& registry,
                                const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  registry.gauge_fn(prefix + ".octets_carried", [this] {
    return static_cast<double>(octets_carried_);
  });
  registry.gauge_fn(prefix + ".frames_dropped_down", [this] {
    return static_cast<double>(frames_dropped_down_);
  });
  registry.gauge_fn(prefix + ".up", [this] { return up_ ? 1.0 : 0.0; });
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    registry.gauge_fn(
        prefix + ".octets." + to_string(static_cast<TrafficClass>(c)),
        [this, c] { return static_cast<double>(octets_by_class_[c]); });
  }
}

void Link::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::net
