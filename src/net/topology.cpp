#include "net/topology.hpp"

#include <deque>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "util/logging.hpp"

namespace netmon::net {

Network::Network(sim::Simulator& sim, util::Rng rng) : sim_(sim), rng_(rng) {}

Host& Network::add_host(const std::string& name) {
  return add_host(name, clk::HostClock(sim_));
}

Host& Network::add_host(const std::string& name, clk::HostClock clock) {
  hosts_.push_back(std::make_unique<Host>(sim_, *this, name, clock));
  return *hosts_.back();
}

Host& Network::add_host(const std::string& name, sim::Duration clock_offset,
                        double drift_ppm, sim::Duration granularity) {
  return add_host(name,
                  clk::HostClock(sim_, clock_offset, drift_ppm, granularity));
}

Router& Network::add_router(const std::string& name) {
  auto router = std::make_unique<Router>(sim_, *this, name,
                                         clk::HostClock(sim_));
  Router& ref = *router;
  hosts_.push_back(std::move(router));
  return ref;
}

SharedSegment& Network::add_segment(const std::string& name,
                                    double bandwidth_bps,
                                    sim::Duration propagation) {
  segments_.push_back(std::make_unique<SharedSegment>(
      sim_, rng_.fork(), name, bandwidth_bps, propagation));
  return *segments_.back();
}

Switch& Network::add_switch(const std::string& name,
                            sim::Duration forwarding_delay) {
  switches_.push_back(
      std::make_unique<Switch>(sim_, *this, name, forwarding_delay));
  return *switches_.back();
}

void Network::register_nic(Nic& nic) {
  if (nic.ip().is_unspecified()) return;
  auto [it, inserted] = ip_to_nic_.emplace(nic.ip(), &nic);
  if (!inserted) {
    throw std::logic_error("Network: duplicate IP " + nic.ip().to_string());
  }
}

Nic& Network::attach(Node& node, SharedSegment& segment, IpAddr ip,
                     int prefix_len, std::size_t tx_queue) {
  Nic& nic = node.add_nic(tx_queue);
  nic.assign_ip(ip, prefix_len);
  segment.attach(&nic);
  register_nic(nic);
  return nic;
}

Nic& Network::attach(Node& node, Switch& sw, IpAddr ip, int prefix_len,
                     double bandwidth_bps, sim::Duration propagation,
                     std::size_t tx_queue) {
  Nic& nic = node.add_nic(tx_queue);
  nic.assign_ip(ip, prefix_len);
  Nic& port = sw.add_port();
  links_.push_back(std::make_unique<Link>(
      sim_, node.name() + "<->" + sw.name(), bandwidth_bps, propagation));
  Link& link = *links_.back();
  link.attach(&nic);
  link.attach(&port);
  register_nic(nic);
  return nic;
}

std::pair<Nic*, Nic*> Network::connect(Node& a, IpAddr ip_a, Node& b,
                                       IpAddr ip_b, int prefix_len,
                                       double bandwidth_bps,
                                       sim::Duration propagation,
                                       std::size_t tx_queue) {
  Nic& na = a.add_nic(tx_queue);
  na.assign_ip(ip_a, prefix_len);
  Nic& nb = b.add_nic(tx_queue);
  nb.assign_ip(ip_b, prefix_len);
  links_.push_back(std::make_unique<Link>(
      sim_, a.name() + "<->" + b.name(), bandwidth_bps, propagation));
  Link& link = *links_.back();
  link.attach(&na);
  link.attach(&nb);
  register_nic(na);
  register_nic(nb);
  return {&na, &nb};
}

void Network::connect(Switch& a, Switch& b, double bandwidth_bps,
                      sim::Duration propagation) {
  Nic& pa = a.add_port();
  Nic& pb = b.add_port();
  links_.push_back(std::make_unique<Link>(
      sim_, a.name() + "<->" + b.name(), bandwidth_bps, propagation));
  Link& link = *links_.back();
  link.attach(&pa);
  link.attach(&pb);
}

std::optional<MacAddr> Network::mac_of(IpAddr ip) const {
  auto it = ip_to_nic_.find(ip);
  if (it == ip_to_nic_.end()) return std::nullopt;
  return it->second->mac();
}

Nic* Network::nic_of(IpAddr ip) const {
  auto it = ip_to_nic_.find(ip);
  return it == ip_to_nic_.end() ? nullptr : it->second;
}

Host* Network::find_host(const std::string& name) const {
  for (const auto& h : hosts_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

Host* Network::host_of(IpAddr ip) const {
  for (const auto& h : hosts_) {
    if (h->owns_ip(ip)) return h.get();
  }
  return nullptr;
}

namespace {
// Minimal union-find over medium indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};
}  // namespace

std::unordered_map<const Medium*, int> Network::compute_l2_domains() const {
  std::vector<const Medium*> media;
  std::unordered_map<const Medium*, std::size_t> index;
  auto add_medium = [&](const Medium* m) {
    if (m != nullptr && index.emplace(m, media.size()).second) {
      media.push_back(m);
    }
  };
  for (const auto& s : segments_) add_medium(s.get());
  for (const auto& l : links_) add_medium(l.get());

  UnionFind uf(media.size());
  for (const auto& sw : switches_) {
    const Medium* first = nullptr;
    for (const auto& port : sw->ports()) {
      const Medium* m = port->medium();
      if (m == nullptr) continue;
      add_medium(m);  // ports always attach to known media, but be safe
      if (first == nullptr) {
        first = m;
      } else {
        uf.unite(index.at(first), index.at(m));
      }
    }
  }

  std::unordered_map<const Medium*, int> domain;
  for (const auto& [m, idx] : index) {
    domain[m] = static_cast<int>(uf.find(idx));
  }
  return domain;
}

void Network::auto_route() {
  prime_switch_tables();
  const auto domain_of_medium = compute_l2_domains();

  struct Attachment {
    Host* node;
    Nic* nic;
  };
  std::map<int, std::vector<Attachment>> by_domain;
  // Node -> (domain -> nic); the nic a node uses to reach that domain.
  std::unordered_map<Host*, std::map<int, Nic*>> node_domains;

  for (const auto& host : hosts_) {
    for (const auto& nic : host->nics()) {
      if (nic->ip().is_unspecified() || nic->medium() == nullptr) continue;
      auto it = domain_of_medium.find(nic->medium());
      if (it == domain_of_medium.end()) continue;
      by_domain[it->second].push_back(Attachment{host.get(), nic.get()});
      node_domains[host.get()].emplace(it->second, nic.get());
    }
  }

  for (const auto& src : hosts_) {
    src->routing().clear();
    // BFS over nodes; for each reachable node remember the egress nic and
    // the gateway nic (first hop's interface in the source's domain).
    struct Entry {
      Nic* out;
      Nic* gateway;  // nullptr means directly attached
    };
    std::unordered_map<Host*, Entry> reach;
    std::deque<Host*> queue;
    reach[src.get()] = Entry{nullptr, nullptr};
    queue.push_back(src.get());

    while (!queue.empty()) {
      Host* cur = queue.front();
      queue.pop_front();
      auto nd = node_domains.find(cur);
      if (nd == node_domains.end()) continue;
      // Only routers forward packets beyond their own interfaces.
      if (cur != src.get() && !cur->forwarding()) continue;
      for (const auto& [dom, cur_nic] : nd->second) {
        for (const Attachment& peer : by_domain[dom]) {
          if (peer.node == cur) continue;
          if (reach.count(peer.node) != 0) continue;
          Entry entry;
          if (cur == src.get()) {
            entry.out = cur_nic;
            entry.gateway = peer.nic;  // candidate first hop
          } else {
            entry = reach[cur];
          }
          reach[peer.node] = entry;
          queue.push_back(peer.node);
        }
      }
    }

    for (const auto& [node, entry] : reach) {
      if (node == src.get() || entry.gateway == nullptr) continue;
      for (const auto& nic : node->nics()) {
        if (nic->ip().is_unspecified()) continue;
        // Direct only when the route target is the first hop's own
        // interface; a destination's far-side address still goes via its
        // near-side interface so MAC resolution stays on this medium.
        const bool direct = entry.gateway->ip() == nic->ip();
        const IpAddr gw = direct ? IpAddr{} : entry.gateway->ip();
        src->routing().add(Prefix(nic->ip(), 32), gw, entry.out);
      }
    }
  }
}

std::vector<const Medium*> Network::route_media(IpAddr src, IpAddr dst) const {
  std::vector<const Medium*> media;
  auto push_unique = [&media](const Medium* m) {
    if (m == nullptr) return;
    for (const Medium* seen : media) {
      if (seen == m) return;
    }
    media.push_back(m);
  };

  std::unordered_map<const Nic*, Switch*> port_owner;
  for (const auto& sw : switches_) {
    for (const auto& port : sw->ports()) port_owner[port.get()] = sw.get();
  }

  // Follow one L3 hop at the L2 layer: from the egress nic, across every
  // switch that forwards toward the hop target's MAC, until the medium the
  // target sits on. Hop-capped for safety against mispatched tables.
  auto walk_l2 = [&](const Nic* from, const Nic* target) {
    const Nic* cur = from;
    for (int hops = 0; hops < 64 && cur != nullptr; ++hops) {
      const Medium* medium = cur->medium();
      if (medium == nullptr) return;
      push_unique(medium);
      const Nic* next = nullptr;
      bool arrived = false;
      for (Nic* nic : medium->attached_nics()) {
        if (nic == cur) continue;
        if (nic == target) {
          arrived = true;
          break;
        }
        auto owner = port_owner.find(nic);
        if (owner == port_owner.end() || next != nullptr) continue;
        Nic* out = owner->second->port_for(target->mac());
        // out == nic would bounce the frame back where it came from — a
        // stale table, not a path; treat as unreachable through here.
        if (out != nullptr && out != nic) next = out;
      }
      if (arrived) return;
      cur = next;  // continue from the forwarding switch's egress port
    }
  };

  const Host* cur = host_of(src);
  for (int hops = 0; hops < 32 && cur != nullptr && !cur->owns_ip(dst);
       ++hops) {
    const auto route = cur->routing().lookup(dst);
    if (!route || route->out == nullptr) break;
    const IpAddr hop_ip =
        route->gateway.is_unspecified() ? dst : route->gateway;
    const Nic* hop_nic = nic_of(hop_ip);
    if (hop_nic == nullptr) break;
    walk_l2(route->out, hop_nic);
    const Host* next = host_of(hop_ip);
    if (next == cur) break;
    cur = next;
  }
  return media;
}

std::size_t Network::route_hops(IpAddr src, IpAddr dst) const {
  std::size_t count = 0;
  const Host* cur = host_of(src);
  for (int hops = 0; hops < 32 && cur != nullptr && !cur->owns_ip(dst);
       ++hops) {
    const auto route = cur->routing().lookup(dst);
    if (!route || route->out == nullptr) break;
    ++count;
    const IpAddr hop_ip =
        route->gateway.is_unspecified() ? dst : route->gateway;
    const Host* next = host_of(hop_ip);
    if (next == nullptr || next == cur) break;
    cur = next;
  }
  return count;
}

std::array<std::uint64_t, kTrafficClassCount> Network::octets_by_class()
    const {
  // One count per L3 hop: every frame is charged at the host/router NIC
  // that transmitted it. Switch-port retransmissions of the same frame are
  // L2 replication, not new load injected by anyone.
  std::array<std::uint64_t, kTrafficClassCount> totals{};
  for (const auto& host : hosts_) {
    for (const auto& nic : host->nics()) {
      for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
        totals[c] += nic->counters().out_octets_by_class[c];
      }
    }
  }
  return totals;
}

void Network::prime_switch_tables() {
  std::unordered_map<const Nic*, Switch*> port_owner;
  for (const auto& sw : switches_) {
    for (const auto& port : sw->ports()) port_owner[port.get()] = sw.get();
  }

  for (const auto& sw : switches_) {
    for (const auto& port : sw->ports()) {
      Medium* start = port->medium();
      if (start == nullptr) continue;
      // Flood-fill the L2 topology reachable through this port (never
      // re-entering this switch) and learn every end-station MAC there.
      std::unordered_set<const Medium*> visited{start};
      std::deque<Medium*> queue{start};
      while (!queue.empty()) {
        Medium* medium = queue.front();
        queue.pop_front();
        for (Nic* nic : medium->attached_nics()) {
          if (nic == port.get()) continue;
          auto owner = port_owner.find(nic);
          if (owner == port_owner.end()) {
            sw->learn(nic->mac(), *port);  // end station
            continue;
          }
          if (owner->second == sw.get()) continue;  // loop back to self
          for (const auto& other_port : owner->second->ports()) {
            Medium* next = other_port->medium();
            if (next != nullptr && visited.insert(next).second) {
              queue.push_back(next);
            }
          }
        }
      }
    }
  }
}

std::uint64_t Network::total_octets() const {
  std::uint64_t sum = 0;
  for (auto v : octets_by_class()) sum += v;
  return sum;
}

void Network::attach_observability(obs::Registry& registry,
                                   const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    registry.gauge_fn(
        prefix + ".octets." + to_string(static_cast<TrafficClass>(c)),
        [this, c] { return static_cast<double>(octets_by_class()[c]); });
  }
  registry.gauge_fn(prefix + ".total_octets", [this] {
    return static_cast<double>(total_octets());
  });
  for (const auto& link : links_) {
    link->attach_observability(registry, prefix + ".link." + link->name());
  }
  for (const auto& segment : segments_) {
    segment->attach_observability(registry,
                                  prefix + ".segment." + segment->name());
  }
}

void Network::detach_observability() {
  if (obs_registry_ == nullptr) return;
  for (const auto& link : links_) link->detach_observability();
  for (const auto& segment : segments_) segment->detach_observability();
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::net
