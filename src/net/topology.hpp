#pragma once

// Network: owns every node, link, segment, and switch in a simulated
// internetwork; allocates MAC addresses and packet ids; resolves next-hop
// IPs to MACs; and computes shortest-path routing tables that individual
// nodes may override (e.g. to create the paper's asymmetric routes).

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/shared_segment.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::net {

// Common capacity presets used by the HiPer-D style testbeds.
namespace bandwidth {
constexpr double kEthernet10 = 10e6;
constexpr double kFddi100 = 100e6;
constexpr double kAtm155 = 155e6;
}  // namespace bandwidth

class Network {
 public:
  Network(sim::Simulator& sim, util::Rng rng);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& simulator() { return sim_; }
  util::Rng& rng() { return rng_; }

  // --- construction -------------------------------------------------------
  // Without an explicit clock the host gets a perfect (zero-offset) clock.
  Host& add_host(const std::string& name);
  Host& add_host(const std::string& name, clk::HostClock clock);
  Host& add_host(const std::string& name, sim::Duration clock_offset,
                 double drift_ppm, sim::Duration granularity);
  Router& add_router(const std::string& name);
  SharedSegment& add_segment(const std::string& name, double bandwidth_bps,
                             sim::Duration propagation = sim::Duration::us(5));
  Switch& add_switch(const std::string& name,
                     sim::Duration forwarding_delay = sim::Duration::us(10));

  // Attach a node to a shared segment with the given address.
  Nic& attach(Node& node, SharedSegment& segment, IpAddr ip, int prefix_len,
              std::size_t tx_queue = 64);
  // Attach a node to a switch via a dedicated full-duplex link.
  Nic& attach(Node& node, Switch& sw, IpAddr ip, int prefix_len,
              double bandwidth_bps = bandwidth::kEthernet10,
              sim::Duration propagation = sim::Duration::us(1),
              std::size_t tx_queue = 64);
  // Direct point-to-point link between two nodes.
  std::pair<Nic*, Nic*> connect(Node& a, IpAddr ip_a, Node& b, IpAddr ip_b,
                                int prefix_len, double bandwidth_bps,
                                sim::Duration propagation = sim::Duration::us(5),
                                std::size_t tx_queue = 64);
  // Link two switches together (trunk).
  void connect(Switch& a, Switch& b, double bandwidth_bps,
               sim::Duration propagation = sim::Duration::us(1));

  // Computes shortest-path (hop count) routes for every node to every
  // assigned address and statically provisions switch MAC tables.
  // Existing table entries are cleared. Call again after topology changes;
  // manual overrides go in afterwards.
  void auto_route();
  // Fills every switch's MAC table from the topology (also done by
  // auto_route) so cold-start unknown-unicast flooding does not occur.
  void prime_switch_tables();

  // --- runtime services ---------------------------------------------------
  MacAddr allocate_mac() { return MacAddr(++next_mac_); }
  std::uint64_t next_packet_id() { return ++next_packet_id_; }
  std::optional<MacAddr> mac_of(IpAddr ip) const;
  Nic* nic_of(IpAddr ip) const;
  Host* find_host(const std::string& name) const;
  Host* host_of(IpAddr ip) const;

  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }
  const std::vector<std::unique_ptr<SharedSegment>>& segments() const {
    return segments_;
  }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  const std::vector<std::unique_ptr<Switch>>& switches() const {
    return switches_;
  }

  // Media (links and segments) a unicast packet from `src` to `dst`
  // traverses, in route order and without duplicates: each L3 hop's egress
  // medium plus every inter-switch trunk the frame crosses, per the current
  // routing tables and (primed) switch MAC tables. Empty when either
  // address is unknown or no route exists. Direction matters — asymmetric
  // routes yield different footprints. The lane scheduler keys on these to
  // keep concurrent probes link-disjoint (DESIGN.md §11).
  std::vector<const Medium*> route_media(IpAddr src, IpAddr dst) const;

  // Number of L3 transmissions a unicast packet from `src` to `dst` takes
  // (1 = direct delivery, +1 per router crossed), per the current routing
  // tables; 0 when either address is unknown or no route exists. This is
  // the multiplier between a flow's single-link rate and its contribution
  // to octets_by_class(), which charges every L3 egress.
  std::size_t route_hops(IpAddr src, IpAddr dst) const;

  // Wire load by traffic class, counted once per L3 hop (egress of hosts
  // and routers; L2 replication inside switches is not double-counted) —
  // the intrusiveness measure of §4.4.
  std::array<std::uint64_t, kTrafficClassCount> octets_by_class() const;
  std::uint64_t total_octets() const;

  // Self-observability (DESIGN.md §10): network-wide per-class octet
  // gauges under "<prefix>.octets.*" plus per-medium groups
  // ("<prefix>.link.<name>.*", "<prefix>.segment.<name>.*"). Call after the
  // topology is built; media added later are not auto-covered.
  void attach_observability(obs::Registry& registry,
                            const std::string& prefix = "net");
  void detach_observability();
  ~Network() { detach_observability(); }

 private:
  void register_nic(Nic& nic);
  // L2 domain id per medium (segments + links merged through switches).
  std::unordered_map<const Medium*, int> compute_l2_domains() const;

  sim::Simulator& sim_;
  util::Rng rng_;
  std::uint64_t next_mac_ = 0x0200'0000'0000ull;
  std::uint64_t next_packet_id_ = 0;

  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<SharedSegment>> segments_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::unordered_map<IpAddr, Nic*> ip_to_nic_;
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::net
