#include "net/nic.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::net {

Nic::Nic(std::string name, MacAddr mac, std::size_t tx_queue_capacity)
    : name_(std::move(name)), mac_(mac), tx_capacity_(tx_queue_capacity) {
  if (tx_capacity_ == 0) throw std::invalid_argument("Nic: zero tx queue");
}

void Nic::assign_ip(IpAddr ip, int prefix_length) {
  ip_ = ip;
  prefix_length_ = prefix_length;
}

void Nic::set_up(bool up) {
  up_ = up;
  if (!up_) {
    counters_.out_drops += tx_queue_.size();
    tx_queue_.clear();
  }
}

bool Nic::enqueue(Frame frame) {
  if (!up_ || tx_queue_.size() >= tx_capacity_) {
    ++counters_.out_drops;
    return false;
  }
  tx_queue_.push_back(std::move(frame));
  if (medium_ != nullptr) medium_->on_frame_queued(*this);
  return true;
}

std::optional<Frame> Nic::dequeue() {
  if (tx_queue_.empty()) return std::nullopt;
  Frame f = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  return f;
}

const Frame* Nic::peek() const {
  return tx_queue_.empty() ? nullptr : &tx_queue_.front();
}

void Nic::drop_head() {
  if (!tx_queue_.empty()) {
    tx_queue_.pop_front();
    ++counters_.out_drops;
  }
}

bool Nic::accepts(const Frame& frame) const {
  if (promiscuous_) return true;
  return frame.dst == mac_ || frame.dst.is_broadcast();
}

void Nic::deliver(const Frame& frame) {
  if (!up_) return;
  if (!accepts(frame)) return;
  ++counters_.in_frames;
  counters_.in_octets += frame.size_bytes();
  const auto cls = static_cast<std::size_t>(frame.packet.traffic_class);
  counters_.in_octets_by_class[cls] += frame.size_bytes();
  for (const auto& tap : taps_) tap(frame);
  if (handler_) {
    handler_(frame);
  } else {
    ++counters_.in_drops;
  }
}

void Nic::note_transmitted(const Frame& frame) {
  ++counters_.out_frames;
  counters_.out_octets += frame.size_bytes();
  const auto cls = static_cast<std::size_t>(frame.packet.traffic_class);
  counters_.out_octets_by_class[cls] += frame.size_bytes();
}

}  // namespace netmon::net
