#include "net/host.hpp"

#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "net/udp.hpp"
#include "util/logging.hpp"

namespace netmon::net {

Node::Node(sim::Simulator& sim, Network& network, std::string name)
    : sim_(sim), network_(network), name_(std::move(name)) {}

Node::~Node() = default;

Nic& Node::add_nic(std::size_t tx_queue_capacity) {
  auto nic = std::make_unique<Nic>(
      name_ + "-eth" + std::to_string(nics_.size()),
      network_.allocate_mac(), tx_queue_capacity);
  nic->set_frame_handler(
      [this, raw = nic.get()](const Frame& f) { handle_frame(*raw, f); });
  nics_.push_back(std::move(nic));
  return *nics_.back();
}

IpAddr Node::primary_ip() const {
  for (const auto& nic : nics_) {
    if (!nic->ip().is_unspecified()) return nic->ip();
  }
  return IpAddr{};
}

bool Node::owns_ip(IpAddr ip) const {
  if (ip.is_unspecified()) return false;
  for (const auto& nic : nics_) {
    if (nic->ip() == ip) return true;
  }
  return false;
}

void Node::set_up(bool up) {
  up_ = up;
  for (auto& nic : nics_) nic->set_up(up);
}

void Node::set_protocol_handler(IpProto proto, PacketHandler handler) {
  proto_handlers_[static_cast<std::size_t>(proto)] = std::move(handler);
}

void Node::handle_frame(Nic& nic, const Frame& frame) {
  (void)nic;
  if (!up_) return;
  handle_ip(frame.packet);
}

void Node::handle_ip(const Packet& packet) {
  ++counters_.ip_in_receives;
  if (owns_ip(packet.dst)) {
    ++counters_.ip_in_delivers;
    auto& handler = proto_handlers_[static_cast<std::size_t>(packet.protocol)];
    if (handler) handler(packet);
    return;
  }
  if (forwarding_) {
    forward(packet);
  }
  // Not for us and not forwarding: silently discard (promiscuous taps see
  // frames through their own handlers, not through the IP layer).
}

bool Node::forward(Packet packet) {
  if (packet.ttl <= 1) {
    ++counters_.ip_ttl_exceeded;
    return false;
  }
  packet.ttl -= 1;
  auto route = routing_.lookup(packet.dst);
  if (!route) {
    ++counters_.ip_no_routes;
    return false;
  }
  ++counters_.ip_forwarded;
  return transmit(std::move(packet), *route);
}

bool Node::send_packet(Packet packet) {
  if (!up_) return false;
  ++counters_.ip_out_requests;
  auto route = routing_.lookup(packet.dst);
  if (!route) {
    ++counters_.ip_no_routes;
    NETMON_DEBUG("net", name_, ": no route to ", packet.dst.to_string());
    return false;
  }
  if (packet.id == 0) packet.id = network_.next_packet_id();
  if (packet.src.is_unspecified()) {
    packet.src = route->out != nullptr && !route->out->ip().is_unspecified()
                     ? route->out->ip()
                     : primary_ip();
  }
  return transmit(std::move(packet), *route);
}

bool Node::transmit(Packet packet, const Route& route) {
  Nic* out = route.out;
  if (out == nullptr || !out->up()) {
    ++counters_.ip_out_discards;
    return false;
  }
  const IpAddr hop =
      route.gateway.is_unspecified() ? packet.dst : route.gateway;
  auto mac = network_.mac_of(hop);
  if (!mac) {
    ++counters_.ip_out_discards;
    NETMON_DEBUG("net", name_, ": cannot resolve next hop ", hop.to_string());
    return false;
  }
  Frame frame{out->mac(), *mac, std::move(packet)};
  if (!out->enqueue(std::move(frame))) {
    // The NIC already counted the drop; mirror it at the IP layer.
    ++counters_.ip_out_discards;
    return false;
  }
  return true;
}

Host::Host(sim::Simulator& sim, Network& network, std::string name,
           clk::HostClock clock)
    : Node(sim, network, std::move(name)), clock_(clock) {
  udp_ = std::make_unique<UdpStack>(*this);
  tcp_ = std::make_unique<TcpStack>(*this);
}

Host::~Host() = default;

}  // namespace netmon::net
