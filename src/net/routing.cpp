#include "net/routing.hpp"

#include <algorithm>

#include "net/nic.hpp"

namespace netmon::net {

void RoutingTable::add(Prefix prefix, IpAddr gateway, Nic* out) {
  routes_.push_back(Route{prefix, gateway, out});
}

void RoutingTable::remove(Prefix prefix) {
  routes_.erase(std::remove_if(routes_.begin(), routes_.end(),
                               [&](const Route& r) { return r.prefix == prefix; }),
                routes_.end());
}

std::optional<Route> RoutingTable::lookup(IpAddr dst) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.length() >= best->prefix.length()) {
      best = &r;  // >= lets later equal-length entries override earlier ones
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::string RoutingTable::to_string() const {
  std::string out;
  for (const Route& r : routes_) {
    out += r.prefix.to_string();
    out += " via ";
    out += r.gateway.is_unspecified() ? "direct" : r.gateway.to_string();
    if (r.out != nullptr) {
      out += " dev ";
      out += r.out->name();
    }
    out += '\n';
  }
  return out;
}

}  // namespace netmon::net
