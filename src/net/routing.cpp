#include "net/routing.hpp"

#include <algorithm>

#include "net/nic.hpp"

namespace netmon::net {

void RoutingTable::add(Prefix prefix, IpAddr gateway, Nic* out) {
  routes_.push_back(Route{prefix, gateway, out});
}

void RoutingTable::remove(Prefix prefix) {
  routes_.erase(std::remove_if(routes_.begin(), routes_.end(),
                               [&](const Route& r) { return r.prefix == prefix; }),
                routes_.end());
}

void RoutingTable::add_standby(Prefix prefix, IpAddr gateway, Nic* out) {
  standby_.push_back(Route{prefix, gateway, out});
}

bool RoutingTable::has_standby(Prefix prefix) const {
  return std::any_of(standby_.begin(), standby_.end(),
                     [&](const Route& r) { return r.prefix == prefix; });
}

bool RoutingTable::swap_standby(Prefix prefix) {
  std::vector<Route> now_standby;
  std::vector<Route> now_active;
  for (const Route& r : routes_) {
    if (r.prefix == prefix) now_standby.push_back(r);
  }
  for (const Route& r : standby_) {
    if (r.prefix == prefix) now_active.push_back(r);
  }
  // The swap is an involution even when one side is empty: a standby /32
  // over a default route swaps in leaving no standby entry, and the swap
  // back returns it. Only a prefix known to neither side is refused.
  if (now_standby.empty() && now_active.empty()) return false;
  remove(prefix);
  standby_.erase(std::remove_if(standby_.begin(), standby_.end(),
                                [&](const Route& r) { return r.prefix == prefix; }),
                 standby_.end());
  routes_.insert(routes_.end(), now_active.begin(), now_active.end());
  standby_.insert(standby_.end(), now_standby.begin(), now_standby.end());
  return true;
}

std::optional<Route> RoutingTable::lookup(IpAddr dst) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.length() >= best->prefix.length()) {
      best = &r;  // >= lets later equal-length entries override earlier ones
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::string RoutingTable::to_string() const {
  std::string out;
  for (const Route& r : routes_) {
    out += r.prefix.to_string();
    out += " via ";
    out += r.gateway.is_unspecified() ? "direct" : r.gateway.to_string();
    if (r.out != nullptr) {
      out += " dev ";
      out += r.out->name();
    }
    out += '\n';
  }
  return out;
}

}  // namespace netmon::net
