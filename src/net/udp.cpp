#include "net/udp.hpp"

#include <stdexcept>

#include "net/host.hpp"

namespace netmon::net {

UdpStack::UdpStack(Host& host) : host_(host) {
  host_.set_protocol_handler(IpProto::kUdp,
                             [this](const Packet& p) { deliver(p); });
}

UdpSocket& UdpStack::bind(std::uint16_t port, UdpSocket::Handler handler) {
  if (port == 0) {
    while (sockets_.count(next_ephemeral_) != 0) {
      ++next_ephemeral_;
      if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
    }
    port = next_ephemeral_++;
  }
  if (sockets_.count(port) != 0) {
    throw std::logic_error(host_.name() + ": UDP port " +
                           std::to_string(port) + " already bound");
  }
  auto socket = std::unique_ptr<UdpSocket>(new UdpSocket(*this, port));
  socket->set_handler(std::move(handler));
  auto [it, inserted] = sockets_.emplace(port, std::move(socket));
  (void)inserted;
  return *it->second;
}

void UdpStack::deliver(const Packet& packet) {
  auto it = sockets_.find(packet.dst_port);
  if (it == sockets_.end()) {
    ++counters_.no_ports;
    return;
  }
  ++counters_.in_datagrams;
  // Copy the handler so a socket closing itself from inside its own
  // callback does not destroy the callable mid-execution.
  if (it->second->handler_) {
    auto handler = it->second->handler_;
    handler(packet);
  }
}

void UdpStack::unbind(std::uint16_t port) { sockets_.erase(port); }

UdpSocket::~UdpSocket() = default;

bool UdpSocket::send_to(IpAddr dst, std::uint16_t dst_port,
                        std::uint32_t payload_bytes,
                        std::shared_ptr<const Payload> payload,
                        TrafficClass traffic_class) {
  Packet p;
  p.dst = dst;
  p.protocol = IpProto::kUdp;
  p.src_port = port_;
  p.dst_port = dst_port;
  p.payload_bytes = payload_bytes;
  p.traffic_class = traffic_class;
  p.payload = std::move(payload);
  ++stack_->counters_.out_datagrams;
  return stack_->host().send_packet(std::move(p));
}

void UdpSocket::close() {
  // unbind() destroys this socket; nothing may touch members afterwards.
  stack_->unbind(port_);
}

}  // namespace netmon::net
