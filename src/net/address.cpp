#include "net/address.hpp"

#include <cstdio>
#include <stdexcept>

namespace netmon::net {

std::string MacAddr::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                unsigned((raw_ >> 40) & 0xFF), unsigned((raw_ >> 32) & 0xFF),
                unsigned((raw_ >> 24) & 0xFF), unsigned((raw_ >> 16) & 0xFF),
                unsigned((raw_ >> 8) & 0xFF), unsigned(raw_ & 0xFF));
  return buf;
}

IpAddr IpAddr::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("IpAddr::parse: malformed address: " + text);
  }
  return IpAddr(std::uint8_t(a), std::uint8_t(b), std::uint8_t(c), std::uint8_t(d));
}

std::string IpAddr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (raw_ >> 24) & 0xFF,
                (raw_ >> 16) & 0xFF, (raw_ >> 8) & 0xFF, raw_ & 0xFF);
  return buf;
}

namespace {
constexpr std::uint32_t mask_for(int length) {
  return length == 0 ? 0u : ~std::uint32_t(0) << (32 - length);
}
}  // namespace

Prefix::Prefix(IpAddr network, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Prefix: length must be in [0,32]");
  }
  network_ = IpAddr(network.raw() & mask_for(length));
}

bool Prefix::contains(IpAddr addr) const {
  return (addr.raw() & mask_for(length_)) == network_.raw();
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace netmon::net
