#pragma once

// Link-layer and network-layer addressing.

#include <compare>
#include <cstdint>
#include <string>

namespace netmon::net {

class MacAddr {
 public:
  constexpr MacAddr() = default;
  explicit constexpr MacAddr(std::uint64_t raw) : raw_(raw & 0xFFFF'FFFF'FFFFull) {}
  static constexpr MacAddr broadcast() { return MacAddr(0xFFFF'FFFF'FFFFull); }

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr bool is_broadcast() const { return raw_ == 0xFFFF'FFFF'FFFFull; }
  std::string to_string() const;

  constexpr auto operator<=>(const MacAddr&) const = default;

 private:
  std::uint64_t raw_ = 0;
};

class IpAddr {
 public:
  constexpr IpAddr() = default;
  explicit constexpr IpAddr(std::uint32_t raw) : raw_(raw) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : raw_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
             (std::uint32_t(c) << 8) | std::uint32_t(d)) {}

  // Parses dotted-quad; throws std::invalid_argument on malformed input.
  static IpAddr parse(const std::string& text);

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr bool is_unspecified() const { return raw_ == 0; }
  std::string to_string() const;

  constexpr auto operator<=>(const IpAddr&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

// CIDR prefix for routing.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(IpAddr network, int length);

  constexpr IpAddr network() const { return network_; }
  constexpr int length() const { return length_; }
  bool contains(IpAddr addr) const;
  std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  IpAddr network_{};
  int length_ = 0;
};

}  // namespace netmon::net

template <>
struct std::hash<netmon::net::IpAddr> {
  std::size_t operator()(const netmon::net::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.raw());
  }
};

template <>
struct std::hash<netmon::net::MacAddr> {
  std::size_t operator()(const netmon::net::MacAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.raw());
  }
};
