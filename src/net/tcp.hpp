#pragma once

// Reliable byte-stream transport ("TCP-lite"): three-way handshake,
// cumulative ACKs, Jacobson RTT estimation with exponential backoff,
// fast retransmit on triple duplicate ACKs, and AIMD congestion control
// (slow start + congestion avoidance). Enough machinery that throughput
// probes over it respond to congestion and loss the way the paper's
// NTTCP-over-TCP runs did.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace netmon::net {

class Host;
class TcpStack;

// TCP segments carry their payload and 64-bit stream offsets as a typed
// payload object; the 32-bit header fields mirror the low bits for
// wire-format verisimilitude.
struct TcpMeta : Payload {
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  bool syn = false;
  bool fin = false;
  bool ack_flag = false;
  bool rst = false;
  std::uint32_t window = 0;
  std::vector<std::byte> data;
};

struct TcpCounters {
  std::uint64_t bytes_sent = 0;      // app bytes handed to send()
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_received = 0;  // app bytes delivered in order
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmissions = 0;
  std::uint64_t timeouts = 0;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,    // our FIN sent, awaiting its ACK
    kCloseWait,  // peer FIN seen, we may still send
  };

  using ReceiveHandler = std::function<void(std::span<const std::byte>)>;
  using EstablishedHandler = std::function<void()>;
  using CloseHandler = std::function<void()>;

  static constexpr std::uint32_t kMss = 1460;
  static constexpr std::uint64_t kDefaultWindow = 256 * 1024;

  ~TcpConnection();

  State state() const { return state_; }
  IpAddr remote_ip() const { return remote_ip_; }
  std::uint16_t remote_port() const { return remote_port_; }
  std::uint16_t local_port() const { return local_port_; }

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }
  void set_established_handler(EstablishedHandler h) {
    on_established_ = std::move(h);
  }
  void set_close_handler(CloseHandler h) { on_close_ = std::move(h); }
  void set_traffic_class(TrafficClass c) { traffic_class_ = c; }

  // Queues application data for reliable in-order delivery.
  void send(std::span<const std::byte> data);
  // Convenience: queues `count` zero bytes (bulk-transfer probes).
  void send_bytes(std::size_t count);

  // Graceful close: FIN goes out once all queued data is acknowledged.
  void close();
  // Abortive close: RST, no further delivery.
  void abort();

  const TcpCounters& counters() const { return counters_; }
  double smoothed_rtt_seconds() const { return srtt_; }
  double congestion_window() const { return cwnd_; }
  std::uint64_t bytes_unacked() const { return snd_nxt_ - snd_una_; }

 private:
  friend class TcpStack;
  TcpConnection(TcpStack& stack, IpAddr remote_ip, std::uint16_t remote_port,
                std::uint16_t local_port);

  void start_connect();
  void on_segment(const Packet& packet, const TcpMeta& meta);
  void enter_established();
  void handle_ack(std::uint64_t ack);
  void handle_data(const TcpMeta& meta);
  void maybe_send_data();
  void send_segment(TcpMeta meta, std::uint32_t payload_bytes);
  void send_control(bool syn, bool ack, bool fin);
  void send_ack();
  void retransmit_head(bool from_timeout);
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void update_rtt(double sample_seconds);
  void maybe_finish_close();
  void notify_closed();

  TcpStack* stack_;
  IpAddr remote_ip_;
  std::uint16_t remote_port_;
  std::uint16_t local_port_;
  State state_ = State::kClosed;
  TrafficClass traffic_class_ = TrafficClass::kApplication;

  // --- sender ---
  std::deque<std::byte> outbound_;  // [snd_una_, snd_una_+size): unacked+unsent
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  double cwnd_ = 2.0 * kMss;
  double ssthresh_ = 64.0 * kMss;
  std::uint64_t peer_window_ = kDefaultWindow;
  // Karn-style RTT timing: one segment timed at a time, never a
  // retransmitted one (cumulative ACKs of data the peer had buffered
  // out-of-order would otherwise inflate the estimate unboundedly).
  bool timing_active_ = false;
  std::uint64_t timing_end_ = 0;
  sim::TimePoint timing_start_{};
  // NewReno-style recovery: partial ACKs below this mark retransmit the
  // next hole immediately instead of waiting out an RTO per hole.
  std::uint64_t recovery_until_ = 0;
  int dup_acks_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::uint64_t fin_seq_ = 0;

  // --- RTO state ---
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double rto_ = 0.2;  // seconds; initial
  int rto_backoff_ = 0;
  sim::EventHandle rto_timer_;

  // --- receiver ---
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::vector<std::byte>> out_of_order_;
  bool peer_fin_seen_ = false;
  std::uint64_t peer_fin_seq_ = 0;

  ReceiveHandler on_receive_;
  EstablishedHandler on_established_;
  CloseHandler on_close_;
  bool close_notified_ = false;

  TcpCounters counters_;
};

class TcpStack {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<TcpConnection>)>;

  explicit TcpStack(Host& host);
  ~TcpStack();

  // Passive open.
  void listen(std::uint16_t port, AcceptHandler handler);
  void stop_listening(std::uint16_t port);

  // Active open; the returned connection reports via its handlers.
  std::shared_ptr<TcpConnection> connect(IpAddr dst, std::uint16_t dst_port);

  Host& host() { return host_; }
  std::size_t active_connections() const { return connections_.size(); }

 private:
  friend class TcpConnection;
  struct ConnKey {
    std::uint32_t remote_ip;
    std::uint16_t remote_port;
    std::uint16_t local_port;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const {
      return std::hash<std::uint64_t>{}(
          (std::uint64_t(k.remote_ip) << 32) |
          (std::uint64_t(k.remote_port) << 16) | k.local_port);
    }
  };

  void deliver(const Packet& packet);
  void send_packet(Packet packet) const;
  void remove(TcpConnection& conn);
  std::uint16_t allocate_port();

  Host& host_;
  std::uint16_t next_ephemeral_ = 32768;
  std::unordered_map<std::uint16_t, AcceptHandler> listeners_;
  std::unordered_map<ConnKey, std::shared_ptr<TcpConnection>, ConnKeyHash>
      connections_;
};

}  // namespace netmon::net
