#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "net/host.hpp"
#include "util/logging.hpp"

namespace netmon::net {

namespace {
constexpr double kMinRto = 0.02;   // 20 ms floor
constexpr double kMaxRto = 60.0;
}  // namespace

// ---------------------------------------------------------------- TcpStack

TcpStack::TcpStack(Host& host) : host_(host) {
  host_.set_protocol_handler(IpProto::kTcp,
                             [this](const Packet& p) { deliver(p); });
}

TcpStack::~TcpStack() {
  // Application handlers routinely capture the connection's own shared_ptr
  // (e.g. an accept callback keeping the accepted connection alive), which
  // forms a reference cycle through the handler. Connections still open at
  // stack teardown can never fire again, so drop their handlers to break
  // those cycles.
  for (auto& [key, conn] : connections_) {
    conn->on_receive_ = nullptr;
    conn->on_established_ = nullptr;
    conn->on_close_ = nullptr;
  }
}

void TcpStack::listen(std::uint16_t port, AcceptHandler handler) {
  if (!listeners_.emplace(port, std::move(handler)).second) {
    throw std::logic_error(host_.name() + ": TCP port " +
                           std::to_string(port) + " already listening");
  }
}

void TcpStack::stop_listening(std::uint16_t port) { listeners_.erase(port); }

std::uint16_t TcpStack::allocate_port() {
  // Ephemeral ports only need to be unique per (remote, local) tuple; a
  // simple rolling counter suffices at simulation scale.
  return next_ephemeral_++;
}

std::shared_ptr<TcpConnection> TcpStack::connect(IpAddr dst,
                                                 std::uint16_t dst_port) {
  const std::uint16_t local = allocate_port();
  auto conn = std::shared_ptr<TcpConnection>(
      new TcpConnection(*this, dst, dst_port, local));
  connections_[ConnKey{dst.raw(), dst_port, local}] = conn;
  conn->start_connect();
  return conn;
}

void TcpStack::deliver(const Packet& packet) {
  auto meta = payload_as<TcpMeta>(packet);
  if (!meta) return;

  const ConnKey key{packet.src.raw(), packet.src_port, packet.dst_port};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->on_segment(packet, *meta);
    return;
  }

  // No connection: a SYN to a listening port performs a passive open.
  if (meta->syn && !meta->ack_flag) {
    auto lit = listeners_.find(packet.dst_port);
    if (lit == listeners_.end()) return;
    auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(
        *this, packet.src, packet.src_port, packet.dst_port));
    conn->state_ = TcpConnection::State::kSynReceived;
    conn->peer_window_ = meta->window;
    connections_[key] = conn;
    // Defer the app notification until the handshake completes.
    auto handler = lit->second;
    conn->set_established_handler([handler, weak = std::weak_ptr(conn)] {
      if (auto c = weak.lock()) handler(c);
    });
    conn->send_control(/*syn=*/true, /*ack=*/true, /*fin=*/false);
    conn->arm_rto();
  }
}

void TcpStack::send_packet(Packet packet) const { host_.send_packet(std::move(packet)); }

void TcpStack::remove(TcpConnection& conn) {
  connections_.erase(
      ConnKey{conn.remote_ip().raw(), conn.remote_port(), conn.local_port()});
}

// ----------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(TcpStack& stack, IpAddr remote_ip,
                             std::uint16_t remote_port,
                             std::uint16_t local_port)
    : stack_(&stack),
      remote_ip_(remote_ip),
      remote_port_(remote_port),
      local_port_(local_port) {}

TcpConnection::~TcpConnection() { cancel_rto(); }

void TcpConnection::start_connect() {
  state_ = State::kSynSent;
  send_control(/*syn=*/true, /*ack=*/false, /*fin=*/false);
  arm_rto();
}

void TcpConnection::send(std::span<const std::byte> data) {
  if (fin_queued_) throw std::logic_error("TcpConnection::send after close()");
  counters_.bytes_sent += data.size();
  outbound_.insert(outbound_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    maybe_send_data();
  }
}

void TcpConnection::send_bytes(std::size_t count) {
  if (fin_queued_) throw std::logic_error("TcpConnection::send after close()");
  counters_.bytes_sent += count;
  outbound_.insert(outbound_.end(), count, std::byte{0});
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    maybe_send_data();
  }
}

void TcpConnection::close() {
  if (fin_queued_ || state_ == State::kClosed) return;
  fin_queued_ = true;
  maybe_send_data();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  TcpMeta meta;
  meta.rst = true;
  meta.seq = snd_nxt_;
  send_segment(std::move(meta), 0);
  state_ = State::kClosed;
  cancel_rto();
  notify_closed();
  stack_->remove(*this);
}

void TcpConnection::send_control(bool syn, bool ack, bool fin) {
  TcpMeta meta;
  meta.syn = syn;
  meta.fin = fin;
  meta.ack_flag = ack;
  meta.seq = snd_nxt_;
  meta.ack = rcv_nxt_;
  meta.window = kDefaultWindow;
  send_segment(std::move(meta), 0);
}

void TcpConnection::send_ack() {
  send_control(/*syn=*/false, /*ack=*/true, /*fin=*/false);
}

void TcpConnection::send_segment(TcpMeta meta, std::uint32_t payload_bytes) {
  Packet p;
  p.dst = remote_ip_;
  p.protocol = IpProto::kTcp;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.payload_bytes = payload_bytes;
  p.traffic_class = traffic_class_;
  p.tcp.seq = static_cast<std::uint32_t>(meta.seq);
  p.tcp.ack = static_cast<std::uint32_t>(meta.ack);
  p.tcp.syn = meta.syn;
  p.tcp.fin = meta.fin;
  p.tcp.ack_flag = meta.ack_flag;
  p.tcp.rst = meta.rst;
  p.tcp.window = meta.window;
  p.payload = std::make_shared<const TcpMeta>(std::move(meta));
  ++counters_.segments_sent;
  stack_->send_packet(std::move(p));
}

void TcpConnection::enter_established() {
  state_ = State::kEstablished;
  rto_backoff_ = 0;
  if (on_established_) on_established_();
  maybe_send_data();
}

void TcpConnection::on_segment(const Packet& packet, const TcpMeta& meta) {
  (void)packet;
  ++counters_.segments_received;

  if (meta.rst) {
    state_ = State::kClosed;
    cancel_rto();
    notify_closed();
    stack_->remove(*this);
    return;
  }

  peer_window_ = std::max<std::uint64_t>(meta.window, kMss);

  switch (state_) {
    case State::kSynSent:
      if (meta.syn && meta.ack_flag) {
        cancel_rto();
        send_ack();
        enter_established();
      }
      return;
    case State::kSynReceived:
      if (meta.ack_flag && !meta.syn) {
        cancel_rto();
        enter_established();
        // Fall through to process any piggybacked data below.
        break;
      }
      return;
    case State::kClosed:
      return;
    default:
      break;
  }

  if (meta.ack_flag) handle_ack(meta.ack);
  if (!meta.data.empty() || meta.fin) handle_data(meta);
  maybe_send_data();
  maybe_finish_close();
}

void TcpConnection::handle_ack(std::uint64_t ack) {
  if (ack > snd_nxt_) return;  // nonsense ack
  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;
    dup_acks_ = 0;
    rto_backoff_ = 0;

    if (timing_active_ && ack >= timing_end_) {
      const auto rtt = stack_->host().simulator().now() - timing_start_;
      update_rtt(rtt.to_seconds());
      timing_active_ = false;
    }

    // Drop acknowledged bytes from the outbound buffer. FIN occupies one
    // sequence number past the data.
    std::uint64_t data_acked = newly;
    if (fin_sent_ && ack > fin_seq_) data_acked -= 1;  // FIN is not data
    data_acked = std::min<std::uint64_t>(data_acked, outbound_.size());
    counters_.bytes_acked += data_acked;
    outbound_.erase(outbound_.begin(),
                    outbound_.begin() + static_cast<std::ptrdiff_t>(data_acked));
    snd_una_ = ack;

    // Congestion control: slow start below ssthresh, else additive increase.
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(std::min<std::uint64_t>(newly, kMss));
    } else {
      cwnd_ += static_cast<double>(kMss) * static_cast<double>(kMss) / cwnd_;
    }

    // NewReno partial-ACK retransmission: while recovering from a loss
    // burst, each advance that stops short of the recovery mark exposes
    // the next hole — fill it now rather than one RTO from now.
    if (ack < recovery_until_) {
      retransmit_head(/*from_timeout=*/false);
    }

    if (snd_una_ == snd_nxt_) {
      cancel_rto();
    } else {
      arm_rto();
    }
  } else if (ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == 3) {
      ++counters_.fast_retransmissions;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * kMss);
      cwnd_ = ssthresh_ + 3.0 * kMss;
      recovery_until_ = snd_nxt_;
      retransmit_head(/*from_timeout=*/false);
    }
  }
}

void TcpConnection::handle_data(const TcpMeta& meta) {
  if (meta.fin) {
    peer_fin_seen_ = true;
    peer_fin_seq_ = meta.seq + meta.data.size();
  }
  if (!meta.data.empty()) {
    const std::uint64_t seg_end = meta.seq + meta.data.size();
    if (seg_end > rcv_nxt_) {
      if (meta.seq <= rcv_nxt_) {
        // In-order (possibly partially duplicate) data.
        const std::uint64_t skip = rcv_nxt_ - meta.seq;
        std::vector<std::byte> fresh(meta.data.begin() +
                                         static_cast<std::ptrdiff_t>(skip),
                                     meta.data.end());
        rcv_nxt_ = seg_end;
        counters_.bytes_received += fresh.size();
        if (on_receive_) on_receive_(fresh);
        // Drain any queued out-of-order segments that are now contiguous.
        for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
          if (it->first > rcv_nxt_) break;
          const std::uint64_t end = it->first + it->second.size();
          if (end > rcv_nxt_) {
            const std::uint64_t s = rcv_nxt_ - it->first;
            std::vector<std::byte> chunk(
                it->second.begin() + static_cast<std::ptrdiff_t>(s),
                it->second.end());
            rcv_nxt_ = end;
            counters_.bytes_received += chunk.size();
            if (on_receive_) on_receive_(chunk);
          }
          it = out_of_order_.erase(it);
        }
      } else {
        out_of_order_.emplace(meta.seq, meta.data);
      }
    }
  }
  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ = peer_fin_seq_ + 1;  // FIN consumes one sequence number
    peer_fin_seen_ = false;
    if (state_ == State::kEstablished) state_ = State::kCloseWait;
    notify_closed();
  }
  send_ack();
}

void TcpConnection::maybe_send_data() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) return;

  const std::uint64_t window =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(cwnd_), peer_window_);
  while (true) {
    const std::uint64_t inflight = snd_nxt_ - snd_una_;
    if (inflight >= window) break;
    const std::uint64_t unsent_offset = snd_nxt_ - snd_una_;
    const std::uint64_t unsent =
        outbound_.size() > unsent_offset ? outbound_.size() - unsent_offset : 0;
    if (unsent == 0) break;
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {unsent, kMss, window - inflight}));
    if (len == 0) break;

    TcpMeta meta;
    meta.seq = snd_nxt_;
    meta.ack = rcv_nxt_;
    meta.ack_flag = true;
    meta.window = kDefaultWindow;
    meta.data.assign(
        outbound_.begin() + static_cast<std::ptrdiff_t>(unsent_offset),
        outbound_.begin() + static_cast<std::ptrdiff_t>(unsent_offset + len));
    if (!timing_active_) {
      timing_active_ = true;
      timing_end_ = snd_nxt_ + len;
      timing_start_ = stack_->host().simulator().now();
    }
    snd_nxt_ += len;
    send_segment(std::move(meta), len);
    arm_rto();
  }

  // FIN once everything queued has been transmitted.
  if (fin_queued_ && !fin_sent_) {
    const std::uint64_t unsent_offset = snd_nxt_ - snd_una_;
    if (unsent_offset >= outbound_.size()) {
      fin_sent_ = true;
      fin_seq_ = snd_nxt_;
      TcpMeta meta;
      meta.seq = snd_nxt_;
      meta.ack = rcv_nxt_;
      meta.ack_flag = true;
      meta.fin = true;
      meta.window = kDefaultWindow;
      snd_nxt_ += 1;
      if (state_ == State::kEstablished) state_ = State::kFinWait;
      send_segment(std::move(meta), 0);
      arm_rto();
    }
  }
}

void TcpConnection::retransmit_head(bool from_timeout) {
  if (snd_una_ == snd_nxt_) return;
  ++counters_.retransmissions;
  timing_active_ = false;  // Karn: never time across a retransmission

  const bool head_is_fin = fin_sent_ && snd_una_ == fin_seq_;
  TcpMeta meta;
  meta.seq = snd_una_;
  meta.ack = rcv_nxt_;
  meta.ack_flag = true;
  meta.window = kDefaultWindow;
  std::uint32_t len = 0;
  if (head_is_fin) {
    meta.fin = true;
  } else {
    len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {outbound_.size(), kMss,
         fin_sent_ ? fin_seq_ - snd_una_ : std::uint64_t(kMss)}));
    meta.data.assign(outbound_.begin(),
                     outbound_.begin() + static_cast<std::ptrdiff_t>(len));
  }
  send_segment(std::move(meta), len);
  if (from_timeout) arm_rto();
}

void TcpConnection::arm_rto() {
  cancel_rto();
  const double rto = std::min(kMaxRto, rto_ * static_cast<double>(1 << std::min(rto_backoff_, 10)));
  rto_timer_ = stack_->host().simulator().schedule_in(
      sim::Duration::seconds(rto), [self = shared_from_this()] { self->on_rto(); });
}

void TcpConnection::cancel_rto() { rto_timer_.cancel(); }

void TcpConnection::on_rto() {
  ++counters_.timeouts;
  ++rto_backoff_;
  switch (state_) {
    case State::kSynSent:
      if (rto_backoff_ > 6) {  // give up connecting
        state_ = State::kClosed;
        notify_closed();
        stack_->remove(*this);
        return;
      }
      send_control(/*syn=*/true, /*ack=*/false, /*fin=*/false);
      arm_rto();
      return;
    case State::kSynReceived:
      send_control(/*syn=*/true, /*ack=*/true, /*fin=*/false);
      arm_rto();
      return;
    case State::kClosed:
      return;
    default:
      break;
  }
  // Data/FIN loss: multiplicative decrease and go back to slow start.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * kMss);
  cwnd_ = kMss;
  dup_acks_ = 0;
  recovery_until_ = snd_nxt_;
  retransmit_head(/*from_timeout=*/true);
}

void TcpConnection::update_rtt(double sample) {
  if (srtt_ == 0.0) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    constexpr double alpha = 1.0 / 8.0;
    constexpr double beta = 1.0 / 4.0;
    rttvar_ = (1 - beta) * rttvar_ + beta * std::abs(srtt_ - sample);
    srtt_ = (1 - alpha) * srtt_ + alpha * sample;
  }
  rto_ = std::max(kMinRto, srtt_ + 4.0 * rttvar_);
}

void TcpConnection::maybe_finish_close() {
  if (state_ == State::kFinWait && fin_sent_ && snd_una_ > fin_seq_) {
    state_ = State::kClosed;
    cancel_rto();
    notify_closed();
    stack_->remove(*this);
  } else if (state_ == State::kCloseWait && fin_sent_ && snd_una_ > fin_seq_) {
    state_ = State::kClosed;
    cancel_rto();
    stack_->remove(*this);
  }
}

void TcpConnection::notify_closed() {
  if (close_notified_) return;
  close_notified_ = true;
  if (on_close_) on_close_();
}

}  // namespace netmon::net
