#pragma once

// Shared broadcast medium (classic half-duplex Ethernet bus). Models carrier
// sense, deferral, binary-exponential-backoff collisions, and excessive-
// collision discard. Every attached interface hears every frame, which is
// what makes passive RMON probing (and media-layer reachability sniffing)
// possible on this medium and impossible on switched links.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/nic.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::net {

struct SegmentStats {
  std::uint64_t frames_carried = 0;
  std::uint64_t octets_carried = 0;
  std::uint64_t broadcast_frames = 0;
  std::uint64_t collisions = 0;
  std::uint64_t excessive_collision_drops = 0;
  std::int64_t busy_nanos = 0;
  std::array<std::uint64_t, kTrafficClassCount> octets_by_class{};
};

class SharedSegment : public Medium {
 public:
  SharedSegment(sim::Simulator& sim, util::Rng rng, std::string name,
                double bandwidth_bps, sim::Duration propagation_delay);

  void attach(Nic* nic) override;
  void on_frame_queued(Nic& nic) override;
  bool is_broadcast_medium() const override { return true; }
  double bandwidth_bps() const override { return bandwidth_bps_; }
  std::vector<Nic*> attached_nics() const override { return nics_; }

  const std::string& name() const { return name_; }
  const SegmentStats& stats() const { return stats_; }
  const std::vector<Nic*>& attached() const { return nics_; }

  // Mean utilization (busy fraction) since the start of the run.
  double utilization(sim::TimePoint now) const;

  // Ethernet contention parameters.
  static constexpr int kMaxAttempts = 16;
  static constexpr int kMaxBackoffExponent = 10;

  // Self-observability (DESIGN.md §10): callback gauges over the segment's
  // existing stats — utilization, collisions, per-class octets — under
  // "<prefix>.". No cost on the contention path.
  void attach_observability(obs::Registry& registry,
                            const std::string& prefix);
  void detach_observability();
  ~SharedSegment();

 private:
  bool medium_busy() const;
  void schedule_contention_check(sim::TimePoint at);
  void contention_check();
  void start_transmission(Nic& nic);
  sim::Duration slot_time() const;

  sim::Simulator& sim_;
  util::Rng rng_;
  std::string name_;
  double bandwidth_bps_;
  sim::Duration propagation_;
  std::vector<Nic*> nics_;
  sim::TimePoint busy_until_{};
  bool check_scheduled_ = false;
  sim::TimePoint check_at_{};
  std::unordered_map<Nic*, int> attempts_;
  std::unordered_map<Nic*, sim::TimePoint> backoff_until_;
  SegmentStats stats_;
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::net
