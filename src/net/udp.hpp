#pragma once

// Connectionless datagram service. SNMP, NTP, NTTCP-UDP, and RTDS all run
// over this; datagram loss emerges from queue drops and collisions in the
// lower layers, never from scripted randomness.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/packet.hpp"

namespace netmon::net {

class Host;
class UdpStack;

struct UdpCounters {
  std::uint64_t in_datagrams = 0;
  std::uint64_t out_datagrams = 0;
  std::uint64_t no_ports = 0;  // datagrams for which no socket was bound
};

class UdpSocket {
 public:
  using Handler = std::function<void(const Packet&)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const { return port_; }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  // Sends a datagram. payload_bytes is the wire size of the payload;
  // `payload` is the typed content (may be null for pure filler traffic).
  bool send_to(IpAddr dst, std::uint16_t dst_port, std::uint32_t payload_bytes,
               std::shared_ptr<const Payload> payload,
               TrafficClass traffic_class);

  void close();

 private:
  friend class UdpStack;
  UdpSocket(UdpStack& stack, std::uint16_t port) : stack_(&stack), port_(port) {}

  UdpStack* stack_;
  std::uint16_t port_;
  Handler handler_;
};

class UdpStack {
 public:
  explicit UdpStack(Host& host);

  // Binds a socket; port 0 picks an ephemeral port. Throws if the port is
  // already bound.
  UdpSocket& bind(std::uint16_t port, UdpSocket::Handler handler);

  const UdpCounters& counters() const { return counters_; }
  Host& host() { return host_; }

 private:
  friend class UdpSocket;
  void deliver(const Packet& packet);
  void unbind(std::uint16_t port);

  Host& host_;
  std::uint16_t next_ephemeral_ = 49152;
  std::unordered_map<std::uint16_t, std::unique_ptr<UdpSocket>> sockets_;
  UdpCounters counters_;
};

}  // namespace netmon::net
