#pragma once

// Network interface: a finite transmit queue plus counters, attached to a
// Medium (point-to-point Link or SharedSegment). The same counters back the
// SNMP interfaces-group MIB variables.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace netmon::net {

class Medium;

struct NicCounters {
  std::uint64_t out_octets = 0;
  std::uint64_t out_frames = 0;
  std::uint64_t out_drops = 0;  // tx queue overflow or interface down
  std::uint64_t in_octets = 0;
  std::uint64_t in_frames = 0;
  std::uint64_t in_drops = 0;
  std::uint64_t collisions = 0;
  std::uint64_t deferrals = 0;
  std::array<std::uint64_t, kTrafficClassCount> out_octets_by_class{};
  std::array<std::uint64_t, kTrafficClassCount> in_octets_by_class{};
};

class Nic {
 public:
  using FrameHandler = std::function<void(const Frame&)>;

  Nic(std::string name, MacAddr mac, std::size_t tx_queue_capacity = 64);

  const std::string& name() const { return name_; }
  MacAddr mac() const { return mac_; }

  IpAddr ip() const { return ip_; }
  int prefix_length() const { return prefix_length_; }
  void assign_ip(IpAddr ip, int prefix_length);
  Prefix subnet() const { return Prefix(ip_, prefix_length_); }

  void attach(Medium* medium) { medium_ = medium; }
  Medium* medium() const { return medium_; }

  bool up() const { return up_; }
  void set_up(bool up);

  // Promiscuous interfaces (RMON probes, switch ports) accept every frame
  // on the medium, not just frames addressed to them.
  bool promiscuous() const { return promiscuous_; }
  void set_promiscuous(bool on) { promiscuous_ = on; }

  void set_frame_handler(FrameHandler handler) { handler_ = std::move(handler); }

  // Taps observe every accepted frame before the main handler (RMON probes,
  // media-layer sniffers). On a promiscuous interface that is all traffic
  // on the medium.
  void add_tap(FrameHandler tap) { taps_.push_back(std::move(tap)); }

  // Host-side transmit entry point; returns false (and counts a drop) when
  // the queue is full or the interface is down.
  bool enqueue(Frame frame);

  // Medium-side queue access.
  bool has_queued() const { return !tx_queue_.empty(); }
  std::optional<Frame> dequeue();
  const Frame* peek() const;
  void drop_head();  // excessive-collision discard
  std::size_t queue_depth() const { return tx_queue_.size(); }
  std::size_t queue_capacity() const { return tx_capacity_; }

  // Medium-side delivery; applies the address filter unless promiscuous.
  void deliver(const Frame& frame);

  // Called by the medium when a frame has fully left this interface.
  void note_transmitted(const Frame& frame);
  void note_collision() { ++counters_.collisions; }
  void note_deferral() { ++counters_.deferrals; }

  const NicCounters& counters() const { return counters_; }

 private:
  bool accepts(const Frame& frame) const;

  std::string name_;
  MacAddr mac_;
  IpAddr ip_{};
  int prefix_length_ = 32;
  bool up_ = true;
  bool promiscuous_ = false;
  std::size_t tx_capacity_;
  std::deque<Frame> tx_queue_;
  Medium* medium_ = nullptr;
  FrameHandler handler_;
  std::vector<FrameHandler> taps_;
  NicCounters counters_;
};

// Fault-injection verdict for one frame, returned by a medium's FaultHook
// (fault::FaultInjector installs these to run scripted loss / corruption /
// delay windows). The frame still occupies the medium for its serialization
// time either way — a lost frame was transmitted, then lost in transit.
struct FaultVerdict {
  bool drop = false;         // lose the frame silently in transit
  bool corrupt = false;      // arrives damaged; fails CRC and is discarded
  sim::Duration extra_delay{};  // added to the propagation delay
};

// Per-frame fault hook consulted by Link and SharedSegment when scheduling
// delivery. Must be deterministic for a given run (seeded RNG inside).
using FaultHook = std::function<FaultVerdict(const Frame&)>;

// Medium-side fault counters, common to Link and SharedSegment.
struct MediumFaultStats {
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_delayed = 0;
};

// A transmission medium connecting interfaces.
class Medium {
 public:
  virtual ~Medium() = default;
  virtual void attach(Nic* nic) = 0;
  // The NIC notifies the medium whenever its queue becomes non-empty.
  virtual void on_frame_queued(Nic& nic) = 0;
  virtual bool is_broadcast_medium() const = 0;
  virtual double bandwidth_bps() const = 0;
  // Interfaces attached to this medium (topology introspection).
  virtual std::vector<Nic*> attached_nics() const = 0;

  // Fault-injection hook; nullptr (the default) means no faults.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  const MediumFaultStats& fault_stats() const { return fault_stats_; }

 protected:
  // Applies the hook to a frame about to be delivered. Returns the verdict
  // and maintains the fault counters.
  FaultVerdict apply_fault_hook(const Frame& frame) {
    FaultVerdict v;
    if (fault_hook_) v = fault_hook_(frame);
    if (v.drop) {
      ++fault_stats_.frames_dropped;
    } else if (v.corrupt) {
      ++fault_stats_.frames_corrupted;
    } else if (!v.extra_delay.is_zero()) {
      ++fault_stats_.frames_delayed;
    }
    return v;
  }
  bool has_fault_hook() const { return static_cast<bool>(fault_hook_); }

 private:
  FaultHook fault_hook_;
  MediumFaultStats fault_stats_;
};

}  // namespace netmon::net
