#include "net/switch.hpp"

#include "net/topology.hpp"

namespace netmon::net {

Switch::Switch(sim::Simulator& sim, Network& network, std::string name,
               sim::Duration forwarding_delay)
    : sim_(sim),
      network_(network),
      name_(std::move(name)),
      forwarding_delay_(forwarding_delay) {}

Nic& Switch::add_port(std::size_t tx_queue_capacity) {
  auto port = std::make_unique<Nic>(
      name_ + "-p" + std::to_string(ports_.size()), network_.allocate_mac(),
      tx_queue_capacity);
  port->set_promiscuous(true);
  port->set_frame_handler(
      [this, raw = port.get()](const Frame& f) { handle_frame(*raw, f); });
  ports_.push_back(std::move(port));
  return *ports_.back();
}

void Switch::handle_frame(Nic& in_port, const Frame& frame) {
  // Frames addressed to the port's own MAC never occur (ports have no IP);
  // everything observed is transit traffic.
  mac_table_[frame.src] = &in_port;

  if (!frame.dst.is_broadcast()) {
    auto it = mac_table_.find(frame.dst);
    if (it != mac_table_.end()) {
      if (it->second != &in_port) {
        ++frames_forwarded_;
        emit(*it->second, frame);
      }
      return;
    }
  }
  // Broadcast or unknown unicast: flood all other ports.
  ++frames_flooded_;
  for (auto& port : ports_) {
    if (port.get() != &in_port) emit(*port, frame);
  }
}

void Switch::emit(Nic& out_port, const Frame& frame) {
  sim_.schedule_in(forwarding_delay_,
                   [&out_port, f = frame]() mutable {
                     out_port.enqueue(std::move(f));
                   });
}

}  // namespace netmon::net
