#pragma once

// Node: an IP endpoint or router (frame reception, local delivery, TTL'd
// forwarding). Host: a Node with a real-time clock and UDP/TCP stacks.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clock/host_clock.hpp"
#include "net/nic.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"

namespace netmon::net {

class Network;
class UdpStack;
class TcpStack;

struct NodeCounters {
  std::uint64_t ip_in_receives = 0;
  std::uint64_t ip_in_delivers = 0;
  std::uint64_t ip_forwarded = 0;
  std::uint64_t ip_out_requests = 0;
  std::uint64_t ip_no_routes = 0;
  std::uint64_t ip_ttl_exceeded = 0;
  std::uint64_t ip_out_discards = 0;
};

class Node {
 public:
  using PacketHandler = std::function<void(const Packet&)>;

  Node(sim::Simulator& sim, Network& network, std::string name);
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }
  Network& network() { return network_; }

  Nic& add_nic(std::size_t tx_queue_capacity = 64);
  const std::vector<std::unique_ptr<Nic>>& nics() const { return nics_; }
  Nic& nic(std::size_t i) { return *nics_.at(i); }
  // First assigned address; the default source for locally originated packets.
  IpAddr primary_ip() const;
  bool owns_ip(IpAddr ip) const;

  RoutingTable& routing() { return routing_; }
  const RoutingTable& routing() const { return routing_; }

  bool forwarding() const { return forwarding_; }
  void set_forwarding(bool on) { forwarding_ = on; }

  bool up() const { return up_; }
  // Failure injection: a down node neither sends, receives, nor forwards.
  void set_up(bool up);

  // Routes, stamps (id/src), and transmits a locally originated packet.
  // Returns false when no route exists or the egress queue is full.
  bool send_packet(Packet packet);

  // Protocol demux for locally addressed packets.
  void set_protocol_handler(IpProto proto, PacketHandler handler);

  const NodeCounters& counters() const { return counters_; }

 protected:
  virtual void handle_frame(Nic& nic, const Frame& frame);
  void handle_ip(const Packet& packet);
  bool forward(Packet packet);
  bool transmit(Packet packet, const Route& route);

  sim::Simulator& sim_;
  Network& network_;
  std::string name_;
  std::vector<std::unique_ptr<Nic>> nics_;
  RoutingTable routing_;
  bool forwarding_ = false;
  bool up_ = true;
  std::array<PacketHandler, 256> proto_handlers_{};
  NodeCounters counters_;
};

class Host : public Node {
 public:
  Host(sim::Simulator& sim, Network& network, std::string name,
       clk::HostClock clock);
  ~Host() override;

  clk::HostClock& clock() { return clock_; }
  const clk::HostClock& clock() const { return clock_; }

  UdpStack& udp() { return *udp_; }
  TcpStack& tcp() { return *tcp_; }

 private:
  clk::HostClock clock_;
  std::unique_ptr<UdpStack> udp_;
  std::unique_ptr<TcpStack> tcp_;
};

// A router is a Node with forwarding enabled and (optionally) a clock for
// its management agent.
class Router : public Host {
 public:
  Router(sim::Simulator& sim, Network& network, std::string name,
         clk::HostClock clock)
      : Host(sim, network, std::move(name), clock) {
    set_forwarding(true);
  }
};

}  // namespace netmon::net
