#pragma once

// Full-duplex point-to-point link (models switched-Ethernet segments between
// two devices, FDDI/ATM-class backbones, and router interconnects). Each
// direction serializes frames at the link rate and delivers after the
// propagation delay. Links can be forced down for failure injection.

#include <array>
#include <cstdint>
#include <string>

#include "net/nic.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon::net {

class Link : public Medium {
 public:
  Link(sim::Simulator& sim, std::string name, double bandwidth_bps,
       sim::Duration propagation_delay);

  void attach(Nic* nic) override;
  void on_frame_queued(Nic& nic) override;
  bool is_broadcast_medium() const override { return false; }
  double bandwidth_bps() const override { return bandwidth_bps_; }
  std::vector<Nic*> attached_nics() const override;

  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  // Bringing a link down drops frames in flight; bringing it back up
  // restarts transmission from the endpoint queues.
  void set_up(bool up);

  std::uint64_t octets_carried() const { return octets_carried_; }
  std::uint64_t frames_dropped_down() const { return frames_dropped_down_; }
  // Octets carried per traffic class — the per-link intrusiveness split
  // (paper §4.4): monitoring vs application bytes on this wire.
  const std::array<std::uint64_t, kTrafficClassCount>& octets_by_class()
      const {
    return octets_by_class_;
  }

  // Self-observability (DESIGN.md §10): per-class carried-octet gauges plus
  // drop counters under "<prefix>." (callback gauges over counters the link
  // already maintains — zero transmit-path cost). Detached by default;
  // removed again on detach/destruction.
  void attach_observability(obs::Registry& registry,
                            const std::string& prefix);
  void detach_observability();
  ~Link();

 private:
  int direction_of(const Nic& nic) const;
  void try_transmit(int dir);

  sim::Simulator& sim_;
  std::string name_;
  double bandwidth_bps_;
  sim::Duration propagation_;
  bool up_ = true;
  std::uint64_t generation_ = 0;  // bumped on down; in-flight frames check it
  std::array<Nic*, 2> ends_{nullptr, nullptr};
  std::array<bool, 2> busy_{false, false};
  std::uint64_t octets_carried_ = 0;
  std::uint64_t frames_dropped_down_ = 0;
  std::array<std::uint64_t, kTrafficClassCount> octets_by_class_{};
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::net
