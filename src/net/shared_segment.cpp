#include "net/shared_segment.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::net {

SharedSegment::SharedSegment(sim::Simulator& sim, util::Rng rng,
                             std::string name, double bandwidth_bps,
                             sim::Duration propagation_delay)
    : sim_(sim),
      rng_(rng),
      name_(std::move(name)),
      bandwidth_bps_(bandwidth_bps),
      propagation_(propagation_delay) {
  if (bandwidth_bps_ <= 0) {
    throw std::invalid_argument("SharedSegment: bandwidth <= 0");
  }
}

void SharedSegment::attach(Nic* nic) {
  if (nic == nullptr) throw std::invalid_argument("SharedSegment: null nic");
  nics_.push_back(nic);
  nic->attach(this);
}

sim::Duration SharedSegment::slot_time() const {
  // Classic Ethernet slot: 512 bit times.
  return sim::Duration::seconds(512.0 / bandwidth_bps_);
}

bool SharedSegment::medium_busy() const { return sim_.now() < busy_until_; }

void SharedSegment::on_frame_queued(Nic& nic) {
  // Carrier sense: an idle medium with no pending contention round lets the
  // station transmit immediately; otherwise resolve at the next check.
  auto it = backoff_until_.find(&nic);
  const bool backing_off = it != backoff_until_.end() && sim_.now() < it->second;
  if (!medium_busy() && !check_scheduled_ && !backing_off) {
    start_transmission(nic);
    return;
  }
  if (medium_busy()) {
    nic.note_deferral();
    schedule_contention_check(busy_until_);
  } else if (backing_off) {
    schedule_contention_check(it->second);
  }
  // If a check is already scheduled the queued frame is picked up there.
}

void SharedSegment::schedule_contention_check(sim::TimePoint at) {
  if (check_scheduled_ && check_at_ <= at) return;
  check_scheduled_ = true;
  check_at_ = at;
  sim_.schedule_at(at, [this] {
    check_scheduled_ = false;
    contention_check();
  });
}

void SharedSegment::contention_check() {
  if (medium_busy()) {
    schedule_contention_check(busy_until_);
    return;
  }
  // Stations whose backoff expired and that have a frame ready.
  std::vector<Nic*> ready;
  sim::TimePoint next_wakeup{};
  bool have_wakeup = false;
  for (Nic* nic : nics_) {
    if (!nic->up() || !nic->has_queued()) continue;
    auto it = backoff_until_.find(nic);
    if (it != backoff_until_.end() && sim_.now() < it->second) {
      if (!have_wakeup || it->second < next_wakeup) {
        next_wakeup = it->second;
        have_wakeup = true;
      }
      continue;
    }
    ready.push_back(nic);
  }

  if (ready.empty()) {
    if (have_wakeup) schedule_contention_check(next_wakeup);
    return;
  }
  if (ready.size() == 1) {
    start_transmission(*ready.front());
    return;
  }

  // Collision: every ready station backs off; the medium is jammed for one
  // slot. Excessive collisions discard the head frame (counted as a drop).
  ++stats_.collisions;
  const auto slot = slot_time();
  busy_until_ = sim_.now() + slot;
  stats_.busy_nanos += slot.nanos();
  for (Nic* nic : ready) {
    nic->note_collision();
    int& attempt = attempts_[nic];
    ++attempt;
    if (attempt > kMaxAttempts) {
      nic->drop_head();
      ++stats_.excessive_collision_drops;
      attempt = 0;
      backoff_until_.erase(nic);
      continue;
    }
    const int exponent = std::min(attempt, kMaxBackoffExponent);
    const std::int64_t slots =
        rng_.uniform_int(0, (std::int64_t(1) << exponent) - 1);
    backoff_until_[nic] = busy_until_ + slot * slots;
  }
  schedule_contention_check(busy_until_);
}

void SharedSegment::start_transmission(Nic& nic) {
  auto frame = nic.dequeue();
  if (!frame) return;
  attempts_[&nic] = 0;
  backoff_until_.erase(&nic);

  const double bits = static_cast<double>(frame->size_bytes()) * 8.0;
  const auto serialization = sim::Duration::seconds(bits / bandwidth_bps_);
  busy_until_ = sim_.now() + serialization;
  stats_.busy_nanos += serialization.nanos();
  ++stats_.frames_carried;
  stats_.octets_carried += frame->size_bytes();
  stats_.octets_by_class[static_cast<std::size_t>(
      frame->packet.traffic_class)] += frame->size_bytes();
  if (frame->dst.is_broadcast()) ++stats_.broadcast_frames;

  nic.note_transmitted(*frame);

  // Fault injection: a dropped or corrupted frame jammed the medium for its
  // serialization time but no station receives it.
  const FaultVerdict verdict = apply_fault_hook(*frame);
  if (!verdict.drop && !verdict.corrupt) {
    const auto delivery = serialization + propagation_ + verdict.extra_delay;
    Nic* sender = &nic;
    sim_.schedule_in(delivery, [this, sender, f = *frame] {
      for (Nic* peer : nics_) {
        if (peer != sender) peer->deliver(f);
      }
    });
  }
  schedule_contention_check(busy_until_);
}

double SharedSegment::utilization(sim::TimePoint now) const {
  if (now.nanos() <= 0) return 0.0;
  return static_cast<double>(stats_.busy_nanos) /
         static_cast<double>(now.nanos());
}

SharedSegment::~SharedSegment() { detach_observability(); }

void SharedSegment::attach_observability(obs::Registry& registry,
                                         const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  registry.gauge_fn(prefix + ".frames_carried", [this] {
    return static_cast<double>(stats_.frames_carried);
  });
  registry.gauge_fn(prefix + ".octets_carried", [this] {
    return static_cast<double>(stats_.octets_carried);
  });
  registry.gauge_fn(prefix + ".collisions", [this] {
    return static_cast<double>(stats_.collisions);
  });
  registry.gauge_fn(prefix + ".excessive_collision_drops", [this] {
    return static_cast<double>(stats_.excessive_collision_drops);
  });
  registry.gauge_fn(prefix + ".utilization",
                    [this] { return utilization(sim_.now()); });
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    registry.gauge_fn(
        prefix + ".octets." + to_string(static_cast<TrafficClass>(c)),
        [this, c] {
          return static_cast<double>(stats_.octets_by_class[c]);
        });
  }
}

void SharedSegment::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::net
