#pragma once

// Learning store-and-forward L2 switch. Unicast frames go only to the
// learned port; unknown destinations and broadcasts flood. A passive probe
// on a switched port therefore cannot observe third-party conversations —
// the paper's §4.3 point that "in a switched environment, sniffing may not
// be possible".

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace netmon::net {

class Network;

class Switch {
 public:
  Switch(sim::Simulator& sim, Network& network, std::string name,
         sim::Duration forwarding_delay = sim::Duration::us(10));

  const std::string& name() const { return name_; }

  Nic& add_port(std::size_t tx_queue_capacity = 128);
  const std::vector<std::unique_ptr<Nic>>& ports() const { return ports_; }

  // Static provisioning (Network::auto_route fills tables from the
  // topology so cold-start unknown-unicast flooding does not distort
  // load measurements; dynamic learning still updates the table).
  void learn(MacAddr mac, Nic& port) { mac_table_[mac] = &port; }

  // Learned egress port for a MAC; nullptr when the address is unknown
  // (a frame for it would flood). Used by Network::route_media to trace
  // the L2 hops a unicast conversation actually occupies.
  Nic* port_for(MacAddr mac) const {
    auto it = mac_table_.find(mac);
    return it == mac_table_.end() ? nullptr : it->second;
  }

  std::size_t mac_table_size() const { return mac_table_.size(); }
  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t frames_flooded() const { return frames_flooded_; }

 private:
  void handle_frame(Nic& in_port, const Frame& frame);
  void emit(Nic& out_port, const Frame& frame);

  sim::Simulator& sim_;
  Network& network_;
  std::string name_;
  sim::Duration forwarding_delay_;
  std::vector<std::unique_ptr<Nic>> ports_;
  std::unordered_map<MacAddr, Nic*> mac_table_;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t frames_flooded_ = 0;
};

}  // namespace netmon::net
