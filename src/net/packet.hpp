#pragma once

// Packet and frame model. Payloads are typed C++ objects shared by pointer
// (zero-copy); wire sizes are accounted for explicitly so byte counters,
// utilization, and intrusiveness measurements reflect real overheads.

#include <cstdint>
#include <memory>
#include <string>

#include "net/address.hpp"

namespace netmon::net {

// Every packet carries the class of traffic it belongs to. Intrusiveness
// (paper §4.4) is measured directly as bytes-on-wire per class.
enum class TrafficClass : std::uint8_t {
  kApplication = 0,  // the monitored workload itself (e.g. RTDS tracks)
  kMonitoring,       // active probes (NTTCP sensors)
  kManagement,       // SNMP requests/responses/traps
  kClockSync,        // NTP exchanges
  kOther,
};
constexpr std::size_t kTrafficClassCount = 5;
const char* to_string(TrafficClass c);

enum class IpProto : std::uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

// Base class for typed application payloads. Receivers downcast with
// payload_as<T>(). The simulated wire carries payload_bytes, not the object.
struct Payload {
  virtual ~Payload() = default;
};

struct TcpHeader {
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool fin = false;
  bool ack_flag = false;
  bool rst = false;
  std::uint32_t window = 0;
};

struct Packet {
  IpAddr src;
  IpAddr dst;
  IpProto protocol = IpProto::kUdp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t payload_bytes = 0;
  std::uint8_t ttl = 64;
  TrafficClass traffic_class = TrafficClass::kApplication;
  std::uint64_t id = 0;  // unique per packet, assigned by the sender's host
  TcpHeader tcp;         // meaningful only when protocol == kTcp
  std::shared_ptr<const Payload> payload;

  static constexpr std::uint32_t kIpHeaderBytes = 20;
  static constexpr std::uint32_t kUdpHeaderBytes = 8;
  static constexpr std::uint32_t kTcpHeaderBytes = 20;

  std::uint32_t header_bytes() const {
    switch (protocol) {
      case IpProto::kTcp: return kIpHeaderBytes + kTcpHeaderBytes;
      case IpProto::kUdp: return kIpHeaderBytes + kUdpHeaderBytes;
      case IpProto::kIcmp: return kIpHeaderBytes + 8;
    }
    return kIpHeaderBytes;
  }
  std::uint32_t size_on_wire() const { return payload_bytes + header_bytes(); }

  std::string describe() const;
};

template <typename T>
std::shared_ptr<const T> payload_as(const Packet& p) {
  return std::dynamic_pointer_cast<const T>(p.payload);
}

struct Frame {
  MacAddr src;
  MacAddr dst;
  Packet packet;

  // Ethernet MAC header + FCS; preamble/IFG are modeled in the medium gap.
  static constexpr std::uint32_t kFrameOverheadBytes = 18;
  static constexpr std::uint32_t kMinFrameBytes = 64;

  std::uint32_t size_bytes() const {
    const std::uint32_t raw = packet.size_on_wire() + kFrameOverheadBytes;
    return raw < kMinFrameBytes ? kMinFrameBytes : raw;
  }
};

}  // namespace netmon::net
