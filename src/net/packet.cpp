#include "net/packet.hpp"

#include <cstdio>

namespace netmon::net {

const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kApplication: return "application";
    case TrafficClass::kMonitoring: return "monitoring";
    case TrafficClass::kManagement: return "management";
    case TrafficClass::kClockSync: return "clock-sync";
    case TrafficClass::kOther: return "other";
  }
  return "?";
}

std::string Packet::describe() const {
  char buf[160];
  const char* proto = protocol == IpProto::kTcp   ? "tcp"
                      : protocol == IpProto::kUdp ? "udp"
                                                  : "icmp";
  std::snprintf(buf, sizeof(buf), "%s %s:%u -> %s:%u len=%u class=%s",
                proto, src.to_string().c_str(), src_port,
                dst.to_string().c_str(), dst_port, payload_bytes,
                to_string(traffic_class));
  return buf;
}

}  // namespace netmon::net
