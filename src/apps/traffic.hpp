#pragma once

// Synthetic load generators: constant-bit-rate and bursty on/off UDP
// sources, plus a counting sink. Used to load segments for the SNMP-loss,
// burst-accuracy, and fidelity experiments.

#include <cstdint>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::apps {

constexpr std::uint16_t kTrafficSinkPort = 6300;

class TrafficSink {
 public:
  TrafficSink(net::Host& host, std::uint16_t port = kTrafficSinkPort);
  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  net::UdpSocket& socket_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

class CbrTraffic {
 public:
  struct Config {
    double rate_bps = 1e6;  // application payload rate
    std::uint32_t packet_bytes = 1024;
    std::uint16_t dst_port = kTrafficSinkPort;
    net::TrafficClass traffic_class = net::TrafficClass::kOther;
  };

  CbrTraffic(net::Host& host, net::IpAddr dst, Config config);

  void start();
  void stop();
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void send_one();

  net::Host& host_;
  net::IpAddr dst_;
  Config config_;
  net::UdpSocket& socket_;
  sim::PeriodicTask task_;
  std::uint64_t packets_sent_ = 0;
};

// Bursty cross-traffic: alternating exponentially-distributed ON periods
// (sending at `rate_bps`) and OFF periods (silent). The "transient
// conditions" that make short measurement bursts unreliable (§5.1.3.1).
class OnOffTraffic {
 public:
  struct Config {
    double rate_bps = 5e6;
    std::uint32_t packet_bytes = 1024;
    sim::Duration mean_on = sim::Duration::ms(200);
    sim::Duration mean_off = sim::Duration::ms(800);
    std::uint16_t dst_port = kTrafficSinkPort;
    net::TrafficClass traffic_class = net::TrafficClass::kOther;
  };

  OnOffTraffic(net::Host& host, net::IpAddr dst, Config config,
               util::Rng rng);

  void start();
  void stop();
  std::uint64_t packets_sent() const { return packets_sent_; }
  bool in_on_period() const { return on_; }

 private:
  void enter_on();
  void enter_off();
  void send_one();

  net::Host& host_;
  net::IpAddr dst_;
  Config config_;
  util::Rng rng_;
  net::UdpSocket& socket_;
  sim::PeriodicTask send_task_;
  sim::EventHandle phase_timer_;
  bool running_ = false;
  bool on_ = false;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace netmon::apps
