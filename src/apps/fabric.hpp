#pragma once

// Parameterized large-topology generator (DESIGN.md §11): a two-tier
// leaf/spine fabric — client and server edge switches, each trunked to
// every spine router — that scales the paper's 9×3 HiPer-D matrix to
// O(10k) application paths. Leaf hosts route to remote edges through a
// deterministically assigned spine (edge index mod spine count), so the
// C·S path matrix spreads across the trunk mesh and link-disjoint probe
// sets of size ≥ spine count exist for the lane scheduler to exploit.
// Hosts get imperfect clocks from a seeded RNG, like apps::Testbed.

#include <memory>
#include <vector>

#include "apps/testbed.hpp"
#include "core/high_fidelity_monitor.hpp"
#include "core/path.hpp"
#include "net/topology.hpp"

namespace netmon::apps {

struct FabricOptions {
  int spines = 4;
  int client_edges = 10;
  int clients_per_edge = 25;
  int server_edges = 5;
  int servers_per_edge = 8;
  double host_bps = net::bandwidth::kFddi100;  // host <-> edge-switch links
  double trunk_bps = net::bandwidth::kAtm155;  // edge <-> spine trunks
  sim::Duration link_delay = sim::Duration::us(5);
  std::uint64_t seed = 42;
  ClockNoise clocks;
  bool install_sinks = true;  // NTTCP sink + echo responder on every host
};

class FabricTestbed {
 public:
  FabricTestbed(sim::Simulator& sim, FabricOptions options);

  net::Network& network() { return network_; }
  sim::Simulator& simulator() { return sim_; }
  const FabricOptions& options() const { return options_; }

  net::Host& server(int i) { return *servers_.at(i); }
  net::Host& client(int i) { return *clients_.at(i); }
  net::Host& station() { return *station_; }
  net::IpAddr server_ip(int i) const { return servers_.at(i)->primary_ip(); }
  net::IpAddr client_ip(int i) const { return clients_.at(i)->primary_ip(); }
  int server_count() const { return static_cast<int>(servers_.size()); }
  int client_count() const { return static_cast<int>(clients_.size()); }
  int path_count() const { return server_count() * client_count(); }

  // Order in which full_matrix emits the C·S sweep. The lane scheduler
  // admits the first gate-admissible queued request, so under kServerMajor
  // a link-disjoint sweep drains the matrix edge by edge and finishes with
  // one edge's paths — which all share a trunk — running serially (a long
  // 1-wide tail), scanning thousands of blocked entries per admission on
  // the way. kStriped rotates consecutive requests across server and
  // client edges so admissible work stays at the queue head and every edge
  // group drains at the same rate.
  enum class SweepOrder {
    kServerMajor,  // nested s, c loops — the paper's fixed sweep
    kStriped,      // consecutive requests touch disjoint edges
  };

  // The S×C application path matrix with the given metrics and priority on
  // every path; with the defaults that is 40×250 = 10000 paths.
  std::vector<core::PathRequest> full_matrix(
      std::vector<core::Metric> metrics,
      core::ProbeClass priority = core::ProbeClass::kNormal,
      SweepOrder order = SweepOrder::kServerMajor) const;
  core::Path path(int server, int client) const;

  // Pre-provisions standby /32 routes for both endpoints of (server,
  // client) through the *next* spine after each edge's designated one —
  // the alternative the control plane's route-failover actuator swaps in
  // (DESIGN.md §12). The /32 longest-prefix-overrides the leaf's default
  // route once swapped active. Requires at least two spines.
  void provision_standby(int server, int client);
  // Standby routes for the whole S×C matrix; returns paths provisioned.
  std::size_t provision_standby_matrix();

  core::SinkSet& sinks() { return sinks_; }

 private:
  clk::HostClock make_clock();

  sim::Simulator& sim_;
  FabricOptions options_;
  util::Rng rng_;
  net::Network network_;
  std::vector<net::Host*> spines_;
  std::vector<net::Switch*> client_switches_;
  std::vector<net::Switch*> server_switches_;
  std::vector<net::Host*> servers_;
  std::vector<net::Host*> clients_;
  net::Host* station_ = nullptr;
  core::SinkSet sinks_;
};

}  // namespace netmon::apps
