#pragma once

// Radar Track Data Server (paper §5.1): the monitored application. The
// server distributes fixed-size track messages to subscribed clients every
// period (HiPer-D values: L = 8192 bytes, P = 30 ms). Clients subscribe
// over UDP and track arrival gaps; the resource manager moves the service
// to another pool host when the monitor reports failure.

#include <cstdint>
#include <map>
#include <optional>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace netmon::apps {

constexpr std::uint16_t kRtdsPort = 6200;

struct TrackMessage : net::Payload {
  std::uint64_t seq = 0;
  sim::TimePoint sent_local;  // server clock
};

struct RtdsControl : net::Payload {
  bool subscribe = true;
};

class RtdsServer {
 public:
  struct Config {
    std::uint32_t message_length = 8192;          // L
    sim::Duration period = sim::Duration::ms(30);  // P
    std::uint16_t port = kRtdsPort;
    // Idle subscribers are dropped after this many periods without a
    // refreshing subscribe (clients re-subscribe periodically).
    int subscriber_ttl_periods = 200;
  };

  RtdsServer(net::Host& host, Config config);

  void start();
  void stop();
  bool running() const { return running_; }
  net::Host& host() { return host_; }
  const Config& config() const { return config_; }

  std::size_t subscriber_count() const { return subscribers_.size(); }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  struct Subscriber {
    std::uint16_t port;
    int ttl;
  };

  void on_control(const net::Packet& packet);
  void tick();

  net::Host& host_;
  Config config_;
  net::UdpSocket& socket_;
  std::map<net::IpAddr, Subscriber> subscribers_;
  sim::PeriodicTask task_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t messages_sent_ = 0;
};

class RtdsClient {
 public:
  struct Config {
    std::uint16_t server_port = kRtdsPort;
    sim::Duration resubscribe_interval = sim::Duration::sec(1);
    // An inter-arrival gap beyond this counts as a service interruption.
    sim::Duration gap_threshold = sim::Duration::ms(200);
  };

  RtdsClient(net::Host& host, Config config);

  // (Re)binds to a server; called at startup and by failover logic.
  void connect(net::IpAddr server);
  void disconnect();

  net::Host& host() { return host_; }
  net::IpAddr server() const { return server_; }
  std::uint64_t tracks_received() const { return tracks_received_; }
  std::uint64_t gaps() const { return gaps_; }
  // Longest observed interruption of the track stream.
  sim::Duration longest_gap() const { return longest_gap_; }
  std::optional<sim::Duration> time_since_last_track() const;
  const util::Accumulator& interarrival_seconds() const { return interarrival_; }

 private:
  void on_datagram(const net::Packet& packet);
  void send_subscribe();

  net::Host& host_;
  Config config_;
  net::UdpSocket& socket_;
  net::IpAddr server_{};
  sim::PeriodicTask resubscribe_task_;
  std::uint64_t tracks_received_ = 0;
  std::uint64_t gaps_ = 0;
  sim::Duration longest_gap_{};
  std::optional<sim::TimePoint> last_arrival_;
  util::Accumulator interarrival_;
};

}  // namespace netmon::apps
