#include "apps/fabric.hpp"

#include <stdexcept>
#include <string>

#include "apps/rtds.hpp"

namespace netmon::apps {

namespace {
clk::HostClock noisy_clock(sim::Simulator& sim, util::Rng& rng,
                           const ClockNoise& noise) {
  const auto spread = noise.offset_spread.nanos();
  const auto offset = sim::Duration::ns(
      spread == 0 ? 0 : rng.uniform_int(-spread, spread));
  const double drift =
      rng.uniform(-noise.drift_ppm_spread, noise.drift_ppm_spread);
  return clk::HostClock(sim, offset, drift, noise.granularity);
}
}  // namespace

FabricTestbed::FabricTestbed(sim::Simulator& sim, FabricOptions options)
    : sim_(sim),
      options_(options),
      rng_(options.seed),
      network_(sim, util::Rng(options.seed ^ 0xFAB)) {
  if (options_.spines < 1 || options_.spines > 55 ||
      options_.client_edges < 1 || options_.client_edges > 255 ||
      options_.server_edges < 1 || options_.server_edges > 255 ||
      options_.clients_per_edge < 1 || options_.clients_per_edge > 199 ||
      options_.servers_per_edge < 1 || options_.servers_per_edge > 199) {
    throw std::invalid_argument("FabricTestbed: options out of range");
  }

  for (int s = 0; s < options_.spines; ++s) {
    spines_.push_back(&network_.add_router("spine" + std::to_string(s)));
  }

  // One edge switch whose L2 domain is the 10.<net_octet>.<edge>.0/24
  // subnet: its leaf hosts plus one trunk interface per spine router.
  auto build_edge = [this](const std::string& name, int net_octet,
                           int edge) -> net::Switch& {
    net::Switch& sw = network_.add_switch(name);
    for (int s = 0; s < options_.spines; ++s) {
      network_.attach(*spines_[static_cast<std::size_t>(s)], sw,
                      net::IpAddr(10, static_cast<std::uint8_t>(net_octet),
                                  static_cast<std::uint8_t>(edge),
                                  static_cast<std::uint8_t>(200 + s)),
                      24, options_.trunk_bps, options_.link_delay);
    }
    return sw;
  };

  for (int e = 0; e < options_.client_edges; ++e) {
    net::Switch& sw = build_edge("cedge" + std::to_string(e), 1, e);
    client_switches_.push_back(&sw);
    for (int i = 0; i < options_.clients_per_edge; ++i) {
      const int index = e * options_.clients_per_edge + i;
      net::Host& host =
          network_.add_host("client" + std::to_string(index), make_clock());
      network_.attach(host, sw,
                      net::IpAddr(10, 1, static_cast<std::uint8_t>(e),
                                  static_cast<std::uint8_t>(i + 1)),
                      24, options_.host_bps, options_.link_delay);
      clients_.push_back(&host);
    }
  }
  for (int e = 0; e < options_.server_edges; ++e) {
    net::Switch& sw = build_edge("sedge" + std::to_string(e), 2, e);
    server_switches_.push_back(&sw);
    for (int i = 0; i < options_.servers_per_edge; ++i) {
      const int index = e * options_.servers_per_edge + i;
      net::Host& host =
          network_.add_host("server" + std::to_string(index), make_clock());
      network_.attach(host, sw,
                      net::IpAddr(10, 2, static_cast<std::uint8_t>(e),
                                  static_cast<std::uint8_t>(i + 1)),
                      24, options_.host_bps, options_.link_delay);
      servers_.push_back(&host);
    }
  }
  net::Switch& station_switch = build_edge("medge", 3, 0);
  station_ = &network_.add_host("station", make_clock());
  network_.attach(*station_, station_switch, net::IpAddr(10, 3, 0, 1), 24,
                  options_.host_bps, options_.link_delay);

  network_.auto_route();

  // auto_route's BFS funnels every inter-edge path through the first spine
  // discovered. Re-point each leaf at its edge's designated spine (edge
  // index mod spine count) instead: intra-edge traffic stays direct on the
  // /24, everything else takes the default route through that spine — so
  // the path matrix spreads deterministically across the trunk mesh.
  auto assign_spine = [this](net::Host& host, int net_octet, int edge) {
    const int s = edge % options_.spines;
    net::Nic* nic = host.nics().front().get();
    host.routing().clear();
    host.routing().add(net::Prefix(nic->ip(), 24), net::IpAddr{}, nic);
    host.routing().add(
        net::Prefix(net::IpAddr{}, 0),
        net::IpAddr(10, static_cast<std::uint8_t>(net_octet),
                    static_cast<std::uint8_t>(edge),
                    static_cast<std::uint8_t>(200 + s)),
        nic);
  };
  for (int e = 0; e < options_.client_edges; ++e) {
    for (int i = 0; i < options_.clients_per_edge; ++i) {
      assign_spine(*clients_[static_cast<std::size_t>(
                       e * options_.clients_per_edge + i)],
                   1, e);
    }
  }
  for (int e = 0; e < options_.server_edges; ++e) {
    for (int i = 0; i < options_.servers_per_edge; ++i) {
      assign_spine(*servers_[static_cast<std::size_t>(
                       e * options_.servers_per_edge + i)],
                   2, e);
    }
  }
  assign_spine(*station_, 3, 0);

  if (options_.install_sinks) {
    for (net::Host* host : servers_) sinks_.install(*host);
    for (net::Host* host : clients_) sinks_.install(*host);
  }
}

clk::HostClock FabricTestbed::make_clock() {
  return noisy_clock(sim_, rng_, options_.clocks);
}

core::Path FabricTestbed::path(int server, int client) const {
  return core::Path(
      core::ProcessEndpoint{"rtds-server", servers_.at(server)->primary_ip(),
                            kRtdsPort},
      core::ProcessEndpoint{"rtds-client", clients_.at(client)->primary_ip(),
                            kRtdsPort});
}

void FabricTestbed::provision_standby(int server, int client) {
  if (options_.spines < 2) {
    throw std::logic_error("FabricTestbed: standby routes need >= 2 spines");
  }
  net::Host& s_host = *servers_.at(server);
  net::Host& c_host = *clients_.at(client);
  const int se = server / options_.servers_per_edge;
  const int ce = client / options_.clients_per_edge;
  // One spine past the edge's designated one (assign_spine's edge % spines).
  const int s_alt = (se % options_.spines + 1) % options_.spines;
  const int c_alt = (ce % options_.spines + 1) % options_.spines;
  s_host.routing().add_standby(
      net::Prefix(c_host.primary_ip(), 32),
      net::IpAddr(10, 2, static_cast<std::uint8_t>(se),
                  static_cast<std::uint8_t>(200 + s_alt)),
      s_host.nics().front().get());
  c_host.routing().add_standby(
      net::Prefix(s_host.primary_ip(), 32),
      net::IpAddr(10, 1, static_cast<std::uint8_t>(ce),
                  static_cast<std::uint8_t>(200 + c_alt)),
      c_host.nics().front().get());
}

std::size_t FabricTestbed::provision_standby_matrix() {
  for (int s = 0; s < server_count(); ++s) {
    for (int c = 0; c < client_count(); ++c) provision_standby(s, c);
  }
  return static_cast<std::size_t>(server_count()) *
         static_cast<std::size_t>(client_count());
}

std::vector<core::PathRequest> FabricTestbed::full_matrix(
    std::vector<core::Metric> metrics, core::ProbeClass priority,
    SweepOrder order) const {
  const int s_count = server_count();
  const int c_count = client_count();
  std::vector<core::PathRequest> out;
  out.reserve(static_cast<std::size_t>(s_count) *
              static_cast<std::size_t>(c_count));
  if (order == SweepOrder::kServerMajor) {
    for (int s = 0; s < s_count; ++s) {
      for (int c = 0; c < c_count; ++c) {
        out.push_back(core::PathRequest{path(s, c), metrics, priority});
      }
    }
    return out;
  }
  // kStriped: walk host slot k through the edges round-robin (edge k mod E,
  // member k div E) so consecutive slots sit on different edge switches;
  // offsetting each server's client sweep by its slot keeps the concurrent
  // per-server cursors on different client edges too. Each (s, c) pair is
  // emitted exactly once.
  const auto rotated = [](int k, int edges, int per_edge) {
    return (k % edges) * per_edge + k / edges;
  };
  for (int i = 0; i < s_count * c_count; ++i) {
    const int slot = i % s_count;
    const int round = i / s_count;
    const int s = rotated(slot, options_.server_edges,
                          options_.servers_per_edge);
    const int c = rotated((round + slot) % c_count, options_.client_edges,
                          options_.clients_per_edge);
    out.push_back(core::PathRequest{path(s, c), metrics, priority});
  }
  return out;
}

}  // namespace netmon::apps
