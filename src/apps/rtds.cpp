#include "apps/rtds.hpp"

#include <memory>

#include "util/logging.hpp"

namespace netmon::apps {

RtdsServer::RtdsServer(net::Host& host, Config config)
    : host_(host),
      config_(config),
      socket_(host.udp().bind(
          config_.port, [this](const net::Packet& p) { on_control(p); })) {}

void RtdsServer::on_control(const net::Packet& packet) {
  auto control = net::payload_as<RtdsControl>(packet);
  if (!control) return;
  if (control->subscribe) {
    subscribers_[packet.src] =
        Subscriber{packet.src_port, config_.subscriber_ttl_periods};
  } else {
    subscribers_.erase(packet.src);
  }
}

void RtdsServer::start() {
  if (running_) return;
  running_ = true;
  task_ = sim::PeriodicTask(host_.simulator(), config_.period,
                            [this] { tick(); });
}

void RtdsServer::stop() {
  running_ = false;
  task_.cancel();
}

void RtdsServer::tick() {
  if (!host_.up()) return;
  auto track = std::make_shared<TrackMessage>();
  track->seq = next_seq_++;
  track->sent_local = host_.clock().local_now();
  for (auto it = subscribers_.begin(); it != subscribers_.end();) {
    if (--it->second.ttl <= 0) {
      it = subscribers_.erase(it);
      continue;
    }
    socket_.send_to(it->first, it->second.port, config_.message_length,
                    track, net::TrafficClass::kApplication);
    ++messages_sent_;
    ++it;
  }
}

RtdsClient::RtdsClient(net::Host& host, Config config)
    : host_(host),
      config_(config),
      socket_(host.udp().bind(
          0, [this](const net::Packet& p) { on_datagram(p); })) {}

void RtdsClient::connect(net::IpAddr server) {
  server_ = server;
  send_subscribe();
  resubscribe_task_ =
      sim::PeriodicTask(host_.simulator(), config_.resubscribe_interval,
                        [this] { send_subscribe(); });
}

void RtdsClient::disconnect() {
  resubscribe_task_.cancel();
  if (!server_.is_unspecified()) {
    auto control = std::make_shared<RtdsControl>();
    control->subscribe = false;
    socket_.send_to(server_, config_.server_port, 16, std::move(control),
                    net::TrafficClass::kApplication);
  }
  server_ = net::IpAddr{};
}

void RtdsClient::send_subscribe() {
  if (server_.is_unspecified()) return;
  auto control = std::make_shared<RtdsControl>();
  control->subscribe = true;
  socket_.send_to(server_, config_.server_port, 16, std::move(control),
                  net::TrafficClass::kApplication);
}

void RtdsClient::on_datagram(const net::Packet& packet) {
  auto track = net::payload_as<TrackMessage>(packet);
  if (!track) return;
  const auto now = host_.simulator().now();
  if (last_arrival_) {
    const auto gap = now - *last_arrival_;
    interarrival_.add(gap.to_seconds());
    if (gap > config_.gap_threshold) {
      ++gaps_;
      if (gap > longest_gap_) longest_gap_ = gap;
    }
  }
  last_arrival_ = now;
  ++tracks_received_;
}

std::optional<sim::Duration> RtdsClient::time_since_last_track() const {
  if (!last_arrival_) return std::nullopt;
  return host_.simulator().now() - *last_arrival_;
}

}  // namespace netmon::apps
