#include "apps/traffic.hpp"

namespace netmon::apps {

TrafficSink::TrafficSink(net::Host& host, std::uint16_t port)
    : socket_(host.udp().bind(port, [this](const net::Packet& p) {
        ++packets_;
        bytes_ += p.payload_bytes;
      })) {}

CbrTraffic::CbrTraffic(net::Host& host, net::IpAddr dst, Config config)
    : host_(host),
      dst_(dst),
      config_(config),
      socket_(host.udp().bind(0, nullptr)) {}

void CbrTraffic::start() {
  const double packets_per_second =
      config_.rate_bps / (8.0 * config_.packet_bytes);
  const auto period = sim::Duration::seconds(1.0 / packets_per_second);
  task_ = sim::PeriodicTask(host_.simulator(), period, [this] { send_one(); });
}

void CbrTraffic::stop() { task_.cancel(); }

void CbrTraffic::send_one() {
  socket_.send_to(dst_, config_.dst_port, config_.packet_bytes, nullptr,
                  config_.traffic_class);
  ++packets_sent_;
}

OnOffTraffic::OnOffTraffic(net::Host& host, net::IpAddr dst, Config config,
                           util::Rng rng)
    : host_(host),
      dst_(dst),
      config_(config),
      rng_(rng),
      socket_(host.udp().bind(0, nullptr)) {}

void OnOffTraffic::start() {
  running_ = true;
  enter_off();
}

void OnOffTraffic::stop() {
  running_ = false;
  send_task_.cancel();
  phase_timer_.cancel();
  on_ = false;
}

void OnOffTraffic::enter_on() {
  if (!running_) return;
  on_ = true;
  const double packets_per_second =
      config_.rate_bps / (8.0 * config_.packet_bytes);
  send_task_ = sim::PeriodicTask(
      host_.simulator(), sim::Duration::seconds(1.0 / packets_per_second),
      [this] { send_one(); });
  const auto on_for =
      sim::Duration::seconds(rng_.exponential(config_.mean_on.to_seconds()));
  phase_timer_ = host_.simulator().schedule_in(on_for, [this] {
    send_task_.cancel();
    enter_off();
  });
}

void OnOffTraffic::enter_off() {
  if (!running_) return;
  on_ = false;
  const auto off_for =
      sim::Duration::seconds(rng_.exponential(config_.mean_off.to_seconds()));
  phase_timer_ = host_.simulator().schedule_in(off_for, [this] { enter_on(); });
}

void OnOffTraffic::send_one() {
  socket_.send_to(dst_, config_.dst_port, config_.packet_bytes, nullptr,
                  config_.traffic_class);
  ++packets_sent_;
}

}  // namespace netmon::apps
