#pragma once

// Reusable testbeds modeled on the HiPer-D configuration (paper §1, §5.1):
//   * Testbed — a switched FDDI/ATM-class backbone with S servers, C
//     clients, and a monitor/management station (the 27-path matrix setup).
//   * SharedLanTestbed — hosts on one shared 10 Mb/s Ethernet segment (the
//     COTS management experiments of §5.2.3, where RMON probes can sniff).
// Hosts get imperfect clocks (offset, drift, granularity) from a seeded RNG
// so every clock-sensitive result is reproducible.

#include <memory>
#include <vector>

#include "core/high_fidelity_monitor.hpp"
#include "core/path.hpp"
#include "net/topology.hpp"
#include "snmp/agent.hpp"

namespace netmon::apps {

struct ClockNoise {
  sim::Duration offset_spread = sim::Duration::ms(10);  // uniform +-spread
  double drift_ppm_spread = 20.0;                       // uniform +-spread
  sim::Duration granularity = sim::Duration::us(1);
};

struct TestbedOptions {
  int servers = 3;
  int clients = 9;
  double backbone_bps = net::bandwidth::kFddi100;
  sim::Duration link_delay = sim::Duration::us(5);
  std::uint64_t seed = 42;
  ClockNoise clocks;
  bool install_agents = true;  // SNMP agent on every host
  bool install_sinks = true;   // NTTCP sink + echo responder on every host
};

class Testbed {
 public:
  Testbed(sim::Simulator& sim, TestbedOptions options);

  net::Network& network() { return network_; }
  sim::Simulator& simulator() { return sim_; }
  const TestbedOptions& options() const { return options_; }

  net::Host& server(int i) { return *servers_.at(i); }
  net::Host& client(int i) { return *clients_.at(i); }
  net::Host& station() { return *station_; }
  net::IpAddr server_ip(int i) const { return servers_.at(i)->primary_ip(); }
  net::IpAddr client_ip(int i) const { return clients_.at(i)->primary_ip(); }
  int server_count() const { return static_cast<int>(servers_.size()); }
  int client_count() const { return static_cast<int>(clients_.size()); }

  // The S×C application path matrix with the given metrics on every path.
  std::vector<core::PathRequest> full_matrix(
      std::vector<core::Metric> metrics) const;
  core::Path path(int server, int client) const;

  core::SinkSet& sinks() { return sinks_; }

 private:
  clk::HostClock make_clock();

  sim::Simulator& sim_;
  TestbedOptions options_;
  util::Rng rng_;
  net::Network network_;
  net::Switch* backbone_ = nullptr;
  std::vector<net::Host*> servers_;
  std::vector<net::Host*> clients_;
  net::Host* station_ = nullptr;
  std::vector<std::unique_ptr<snmp::Agent>> agents_;
  core::SinkSet sinks_;
};

struct SharedLanOptions {
  int hosts = 6;
  double bandwidth_bps = net::bandwidth::kEthernet10;
  sim::Duration propagation = sim::Duration::us(5);
  std::uint64_t seed = 42;
  ClockNoise clocks;
  bool install_agents = true;
  bool install_sinks = true;
  // Adds an extra host intended to carry an rmon::Probe.
  bool add_probe_host = true;
};

class SharedLanTestbed {
 public:
  SharedLanTestbed(sim::Simulator& sim, SharedLanOptions options);

  net::Network& network() { return network_; }
  net::SharedSegment& segment() { return *segment_; }
  net::Host& host(int i) { return *hosts_.at(i); }
  net::IpAddr host_ip(int i) const { return hosts_.at(i)->primary_ip(); }
  int host_count() const { return static_cast<int>(hosts_.size()); }
  // Management station (distinct from the numbered hosts).
  net::Host& station() { return *station_; }
  // Present when add_probe_host; carries no agent or sink by default.
  net::Host& probe_host() { return *probe_host_; }

  core::SinkSet& sinks() { return sinks_; }

 private:
  clk::HostClock make_clock();

  sim::Simulator& sim_;
  SharedLanOptions options_;
  util::Rng rng_;
  net::Network network_;
  net::SharedSegment* segment_ = nullptr;
  std::vector<net::Host*> hosts_;
  net::Host* station_ = nullptr;
  net::Host* probe_host_ = nullptr;
  std::vector<std::unique_ptr<snmp::Agent>> agents_;
  core::SinkSet sinks_;
};

}  // namespace netmon::apps
