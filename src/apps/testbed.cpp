#include "apps/testbed.hpp"

#include "apps/rtds.hpp"

namespace netmon::apps {

namespace {
clk::HostClock noisy_clock(sim::Simulator& sim, util::Rng& rng,
                           const ClockNoise& noise) {
  const auto spread = noise.offset_spread.nanos();
  const auto offset = sim::Duration::ns(
      spread == 0 ? 0 : rng.uniform_int(-spread, spread));
  const double drift =
      rng.uniform(-noise.drift_ppm_spread, noise.drift_ppm_spread);
  return clk::HostClock(sim, offset, drift, noise.granularity);
}
}  // namespace

Testbed::Testbed(sim::Simulator& sim, TestbedOptions options)
    : sim_(sim),
      options_(options),
      rng_(options.seed),
      network_(sim, util::Rng(options.seed ^ 0xBEEF)) {
  backbone_ = &network_.add_switch("backbone");

  station_ = &network_.add_host("station", make_clock());
  network_.attach(*station_, *backbone_, net::IpAddr(10, 0, 0, 1), 16,
                  options_.backbone_bps, options_.link_delay);

  for (int i = 0; i < options_.servers; ++i) {
    net::Host& host =
        network_.add_host("server" + std::to_string(i), make_clock());
    network_.attach(host, *backbone_,
                    net::IpAddr(10, 0, 1, static_cast<std::uint8_t>(i + 1)),
                    16, options_.backbone_bps, options_.link_delay);
    servers_.push_back(&host);
  }
  for (int i = 0; i < options_.clients; ++i) {
    net::Host& host =
        network_.add_host("client" + std::to_string(i), make_clock());
    network_.attach(host, *backbone_,
                    net::IpAddr(10, 0, 2, static_cast<std::uint8_t>(i + 1)),
                    16, options_.backbone_bps, options_.link_delay);
    clients_.push_back(&host);
  }
  network_.auto_route();

  if (options_.install_agents) {
    for (const auto& host : network_.hosts()) {
      agents_.push_back(std::make_unique<snmp::Agent>(*host));
    }
  }
  if (options_.install_sinks) {
    for (net::Host* host : servers_) sinks_.install(*host);
    for (net::Host* host : clients_) sinks_.install(*host);
  }
}

clk::HostClock Testbed::make_clock() {
  return noisy_clock(sim_, rng_, options_.clocks);
}

core::Path Testbed::path(int server, int client) const {
  return core::Path(
      core::ProcessEndpoint{"rtds-server", servers_.at(server)->primary_ip(),
                            kRtdsPort},
      core::ProcessEndpoint{"rtds-client", clients_.at(client)->primary_ip(),
                            kRtdsPort});
}

std::vector<core::PathRequest> Testbed::full_matrix(
    std::vector<core::Metric> metrics) const {
  std::vector<core::PathRequest> out;
  for (int s = 0; s < static_cast<int>(servers_.size()); ++s) {
    for (int c = 0; c < static_cast<int>(clients_.size()); ++c) {
      out.push_back(core::PathRequest{path(s, c), metrics});
    }
  }
  return out;
}

SharedLanTestbed::SharedLanTestbed(sim::Simulator& sim,
                                   SharedLanOptions options)
    : sim_(sim),
      options_(options),
      rng_(options.seed),
      network_(sim, util::Rng(options.seed ^ 0xF00D)) {
  segment_ = &network_.add_segment("lan", options_.bandwidth_bps,
                                   options_.propagation);

  station_ = &network_.add_host("station", make_clock());
  network_.attach(*station_, *segment_, net::IpAddr(192, 168, 1, 1), 24);

  for (int i = 0; i < options_.hosts; ++i) {
    net::Host& host =
        network_.add_host("host" + std::to_string(i), make_clock());
    network_.attach(host, *segment_,
                    net::IpAddr(192, 168, 1, static_cast<std::uint8_t>(i + 10)),
                    24);
    hosts_.push_back(&host);
  }
  if (options_.add_probe_host) {
    probe_host_ = &network_.add_host("rmon-probe", make_clock());
    network_.attach(*probe_host_, *segment_, net::IpAddr(192, 168, 1, 250), 24);
  }
  network_.auto_route();

  if (options_.install_agents) {
    for (net::Host* host : hosts_) {
      agents_.push_back(std::make_unique<snmp::Agent>(*host));
    }
  }
  if (options_.install_sinks) {
    for (net::Host* host : hosts_) sinks_.install(*host);
  }
}

clk::HostClock SharedLanTestbed::make_clock() {
  return noisy_clock(sim_, rng_, options_.clocks);
}

}  // namespace netmon::apps
