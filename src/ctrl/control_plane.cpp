#include "ctrl/control_plane.hpp"

#include <stdexcept>

#include "net/packet.hpp"

namespace netmon::ctrl {

ControlPlane::ControlPlane(sim::Simulator& sim, net::Network& network,
                           ControlConfig config)
    : sim_(sim),
      network_(network),
      config_(std::move(config)),
      policy_(sim, config_.policy),
      failover_(network_) {
  rule_failover_ =
      policy_.add_rule("route-failover", config_.failover_cooldown);
  rule_retune_ = policy_.add_rule("probe-retune", config_.retune_cooldown);
  rule_boost_ = policy_.add_rule("priority-boost", config_.boost_cooldown);
}

ControlPlane::~ControlPlane() {
  detach_observability();
  // The observer and listener closures capture `this`; a manager outliving
  // the plane must not call into freed memory.
  if (manager_ != nullptr) {
    manager_->set_tuple_observer({});
    manager_->remove_reconfiguration_listener(reconfig_listener_);
  }
}

void ControlPlane::attach(mgr::ResourceManager& manager) {
  if (!config_.enabled) return;  // inert: nothing installed, nothing runs
  if (manager_ != nullptr) {
    throw std::logic_error("ControlPlane: a manager is already attached");
  }
  manager_ = &manager;
  booster_ = std::make_unique<PriorityBoostActuator>(manager.director());
  manager.set_tuple_observer(
      [this](const std::string& app, const core::PathMetricTuple& tuple) {
        observe_tuple(app, tuple);
      });
  reconfig_listener_ = manager.add_reconfiguration_listener(
      [this](const mgr::ReconfigurationEvent& event) {
        ++stats_.reconfigs_observed;
        policy_.note("server-failover", event.application,
                     event.old_server.to_string() + " -> " +
                         event.new_server.to_string() + " (" + event.reason +
                         ")");
      });
  if (config_.probe_retuning) {
    tick_task_ =
        sim::PeriodicTask(sim_, config_.tick, [this] { on_tick(); });
  }
}

ControlPlane::PathState& ControlPlane::path_state(
    const std::string& application, const core::PathMetricTuple& tuple,
    ControlPolicy::TargetKey key) {
  auto it = paths_.find(key);
  if (it == paths_.end()) {
    PathState state;
    state.path = tuple.path;
    state.label = tuple.path.to_string();
    state.app = application;
    it = paths_.emplace(key, std::move(state)).first;
  }
  return it->second;
}

void ControlPlane::observe_tuple(const std::string& application,
                                 const core::PathMetricTuple& tuple) {
  if (!config_.enabled) return;
  ++stats_.tuples_seen;
  const auto key = static_cast<ControlPolicy::TargetKey>(tuple.path.hash());
  PathState& state = path_state(application, tuple, key);

  // Liveness evidence: an invalid or stale sample of any metric, or an
  // explicit unreachable reading, argues the path is down; any valid fresh
  // sample argues it is up (a measured throughput/latency implies packets
  // flowed).
  const bool stale = tuple.value.quality == core::SampleQuality::kStale;
  const bool down = !tuple.value.valid || stale ||
                    (tuple.metric == core::Metric::kReachability &&
                     tuple.value.value < 0.5);

  if (down) {
    ++state.reach_failures;
    state.calm_run = 0;
    if (config_.route_failover) maybe_failover(key, state);
    // A path the manager is striking is decision-critical: concentrate
    // probe budget on it so the next (possibly recovering) sample arrives
    // sooner.
    if (config_.priority_boost && config_.boost_striking_paths &&
        manager_ != nullptr && !state.boosted && !state.verify_boost &&
        manager_->path_strikes(state.app, tuple.path.source().host,
                               tuple.path.destination().host) >= 1) {
      fire_boost(key, state, "manager strikes");
    }
  } else {
    state.reach_failures = 0;
    if (state.pending_failover) {
      // Recovery observed on the rerouted path. The same good sample also
      // clears the manager's strikes (it ran first), so verification and
      // strike-clearing are one event, per the rule's contract.
      if (policy_.verified(*state.pending_failover)) {
        ++stats_.failovers_verified;
      }
      state.pending_failover.reset();
      if (state.verify_boost && booster_ != nullptr && manager_ != nullptr) {
        booster_->restore(manager_->request_id(state.app), state.path);
        state.verify_boost = false;
      }
    }
    if (config_.priority_boost) evaluate_volatility(key, state, tuple);
  }
}

void ControlPlane::maybe_failover(ControlPolicy::TargetKey key,
                                  PathState& state) {
  if (state.reach_failures < config_.failover_strikes) return;
  if (!failover_.available(state.path)) return;

  ControlPolicy::Action action;
  action.detail = "standby reroute";
  action.apply = [this, key] {
    PathState& st = paths_.at(key);
    if (!failover_.apply(st.path)) return false;
    st.failed_over = !st.failed_over;
    // Concentrate probe budget on the rerouted path so the verifying
    // sample arrives before the action deadline.
    if (booster_ != nullptr && manager_ != nullptr) {
      st.verify_boost = booster_->boost(manager_->request_id(st.app),
                                        st.path, core::ProbeClass::kCritical);
    }
    return true;
  };
  action.rollback = [this, key] {
    PathState& st = paths_.at(key);
    failover_.rollback(st.path);  // the swap is an involution
    st.failed_over = !st.failed_over;
    st.reach_failures = 0;  // count afresh against the restored route
    st.pending_failover.reset();
    if (st.verify_boost && booster_ != nullptr && manager_ != nullptr) {
      booster_->restore(manager_->request_id(st.app), st.path);
      st.verify_boost = false;
    }
  };
  const auto id =
      policy_.fire(rule_failover_, key, state.label, std::move(action),
                   ControlPolicy::Direction::kForward);
  if (id) {
    state.pending_failover = id;
    ++stats_.failovers_applied;
  }
}

void ControlPlane::evaluate_volatility(ControlPolicy::TargetKey key,
                                       PathState& state,
                                       const core::PathMetricTuple& tuple) {
  // Only valid, non-stale samples reach here (observe_tuple's down branch
  // filters the rest). Samples of the volatility metric feed the P² drift
  // detector; samples of other metrics merely count as calm time.
  if (tuple.metric == config_.volatility_metric &&
      config_.volatility_metric != core::Metric::kReachability) {
    const double v = tuple.value.value;
    bool drift = false;
    if (state.p90.count() >= config_.warmup_samples) {
      const double est = state.p90.value();
      if (est > 0.0) {
        drift = config_.volatility_metric == core::Metric::kOneWayLatency
                    ? v > est * config_.drift_ratio
                    : v * config_.drift_ratio < est;
      }
    }
    state.p90.add(v);
    if (drift) {
      ++state.drift_run;
      state.calm_run = 0;
    } else {
      ++state.calm_run;
      state.drift_run = 0;
    }
  } else {
    ++state.calm_run;
  }

  int strikes = 0;
  if (manager_ != nullptr) {
    strikes = manager_->path_strikes(state.app, tuple.path.source().host,
                                     tuple.path.destination().host);
  }

  const bool drifting = state.drift_run >= config_.drift_strikes;
  const bool striking =
      config_.boost_striking_paths && manager_ != nullptr && strikes >= 1;
  if ((drifting || striking) && !state.boosted && !state.verify_boost) {
    fire_boost(key, state, drifting ? "p90 drift" : "manager strikes");
  } else if (state.boosted && strikes == 0 &&
             state.calm_run >= config_.calm_samples) {
    fire_unboost(key, state);
  }
}

void ControlPlane::fire_boost(ControlPolicy::TargetKey key, PathState& state,
                              const char* why) {
  // Without a manager there is no request to reprioritize (benchmark
  // mode): the condition was still evaluated, which is what gets timed.
  if (booster_ == nullptr || manager_ == nullptr) return;
  ControlPolicy::Action action;
  action.detail = std::string("boost to critical (") + why + ")";
  action.apply = [this, key] {
    PathState& st = paths_.at(key);
    if (!booster_->boost(manager_->request_id(st.app), st.path,
                         core::ProbeClass::kCritical)) {
      return false;
    }
    st.boosted = true;
    return true;
  };
  action.rollback = [this, key] {
    PathState& st = paths_.at(key);
    if (st.boosted) {
      booster_->restore(manager_->request_id(st.app), st.path);
      st.boosted = false;
    }
  };
  const auto id = policy_.fire(rule_boost_, key, state.label,
                               std::move(action),
                               ControlPolicy::Direction::kForward);
  if (id) {
    // The boost mutates local scheduler state only — nothing remote to
    // await, so it self-verifies.
    policy_.verified(*id);
    ++stats_.boosts;
    state.drift_run = 0;
  }
}

void ControlPlane::fire_unboost(ControlPolicy::TargetKey key,
                                PathState& state) {
  if (booster_ == nullptr || manager_ == nullptr) return;
  ControlPolicy::Action action;
  action.detail = "restore priority";
  action.apply = [this, key] {
    PathState& st = paths_.at(key);
    if (!booster_->restore(manager_->request_id(st.app), st.path)) {
      return false;
    }
    st.boosted = false;
    return true;
  };
  const auto id = policy_.fire(rule_boost_, key, state.label,
                               std::move(action),
                               ControlPolicy::Direction::kReverse);
  if (id) {
    policy_.verified(*id);  // self-verified, like the boost
    ++stats_.unboosts;
    state.calm_run = 0;
  }
}

void ControlPlane::on_tick() {
  ++stats_.ticks;
  if (meter_ == nullptr || manager_ == nullptr) return;

  // Windowed monitoring share: per-tick deltas of the meter's cumulative
  // octet counters. The cumulative monitoring_share() smooths over the
  // whole run and would react far too slowly to act on.
  const std::uint64_t monitoring =
      meter_->total_bytes(net::TrafficClass::kMonitoring) +
      meter_->total_bytes(net::TrafficClass::kManagement);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
    total += meter_->total_bytes(static_cast<net::TrafficClass>(c));
  }
  const std::uint64_t window_monitoring = monitoring - last_monitoring_bytes_;
  const std::uint64_t window_total = total - last_total_bytes_;
  last_monitoring_bytes_ = monitoring;
  last_total_bytes_ = total;
  if (window_total == 0) return;  // nothing moved; no evidence either way

  const double share = static_cast<double>(window_monitoring) /
                       static_cast<double>(window_total);
  share_ewma_ = share_primed_ ? config_.share_alpha * share +
                                    (1.0 - config_.share_alpha) * share_ewma_
                              : share;
  share_primed_ = true;

  // Retune decisions use the byte-weighted share over a full settle window
  // — at least the configured cooldown AND every request's current period —
  // never the per-tick EWMA. Probe rounds are bursty: at a stretched
  // period the idle ticks between rounds duty-cycle the EWMA toward zero,
  // faking recovery, and a decision made on that ripple cascades down the
  // whole ladder. The windowed byte average is self-consistent: halving the
  // probe rate can reduce its share to at worst half, so the share measured
  // after a stretch always exceeds the predictive-restore bound derived
  // from the share that justified the stretch — the ladder converges
  // monotonically instead of flapping.
  const std::int64_t now_ns = sim_.now().nanos();
  std::int64_t settle_ns = config_.retune_cooldown.nanos();
  for (const std::string& app : manager_->applications()) {
    const auto request = manager_->request_id(app);
    if (request == 0) continue;
    if (const auto period = manager_->director().period_of(request);
        period && period->nanos() > settle_ns) {
      settle_ns = period->nanos();
    }
  }
  if (now_ns - window_start_ns_ < settle_ns) return;
  const std::uint64_t decision_monitoring = monitoring - window_monitoring0_;
  const std::uint64_t decision_total = total - window_total0_;
  window_start_ns_ = now_ns;
  window_monitoring0_ = monitoring;
  window_total0_ = total;
  if (decision_total == 0) return;
  window_share_ = static_cast<double>(decision_monitoring) /
                  static_cast<double>(decision_total);

  for (const std::string& app : manager_->applications()) {
    const auto request = manager_->request_id(app);
    if (request == 0) continue;
    retune_request(app, request);
  }
}

void ControlPlane::retune_request(const std::string& application,
                                  core::SensorDirector::RequestId request) {
  auto it = retuners_.find(request);
  if (it == retuners_.end()) {
    it = retuners_
             .emplace(request, std::make_unique<ProbeRetuneActuator>(
                                   manager_->director(), request,
                                   config_.stretch_factor,
                                   config_.max_stretch_levels))
             .first;
  }
  ProbeRetuneActuator& retuner = *it->second;
  const auto key = static_cast<ControlPolicy::TargetKey>(request);
  const std::string label =
      "request#" + std::to_string(request) + " (" + application + ")";

  if (window_share_ > config_.share_budget &&
      retuner.level() < config_.max_stretch_levels) {
    ControlPolicy::Action action;
    action.detail =
        "stretch period to level " + std::to_string(retuner.level() + 1);
    action.apply = [&retuner] { return retuner.stretch(); };
    const auto id = policy_.fire(rule_retune_, key, label, std::move(action),
                                 ControlPolicy::Direction::kForward);
    if (id) {
      policy_.verified(*id);  // local period change, self-verified
      ++stats_.stretches;
    }
  } else if (retuner.level() > 0 &&
             window_share_ * config_.stretch_factor <=
                 config_.share_budget * config_.restore_margin) {
    // Predictive restore: un-stretching one level multiplies the probe rate
    // by stretch_factor, so only restore when the projected share still
    // clears the budget (with margin) — the ladder converges instead of
    // flapping around the threshold.
    ControlPolicy::Action action;
    action.detail =
        "restore period to level " + std::to_string(retuner.level() - 1);
    action.apply = [&retuner] { return retuner.restore(); };
    const auto id = policy_.fire(rule_retune_, key, label, std::move(action),
                                 ControlPolicy::Direction::kReverse);
    if (id) {
      policy_.verified(*id);
      ++stats_.restores;
    }
  }
}

int ControlPlane::stretch_level(
    core::SensorDirector::RequestId request) const {
  auto it = retuners_.find(request);
  return it == retuners_.end() ? 0 : it->second->level();
}

void ControlPlane::attach_observability(obs::Registry& registry,
                                        std::string prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  registry.gauge_fn(obs_prefix_ + ".tuples_seen", [this] {
    return static_cast<double>(stats_.tuples_seen);
  });
  registry.gauge_fn(obs_prefix_ + ".failovers_applied", [this] {
    return static_cast<double>(stats_.failovers_applied);
  });
  registry.gauge_fn(obs_prefix_ + ".failovers_verified", [this] {
    return static_cast<double>(stats_.failovers_verified);
  });
  registry.gauge_fn(obs_prefix_ + ".boosts", [this] {
    return static_cast<double>(stats_.boosts);
  });
  registry.gauge_fn(obs_prefix_ + ".unboosts", [this] {
    return static_cast<double>(stats_.unboosts);
  });
  registry.gauge_fn(obs_prefix_ + ".stretches", [this] {
    return static_cast<double>(stats_.stretches);
  });
  registry.gauge_fn(obs_prefix_ + ".restores", [this] {
    return static_cast<double>(stats_.restores);
  });
  registry.gauge_fn(obs_prefix_ + ".reconfigs_observed", [this] {
    return static_cast<double>(stats_.reconfigs_observed);
  });
  registry.gauge_fn(obs_prefix_ + ".boosted_paths",
                    [this] { return static_cast<double>(boosted_paths()); });
  registry.gauge_fn(obs_prefix_ + ".share_ewma",
                    [this] { return share_ewma_; });
  registry.gauge_fn(obs_prefix_ + ".window_share",
                    [this] { return window_share_; });
  policy_.attach_observability(registry, obs_prefix_ + ".policy");
}

void ControlPlane::detach_observability() {
  if (obs_registry_ == nullptr) return;
  policy_.detach_observability();
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::ctrl
