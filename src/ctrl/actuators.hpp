#pragma once

// Concrete actuators the control plane drives (DESIGN.md §12). Each one
// wraps an existing substrate knob behind an apply/rollback pair so the
// ControlPolicy engine can run the full deadline-verify-rollback lifecycle
// on it:
//
//   RouteFailoverActuator — swaps pre-provisioned standby routes
//     (net::RoutingTable::swap_standby) at both endpoint hosts of a path;
//     rollback is the same swap, since the swap is an involution.
//   ProbeRetuneActuator — stretches and restores one MonitorRequest's
//     period through SensorDirector::retune_period, level by level, so
//     monitoring fidelity degrades gracefully under intrusiveness pressure
//     instead of blowing the budget.
//   PriorityBoostActuator — re-classifies a path of a live request through
//     SensorDirector::set_path_priority so the lane scheduler concentrates
//     probe budget on it.

#include <cstdint>
#include <map>
#include <utility>

#include "core/path.hpp"
#include "core/sensor_director.hpp"
#include "net/topology.hpp"

namespace netmon::ctrl {

class RouteFailoverActuator {
 public:
  explicit RouteFailoverActuator(net::Network& network) : network_(network) {}

  // Both endpoints resolve to hosts and every leg has standby routes for
  // its peer /32s in both directions.
  bool available(const core::Path& path) const;
  // Swaps active and standby routes for every leg of the path, forward and
  // reverse (results must flow back too). All-or-nothing: a partially
  // swappable path is refused untouched.
  bool apply(const core::Path& path);
  // The standby swap is an involution: rolling back is applying again.
  void rollback(const core::Path& path) { (void)apply(path); }

  std::uint64_t swaps() const { return swaps_; }

 private:
  net::Network& network_;
  std::uint64_t swaps_ = 0;
};

class ProbeRetuneActuator {
 public:
  ProbeRetuneActuator(core::SensorDirector& director,
                      core::SensorDirector::RequestId request, double factor,
                      int max_levels)
      : director_(director),
        request_(request),
        factor_(factor),
        max_levels_(max_levels) {}

  // One more stretch level: period := base × factor^(level+1). False at
  // max_levels or when the director refuses (request gone).
  bool stretch();
  // One level back toward the base period. False at level 0.
  bool restore();

  int level() const { return level_; }
  sim::Duration base_period() const { return base_; }
  core::SensorDirector::RequestId request() const { return request_; }

 private:
  bool set_level(int level);

  core::SensorDirector& director_;
  core::SensorDirector::RequestId request_;
  double factor_;
  int max_levels_;
  int level_ = 0;
  sim::Duration base_{};
  bool base_known_ = false;
};

class PriorityBoostActuator {
 public:
  explicit PriorityBoostActuator(core::SensorDirector& director)
      : director_(director) {}

  // Boosts one path of a request to `to`, remembering the class it had so
  // restore() can put it back. False when the request/path is unknown or
  // the path is already boosted.
  bool boost(core::SensorDirector::RequestId request, const core::Path& path,
             core::ProbeClass to = core::ProbeClass::kCritical);
  bool restore(core::SensorDirector::RequestId request,
               const core::Path& path);

  std::size_t boosted() const { return original_.size(); }
  std::uint64_t boosts() const { return boosts_; }
  std::uint64_t restores() const { return restores_; }

 private:
  core::SensorDirector& director_;
  // (request, path-hash) -> class before the boost.
  std::map<std::pair<core::SensorDirector::RequestId, std::size_t>,
           core::ProbeClass>
      original_;
  std::uint64_t boosts_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace netmon::ctrl
