#include "ctrl/actuators.hpp"

#include <cmath>

namespace netmon::ctrl {

namespace {

// The /32 a leg endpoint must be able to reach through a standby route.
net::Prefix peer_prefix(net::IpAddr peer) { return net::Prefix(peer, 32); }

}  // namespace

bool RouteFailoverActuator::available(const core::Path& path) const {
  for (std::size_t i = 0; i < path.leg_count(); ++i) {
    const auto [from, to] = path.leg(i);
    net::Host* src = network_.host_of(from.host);
    net::Host* dst = network_.host_of(to.host);
    if (src == nullptr || dst == nullptr) return false;
    if (!src->routing().has_standby(peer_prefix(to.host))) return false;
    if (!dst->routing().has_standby(peer_prefix(from.host))) return false;
  }
  return true;
}

bool RouteFailoverActuator::apply(const core::Path& path) {
  if (!available(path)) return false;
  for (std::size_t i = 0; i < path.leg_count(); ++i) {
    const auto [from, to] = path.leg(i);
    network_.host_of(from.host)->routing().swap_standby(peer_prefix(to.host));
    network_.host_of(to.host)->routing().swap_standby(peer_prefix(from.host));
  }
  ++swaps_;
  return true;
}

bool ProbeRetuneActuator::set_level(int level) {
  if (!base_known_) {
    const auto period = director_.period_of(request_);
    if (!period) return false;
    base_ = *period;
    base_known_ = true;
  }
  const double scale = std::pow(factor_, level);
  const auto target =
      sim::Duration::ns(static_cast<std::int64_t>(
          static_cast<double>(base_.nanos()) * scale));
  if (!director_.retune_period(request_, target)) return false;
  level_ = level;
  return true;
}

bool ProbeRetuneActuator::stretch() {
  if (level_ >= max_levels_) return false;
  return set_level(level_ + 1);
}

bool ProbeRetuneActuator::restore() {
  if (level_ <= 0) return false;
  return set_level(level_ - 1);
}

bool PriorityBoostActuator::boost(core::SensorDirector::RequestId request,
                                  const core::Path& path,
                                  core::ProbeClass to) {
  const auto key = std::make_pair(request, path.hash());
  if (original_.count(key) != 0) return false;  // already boosted
  const auto current = director_.path_priority(request, path);
  if (!current || *current == to) return false;
  if (!director_.set_path_priority(request, path, to)) return false;
  original_.emplace(key, *current);
  ++boosts_;
  return true;
}

bool PriorityBoostActuator::restore(core::SensorDirector::RequestId request,
                                    const core::Path& path) {
  const auto key = std::make_pair(request, path.hash());
  auto it = original_.find(key);
  if (it == original_.end()) return false;
  const core::ProbeClass back = it->second;
  // Drop the bookkeeping even if the request died — a vanished request
  // must not pin the path "boosted" forever.
  original_.erase(it);
  ++restores_;
  return director_.set_path_priority(request, path, back);
}

}  // namespace netmon::ctrl
