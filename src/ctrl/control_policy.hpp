#pragma once

// Condition → action rule engine (DESIGN.md §12), after ACME's
// sensor→trigger→actuator model: the control plane's rules fire actions
// through this engine, which owns the actuation lifecycle and every
// dampening gate between "condition holds" and "the network changes":
//
//   cooldown — per (rule, target): successive actuations of one rule on one
//              target are spaced out, so a persistent condition retries at
//              a bounded rate instead of every tuple;
//   hold     — the global anti-ping-pong rule, generalizing the resource
//              manager's replacement-no-healthier hold: after an actuation
//              in one direction (forward = failover/degrade/boost, reverse
//              = restore) on a target, the *opposite* direction is held off
//              until the hold expires. Same-direction refires stay legal
//              (escalation is not oscillation) — only flip-flops are damped;
//   breaker  — per (rule, target), reusing the supervision breaker shape
//              (core::BreakerState): consecutive failed actuations open the
//              pair, which then degrades to report-only — the condition is
//              still observed and counted, but nothing acts — until a
//              half-open probe succeeds;
//   deadline — every applied action must be verified (recovery observed)
//              within a deadline or its rollback runs and the attempt
//              counts as failed. A pending (unverified) actuation also
//              blocks refires of its (rule, target).
//
// Every lifecycle step lands in a bounded ActuationLog whose serialization
// is deterministic: same seed ⇒ bit-identical log bytes, which is what the
// scenario harness asserts and CI archives.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon::ctrl {

// Lifecycle of one actuation attempt as recorded in the ActuationLog.
enum class ActuationOutcome : std::uint8_t {
  kApplied,     // the action ran; verification pending
  kVerified,    // recovery observed before the deadline
  kFailed,      // apply() itself reported failure
  kRolledBack,  // deadline expired unverified; rollback executed
  kNote,        // informational record (e.g. an observed RM reconfiguration)
};
const char* to_string(ActuationOutcome outcome);

struct ActuationRecord {
  std::uint64_t seq = 0;  // 0-based emission index, monotone across drops
  std::int64_t at_ns = 0;
  std::string rule;
  std::string target;  // human-readable target (a path, request, or app)
  std::string detail;  // action-specific description
  ActuationOutcome outcome = ActuationOutcome::kApplied;
};

// Bounded actuation trace (the TraceSink idiom): a ring of the most recent
// records plus a total emission count, so a runaway control loop cannot grow
// memory without bound while tests still see exact totals.
class ActuationLog {
 public:
  explicit ActuationLog(std::size_t capacity = 1024);

  void append(std::int64_t at_ns, const std::string& rule,
              const std::string& target, const std::string& detail,
              ActuationOutcome outcome);

  // Records currently retained, oldest first (at most `capacity`).
  std::vector<ActuationRecord> records() const;
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const;
  std::size_t capacity() const { return ring_.size(); }

  // Deterministic serializations: the same control run yields the identical
  // byte string (fixed field order, no floats, no addresses).
  static std::string to_text(const std::vector<ActuationRecord>& records);
  static std::string to_json(const std::vector<ActuationRecord>& records);
  std::string export_text() const { return to_text(records()); }
  std::string export_json() const { return to_json(records()); }

 private:
  std::vector<ActuationRecord> ring_;
  std::uint64_t emitted_ = 0;
};

struct PolicyConfig {
  // Anti-ping-pong hold: after an actuation on a target, the opposite
  // direction on the same (rule, target) is blocked this long.
  sim::Duration hold = sim::Duration::sec(8);
  // An applied action must be verified within this or it is rolled back and
  // counted failed. Zero disables deadlines (actions must self-verify).
  sim::Duration action_deadline = sim::Duration::sec(3);
  // Consecutive failed actuations that open a (rule, target) breaker;
  // 0 disables the breaker.
  int breaker_threshold = 2;
  sim::Duration breaker_open_for = sim::Duration::sec(30);
  std::size_t log_capacity = 1024;
};

struct PolicyStats {
  std::uint64_t fired = 0;     // apply() invocations
  std::uint64_t verified = 0;
  std::uint64_t failed = 0;       // apply() returned false
  std::uint64_t rolled_back = 0;  // deadline expired unverified
  std::uint64_t blocked_hold = 0;
  std::uint64_t blocked_cooldown = 0;
  std::uint64_t blocked_breaker = 0;
  std::uint64_t blocked_pending = 0;  // refire while unverified
  std::uint64_t breaker_trips = 0;
};

class ControlPolicy {
 public:
  using RuleId = std::size_t;
  using ActuationId = std::uint64_t;
  // Opaque target identity; callers namespace their keys (the control plane
  // uses PathIds for paths and a tagged space for requests).
  using TargetKey = std::uint64_t;

  // +1 forward (failover / degrade / boost), -1 reverse (restore). The hold
  // gate only blocks direction *changes* on a (rule, target).
  enum class Direction : std::int8_t { kForward = 1, kReverse = -1 };

  struct Action {
    std::function<bool()> apply;     // returns false on immediate failure
    std::function<void()> rollback;  // undoes an unverified action; optional
    std::string detail;              // deterministic description for the log
  };

  ControlPolicy(sim::Simulator& sim, PolicyConfig config);
  ~ControlPolicy();
  ControlPolicy(const ControlPolicy&) = delete;
  ControlPolicy& operator=(const ControlPolicy&) = delete;

  RuleId add_rule(std::string name, sim::Duration cooldown);
  const std::string& rule_name(RuleId rule) const {
    return rules_.at(rule).name;
  }

  // Gates + executes: returns the actuation id when the action was applied
  // (verification now pending, unless the deadline is disabled), nullopt
  // when a gate blocked it or apply() failed. Gates are evaluated in order
  // hold → pending → breaker → cooldown; blocked attempts are counted in
  // stats() but not logged (the log records actuations, not conditions).
  std::optional<ActuationId> fire(RuleId rule, TargetKey target,
                                  const std::string& target_label,
                                  Action action,
                                  Direction direction = Direction::kForward);
  // Marks a pending actuation verified: cancels its deadline, closes the
  // breaker window, logs kVerified. False for unknown/expired ids.
  bool verified(ActuationId id);

  bool held(RuleId rule, TargetKey target, Direction direction) const;
  bool breaker_open(RuleId rule, TargetKey target) const;
  // (rule, target) pairs currently degraded to report-only (open breaker).
  std::size_t report_only_pairs() const;
  std::size_t pending() const { return pending_.size(); }

  const PolicyStats& stats() const { return stats_; }
  ActuationLog& log() { return log_; }
  const ActuationLog& log() const { return log_; }

  // Gate-free informational record riding the same log (e.g. a resource
  // manager reconfiguration the plane observed but did not initiate).
  void note(const std::string& rule, const std::string& target,
            const std::string& detail,
            ActuationOutcome outcome = ActuationOutcome::kNote);

  // Registers "<prefix>.policy.*" lifecycle counters and gauges; breaker
  // trips additionally emit trace events when the registry has a TraceSink.
  void attach_observability(obs::Registry& registry, std::string prefix);
  void detach_observability();

 private:
  struct RuleState {
    std::string name;
    sim::Duration cooldown;
  };
  struct PairState {
    sim::TimePoint cooldown_until{};
    // Hold bookkeeping: the last applied direction and when its hold ends.
    std::int8_t last_direction = 0;
    sim::TimePoint hold_until{};
    int consecutive_failures = 0;
    bool breaker_is_open = false;
    sim::TimePoint breaker_open_until{};
    bool has_pending = false;
  };
  struct Pending {
    RuleId rule = 0;
    TargetKey target = 0;
    std::string target_label;
    std::string detail;
    std::function<void()> rollback;
    sim::EventHandle deadline;
  };

  PairState& pair(RuleId rule, TargetKey target) {
    return pairs_[{rule, target}];
  }
  const PairState* find_pair(RuleId rule, TargetKey target) const;
  void expire(ActuationId id);
  void record_failure(RuleId rule, PairState& state);

  sim::Simulator& sim_;
  PolicyConfig config_;
  std::vector<RuleState> rules_;
  std::map<std::pair<RuleId, TargetKey>, PairState> pairs_;
  std::map<ActuationId, Pending> pending_;
  ActuationId next_id_ = 1;
  PolicyStats stats_;
  ActuationLog log_;

  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::ctrl
