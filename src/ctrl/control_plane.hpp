#pragma once

// The closed control loop (DESIGN.md §12): ties the ControlPolicy rule
// engine and the concrete actuators to the live system. Sensors are the
// ResourceManager's tuple stream (per-sample, path-scoped rules) and the
// IntrusivenessMeter's octet counters (per-tick, request-scoped retuning);
// triggers are the three rules below; actuators change routes, probe
// periods, and lane priorities. Everything is opt-in: a ControlPlane with
// `enabled == false` installs no observer and schedules no events, so the
// event core's golden trace is unchanged when the plane is configured off.
//
// Rules:
//   route-failover  — consecutive liveness failures on a path reach
//     `failover_strikes` and every leg has a pre-provisioned standby route:
//     swap to the standby and boost the path to kCritical so the verifying
//     probe arrives quickly. Verified by the next good sample on the path
//     (which also clears the manager's strikes); unverified swaps roll back
//     at the deadline and count toward the pair's breaker.
//   probe-retune    — the windowed (EWMA) monitoring share of network
//     octets exceeds `share_budget`: stretch a request's period one level
//     (period × stretch_factor). Restores are predictive: only when the
//     current share times stretch_factor would stay under budget, so the
//     ladder cannot oscillate around the threshold.
//   priority-boost  — a path's sample drifts from its own P² p90 estimate
//     `drift_strikes` times in a row (or the manager is striking it):
//     reclassify to kCritical; after `calm_samples` quiet samples, restore.
//
// Both boost and retune actions mutate local scheduler state only — there
// is no remote recovery to await — so they self-verify immediately after a
// successful apply. Failover is the genuinely remote action and runs the
// full deadline / verify / rollback lifecycle.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ctrl/actuators.hpp"
#include "ctrl/control_policy.hpp"
#include "manager/resource_manager.hpp"
#include "obs/intrusiveness.hpp"
#include "obs/quantile.hpp"

namespace netmon::ctrl {

struct ControlConfig {
  // Master switch. When false the plane is inert: attach() installs
  // nothing, observe_tuple() returns immediately, no events are scheduled.
  bool enabled = false;

  PolicyConfig policy;

  // --- route failover ---
  bool route_failover = true;
  // Consecutive liveness-bearing failures (invalid, stale, or unreachable
  // samples) on one path before the standby swap fires.
  int failover_strikes = 2;
  sim::Duration failover_cooldown = sim::Duration::sec(5);

  // --- adaptive probe retuning ---
  bool probe_retuning = true;
  sim::Duration tick = sim::Duration::ms(500);
  // Budget for the windowed monitoring share (monitoring + management
  // octets over all octets, per tick, EWMA-smoothed).
  double share_budget = 0.05;
  double share_alpha = 0.4;  // EWMA weight of the newest window
  double stretch_factor = 2.0;
  int max_stretch_levels = 3;
  // Restore only when share × stretch_factor stays under budget × margin —
  // the predictive check that keeps the ladder from flapping.
  double restore_margin = 0.9;
  sim::Duration retune_cooldown = sim::Duration::sec(2);

  // --- volatility-driven priority boost ---
  bool priority_boost = true;
  core::Metric volatility_metric = core::Metric::kOneWayLatency;
  // Latency drifts when value > ratio × p90; throughput when
  // value × ratio < p90. Reachability has no meaningful p90 drift.
  double drift_ratio = 2.0;
  int drift_strikes = 3;
  int calm_samples = 8;
  // P² estimate is not consulted before this many samples on a path.
  std::size_t warmup_samples = 10;
  sim::Duration boost_cooldown = sim::Duration::sec(2);
  // Also boost paths the resource manager is currently striking.
  bool boost_striking_paths = true;
};

struct ControlStats {
  std::uint64_t tuples_seen = 0;
  std::uint64_t failovers_applied = 0;
  std::uint64_t failovers_verified = 0;
  std::uint64_t boosts = 0;
  std::uint64_t unboosts = 0;
  std::uint64_t stretches = 0;
  std::uint64_t restores = 0;
  std::uint64_t ticks = 0;
  std::uint64_t reconfigs_observed = 0;
};

class ControlPlane {
 public:
  ControlPlane(sim::Simulator& sim, net::Network& network,
               ControlConfig config);
  ~ControlPlane();
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // Installs the tuple observer and reconfiguration listener on the manager
  // and (when retuning is on) schedules the meter tick. No-op when the
  // plane is disabled. At most one manager may be attached.
  void attach(mgr::ResourceManager& manager);
  // The octet source for retuning; without a meter the retune rule idles.
  void set_meter(const obs::IntrusivenessMeter& meter) { meter_ = &meter; }

  // The sensor feed. attach() wires this to the manager; it is public so
  // benchmarks can drive rule evaluation directly without a manager.
  void observe_tuple(const std::string& application,
                     const core::PathMetricTuple& tuple);

  const ControlConfig& config() const { return config_; }
  ControlPolicy& policy() { return policy_; }
  const ControlPolicy& policy() const { return policy_; }
  RouteFailoverActuator& failover() { return failover_; }
  const ControlStats& stats() const { return stats_; }
  double share_ewma() const { return share_ewma_; }
  // Byte-weighted monitoring share over the last completed decision window
  // — the evidence the most recent retune decisions were made on.
  double window_share() const { return window_share_; }
  // Current stretch level of a request's retune ladder (0 = base period).
  int stretch_level(core::SensorDirector::RequestId request) const;
  std::size_t boosted_paths() const {
    return booster_ ? booster_->boosted() : 0;
  }

  // Registers "<prefix>.*" plane counters plus the policy's
  // "<prefix>.policy.*" set; SelfMib rows come along for free.
  void attach_observability(obs::Registry& registry, std::string prefix);
  void detach_observability();

 private:
  struct PathState {
    core::Path path;
    std::string label;
    std::string app;
    int reach_failures = 0;
    bool failed_over = false;  // parity of verified standby swaps
    std::optional<ControlPolicy::ActuationId> pending_failover;
    bool verify_boost = false;  // boost applied to speed failover verify
    obs::P2Quantile p90{0.9};
    int drift_run = 0;
    int calm_run = 0;
    bool boosted = false;  // volatility/strike boost currently applied
  };

  PathState& path_state(const std::string& application,
                        const core::PathMetricTuple& tuple,
                        ControlPolicy::TargetKey key);
  void maybe_failover(ControlPolicy::TargetKey key, PathState& state);
  void evaluate_volatility(ControlPolicy::TargetKey key, PathState& state,
                           const core::PathMetricTuple& tuple);
  void fire_boost(ControlPolicy::TargetKey key, PathState& state,
                  const char* why);
  void fire_unboost(ControlPolicy::TargetKey key, PathState& state);
  void on_tick();
  void retune_request(const std::string& application,
                      core::SensorDirector::RequestId request);

  sim::Simulator& sim_;
  net::Network& network_;
  ControlConfig config_;
  ControlPolicy policy_;
  RouteFailoverActuator failover_;
  std::unique_ptr<PriorityBoostActuator> booster_;  // built at attach()
  mgr::ResourceManager* manager_ = nullptr;
  mgr::ResourceManager::ListenerHandle reconfig_listener_ = 0;
  const obs::IntrusivenessMeter* meter_ = nullptr;

  ControlPolicy::RuleId rule_failover_ = 0;
  ControlPolicy::RuleId rule_retune_ = 0;
  ControlPolicy::RuleId rule_boost_ = 0;

  std::map<ControlPolicy::TargetKey, PathState> paths_;
  std::map<core::SensorDirector::RequestId,
           std::unique_ptr<ProbeRetuneActuator>>
      retuners_;
  // Retune decision window (see on_tick): byte counters captured at the
  // last decision point, advanced only once a full settle interval — the
  // retune cooldown and every request's current period — has elapsed.
  std::int64_t window_start_ns_ = 0;
  std::uint64_t window_monitoring0_ = 0;
  std::uint64_t window_total0_ = 0;
  double window_share_ = 0.0;

  double share_ewma_ = 0.0;
  bool share_primed_ = false;
  std::uint64_t last_monitoring_bytes_ = 0;
  std::uint64_t last_total_bytes_ = 0;

  ControlStats stats_;
  sim::PeriodicTask tick_task_;

  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::ctrl
