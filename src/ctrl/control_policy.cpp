#include "ctrl/control_policy.hpp"

#include <stdexcept>

namespace netmon::ctrl {

const char* to_string(ActuationOutcome outcome) {
  switch (outcome) {
    case ActuationOutcome::kApplied: return "applied";
    case ActuationOutcome::kVerified: return "verified";
    case ActuationOutcome::kFailed: return "failed";
    case ActuationOutcome::kRolledBack: return "rolled-back";
    case ActuationOutcome::kNote: return "note";
  }
  return "?";
}

ActuationLog::ActuationLog(std::size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void ActuationLog::append(std::int64_t at_ns, const std::string& rule,
                          const std::string& target,
                          const std::string& detail,
                          ActuationOutcome outcome) {
  ActuationRecord& slot = ring_[emitted_ % ring_.size()];
  slot.seq = emitted_;
  slot.at_ns = at_ns;
  slot.rule = rule;
  slot.target = target;
  slot.detail = detail;
  slot.outcome = outcome;
  ++emitted_;
}

std::vector<ActuationRecord> ActuationLog::records() const {
  std::vector<ActuationRecord> out;
  const std::uint64_t n =
      emitted_ < ring_.size() ? emitted_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(n);
  for (std::uint64_t i = emitted_ - n; i < emitted_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

std::uint64_t ActuationLog::dropped() const {
  return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
}

std::string ActuationLog::to_text(const std::vector<ActuationRecord>& records) {
  std::string out;
  for (const ActuationRecord& r : records) {
    out += std::to_string(r.seq);
    out += " t=";
    out += std::to_string(r.at_ns);
    out += " [";
    out += r.rule;
    out += "] ";
    out += r.target;
    out += " :: ";
    out += r.detail;
    out += " -> ";
    out += to_string(r.outcome);
    out += '\n';
  }
  return out;
}

namespace {
void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}
}  // namespace

std::string ActuationLog::to_json(const std::vector<ActuationRecord>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ActuationRecord& r = records[i];
    out += "  {\"seq\": ";
    out += std::to_string(r.seq);
    out += ", \"at_ns\": ";
    out += std::to_string(r.at_ns);
    out += ", \"rule\": \"";
    json_escape_into(out, r.rule);
    out += "\", \"target\": \"";
    json_escape_into(out, r.target);
    out += "\", \"detail\": \"";
    json_escape_into(out, r.detail);
    out += "\", \"outcome\": \"";
    out += to_string(r.outcome);
    out += "\"}";
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

ControlPolicy::ControlPolicy(sim::Simulator& sim, PolicyConfig config)
    : sim_(sim), config_(config), log_(config.log_capacity) {}

ControlPolicy::~ControlPolicy() {
  detach_observability();
  // Deadline closures capture `this`; cancel them so a simulator outliving
  // the policy cannot fire into freed memory.
  for (auto& [id, p] : pending_) p.deadline.cancel();
}

ControlPolicy::RuleId ControlPolicy::add_rule(std::string name,
                                              sim::Duration cooldown) {
  rules_.push_back(RuleState{std::move(name), cooldown});
  return rules_.size() - 1;
}

const ControlPolicy::PairState* ControlPolicy::find_pair(
    RuleId rule, TargetKey target) const {
  auto it = pairs_.find({rule, target});
  return it == pairs_.end() ? nullptr : &it->second;
}

bool ControlPolicy::held(RuleId rule, TargetKey target,
                         Direction direction) const {
  const PairState* state = find_pair(rule, target);
  if (state == nullptr || state->last_direction == 0) return false;
  return state->last_direction != static_cast<std::int8_t>(direction) &&
         sim_.now() < state->hold_until;
}

bool ControlPolicy::breaker_open(RuleId rule, TargetKey target) const {
  const PairState* state = find_pair(rule, target);
  return state != nullptr && state->breaker_is_open &&
         sim_.now() < state->breaker_open_until;
}

std::size_t ControlPolicy::report_only_pairs() const {
  std::size_t n = 0;
  for (const auto& [key, state] : pairs_) {
    if (state.breaker_is_open && sim_.now() < state.breaker_open_until) ++n;
  }
  return n;
}

std::optional<ControlPolicy::ActuationId> ControlPolicy::fire(
    RuleId rule, TargetKey target, const std::string& target_label,
    Action action, Direction direction) {
  if (rule >= rules_.size()) {
    throw std::out_of_range("ControlPolicy::fire: unknown rule");
  }
  const sim::TimePoint now = sim_.now();
  PairState& state = pair(rule, target);

  // Anti-ping-pong hold: only a direction *change* within the hold window
  // is blocked; escalation in the same direction falls through to cooldown.
  if (state.last_direction != 0 &&
      state.last_direction != static_cast<std::int8_t>(direction) &&
      now < state.hold_until) {
    ++stats_.blocked_hold;
    return std::nullopt;
  }
  if (state.has_pending) {
    ++stats_.blocked_pending;
    return std::nullopt;
  }
  if (state.breaker_is_open) {
    if (now < state.breaker_open_until) {
      ++stats_.blocked_breaker;
      return std::nullopt;
    }
    // Half-open: admit this one attempt; one more failure re-opens at once.
    state.breaker_is_open = false;
    state.consecutive_failures =
        config_.breaker_threshold > 0 ? config_.breaker_threshold - 1 : 0;
  }
  if (now < state.cooldown_until) {
    ++stats_.blocked_cooldown;
    return std::nullopt;
  }

  // Gates passed — arm cooldown and hold at apply time so the verification
  // window cannot be pre-empted by an immediate refire.
  state.cooldown_until = now + rules_[rule].cooldown;
  state.last_direction = static_cast<std::int8_t>(direction);
  state.hold_until = now + config_.hold;
  ++stats_.fired;

  const bool applied = action.apply ? action.apply() : false;
  if (!applied) {
    ++stats_.failed;
    log_.append(now.nanos(), rules_[rule].name, target_label, action.detail,
                ActuationOutcome::kFailed);
    record_failure(rule, state);
    return std::nullopt;
  }

  const ActuationId id = next_id_++;
  log_.append(now.nanos(), rules_[rule].name, target_label, action.detail,
              ActuationOutcome::kApplied);
  Pending pending;
  pending.rule = rule;
  pending.target = target;
  pending.target_label = target_label;
  pending.detail = std::move(action.detail);
  pending.rollback = std::move(action.rollback);
  if (config_.action_deadline.nanos() > 0) {
    state.has_pending = true;
    pending.deadline =
        sim_.schedule_in(config_.action_deadline, [this, id] { expire(id); });
    pending_.emplace(id, std::move(pending));
  } else {
    // No deadline: the caller must self-verify. Keep the pending entry so
    // verified(id) still resolves, but do not block refires on it.
    pending_.emplace(id, std::move(pending));
  }
  return id;
}

bool ControlPolicy::verified(ActuationId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  it->second.deadline.cancel();
  PairState& state = pair(it->second.rule, it->second.target);
  state.has_pending = false;
  state.consecutive_failures = 0;
  ++stats_.verified;
  log_.append(sim_.now().nanos(), rules_[it->second.rule].name,
              it->second.target_label, it->second.detail,
              ActuationOutcome::kVerified);
  pending_.erase(it);
  return true;
}

void ControlPolicy::expire(ActuationId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  ++stats_.rolled_back;
  if (pending.rollback) pending.rollback();
  log_.append(sim_.now().nanos(), rules_[pending.rule].name,
              pending.target_label, pending.detail,
              ActuationOutcome::kRolledBack);
  PairState& state = pair(pending.rule, pending.target);
  state.has_pending = false;
  record_failure(pending.rule, state);
}

void ControlPolicy::record_failure(RuleId rule, PairState& state) {
  if (config_.breaker_threshold <= 0) return;
  if (++state.consecutive_failures >= config_.breaker_threshold) {
    state.breaker_is_open = true;
    state.breaker_open_until = sim_.now() + config_.breaker_open_for;
    ++stats_.breaker_trips;
    if (obs_registry_ != nullptr) {
      obs_registry_->emit(sim_.now().nanos(), "ctrl",
                          rules_[rule].name + ".breaker_open", 1.0);
    }
  }
}

void ControlPolicy::note(const std::string& rule, const std::string& target,
                         const std::string& detail, ActuationOutcome outcome) {
  log_.append(sim_.now().nanos(), rule, target, detail, outcome);
}

void ControlPolicy::attach_observability(obs::Registry& registry,
                                         std::string prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  registry.gauge_fn(obs_prefix_ + ".fired",
                    [this] { return static_cast<double>(stats_.fired); });
  registry.gauge_fn(obs_prefix_ + ".verified",
                    [this] { return static_cast<double>(stats_.verified); });
  registry.gauge_fn(obs_prefix_ + ".failed",
                    [this] { return static_cast<double>(stats_.failed); });
  registry.gauge_fn(obs_prefix_ + ".rolled_back", [this] {
    return static_cast<double>(stats_.rolled_back);
  });
  registry.gauge_fn(obs_prefix_ + ".blocked_hold", [this] {
    return static_cast<double>(stats_.blocked_hold);
  });
  registry.gauge_fn(obs_prefix_ + ".blocked_cooldown", [this] {
    return static_cast<double>(stats_.blocked_cooldown);
  });
  registry.gauge_fn(obs_prefix_ + ".blocked_breaker", [this] {
    return static_cast<double>(stats_.blocked_breaker);
  });
  registry.gauge_fn(obs_prefix_ + ".breaker_trips", [this] {
    return static_cast<double>(stats_.breaker_trips);
  });
  registry.gauge_fn(obs_prefix_ + ".report_only_pairs", [this] {
    return static_cast<double>(report_only_pairs());
  });
  registry.gauge_fn(obs_prefix_ + ".pending",
                    [this] { return static_cast<double>(pending_.size()); });
  registry.gauge_fn(obs_prefix_ + ".log_emitted",
                    [this] { return static_cast<double>(log_.emitted()); });
}

void ControlPolicy::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

}  // namespace netmon::ctrl
