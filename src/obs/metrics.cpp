#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace netmon::obs {
namespace {

// Fixed-format double rendering so exports are byte-stable across runs and
// platforms (no locale, no shortest-round-trip variance). Trailing zeros
// are trimmed for readability but deterministically.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  auto dot = s.find('.');
  auto last = s.find_last_not_of('0');
  if (last == dot) last = dot - 1;  // "3.000000" -> "3"
  s.erase(last + 1);
  return s;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

TraceSink::TraceSink(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceSink::emit(std::int64_t at_ns, std::string category,
                     std::string name, double value) {
  TraceEvent& slot = ring_[emitted_ % ring_.size()];
  slot.at_ns = at_ns;
  slot.category = std::move(category);
  slot.name = std::move(name);
  slot.value = value;
  ++emitted_;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  const std::uint64_t n = std::min<std::uint64_t>(emitted_, ring_.size());
  out.reserve(n);
  const std::uint64_t first = emitted_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceSink::dropped() const {
  return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
}

void Registry::check_unique(const std::string& name, const char* kind) const {
  auto clash = [&](bool same_kind, const char* table) {
    if (!same_kind) {
      throw std::logic_error("obs::Registry: metric '" + name +
                             "' already registered as " + table +
                             ", requested as " + kind);
    }
  };
  if (counters_.count(name) != 0) clash(kind == std::string("counter"),
                                        "counter");
  if (gauges_.count(name) != 0) clash(kind == std::string("gauge"), "gauge");
  if (gauge_fns_.count(name) != 0) {
    clash(kind == std::string("gauge_fn"), "gauge_fn");
  }
  if (histograms_.count(name) != 0) {
    clash(kind == std::string("histogram"), "histogram");
  }
}

Counter& Registry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  check_unique(name, "counter");
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  check_unique(name, "gauge");
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  check_unique(name, "histogram");
  return histograms_[name];
}

void Registry::gauge_fn(const std::string& name, std::function<double()> fn) {
  auto it = gauge_fns_.find(name);
  if (it != gauge_fns_.end()) {
    it->second = std::move(fn);
    return;
  }
  check_unique(name, "gauge_fn");
  gauge_fns_[name] = std::move(fn);
}

namespace {
template <typename Map>
void erase_prefix(Map& map, const std::string& prefix) {
  auto it = map.lower_bound(prefix);
  while (it != map.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = map.erase(it);
  }
}
}  // namespace

void Registry::remove_prefix(const std::string& prefix) {
  erase_prefix(counters_, prefix);
  erase_prefix(gauges_, prefix);
  erase_prefix(gauge_fns_, prefix);
  erase_prefix(histograms_, prefix);
}

bool Registry::contains(const std::string& name) const {
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         gauge_fns_.count(name) != 0 || histograms_.count(name) != 0;
}

std::size_t Registry::size() const {
  return counters_.size() + gauges_.size() + gauge_fns_.size() +
         histograms_.size();
}

std::vector<SnapshotEntry> Registry::snapshot() const {
  std::vector<SnapshotEntry> out;
  out.reserve(size());
  for (const auto& [name, c] : counters_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::kCounter;
    e.value = static_cast<double>(c.value());
    out.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::kGauge;
    e.value = g.value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, fn] : gauge_fns_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::kGauge;
    e.value = fn ? fn() : 0.0;
    out.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    const QuantileSketch& s = h.sketch();
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::kHistogram;
    e.value = static_cast<double>(s.count());
    e.count = s.count();
    e.min = s.min();
    e.max = s.max();
    e.mean = s.mean();
    e.p50 = s.p50();
    e.p90 = s.p90();
    e.p99 = s.p99();
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::to_text(const std::vector<SnapshotEntry>& snapshot) {
  std::string out;
  for (const SnapshotEntry& e : snapshot) {
    out += e.name;
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
        out += " counter " + format_double(e.value);
        break;
      case SnapshotEntry::Kind::kGauge:
        out += " gauge " + format_double(e.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        out += " histogram count=" + format_double(e.value) +
               " min=" + format_double(e.min) + " mean=" + format_double(e.mean) +
               " max=" + format_double(e.max) + " p50=" + format_double(e.p50) +
               " p90=" + format_double(e.p90) + " p99=" + format_double(e.p99);
        break;
    }
    out += '\n';
  }
  return out;
}

std::string Registry::to_json(const std::vector<SnapshotEntry>& snapshot) {
  std::string out = "{\n";
  bool first = true;
  for (const SnapshotEntry& e : snapshot) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + json_escape(e.name) + "\": ";
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
      case SnapshotEntry::Kind::kGauge:
        out += format_double(e.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        out += "{\"count\": " + format_double(e.value) +
               ", \"min\": " + format_double(e.min) +
               ", \"mean\": " + format_double(e.mean) +
               ", \"max\": " + format_double(e.max) +
               ", \"p50\": " + format_double(e.p50) +
               ", \"p90\": " + format_double(e.p90) +
               ", \"p99\": " + format_double(e.p99) + "}";
        break;
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace netmon::obs
