#pragma once

// Streaming quantile estimation for the self-observability layer
// (DESIGN.md §10). The monitor quantifies its own fidelity and
// intrusiveness from unbounded telemetry streams (event latencies, sample
// ages, slot waits), so the estimator must be O(1) per observation and
// O(1) memory — the incremental-quantile approach of Chambers et al.,
// "Monitoring Networked Applications With Incremental Quantile
// Estimation". We use the classic P² marker algorithm (Jain & Chlamtac),
// the deterministic member of that family: five markers per tracked
// quantile, adjusted by a parabolic fit as observations stream in. No
// RNG, no buffers — the same input stream always yields the same
// estimate, which keeps obs snapshots bit-reproducible per seed.

#include <array>
#include <cstddef>

namespace netmon::obs {

// Single-quantile P² estimator. Exact while fewer than five observations
// have been seen (it reports the true sample quantile of what it holds);
// after that, a five-marker streaming approximation.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  double value() const;
  std::size_t count() const { return count_; }
  double probability() const { return q_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, int d) const;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> h_{};   // marker heights
  std::array<double, 5> n_{};   // actual marker positions (1-based ranks)
  std::array<double, 5> np_{};  // desired marker positions
  std::array<double, 5> dn_{};  // desired-position increments per sample
};

// Fixed-quantile sketch used by obs::Histogram: tracks p50/p90/p99 plus
// exact count/sum/min/max. ~200 bytes, O(1) per add, deterministic.
class QuantileSketch {
 public:
  QuantileSketch();

  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  // q must be one of the tracked quantiles {0.5, 0.9, 0.99}; the nearest
  // tracked estimator answers otherwise.
  double quantile(double q) const;
  double p50() const { return p50_.value(); }
  double p90() const { return p90_.value(); }
  double p99() const { return p99_.value(); }

 private:
  P2Quantile p50_;
  P2Quantile p90_;
  P2Quantile p99_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace netmon::obs
