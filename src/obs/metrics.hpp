#pragma once

// Self-observability metrics registry (DESIGN.md §10). The monitor of the
// paper is evaluated by fidelity (senescence + accuracy), intrusiveness,
// and scalability (§4.4); this registry is where the codebase measures
// those properties about *itself*: hot layers register counters, gauges,
// and streaming-quantile histograms here, and a snapshot/exporter surface
// turns them into one coherent, deterministic telemetry view (text, JSON,
// or — via obs/self_mib — an RMON-style SNMP group, so the monitor can be
// monitored by the architecture it implements).
//
// Cost model: instrumented components hold plain pointers into the
// registry and guard every touch with a null check, so an unattached
// component pays one predictable branch; attached counters are a single
// increment, and histogram observations on per-event hot paths are
// sampled (1-in-N) to stay under the <5% bench budget. Defining
// NETMON_OBS_ENABLED=0 compiles every instrumentation site out entirely
// (netmon::obs::kCompiledIn folds the guards away), for a measured-zero
// configuration.
//
// The registry is passive: it never schedules simulator events, so
// attaching observability cannot perturb event order — the event-core
// golden trace holds with instrumentation on (tests/obs_test.cpp).

#ifndef NETMON_OBS_ENABLED
#define NETMON_OBS_ENABLED 1
#endif

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/quantile.hpp"

namespace netmon::obs {

// Compile-time master switch; see NETMON_OBS in the top-level CMakeLists.
inline constexpr bool kCompiledIn = NETMON_OBS_ENABLED != 0;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

class Histogram {
 public:
  void observe(double x) { sketch_.add(x); }
  const QuantileSketch& sketch() const { return sketch_; }
  std::size_t count() const { return sketch_.count(); }

 private:
  QuantileSketch sketch_;
};

// One structured trace event: a timestamped (category, name, value) triple
// emitted by an instrumented component (breaker transitions, timeouts,
// escalations...). Stored in a bounded ring so a chaos soak cannot grow
// without bound.
struct TraceEvent {
  std::int64_t at_ns = 0;
  std::string category;
  std::string name;
  double value = 0.0;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 4096);

  void emit(std::int64_t at_ns, std::string category, std::string name,
            double value);

  // Events currently retained, oldest first (at most `capacity`).
  std::vector<TraceEvent> events() const;
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const;
  std::size_t capacity() const { return ring_.size(); }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t emitted_ = 0;
};

// One exported metric, as captured by Registry::snapshot().
struct SnapshotEntry {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter/gauge value; histogram count
  // Histogram detail (zero for scalar kinds).
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Named metric registry. Handles returned by counter()/gauge()/histogram()
// are stable for the registry's lifetime (node-based storage), so hot
// paths cache the pointer once and never re-look-up by name. Iteration and
// export order is name-sorted, hence deterministic.
class Registry {
 public:
  // Get-or-create. Throws std::logic_error if `name` already names a
  // metric of a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  // Callback-backed gauge, evaluated at snapshot time: zero hot-path cost
  // for values a component already maintains (stats structs, queue sizes).
  // Re-registering a name replaces the callback.
  void gauge_fn(const std::string& name, std::function<double()> fn);

  // Removes every metric whose name starts with `prefix`. Components
  // register under a unique prefix and detach with this on destruction, so
  // a registry may safely outlive what it observed. The reverse is not
  // safe: a component still attached when the registry dies will detach
  // against freed memory — declare the registry before (destroy it after)
  // everything attach_observability'd to it.
  void remove_prefix(const std::string& prefix);

  bool contains(const std::string& name) const;
  std::size_t size() const;

  // Optional structured trace sink (not owned).
  void set_trace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() const { return trace_; }
  void emit(std::int64_t at_ns, std::string category, std::string name,
            double value) {
    if (trace_ != nullptr) {
      trace_->emit(at_ns, std::move(category), std::move(name), value);
    }
  }

  // Point-in-time capture of every metric, name-sorted. gauge_fn callbacks
  // are evaluated here.
  std::vector<SnapshotEntry> snapshot() const;

  // Human-readable one-line-per-metric dump.
  static std::string to_text(const std::vector<SnapshotEntry>& snapshot);
  // Stable JSON (sorted keys, fixed float format): the same telemetry
  // yields the identical byte string, so exports diff cleanly across runs.
  static std::string to_json(const std::vector<SnapshotEntry>& snapshot);
  std::string export_text() const { return to_text(snapshot()); }
  std::string export_json() const { return to_json(snapshot()); }

  // Read-only access to the underlying tables (used by obs/self_mib to
  // bind live MIB variables to handles).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::function<double()>>& gauge_fns() const {
    return gauge_fns_;
  }

 private:
  void check_unique(const std::string& name, const char* kind) const;

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::function<double()>> gauge_fns_;
  std::map<std::string, Histogram> histograms_;
  TraceSink* trace_ = nullptr;
};

}  // namespace netmon::obs
