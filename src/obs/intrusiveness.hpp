#pragma once

// Intrusiveness accounting (paper §4.4, DESIGN.md §10): how much of the
// network the monitor consumes versus the workload it observes. The meter
// ticks on a fixed simulated period, differences the per-TrafficClass NIC
// octet totals of a net::Network, and publishes per-class peak/mean
// bytes-per-second plus the monitoring share through an obs::Registry —
// turning the paper's 59 Mbit/s (parallel C·S·L/P) vs 2.18 Mbit/s
// (sequenced L/P) sequencer result into a measured quantity that
// tests/scenario_test.cpp bounds against the §5.1 formulas.
//
// Unlike registry instrumentation (which is passive), the meter schedules
// its own periodic sampling event, so it is an opt-in harness component —
// attach it in experiments and scenario tests, not inside monitors.

#include <array>
#include <cstdint>
#include <string>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace netmon::obs {

class IntrusivenessMeter {
 public:
  // Registers gauges under "<prefix>.<class>.{peak_bps,mean_bps,total_bytes}"
  // plus "<prefix>.monitoring_share", and a per-class bps histogram fed one
  // observation per tick. Metrics are removed again on destruction.
  IntrusivenessMeter(sim::Simulator& sim, const net::Network& network,
                     Registry& registry,
                     std::string prefix = "net.intrusiveness",
                     sim::Duration tick = sim::Duration::ms(100));
  IntrusivenessMeter(const IntrusivenessMeter&) = delete;
  IntrusivenessMeter& operator=(const IntrusivenessMeter&) = delete;
  ~IntrusivenessMeter();

  double peak_bps(net::TrafficClass cls) const {
    return lanes_[index(cls)].peak_bps;
  }
  double mean_bps(net::TrafficClass cls) const;
  // Most recent tick's rate — the live reading the lane scheduler's budget
  // gate cross-checks its declared-load ledger against (DESIGN.md §11).
  double last_bps(net::TrafficClass cls) const {
    return lanes_[index(cls)].last_bps;
  }
  std::uint64_t total_bytes(net::TrafficClass cls) const;
  // Monitoring + management octets as a fraction of all octets carried
  // since attach (0 when nothing moved).
  double monitoring_share() const;
  std::uint64_t ticks() const { return samples_; }

 private:
  struct Lane {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    double peak_bps = 0.0;
    double last_bps = 0.0;
    double sum_bps = 0.0;
    Histogram* bps_hist = nullptr;  // owned by the registry
  };

  static std::size_t index(net::TrafficClass cls) {
    return static_cast<std::size_t>(cls);
  }
  void sample();

  const net::Network& network_;
  Registry& registry_;
  std::string prefix_;
  sim::Duration tick_;
  std::array<Lane, net::kTrafficClassCount> lanes_{};
  std::uint64_t samples_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace netmon::obs
