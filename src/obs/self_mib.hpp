#pragma once

// RMON-style self-MIB group (DESIGN.md §10): publishes an obs::Registry
// into a snmp::MibTree so the monitor's own health is readable through the
// very architecture it implements — a station can GETNEXT-walk the
// scalable monitor's senescence histograms the same way it walks ifTable.
//
// Layout under the base OID (default: enterprises.9898.1, a private
// "netmonSelf" group beside the RMON group the codebase already models):
//
//   base.1.0          selfMetricCount    Gauge32   live registry size
//   base.2.<i>.{1,2}  selfCounterTable   name (string), value (Counter64)
//   base.3.<i>.{1,2}  selfGaugeTable     name, value (int64, milli-units)
//   base.4.<i>.{1..7} selfHistogramTable name, count (Counter64), then
//                     min/mean/max/p50/p99 as int64 milli-units
//
// Doubles ride as fixed-point milli-units because SNMP has no float type
// (the same trick RMON uses for utilization). Getters resolve by *name* at
// read time, so a metric removed from the registry after install() reads
// as zero rather than dangling; rows for metrics added later appear on the
// next refresh(). Row indices are assigned in name-sorted order at refresh
// time, matching snapshot order.
//
// With a tiered MeasurementDatabase attached to the registry (DESIGN.md
// §13), its "db.pool.*" gauges land in selfGaugeTable and the per-tier
// "db.tier<t>.{rollovers,evictions}" counters in selfCounterTable — the
// storage engine's page/rollover/eviction accounting is SNMP-walkable like
// everything else (tests/db_scale_test.cpp asserts the memory bound
// straight off this table).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "snmp/mib.hpp"
#include "snmp/oid.hpp"

namespace netmon::obs {

inline const snmp::Oid kSelfMibDefaultBase =
    snmp::oids::kEnterprises.with({9898, 1});

class SelfMib {
 public:
  // Installs the group and builds rows for the registry's current
  // contents. The registry and tree must outlive this object.
  SelfMib(snmp::MibTree& mib, const Registry& registry,
          snmp::Oid base = kSelfMibDefaultBase);
  SelfMib(const SelfMib&) = delete;
  SelfMib& operator=(const SelfMib&) = delete;
  ~SelfMib();  // removes the whole subtree

  // Rebuilds the table rows from the registry's current metric set.
  void refresh();

  const snmp::Oid& base() const { return base_; }
  std::size_t rows() const { return rows_; }

 private:
  snmp::MibTree& mib_;
  const Registry& registry_;
  snmp::Oid base_;
  std::size_t rows_ = 0;
};

}  // namespace netmon::obs
