#include "obs/self_mib.hpp"

#include <algorithm>

namespace netmon::obs {
namespace {

std::int64_t to_milli(double v) { return static_cast<std::int64_t>(v * 1000.0); }

// Name-resolving getters: look the metric up in the live registry at read
// time so removed metrics read as a benign default instead of dangling.
snmp::SnmpValue counter_value(const Registry& reg, const std::string& name) {
  auto it = reg.counters().find(name);
  return snmp::Counter64{it == reg.counters().end() ? 0 : it->second.value()};
}

double gauge_value(const Registry& reg, const std::string& name) {
  if (auto it = reg.gauges().find(name); it != reg.gauges().end()) {
    return it->second.value();
  }
  if (auto it = reg.gauge_fns().find(name); it != reg.gauge_fns().end()) {
    return it->second ? it->second() : 0.0;
  }
  return 0.0;
}

const QuantileSketch* hist_sketch(const Registry& reg,
                                  const std::string& name) {
  auto it = reg.histograms().find(name);
  return it == reg.histograms().end() ? nullptr : &it->second.sketch();
}

}  // namespace

SelfMib::SelfMib(snmp::MibTree& mib, const Registry& registry, snmp::Oid base)
    : mib_(mib), registry_(registry), base_(std::move(base)) {
  mib_.add(base_.with({1, 0}), [this] {
    return snmp::Gauge32{static_cast<std::uint32_t>(registry_.size())};
  });
  refresh();
}

SelfMib::~SelfMib() { mib_.remove_subtree(base_); }

void SelfMib::refresh() {
  mib_.remove_subtree(base_.with(2));
  mib_.remove_subtree(base_.with(3));
  mib_.remove_subtree(base_.with(4));
  rows_ = 0;

  const Registry& reg = registry_;
  std::uint32_t i = 0;
  for (const auto& [name, unused] : reg.counters()) {
    ++i;
    mib_.add_const(base_.with({2, i, 1}), name);
    mib_.add(base_.with({2, i, 2}),
             [&reg, name = name] { return counter_value(reg, name); });
    ++rows_;
  }

  // Plain and callback gauges share one table, interleaved in name order
  // (the order Registry::snapshot() reports them in).
  std::vector<std::string> gauge_names;
  gauge_names.reserve(reg.gauges().size() + reg.gauge_fns().size());
  for (const auto& [name, unused] : reg.gauges()) gauge_names.push_back(name);
  for (const auto& [name, unused] : reg.gauge_fns()) {
    gauge_names.push_back(name);
  }
  std::sort(gauge_names.begin(), gauge_names.end());
  i = 0;
  for (const std::string& name : gauge_names) {
    ++i;
    mib_.add_const(base_.with({3, i, 1}), name);
    mib_.add(base_.with({3, i, 2}),
             [&reg, name] { return snmp::SnmpValue(to_milli(gauge_value(reg, name))); });
    ++rows_;
  }

  i = 0;
  for (const auto& [name, unused] : reg.histograms()) {
    ++i;
    mib_.add_const(base_.with({4, i, 1}), name);
    mib_.add(base_.with({4, i, 2}), [&reg, name = name] {
      const QuantileSketch* s = hist_sketch(reg, name);
      return snmp::Counter64{s == nullptr ? 0 : s->count()};
    });
    struct Column {
      std::uint32_t id;
      double (QuantileSketch::*fn)() const;
    };
    static constexpr Column kColumns[] = {
        {3, &QuantileSketch::min}, {4, &QuantileSketch::mean},
        {5, &QuantileSketch::max}, {6, &QuantileSketch::p50},
        {7, &QuantileSketch::p99}};
    for (const Column& col : kColumns) {
      mib_.add(base_.with({4, i, col.id}), [&reg, name = name, fn = col.fn] {
        const QuantileSketch* s = hist_sketch(reg, name);
        return snmp::SnmpValue(s == nullptr ? 0 : to_milli((s->*fn)()));
      });
    }
    ++rows_;
  }
}

}  // namespace netmon::obs
