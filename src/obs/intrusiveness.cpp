#include "obs/intrusiveness.hpp"

namespace netmon::obs {

IntrusivenessMeter::IntrusivenessMeter(sim::Simulator& sim,
                                       const net::Network& network,
                                       Registry& registry, std::string prefix,
                                       sim::Duration tick)
    : network_(network),
      registry_(registry),
      prefix_(std::move(prefix)),
      tick_(tick) {
  const auto totals = network_.octets_by_class();
  for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
    Lane& lane = lanes_[c];
    lane.first = lane.last = totals[c];
    const auto cls = static_cast<net::TrafficClass>(c);
    const std::string base = prefix_ + "." + net::to_string(cls);
    registry_.gauge_fn(base + ".peak_bps",
                       [this, c] { return lanes_[c].peak_bps; });
    registry_.gauge_fn(base + ".mean_bps",
                       [this, cls = static_cast<net::TrafficClass>(c)] {
                         return mean_bps(cls);
                       });
    registry_.gauge_fn(base + ".total_bytes",
                       [this, cls = static_cast<net::TrafficClass>(c)] {
                         return static_cast<double>(total_bytes(cls));
                       });
    lane.bps_hist = &registry_.histogram(base + ".bps");
  }
  registry_.gauge_fn(prefix_ + ".monitoring_share",
                     [this] { return monitoring_share(); });
  task_ = sim::PeriodicTask(sim, tick_, [this] { sample(); });
}

IntrusivenessMeter::~IntrusivenessMeter() { registry_.remove_prefix(prefix_); }

double IntrusivenessMeter::mean_bps(net::TrafficClass cls) const {
  const Lane& lane = lanes_[index(cls)];
  return samples_ == 0 ? 0.0 : lane.sum_bps / static_cast<double>(samples_);
}

std::uint64_t IntrusivenessMeter::total_bytes(net::TrafficClass cls) const {
  const Lane& lane = lanes_[index(cls)];
  return lane.last - lane.first;
}

double IntrusivenessMeter::monitoring_share() const {
  std::uint64_t monitor = 0;
  std::uint64_t all = 0;
  for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
    const std::uint64_t carried = lanes_[c].last - lanes_[c].first;
    all += carried;
    const auto cls = static_cast<net::TrafficClass>(c);
    if (cls == net::TrafficClass::kMonitoring ||
        cls == net::TrafficClass::kManagement) {
      monitor += carried;
    }
  }
  return all == 0 ? 0.0 : static_cast<double>(monitor) /
                              static_cast<double>(all);
}

void IntrusivenessMeter::sample() {
  const auto totals = network_.octets_by_class();
  for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
    Lane& lane = lanes_[c];
    const double bps = static_cast<double>(totals[c] - lane.last) * 8.0 /
                       tick_.to_seconds();
    lane.last = totals[c];
    lane.last_bps = bps;
    if (bps > lane.peak_bps) lane.peak_bps = bps;
    lane.sum_bps += bps;
    lane.bps_hist->observe(bps);
  }
  ++samples_;
}

}  // namespace netmon::obs
