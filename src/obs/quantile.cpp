#include "obs/quantile.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netmon::obs {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q <= 0.0 || q >= 1.0) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  dn_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  return h_[i] +
         d / (n_[i + 1] - n_[i - 1]) *
             ((n_[i] - n_[i - 1] + d) * (h_[i + 1] - h_[i]) /
                  (n_[i + 1] - n_[i]) +
              (n_[i + 1] - n_[i] - d) * (h_[i] - h_[i - 1]) /
                  (n_[i] - n_[i - 1]));
}

double P2Quantile::linear(int i, int d) const {
  return h_[i] + d * (h_[i + d] - h_[i]) / (n_[i + d] - n_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    h_[count_++] = x;
    if (count_ == 5) {
      std::sort(h_.begin(), h_.end());
      for (int i = 0; i < 5; ++i) n_[i] = i + 1;
      np_ = {1.0, 1.0 + 4.0 * dn_[1], 1.0 + 4.0 * dn_[2], 1.0 + 4.0 * dn_[3],
             5.0};
    }
    return;
  }

  // Locate the cell, clamping the extreme markers to the new observation.
  int k;
  if (x < h_[0]) {
    h_[0] = x;
    k = 0;
  } else if (x >= h_[4]) {
    h_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= h_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const int s = d >= 0.0 ? 1 : -1;
      const double hp = parabolic(i, s);
      h_[i] = (h_[i - 1] < hp && hp < h_[i + 1]) ? hp : linear(i, s);
      n_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact sample quantile (nearest rank) of the observations held so far.
    std::array<double, 5> sorted = h_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto rank = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(rank, count_ - 1)];
  }
  return h_[2];
}

QuantileSketch::QuantileSketch()
    : p50_(0.5),
      p90_(0.9),
      p99_(0.99),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void QuantileSketch::add(double x) {
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
  ++count_;
  sum_ += x;
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double QuantileSketch::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }
double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::quantile(double q) const {
  if (q < 0.7) return p50_.value();
  if (q < 0.95) return p90_.value();
  return p99_.value();
}

}  // namespace netmon::obs
