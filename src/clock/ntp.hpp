#pragma once

// SNTP-style clock synchronization over UDP. The paper (§5.1.3.2) found that
// computing clock offsets in-band per measurement was "significantly
// intrusive compared to the overhead of running a clock synchronization
// protocol (e.g. NTP)"; this pair of classes is the NTP side of that trade.

#include <cstdint>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace netmon::clk {

constexpr std::uint16_t kNtpPort = 123;
// Real NTP packets are 48 bytes of UDP payload.
constexpr std::uint32_t kNtpPacketBytes = 48;

struct NtpPayload : net::Payload {
  std::uint32_t seq = 0;
  bool response = false;
  sim::TimePoint t1;  // client transmit (client clock)
  sim::TimePoint t2;  // server receive (server clock)
  sim::TimePoint t3;  // server transmit (server clock)
};

class NtpServer {
 public:
  explicit NtpServer(net::Host& host, std::uint16_t port = kNtpPort);
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  net::Host& host_;
  net::UdpSocket& socket_;
  std::uint64_t requests_served_ = 0;
};

class NtpClient {
 public:
  struct Config {
    sim::Duration poll_interval = sim::Duration::sec(16);
    // Offsets larger than this are stepped; smaller ones are slewed.
    sim::Duration step_threshold = sim::Duration::ms(128);
    double slew_gain = 0.5;
    sim::Duration response_timeout = sim::Duration::sec(2);
  };

  NtpClient(net::Host& host, net::IpAddr server);
  NtpClient(net::Host& host, net::IpAddr server, Config config);

  void start();
  void stop();
  // One synchronous-style exchange (still asynchronous inside the sim).
  void poll_once();

  std::uint64_t polls_sent() const { return polls_sent_; }
  std::uint64_t responses() const { return responses_; }
  sim::Duration last_measured_offset() const { return last_offset_; }
  sim::Duration last_round_trip() const { return last_delay_; }
  const util::Accumulator& offset_history() const { return offset_stats_; }
  // Bytes this client has put on the wire (client side only).
  std::uint64_t bytes_sent() const;

 private:
  void on_response(const net::Packet& packet);

  net::Host& host_;
  net::IpAddr server_;
  Config config_;
  net::UdpSocket& socket_;
  sim::PeriodicTask task_;
  std::uint32_t next_seq_ = 1;
  std::uint32_t awaiting_seq_ = 0;
  sim::TimePoint sent_local_{};
  std::uint64_t polls_sent_ = 0;
  std::uint64_t responses_ = 0;
  sim::Duration last_offset_{};
  sim::Duration last_delay_{};
  util::Accumulator offset_stats_;
};

}  // namespace netmon::clk
