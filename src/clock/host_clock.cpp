#include "clock/host_clock.hpp"

// HostClock is header-only; this translation unit anchors the library target.
