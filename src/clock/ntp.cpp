#include "clock/ntp.hpp"

#include <memory>

#include "util/logging.hpp"

namespace netmon::clk {

NtpServer::NtpServer(net::Host& host, std::uint16_t port)
    : host_(host),
      socket_(host.udp().bind(port, [this](const net::Packet& p) {
        auto req = net::payload_as<NtpPayload>(p);
        if (!req || req->response) return;
        ++requests_served_;
        auto reply = std::make_shared<NtpPayload>(*req);
        reply->response = true;
        reply->t2 = host_.clock().local_now();
        reply->t3 = host_.clock().local_now();
        socket_.send_to(p.src, p.src_port, kNtpPacketBytes, std::move(reply),
                        net::TrafficClass::kClockSync);
      })) {}

NtpClient::NtpClient(net::Host& host, net::IpAddr server)
    : NtpClient(host, server, Config{}) {}

NtpClient::NtpClient(net::Host& host, net::IpAddr server, Config config)
    : host_(host),
      server_(server),
      config_(config),
      socket_(host.udp().bind(
          0, [this](const net::Packet& p) { on_response(p); })) {}

void NtpClient::start() {
  poll_once();
  task_ = sim::PeriodicTask(host_.simulator(), config_.poll_interval,
                            [this] { poll_once(); });
}

void NtpClient::stop() { task_.cancel(); }

void NtpClient::poll_once() {
  auto req = std::make_shared<NtpPayload>();
  req->seq = next_seq_++;
  req->t1 = host_.clock().local_now();
  awaiting_seq_ = req->seq;
  sent_local_ = req->t1;
  ++polls_sent_;
  socket_.send_to(server_, kNtpPort, kNtpPacketBytes, std::move(req),
                  net::TrafficClass::kClockSync);
}

void NtpClient::on_response(const net::Packet& packet) {
  auto resp = net::payload_as<NtpPayload>(packet);
  if (!resp || !resp->response || resp->seq != awaiting_seq_) return;
  awaiting_seq_ = 0;
  ++responses_;

  const sim::TimePoint t4 = host_.clock().local_now();
  const sim::TimePoint t1 = resp->t1;
  const sim::TimePoint t2 = resp->t2;
  const sim::TimePoint t3 = resp->t3;
  // Standard NTP offset/delay estimators.
  const std::int64_t offset_ns =
      ((t2 - t1).nanos() + (t3 - t4).nanos()) / 2;
  const std::int64_t delay_ns = (t4 - t1).nanos() - (t3 - t2).nanos();
  last_offset_ = sim::Duration::ns(offset_ns);
  last_delay_ = sim::Duration::ns(delay_ns);
  offset_stats_.add(static_cast<double>(offset_ns) / 1e9);

  // Positive offset means the server clock is ahead of ours.
  if (std::abs(offset_ns) >= config_.step_threshold.nanos()) {
    host_.clock().adjust(last_offset_);
  } else {
    const auto slew = static_cast<std::int64_t>(
        static_cast<double>(offset_ns) * config_.slew_gain);
    host_.clock().adjust(sim::Duration::ns(slew));
  }
}

std::uint64_t NtpClient::bytes_sent() const {
  // Client request wire size: payload + UDP/IP headers + frame overhead.
  const std::uint64_t per_packet =
      kNtpPacketBytes + 28 + net::Frame::kFrameOverheadBytes;
  return polls_sent_ * per_packet;
}

}  // namespace netmon::clk
