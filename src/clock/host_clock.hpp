#pragma once

// Per-host real-time clock. Hosts never see true simulated time directly:
// timestamps they place in packets (NTTCP probes, SNMP sysUpTime, RMON
// buckets) come from here, so clock offset, drift, and reading granularity
// affect measurements exactly as they did in the paper's testbed (§5.1.3.2,
// §5.2.4 "clock granularity appears to be limited").

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace netmon::clk {

class HostClock {
 public:
  // offset: initial error vs true time; drift_ppm: rate error in parts per
  // million; granularity: reading quantum (e.g. 10 ms COTS tick).
  HostClock(sim::Simulator& sim, sim::Duration offset = sim::Duration::ns(0),
            double drift_ppm = 0.0,
            sim::Duration granularity = sim::Duration::ns(1))
      : sim_(&sim), offset_(offset), drift_ppm_(drift_ppm),
        granularity_(granularity) {}

  // The local reading, quantized to the clock granularity.
  sim::TimePoint local_now() const {
    const std::int64_t raw = raw_local_nanos();
    const std::int64_t g = granularity_.nanos();
    const std::int64_t q = g <= 1 ? raw : (raw / g) * g;
    return sim::TimePoint::from_nanos(q);
  }

  // Signed error (local - true) at this instant, unquantized. Experiments
  // read this to score synchronization quality; protocols must not.
  sim::Duration true_error() const {
    return sim::Duration::ns(raw_local_nanos() - sim_->now().nanos());
  }

  // Slew/step the clock by delta (NTP adjustment path).
  void adjust(sim::Duration delta) { offset_ += delta; }

  sim::Duration configured_offset() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }
  sim::Duration granularity() const { return granularity_; }
  void set_granularity(sim::Duration g) { granularity_ = g; }

 private:
  std::int64_t raw_local_nanos() const {
    const std::int64_t t = sim_->now().nanos();
    const double drifted =
        static_cast<double>(t) * (drift_ppm_ * 1e-6);
    return t + offset_.nanos() + static_cast<std::int64_t>(drifted);
  }

  sim::Simulator* sim_;
  sim::Duration offset_;
  double drift_ppm_;
  sim::Duration granularity_;
};

}  // namespace netmon::clk
