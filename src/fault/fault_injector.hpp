#pragma once

// Executes a FaultPlan against a registered set of targets. Targets are
// registered by name (links, segments, hosts, chaos sensors); arm() validates
// every name up front — a typo throws at arm time instead of silently never
// firing — then schedules each fault on the simulator. Every applied fault is
// appended to a timestamped log so chaos runs can be asserted and diffed.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/chaos_sensor.hpp"
#include "fault/fault_plan.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/shared_segment.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim) : sim_(sim) {}

  // Registration. A link registers as both a link target (for down/up/flap)
  // and a medium target (for packet chaos); a segment only as a medium.
  void register_link(std::string name, net::Link& link);
  void register_segment(std::string name, net::SharedSegment& segment);
  void register_host(std::string name, net::Host& host);
  void register_sensor(std::string name, ChaosSensor& sensor);

  // Schedule every fault of the plan, relative to now(). Chaos-window RNG
  // streams are forked from plan.seed here, in plan order, so the schedule
  // is independent of event execution order. Throws std::invalid_argument
  // for unknown target names or malformed faults.
  void arm(const FaultPlan& plan);

  struct FaultRecord {
    sim::TimePoint at;
    std::string description;
  };
  const std::vector<FaultRecord>& log() const { return log_; }

  struct Stats {
    std::uint64_t faults_applied = 0;
    std::uint64_t link_transitions = 0;   // down or up edges (flaps count each)
    std::uint64_t host_transitions = 0;   // crashes + restarts
    std::uint64_t partitions = 0;         // HostPartition windows opened
    std::uint64_t chaos_windows = 0;      // PacketChaos windows opened
    std::uint64_t clock_steps = 0;
    std::uint64_t sensor_mode_changes = 0;
  };
  const Stats& stats() const { return stats_; }

  // Frame-level damage summed across every registered medium.
  net::MediumFaultStats frame_stats() const;

 private:
  // Active chaos window on one medium. shared_ptr-held by both the hook
  // closure and the window-close event; the close event uninstalls the hook
  // only if this window is still the one installed (a later window may have
  // replaced it).
  struct ChaosWindow {
    util::Rng rng;
    double drop_probability = 0.0;
    double corrupt_probability = 0.0;
    sim::Duration extra_delay{};
    explicit ChaosWindow(util::Rng r) : rng(std::move(r)) {}
  };

  void apply(const FaultAction& action,
             std::shared_ptr<ChaosWindow> window);
  void record(const std::string& description);
  void validate(const FaultAction& action) const;

  net::Link& link_target(const std::string& name) const;
  net::Medium& medium_target(const std::string& name) const;
  net::Host& host_target(const std::string& name) const;
  ChaosSensor& sensor_target(const std::string& name) const;

  sim::Simulator& sim_;
  std::map<std::string, net::Link*> links_;
  std::map<std::string, net::Medium*> media_;
  std::map<std::string, net::Host*> hosts_;
  std::map<std::string, ChaosSensor*> sensors_;
  std::map<const net::Medium*, std::shared_ptr<ChaosWindow>> active_windows_;
  std::vector<FaultRecord> log_;
  Stats stats_;
};

}  // namespace netmon::fault
