#include "fault/fault_injector.hpp"

#include <stdexcept>
#include <utility>
#include <variant>

namespace netmon::fault {

void FaultInjector::register_link(std::string name, net::Link& link) {
  media_[name] = &link;
  links_[std::move(name)] = &link;
}

void FaultInjector::register_segment(std::string name,
                                     net::SharedSegment& segment) {
  media_[std::move(name)] = &segment;
}

void FaultInjector::register_host(std::string name, net::Host& host) {
  hosts_[std::move(name)] = &host;
}

void FaultInjector::register_sensor(std::string name, ChaosSensor& sensor) {
  sensors_[std::move(name)] = &sensor;
}

net::Link& FaultInjector::link_target(const std::string& name) const {
  auto it = links_.find(name);
  if (it == links_.end()) {
    throw std::invalid_argument("FaultInjector: unknown link " + name);
  }
  return *it->second;
}

net::Medium& FaultInjector::medium_target(const std::string& name) const {
  auto it = media_.find(name);
  if (it == media_.end()) {
    throw std::invalid_argument("FaultInjector: unknown medium " + name);
  }
  return *it->second;
}

net::Host& FaultInjector::host_target(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    throw std::invalid_argument("FaultInjector: unknown host " + name);
  }
  return *it->second;
}

ChaosSensor& FaultInjector::sensor_target(const std::string& name) const {
  auto it = sensors_.find(name);
  if (it == sensors_.end()) {
    throw std::invalid_argument("FaultInjector: unknown sensor " + name);
  }
  return *it->second;
}

void FaultInjector::record(const std::string& description) {
  // The log is ordered by application time by construction: the simulator
  // clock never runs backwards. A violation means memory corruption or a
  // clock bug, not a scheduling race — fail loudly.
  if (!log_.empty() && sim_.now() < log_.back().at) {
    throw std::logic_error(
        "FaultInjector: fault log timestamp went backwards at \"" +
        description + "\"");
  }
  log_.push_back(FaultRecord{sim_.now(), description});
}

void FaultInjector::validate(const FaultAction& action) const {
  if (const auto* f = std::get_if<LinkDown>(&action)) {
    link_target(f->link);
  } else if (const auto* f = std::get_if<LinkUp>(&action)) {
    link_target(f->link);
  } else if (const auto* f = std::get_if<LinkFlap>(&action)) {
    link_target(f->link);
    if (f->cycles < 1) {
      throw std::invalid_argument("FaultInjector: flap cycles < 1");
    }
    if (f->down_for.nanos() <= 0) {
      throw std::invalid_argument("FaultInjector: flap down_for <= 0");
    }
    if (f->up_for.nanos() < 0) {
      throw std::invalid_argument("FaultInjector: flap up_for < 0");
    }
  } else if (const auto* f = std::get_if<HostCrash>(&action)) {
    host_target(f->host);
  } else if (const auto* f = std::get_if<HostRestart>(&action)) {
    host_target(f->host);
  } else if (const auto* f = std::get_if<HostPartition>(&action)) {
    host_target(f->host);
    if (f->duration.nanos() <= 0) {
      throw std::invalid_argument("FaultInjector: partition duration <= 0");
    }
  } else if (const auto* f = std::get_if<PacketChaos>(&action)) {
    medium_target(f->medium);
    if (f->duration.nanos() <= 0) {
      throw std::invalid_argument("FaultInjector: chaos duration <= 0");
    }
    if (f->drop_probability < 0.0 || f->drop_probability > 1.0 ||
        f->corrupt_probability < 0.0 || f->corrupt_probability > 1.0) {
      throw std::invalid_argument("FaultInjector: probability out of [0,1]");
    }
    if (f->extra_delay.nanos() < 0) {
      throw std::invalid_argument("FaultInjector: chaos extra_delay < 0");
    }
  } else if (const auto* f = std::get_if<ClockStep>(&action)) {
    host_target(f->host);
  } else if (const auto* f = std::get_if<SensorMode>(&action)) {
    sensor_target(f->sensor);
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  // Fail fast on typos: every target must resolve before anything is
  // scheduled.
  for (const TimedFault& fault : plan.faults) {
    if (fault.at.nanos() < 0) {
      throw std::invalid_argument("FaultInjector: fault scheduled in the past");
    }
    validate(fault.action);
  }

  // One master stream per arm; chaos windows fork children in plan order so
  // their randomness does not depend on when (or whether) windows overlap.
  util::Rng master(plan.seed);
  const sim::TimePoint base = sim_.now();

  for (const TimedFault& fault : plan.faults) {
    const sim::TimePoint when = base + fault.at;

    if (const auto* f = std::get_if<LinkDown>(&fault.action)) {
      net::Link* link = &link_target(f->link);
      sim_.schedule_at(when, [this, link, d = describe(fault.action)] {
        link->set_up(false);
        ++stats_.faults_applied;
        ++stats_.link_transitions;
        record(d);
      });

    } else if (const auto* f = std::get_if<LinkUp>(&fault.action)) {
      net::Link* link = &link_target(f->link);
      sim_.schedule_at(when, [this, link, d = describe(fault.action)] {
        link->set_up(true);
        ++stats_.faults_applied;
        ++stats_.link_transitions;
        record(d);
      });

    } else if (const auto* f = std::get_if<LinkFlap>(&fault.action)) {
      net::Link* link = &link_target(f->link);
      sim_.schedule_at(when, [this, d = describe(fault.action)] {
        ++stats_.faults_applied;
        record(d);
      });
      const sim::Duration cycle = f->down_for + f->up_for;
      for (int i = 0; i < f->cycles; ++i) {
        const sim::TimePoint down_at = when + cycle * i;
        const sim::TimePoint up_at = down_at + f->down_for;
        sim_.schedule_at(down_at, [this, link, name = f->link] {
          link->set_up(false);
          ++stats_.link_transitions;
          record("link " + name + " down (flap)");
        });
        sim_.schedule_at(up_at, [this, link, name = f->link] {
          link->set_up(true);
          ++stats_.link_transitions;
          record("link " + name + " up (flap)");
        });
      }

    } else if (const auto* f = std::get_if<HostCrash>(&fault.action)) {
      net::Host* host = &host_target(f->host);
      sim_.schedule_at(when, [this, host, d = describe(fault.action)] {
        host->set_up(false);
        ++stats_.faults_applied;
        ++stats_.host_transitions;
        record(d);
      });

    } else if (const auto* f = std::get_if<HostRestart>(&fault.action)) {
      net::Host* host = &host_target(f->host);
      sim_.schedule_at(when, [this, host, d = describe(fault.action)] {
        host->set_up(true);
        ++stats_.faults_applied;
        ++stats_.host_transitions;
        record(d);
      });

    } else if (const auto* f = std::get_if<HostPartition>(&fault.action)) {
      net::Host* host = &host_target(f->host);
      sim_.schedule_at(when, [this, host, d = describe(fault.action)] {
        for (const auto& nic : host->nics()) nic->set_up(false);
        ++stats_.faults_applied;
        ++stats_.partitions;
        record(d);
      });
      sim_.schedule_at(when + f->duration, [this, host, name = f->host] {
        // The host may have crashed during the window; healing the partition
        // must not resurrect its interfaces. Host restart re-raises them.
        if (!host->up()) {
          record("partition on " + name + " healed (host down)");
          return;
        }
        for (const auto& nic : host->nics()) nic->set_up(true);
        record("partition on " + name + " healed");
      });

    } else if (const auto* f = std::get_if<PacketChaos>(&fault.action)) {
      net::Medium* medium = &medium_target(f->medium);
      auto window = std::make_shared<ChaosWindow>(master.fork());
      window->drop_probability = f->drop_probability;
      window->corrupt_probability = f->corrupt_probability;
      window->extra_delay = f->extra_delay;

      sim_.schedule_at(when, [this, medium, window,
                              d = describe(fault.action)] {
        medium->set_fault_hook([window](const net::Frame&) {
          net::FaultVerdict verdict;
          if (window->rng.bernoulli(window->drop_probability)) {
            verdict.drop = true;
          } else if (window->rng.bernoulli(window->corrupt_probability)) {
            verdict.corrupt = true;
          } else {
            verdict.extra_delay = window->extra_delay;
          }
          return verdict;
        });
        active_windows_[medium] = window;
        ++stats_.faults_applied;
        ++stats_.chaos_windows;
        record(d);
      });
      sim_.schedule_at(when + f->duration,
                       [this, medium, window, name = f->medium] {
        // A later window may have replaced this one; only the window that is
        // still installed gets to uninstall the hook.
        auto it = active_windows_.find(medium);
        if (it == active_windows_.end() || it->second != window) return;
        medium->set_fault_hook(nullptr);
        active_windows_.erase(it);
        record("packet chaos on " + name + " ended");
      });

    } else if (const auto* f = std::get_if<ClockStep>(&fault.action)) {
      net::Host* host = &host_target(f->host);
      const sim::Duration delta = f->delta;
      sim_.schedule_at(when, [this, host, delta,
                              d = describe(fault.action)] {
        host->clock().adjust(delta);
        ++stats_.faults_applied;
        ++stats_.clock_steps;
        record(d);
      });

    } else if (const auto* f = std::get_if<SensorMode>(&fault.action)) {
      ChaosSensor* sensor = &sensor_target(f->sensor);
      const ChaosSensor::Mode mode = f->mode;
      sim_.schedule_at(when, [this, sensor, mode,
                              d = describe(fault.action)] {
        sensor->set_mode(mode);
        ++stats_.faults_applied;
        ++stats_.sensor_mode_changes;
        record(d);
      });
    }
  }
}

net::MediumFaultStats FaultInjector::frame_stats() const {
  net::MediumFaultStats total;
  for (const auto& [name, medium] : media_) {
    const net::MediumFaultStats& s = medium->fault_stats();
    total.frames_dropped += s.frames_dropped;
    total.frames_corrupted += s.frames_corrupted;
    total.frames_delayed += s.frames_delayed;
  }
  return total;
}

}  // namespace netmon::fault
