#pragma once

// Declarative fault scenarios. A FaultPlan is a seed plus a schedule of
// TimedFault entries — link outages and flaps, host crash/restart, windowed
// packet loss/corruption/delay on any medium, clock steps, and
// misbehaving-sensor mode switches. Plans are plain data: build one, hand it
// to a FaultInjector, and the same plan against the same topology and seed
// replays the identical chaos run event for event.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "fault/chaos_sensor.hpp"
#include "sim/time.hpp"

namespace netmon::fault {

struct LinkDown {
  std::string link;
};

struct LinkUp {
  std::string link;
};

// Repeated outage: starting at the scheduled time the link goes down for
// `down_for`, comes back for `up_for`, `cycles` times over.
struct LinkFlap {
  std::string link;
  int cycles = 3;
  sim::Duration down_for;
  sim::Duration up_for;
};

struct HostCrash {
  std::string host;
};

struct HostRestart {
  std::string host;
};

// Windowed stochastic packet chaos on a registered medium (link or shared
// segment): for `duration` each frame is independently dropped with
// drop_probability, else corrupted with corrupt_probability, else delivered
// `extra_delay` late. Randomness comes from a child stream forked off the
// plan seed in plan order, so runs are reproducible.
struct PacketChaos {
  std::string medium;
  sim::Duration duration;
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;
  sim::Duration extra_delay{};
};

// Network partition: bidirectional link isolation of a host for a window.
// Every interface of the host is forced down at the scheduled time and back
// up `duration` later — no frames in or out — while the host itself keeps
// running (timers fire, state is retained). This is the "unreachable, not
// dead" failure mode that crash faults cannot express: a partitioned
// federation child keeps sealing pages into its spool and must catch up
// when the window heals (DESIGN.md §14).
struct HostPartition {
  std::string host;
  sim::Duration duration;
};

// Step a host's real-time clock by `delta` (positive or negative) —
// exercises timestamp-sensitive consumers like senescence and one-way
// latency.
struct ClockStep {
  std::string host;
  sim::Duration delta;
};

// Switch a registered ChaosSensor into a pathology (or back to
// passthrough).
struct SensorMode {
  std::string sensor;
  ChaosSensor::Mode mode = ChaosSensor::Mode::kPassthrough;
};

using FaultAction = std::variant<LinkDown, LinkUp, LinkFlap, HostCrash,
                                 HostRestart, HostPartition, PacketChaos,
                                 ClockStep, SensorMode>;

// One-line human-readable description, used for the injector's fault log.
std::string describe(const FaultAction& action);

struct TimedFault {
  sim::Duration at;  // relative to the time the plan is armed
  FaultAction action;
};

struct FaultPlan {
  std::uint64_t seed = 1;  // drives every stochastic chaos window
  std::vector<TimedFault> faults;

  FaultPlan& add(sim::Duration at, FaultAction action) {
    faults.push_back(TimedFault{at, std::move(action)});
    return *this;
  }

  // Fluent builders.
  FaultPlan& link_down(sim::Duration at, std::string link) {
    return add(at, LinkDown{std::move(link)});
  }
  FaultPlan& link_up(sim::Duration at, std::string link) {
    return add(at, LinkUp{std::move(link)});
  }
  FaultPlan& link_flap(sim::Duration at, std::string link, int cycles,
                       sim::Duration down_for, sim::Duration up_for) {
    return add(at, LinkFlap{std::move(link), cycles, down_for, up_for});
  }
  FaultPlan& host_crash(sim::Duration at, std::string host) {
    return add(at, HostCrash{std::move(host)});
  }
  FaultPlan& host_restart(sim::Duration at, std::string host) {
    return add(at, HostRestart{std::move(host)});
  }
  FaultPlan& partition(sim::Duration at, std::string host,
                       sim::Duration duration) {
    return add(at, HostPartition{std::move(host), duration});
  }
  FaultPlan& packet_chaos(sim::Duration at, std::string medium,
                          sim::Duration duration, double drop_probability,
                          double corrupt_probability = 0.0,
                          sim::Duration extra_delay = {}) {
    return add(at, PacketChaos{std::move(medium), duration, drop_probability,
                               corrupt_probability, extra_delay});
  }
  FaultPlan& clock_step(sim::Duration at, std::string host,
                        sim::Duration delta) {
    return add(at, ClockStep{std::move(host), delta});
  }
  FaultPlan& sensor_mode(sim::Duration at, std::string sensor,
                         ChaosSensor::Mode mode) {
    return add(at, SensorMode{std::move(sensor), mode});
  }
};

}  // namespace netmon::fault
