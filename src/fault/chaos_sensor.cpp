#include "fault/chaos_sensor.hpp"

#include <utility>

namespace netmon::fault {

const char* ChaosSensor::to_string(Mode mode) {
  switch (mode) {
    case Mode::kPassthrough: return "passthrough";
    case Mode::kHang: return "hang";
    case Mode::kNeverDone: return "never-done";
    case Mode::kDoubleDone: return "double-done";
    case Mode::kStaleValue: return "stale-value";
    case Mode::kFail: return "fail";
    case Mode::kDelay: return "delay";
  }
  return "?";
}

void ChaosSensor::remember(const core::Path& path, core::Metric metric,
                           const core::MetricValue& value) {
  if (value.valid) last_good_[{path, metric}] = value;
}

void ChaosSensor::measure(const core::Path& path, core::Metric metric,
                          Done done) {
  ++stats_.intercepted;
  switch (mode_) {
    case Mode::kPassthrough:
      inner_.measure(path, metric,
                     [this, path, metric, done = std::move(done)](
                         const core::MetricValue& value) {
                       remember(path, metric, value);
                       done(value);
                     });
      return;

    case Mode::kHang:
      // Park the callback forever; the sequencer slot stays occupied until
      // the supervision deadline reclaims it.
      ++stats_.hangs;
      held_.push_back(std::move(done));
      return;

    case Mode::kNeverDone:
      // Let `done` fall out of scope uncalled — exercises the sequencer's
      // abandoned-completion recovery.
      ++stats_.dropped_dones;
      return;

    case Mode::kDoubleDone:
      inner_.measure(path, metric,
                     [this, path, metric, done = std::move(done)](
                         const core::MetricValue& value) {
                       remember(path, metric, value);
                       done(value);
                       ++stats_.double_dones;
                       done(value);
                     });
      return;

    case Mode::kStaleValue: {
      // Serve the last value this wrapper ever saw, original timestamp and
      // all, without touching the network. A lying sensor, not a failing one.
      auto it = last_good_.find({path, metric});
      if (it != last_good_.end()) {
        ++stats_.stale_served;
        done(it->second);
      } else {
        done(core::MetricValue::failed(sim_.now()));
      }
      return;
    }

    case Mode::kFail:
      ++stats_.failures_injected;
      done(core::MetricValue::failed(sim_.now()));
      return;

    case Mode::kDelay:
      inner_.measure(path, metric,
                     [this, path, metric, done = std::move(done)](
                         const core::MetricValue& value) {
                       remember(path, metric, value);
                       ++stats_.delayed;
                       sim_.schedule_in(extra_delay_, [done, value] {
                         done(value);
                       });
                     });
      return;
  }
}

}  // namespace netmon::fault
