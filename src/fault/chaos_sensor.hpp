#pragma once

// Misbehaving-sensor wrapper for fault injection: decorates any
// core::NetworkSensor with scripted pathologies — hang (hold the completion
// callback forever, wedging a sequencer slot), never-done (drop the callback
// uncalled), double-done (violate the exactly-once contract), stale-value
// (replay old data with its original timestamp), outright failure, and
// added latency. Used by fault::FaultInjector to exercise the supervision
// layer (deadline, retry, breaker, fallback) deterministically.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/sensor_director.hpp"
#include "sim/simulator.hpp"

namespace netmon::fault {

class ChaosSensor : public core::NetworkSensor {
 public:
  enum class Mode : std::uint8_t {
    kPassthrough,  // behave exactly like the wrapped sensor
    kHang,         // start nothing and hold `done` forever (stuck slot)
    kNeverDone,    // drop `done` without ever calling it
    kDoubleDone,   // complete normally, then invoke done a second time
    kStaleValue,   // replay the last good value with its original timestamp
    kFail,         // report a failed measurement immediately
    kDelay,        // run the wrapped sensor, then delay done by extra_delay
  };

  ChaosSensor(sim::Simulator& sim, core::NetworkSensor& inner)
      : sim_(sim), inner_(inner) {}

  std::string name() const override { return "chaos(" + inner_.name() + ")"; }
  bool supports(core::Metric metric) const override {
    return inner_.supports(metric);
  }
  void measure(const core::Path& path, core::Metric metric,
               Done done) override;

  void set_mode(Mode mode) { mode_ = mode; }
  Mode mode() const { return mode_; }
  void set_extra_delay(sim::Duration delay) { extra_delay_ = delay; }

  struct Stats {
    std::uint64_t intercepted = 0;     // measure() calls seen
    std::uint64_t hangs = 0;           // callbacks held forever
    std::uint64_t dropped_dones = 0;   // callbacks destroyed uncalled
    std::uint64_t double_dones = 0;    // second invocations injected
    std::uint64_t stale_served = 0;    // old values replayed
    std::uint64_t failures_injected = 0;
    std::uint64_t delayed = 0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t held_callbacks() const { return held_.size(); }
  core::NetworkSensor& inner() { return inner_; }

  static const char* to_string(Mode mode);

 private:
  void remember(const core::Path& path, core::Metric metric,
                const core::MetricValue& value);

  sim::Simulator& sim_;
  core::NetworkSensor& inner_;
  Mode mode_ = Mode::kPassthrough;
  sim::Duration extra_delay_ = sim::Duration::ms(50);
  std::vector<Done> held_;  // kHang parks callbacks here, forever
  std::map<std::pair<core::Path, core::Metric>, core::MetricValue> last_good_;
  Stats stats_;
};

}  // namespace netmon::fault
