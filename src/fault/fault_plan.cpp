#include "fault/fault_plan.hpp"

#include <sstream>

namespace netmon::fault {

namespace {

struct Describer {
  std::string operator()(const LinkDown& f) const {
    return "link " + f.link + " down";
  }
  std::string operator()(const LinkUp& f) const {
    return "link " + f.link + " up";
  }
  std::string operator()(const LinkFlap& f) const {
    std::ostringstream os;
    os << "link " << f.link << " flap x" << f.cycles << " (down "
       << f.down_for.to_string() << ", up " << f.up_for.to_string() << ")";
    return os.str();
  }
  std::string operator()(const HostCrash& f) const {
    return "host " + f.host + " crash";
  }
  std::string operator()(const HostRestart& f) const {
    return "host " + f.host + " restart";
  }
  std::string operator()(const HostPartition& f) const {
    return "partition " + f.host + " for " + f.duration.to_string();
  }
  std::string operator()(const PacketChaos& f) const {
    std::ostringstream os;
    os << "packet chaos on " << f.medium << " for "
       << f.duration.to_string() << " (drop " << f.drop_probability
       << ", corrupt " << f.corrupt_probability;
    if (!f.extra_delay.is_zero()) os << ", delay " << f.extra_delay.to_string();
    os << ")";
    return os.str();
  }
  std::string operator()(const ClockStep& f) const {
    return "clock step on " + f.host + " by " + f.delta.to_string();
  }
  std::string operator()(const SensorMode& f) const {
    return std::string("sensor ") + f.sensor + " -> " +
           ChaosSensor::to_string(f.mode);
  }
};

}  // namespace

std::string describe(const FaultAction& action) {
  return std::visit(Describer{}, action);
}

}  // namespace netmon::fault
