#include "snmp/ber.hpp"

namespace netmon::snmp {

// ---------------------------------------------------------------- writer

void BerWriter::write_tag_length(BerTag tag, std::size_t length) {
  out_.push_back(static_cast<std::uint8_t>(tag));
  if (length < 0x80) {
    out_.push_back(static_cast<std::uint8_t>(length));
    return;
  }
  // Long form: count significant bytes.
  std::uint8_t len_bytes[8];
  int n = 0;
  std::size_t v = length;
  while (v != 0) {
    len_bytes[n++] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
  out_.push_back(static_cast<std::uint8_t>(0x80 | n));
  for (int i = n - 1; i >= 0; --i) out_.push_back(len_bytes[i]);
}

void BerWriter::write_integer(std::int64_t value) {
  // Minimal two's-complement encoding.
  std::uint8_t buf[9];
  int n = 0;
  bool more = true;
  std::int64_t v = value;
  while (more) {
    buf[n++] = static_cast<std::uint8_t>(v & 0xFF);
    const std::int64_t shifted = v >> 8;
    // Stop when remaining bits are pure sign extension and the sign bit of
    // the last emitted byte matches.
    if ((shifted == 0 && (buf[n - 1] & 0x80) == 0) ||
        (shifted == -1 && (buf[n - 1] & 0x80) != 0)) {
      more = false;
    } else {
      v = shifted;
    }
  }
  write_tag_length(BerTag::kInteger, static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) out_.push_back(buf[i]);
}

void BerWriter::write_unsigned(BerTag tag, std::uint64_t value) {
  // Unsigned application types: prepend 0x00 if the high bit would read as
  // a sign bit.
  std::uint8_t buf[9];
  int n = 0;
  std::uint64_t v = value;
  do {
    buf[n++] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  } while (v != 0);
  const bool pad = (buf[n - 1] & 0x80) != 0;
  write_tag_length(tag, static_cast<std::size_t>(n + (pad ? 1 : 0)));
  if (pad) out_.push_back(0x00);
  for (int i = n - 1; i >= 0; --i) out_.push_back(buf[i]);
}

void BerWriter::write_octet_string(const std::string& value) {
  write_tag_length(BerTag::kOctetString, value.size());
  out_.insert(out_.end(), value.begin(), value.end());
}

void BerWriter::write_null() { write_tag_length(BerTag::kNull, 0); }

void BerWriter::write_oid(const Oid& oid) {
  const auto& ids = oid.ids();
  if (ids.size() < 2) throw BerError("BER: OID needs >= 2 components");
  if (ids[0] > 2 || ids[1] >= 40) throw BerError("BER: bad OID head");
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(ids[0] * 40 + ids[1]));
  for (std::size_t i = 2; i < ids.size(); ++i) {
    std::uint32_t v = ids[i];
    std::uint8_t chunk[5];
    int n = 0;
    do {
      chunk[n++] = static_cast<std::uint8_t>(v & 0x7F);
      v >>= 7;
    } while (v != 0);
    for (int j = n - 1; j >= 0; --j) {
      body.push_back(static_cast<std::uint8_t>(chunk[j] | (j > 0 ? 0x80 : 0)));
    }
  }
  write_tag_length(BerTag::kOid, body.size());
  out_.insert(out_.end(), body.begin(), body.end());
}

void BerWriter::write_ip(net::IpAddr ip) {
  write_tag_length(BerTag::kIpAddress, 4);
  const std::uint32_t raw = ip.raw();
  out_.push_back(static_cast<std::uint8_t>((raw >> 24) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((raw >> 16) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((raw >> 8) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(raw & 0xFF));
}

void BerWriter::write_exception(BerTag tag) { write_tag_length(tag, 0); }

void BerWriter::write_value(const SnmpValue& value) {
  struct Visitor {
    BerWriter& w;
    void operator()(const Null&) { w.write_null(); }
    void operator()(std::int64_t v) { w.write_integer(v); }
    void operator()(const std::string& v) { w.write_octet_string(v); }
    void operator()(const Oid& v) { w.write_oid(v); }
    void operator()(const net::IpAddr& v) { w.write_ip(v); }
    void operator()(const Counter32& v) {
      w.write_unsigned(BerTag::kCounter32, v.value);
    }
    void operator()(const Gauge32& v) {
      w.write_unsigned(BerTag::kGauge32, v.value);
    }
    void operator()(const TimeTicks& v) {
      w.write_unsigned(BerTag::kTimeTicks, v.value);
    }
    void operator()(const Counter64& v) {
      w.write_unsigned(BerTag::kCounter64, v.value);
    }
    void operator()(const EndOfMibView&) {
      w.write_exception(BerTag::kEndOfMibView);
    }
    void operator()(const NoSuchObject&) {
      w.write_exception(BerTag::kNoSuchObject);
    }
  };
  std::visit(Visitor{*this}, value.storage());
}

void BerWriter::write_constructed(BerTag tag, const BerWriter& contents) {
  write_tag_length(tag, contents.size());
  out_.insert(out_.end(), contents.bytes().begin(), contents.bytes().end());
}

// ---------------------------------------------------------------- reader

std::uint8_t BerReader::next_byte() {
  if (pos_ >= data_.size()) throw BerError("BER: truncated input");
  return data_[pos_++];
}

std::uint8_t BerReader::peek_byte() const {
  if (pos_ >= data_.size()) throw BerError("BER: truncated input");
  return data_[pos_];
}

BerTag BerReader::peek_tag() const { return static_cast<BerTag>(peek_byte()); }

std::size_t BerReader::read_length() {
  const std::uint8_t first = next_byte();
  if ((first & 0x80) == 0) return first;
  const int n = first & 0x7F;
  if (n == 0 || n > 8) throw BerError("BER: unsupported length form");
  std::size_t length = 0;
  for (int i = 0; i < n; ++i) length = (length << 8) | next_byte();
  return length;
}

void BerReader::expect_tag(BerTag expected) {
  const auto got = static_cast<BerTag>(next_byte());
  if (got != expected) {
    throw BerError("BER: expected tag " +
                   std::to_string(static_cast<int>(expected)) + ", got " +
                   std::to_string(static_cast<int>(got)));
  }
}

std::span<const std::uint8_t> BerReader::read_contents(BerTag expected) {
  expect_tag(expected);
  const std::size_t length = read_length();
  if (length > remaining()) throw BerError("BER: length exceeds input");
  auto span = data_.subspan(pos_, length);
  pos_ += length;
  return span;
}

std::int64_t BerReader::read_integer() {
  auto body = read_contents(BerTag::kInteger);
  if (body.empty() || body.size() > 8) throw BerError("BER: bad integer size");
  std::int64_t value = (body[0] & 0x80) != 0 ? -1 : 0;
  for (std::uint8_t b : body) value = (value << 8) | b;
  return value;
}

std::uint64_t BerReader::read_unsigned(BerTag expected) {
  auto body = read_contents(expected);
  if (body.empty() || body.size() > 9) throw BerError("BER: bad unsigned size");
  std::uint64_t value = 0;
  for (std::uint8_t b : body) value = (value << 8) | b;
  return value;
}

std::string BerReader::read_octet_string() {
  auto body = read_contents(BerTag::kOctetString);
  return std::string(body.begin(), body.end());
}

void BerReader::read_null() { read_contents(BerTag::kNull); }

Oid BerReader::read_oid() {
  auto body = read_contents(BerTag::kOid);
  if (body.empty()) throw BerError("BER: empty OID");
  std::vector<std::uint32_t> ids;
  ids.push_back(body[0] / 40);
  ids.push_back(body[0] % 40);
  std::uint32_t acc = 0;
  bool in_multibyte = false;
  for (std::size_t i = 1; i < body.size(); ++i) {
    acc = (acc << 7) | (body[i] & 0x7F);
    in_multibyte = (body[i] & 0x80) != 0;
    if (!in_multibyte) {
      ids.push_back(acc);
      acc = 0;
    }
  }
  if (in_multibyte) throw BerError("BER: unterminated OID component");
  return Oid(std::move(ids));
}

net::IpAddr BerReader::read_ip() {
  auto body = read_contents(BerTag::kIpAddress);
  if (body.size() != 4) throw BerError("BER: bad IpAddress size");
  return net::IpAddr(body[0], body[1], body[2], body[3]);
}

SnmpValue BerReader::read_value() {
  switch (peek_tag()) {
    case BerTag::kInteger: return SnmpValue(read_integer());
    case BerTag::kOctetString: return SnmpValue(read_octet_string());
    case BerTag::kNull: read_null(); return SnmpValue(Null{});
    case BerTag::kOid: return SnmpValue(read_oid());
    case BerTag::kIpAddress: return SnmpValue(read_ip());
    case BerTag::kCounter32:
      return SnmpValue(Counter32{static_cast<std::uint32_t>(
          read_unsigned(BerTag::kCounter32))});
    case BerTag::kGauge32:
      return SnmpValue(
          Gauge32{static_cast<std::uint32_t>(read_unsigned(BerTag::kGauge32))});
    case BerTag::kTimeTicks:
      return SnmpValue(TimeTicks{
          static_cast<std::uint32_t>(read_unsigned(BerTag::kTimeTicks))});
    case BerTag::kCounter64:
      return SnmpValue(Counter64{read_unsigned(BerTag::kCounter64)});
    case BerTag::kNoSuchObject:
      read_contents(BerTag::kNoSuchObject);
      return SnmpValue(NoSuchObject{});
    case BerTag::kEndOfMibView:
      read_contents(BerTag::kEndOfMibView);
      return SnmpValue(EndOfMibView{});
    default:
      throw BerError("BER: unsupported value tag " +
                     std::to_string(static_cast<int>(peek_tag())));
  }
}

BerReader BerReader::enter_constructed(BerTag expected) {
  return BerReader(read_contents(expected));
}

BerReader BerReader::enter_any_constructed(BerTag& tag_out) {
  tag_out = peek_tag();
  return BerReader(read_contents(tag_out));
}

}  // namespace netmon::snmp
