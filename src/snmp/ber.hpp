#pragma once

// BER (Basic Encoding Rules) subset used by SNMPv2c: definite lengths only,
// primitive types plus SEQUENCE and the context-tagged PDUs. Messages are
// genuinely encoded to bytes and decoded on receipt, so wire sizes in the
// simulation are the real ones.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "snmp/oid.hpp"
#include "snmp/value.hpp"

namespace netmon::snmp {

class BerError : public std::runtime_error {
 public:
  explicit BerError(const std::string& what) : std::runtime_error(what) {}
};

// Universal / application tags.
enum class BerTag : std::uint8_t {
  kInteger = 0x02,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kSequence = 0x30,
  kIpAddress = 0x40,
  kCounter32 = 0x41,
  kGauge32 = 0x42,
  kTimeTicks = 0x43,
  kCounter64 = 0x46,
  kNoSuchObject = 0x80,
  kEndOfMibView = 0x82,
  // Context tags for PDUs (constructed).
  kGetRequest = 0xA0,
  kGetNextRequest = 0xA1,
  kResponse = 0xA2,
  kSetRequest = 0xA3,
  kGetBulkRequest = 0xA5,
  kTrapV2 = 0xA7,
};

class BerWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

  void write_integer(std::int64_t value);
  void write_unsigned(BerTag tag, std::uint64_t value);
  void write_octet_string(const std::string& value);
  void write_null();
  void write_oid(const Oid& oid);
  void write_ip(net::IpAddr ip);
  void write_exception(BerTag tag);  // noSuchObject / endOfMibView
  void write_value(const SnmpValue& value);

  // Constructed types: emit children into a child writer, then wrap.
  void write_constructed(BerTag tag, const BerWriter& contents);

 private:
  void write_tag_length(BerTag tag, std::size_t length);
  std::vector<std::uint8_t> out_;
};

class BerReader {
 public:
  explicit BerReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool at_end() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  // Peeks the next tag without consuming it.
  BerTag peek_tag() const;

  std::int64_t read_integer();
  std::uint64_t read_unsigned(BerTag expected);
  std::string read_octet_string();
  void read_null();
  Oid read_oid();
  net::IpAddr read_ip();
  SnmpValue read_value();

  // Enters a constructed element and returns a reader over its contents.
  BerReader enter_constructed(BerTag expected);
  // Enters whatever constructed element comes next, reporting its tag.
  BerReader enter_any_constructed(BerTag& tag_out);

 private:
  std::uint8_t next_byte();
  std::uint8_t peek_byte() const;
  std::size_t read_length();
  void expect_tag(BerTag expected);
  std::span<const std::uint8_t> read_contents(BerTag expected);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace netmon::snmp
