#include "snmp/oid.hpp"

#include <cstdlib>
#include <stdexcept>

namespace netmon::snmp {

Oid Oid::parse(const std::string& text) {
  std::vector<std::uint32_t> ids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('.', pos);
    if (end == std::string::npos) end = text.size();
    if (end == pos) throw std::invalid_argument("Oid::parse: empty component");
    std::uint64_t value = 0;
    for (std::size_t i = pos; i < end; ++i) {
      const char c = text[i];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("Oid::parse: non-digit in " + text);
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xFFFFFFFFull) {
        throw std::invalid_argument("Oid::parse: component overflow");
      }
    }
    ids.push_back(static_cast<std::uint32_t>(value));
    pos = end + 1;
  }
  if (ids.empty()) throw std::invalid_argument("Oid::parse: empty oid");
  return Oid(std::move(ids));
}

bool Oid::starts_with(const Oid& prefix) const {
  if (prefix.ids_.size() > ids_.size()) return false;
  for (std::size_t i = 0; i < prefix.ids_.size(); ++i) {
    if (ids_[i] != prefix.ids_[i]) return false;
  }
  return true;
}

Oid Oid::with(std::initializer_list<std::uint32_t> suffix) const {
  std::vector<std::uint32_t> ids = ids_;
  ids.insert(ids.end(), suffix.begin(), suffix.end());
  return Oid(std::move(ids));
}

Oid Oid::suffix_after(const Oid& prefix) const {
  if (!starts_with(prefix)) {
    throw std::invalid_argument("Oid::suffix_after: not a prefix");
  }
  return Oid(std::vector<std::uint32_t>(ids_.begin() + prefix.size(),
                                        ids_.end()));
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (i) out += '.';
    out += std::to_string(ids_[i]);
  }
  return out;
}

}  // namespace netmon::snmp
