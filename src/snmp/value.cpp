#include "snmp/value.hpp"

#include <stdexcept>

namespace netmon::snmp {

std::uint64_t SnmpValue::to_uint64() const {
  if (is<Counter32>()) return as<Counter32>().value;
  if (is<Gauge32>()) return as<Gauge32>().value;
  if (is<TimeTicks>()) return as<TimeTicks>().value;
  if (is<Counter64>()) return as<Counter64>().value;
  if (is<std::int64_t>()) {
    const auto v = as<std::int64_t>();
    if (v < 0) throw std::domain_error("SnmpValue::to_uint64: negative");
    return static_cast<std::uint64_t>(v);
  }
  throw std::domain_error("SnmpValue::to_uint64: non-numeric value");
}

std::string SnmpValue::to_string() const {
  struct Visitor {
    std::string operator()(const Null&) const { return "null"; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const { return '"' + v + '"'; }
    std::string operator()(const Oid& v) const { return v.to_string(); }
    std::string operator()(const net::IpAddr& v) const { return v.to_string(); }
    std::string operator()(const Counter32& v) const {
      return std::to_string(v.value) + "c";
    }
    std::string operator()(const Gauge32& v) const {
      return std::to_string(v.value) + "g";
    }
    std::string operator()(const TimeTicks& v) const {
      return std::to_string(v.value) + "t";
    }
    std::string operator()(const Counter64& v) const {
      return std::to_string(v.value) + "C";
    }
    std::string operator()(const EndOfMibView&) const { return "endOfMibView"; }
    std::string operator()(const NoSuchObject&) const { return "noSuchObject"; }
  };
  return std::visit(Visitor{}, v_);
}

}  // namespace netmon::snmp
