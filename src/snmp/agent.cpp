#include "snmp/agent.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace netmon::snmp {

Agent::Agent(net::Host& host) : Agent(host, Config{}) {}

Agent::Agent(net::Host& host, Config config)
    : host_(host),
      config_(std::move(config)),
      socket_(host.udp().bind(
          config_.port, [this](const net::Packet& p) { on_datagram(p); })) {
  if (config_.register_mib2) register_mib2(mib_, host_);
}

void Agent::on_datagram(const net::Packet& packet) {
  auto datagram = net::payload_as<SnmpDatagram>(packet);
  if (!datagram) return;
  Message request;
  try {
    request = Message::decode(datagram->bytes);
  } catch (const BerError&) {
    ++counters_.decode_errors;
    return;
  }
  ++counters_.requests_in;
  if (request.community != config_.community) {
    ++counters_.bad_community;
    return;
  }
  // Model agent CPU time before the response hits the wire.
  host_.simulator().schedule_in(
      config_.processing_delay,
      [this, packet, request = std::move(request)] { process(packet, request); });
}

void Agent::process(const net::Packet& packet, const Message& request) {
  Message response;
  response.community = config_.community;
  response.pdu.type = PduType::kResponse;
  response.pdu.request_id = request.pdu.request_id;

  if (request.pdu.type == PduType::kGetBulk) {
    // RFC 1905 semantics: the first non_repeaters varbinds behave like
    // GETNEXT; the rest are stepped max_repetitions times.
    const auto non_rep = static_cast<std::size_t>(
        std::max<std::int32_t>(0, request.pdu.non_repeaters()));
    const auto reps = std::max<std::int32_t>(0, request.pdu.max_repetitions());
    for (std::size_t i = 0; i < request.pdu.varbinds.size(); ++i) {
      const Oid& start = request.pdu.varbinds[i].oid;
      if (i < non_rep) {
        auto next = mib_.get_next(start);
        response.pdu.varbinds.push_back(
            next ? *next : VarBind{start, SnmpValue(EndOfMibView{})});
        continue;
      }
      Oid cursor = start;
      for (std::int32_t r = 0; r < reps; ++r) {
        auto next = mib_.get_next(cursor);
        if (!next) {
          response.pdu.varbinds.push_back(
              VarBind{cursor, SnmpValue(EndOfMibView{})});
          break;
        }
        response.pdu.varbinds.push_back(*next);
        cursor = next->oid;
      }
    }
    auto bytes = response.encode();
    const auto size = static_cast<std::uint32_t>(bytes.size());
    socket_.send_to(packet.src, packet.src_port, size,
                    std::make_shared<SnmpDatagram>(std::move(bytes)),
                    net::TrafficClass::kManagement);
    ++counters_.responses_out;
    return;
  }

  std::int32_t index = 0;
  for (const VarBind& vb : request.pdu.varbinds) {
    ++index;
    switch (request.pdu.type) {
      case PduType::kGetRequest: {
        response.pdu.varbinds.push_back(VarBind{vb.oid, mib_.get(vb.oid)});
        break;
      }
      case PduType::kGetNextRequest: {
        auto next = mib_.get_next(vb.oid);
        if (next) {
          response.pdu.varbinds.push_back(*next);
        } else {
          response.pdu.varbinds.push_back(
              VarBind{vb.oid, SnmpValue(EndOfMibView{})});
        }
        break;
      }
      case PduType::kSetRequest: {
        const ErrorStatus status = mib_.set(vb.oid, vb.value);
        if (status != ErrorStatus::kNoError &&
            response.pdu.error_status == ErrorStatus::kNoError) {
          response.pdu.error_status = status;
          response.pdu.error_index = index;
        }
        response.pdu.varbinds.push_back(VarBind{vb.oid, mib_.get(vb.oid)});
        break;
      }
      default:
        return;  // responses/traps are not requests; drop silently
    }
  }

  auto bytes = response.encode();
  const auto size = static_cast<std::uint32_t>(bytes.size());
  socket_.send_to(packet.src, packet.src_port, size,
                  std::make_shared<SnmpDatagram>(std::move(bytes)),
                  net::TrafficClass::kManagement);
  ++counters_.responses_out;
}

void Agent::send_trap(net::IpAddr manager, const Oid& trap_oid,
                      std::vector<VarBind> varbinds) {
  Message trap;
  trap.community = config_.community;
  trap.pdu.type = PduType::kTrap;
  trap.pdu.request_id = 0;
  const auto uptime_ticks = static_cast<std::uint32_t>(
      host_.clock().local_now().nanos() / 10'000'000);
  trap.pdu.varbinds.push_back(
      VarBind{kSysUpTimeOid, SnmpValue(TimeTicks{uptime_ticks})});
  trap.pdu.varbinds.push_back(VarBind{kSnmpTrapOid, SnmpValue(trap_oid)});
  for (auto& vb : varbinds) trap.pdu.varbinds.push_back(std::move(vb));

  auto bytes = trap.encode();
  const auto size = static_cast<std::uint32_t>(bytes.size());
  socket_.send_to(manager, kTrapPort, size,
                  std::make_shared<SnmpDatagram>(std::move(bytes)),
                  net::TrafficClass::kManagement);
  ++counters_.traps_sent;
}

}  // namespace netmon::snmp
