#pragma once

// SNMPv2c message and PDU structures plus their BER wire codec.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "snmp/ber.hpp"
#include "snmp/value.hpp"

namespace netmon::snmp {

enum class PduType : std::uint8_t {
  kGetRequest,
  kGetNextRequest,
  kResponse,
  kSetRequest,
  kGetBulk,
  kTrap,
};

enum class ErrorStatus : std::int8_t {
  kNoError = 0,
  kTooBig = 1,
  kNoSuchName = 2,
  kBadValue = 3,
  kReadOnly = 4,
  kGenErr = 5,
};

struct Pdu {
  PduType type = PduType::kGetRequest;
  std::int32_t request_id = 0;
  // For kGetBulk these two fields are non-repeaters / max-repetitions
  // (encoded in the same positions per RFC 1905).
  ErrorStatus error_status = ErrorStatus::kNoError;
  std::int32_t error_index = 0;
  std::int32_t non_repeaters() const { return static_cast<std::int32_t>(error_status); }
  std::int32_t max_repetitions() const { return error_index; }
  void set_bulk(std::int32_t non_repeaters, std::int32_t max_repetitions) {
    error_status = static_cast<ErrorStatus>(non_repeaters);
    error_index = max_repetitions;
  }
  std::vector<VarBind> varbinds;
};

struct Message {
  std::string community = "public";
  Pdu pdu;

  std::vector<std::uint8_t> encode() const;
  // Throws BerError on malformed input.
  static Message decode(std::span<const std::uint8_t> bytes);
};

// Typed UDP payload wrapping the encoded message. payload_bytes of the
// carrying packet equals bytes.size(), so wire accounting is exact.
struct SnmpDatagram : net::Payload {
  explicit SnmpDatagram(std::vector<std::uint8_t> b) : bytes(std::move(b)) {}
  std::vector<std::uint8_t> bytes;
};

constexpr std::uint16_t kSnmpPort = 161;
constexpr std::uint16_t kTrapPort = 162;

// Standard varbinds carried first in every v2c trap.
inline const Oid kSysUpTimeOid{1, 3, 6, 1, 2, 1, 1, 3, 0};
inline const Oid kSnmpTrapOid{1, 3, 6, 1, 6, 3, 1, 1, 4, 1, 0};

}  // namespace netmon::snmp
