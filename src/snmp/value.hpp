#pragma once

// SNMP typed values (the ASN.1 subset SNMPv2c uses).

#include <cstdint>
#include <string>
#include <variant>

#include "net/address.hpp"
#include "snmp/oid.hpp"

namespace netmon::snmp {

struct Null {
  bool operator==(const Null&) const = default;
};
// GETNEXT past the end of the MIB view returns this marker.
struct EndOfMibView {
  bool operator==(const EndOfMibView&) const = default;
};
struct NoSuchObject {
  bool operator==(const NoSuchObject&) const = default;
};

struct Counter32 {
  std::uint32_t value = 0;
  bool operator==(const Counter32&) const = default;
};
struct Gauge32 {
  std::uint32_t value = 0;
  bool operator==(const Gauge32&) const = default;
};
// Hundredths of a second, per SNMP convention.
struct TimeTicks {
  std::uint32_t value = 0;
  bool operator==(const TimeTicks&) const = default;
};
struct Counter64 {
  std::uint64_t value = 0;
  bool operator==(const Counter64&) const = default;
};

class SnmpValue {
 public:
  using Storage =
      std::variant<Null, std::int64_t, std::string, Oid, net::IpAddr,
                   Counter32, Gauge32, TimeTicks, Counter64, EndOfMibView,
                   NoSuchObject>;

  SnmpValue() : v_(Null{}) {}
  SnmpValue(Storage v) : v_(std::move(v)) {}  // NOLINT: implicit by design
  SnmpValue(std::int64_t v) : v_(v) {}
  SnmpValue(int v) : v_(static_cast<std::int64_t>(v)) {}
  SnmpValue(std::string v) : v_(std::move(v)) {}
  SnmpValue(const char* v) : v_(std::string(v)) {}
  SnmpValue(Oid v) : v_(std::move(v)) {}
  SnmpValue(net::IpAddr v) : v_(v) {}
  SnmpValue(Counter32 v) : v_(v) {}
  SnmpValue(Gauge32 v) : v_(v) {}
  SnmpValue(TimeTicks v) : v_(v) {}
  SnmpValue(Counter64 v) : v_(v) {}

  const Storage& storage() const { return v_; }

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(v_);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(v_);
  }

  bool is_null() const { return is<Null>(); }
  bool is_exception() const { return is<EndOfMibView>() || is<NoSuchObject>(); }

  // Numeric view of counter-like values; throws for non-numeric types.
  std::uint64_t to_uint64() const;
  std::string to_string() const;

  bool operator==(const SnmpValue&) const = default;

 private:
  Storage v_;
};

struct VarBind {
  Oid oid;
  SnmpValue value;
  bool operator==(const VarBind&) const = default;
};

}  // namespace netmon::snmp
