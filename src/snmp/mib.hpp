#pragma once

// Management Information Base: an ordered registry of OID-addressed
// variables with callback-backed values (so MIB reads always reflect live
// counters). GETNEXT walks the registry in lexicographic OID order.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "snmp/pdu.hpp"
#include "snmp/value.hpp"

namespace netmon::snmp {

enum class Access { kReadOnly, kReadWrite };

struct MibVariable {
  std::function<SnmpValue()> get;
  // Returns false to reject the write (wrong type / bad value).
  std::function<bool(const SnmpValue&)> set;
  Access access = Access::kReadOnly;
};

class MibTree {
 public:
  // Registers a variable; throws if the OID is already bound.
  void add(const Oid& oid, std::function<SnmpValue()> getter);
  void add_writable(const Oid& oid, std::function<SnmpValue()> getter,
                    std::function<bool(const SnmpValue&)> setter);
  // Registers a constant.
  void add_const(const Oid& oid, SnmpValue value);
  void remove(const Oid& oid) { vars_.erase(oid); }
  void remove_subtree(const Oid& prefix);

  bool contains(const Oid& oid) const { return vars_.count(oid) != 0; }
  std::size_t size() const { return vars_.size(); }

  // GET semantics: exact match or NoSuchObject.
  SnmpValue get(const Oid& oid) const;
  // GETNEXT semantics: the first variable with OID strictly greater;
  // returns nullopt at the end of the MIB view.
  std::optional<VarBind> get_next(const Oid& oid) const;
  // SET semantics.
  ErrorStatus set(const Oid& oid, const SnmpValue& value);

  // Convenience: full ordered walk of a subtree.
  std::vector<VarBind> walk(const Oid& prefix) const;

 private:
  std::map<Oid, MibVariable> vars_;
};

}  // namespace netmon::snmp
