#pragma once

// SNMP management station: asynchronous GET/GETNEXT/SET with timeout and
// retry, table walks, and a trap sink whose finite queue and service rate
// model the platform limits the paper hit ("the management station could be
// overrun by asynchronous traps", §5.2.4).

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "snmp/pdu.hpp"

namespace netmon::snmp {

struct ManagerCounters {
  std::uint64_t requests_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t responses = 0;
  std::uint64_t timeouts = 0;  // requests abandoned after all retries
  std::uint64_t traps_received = 0;   // reached the UDP socket
  std::uint64_t traps_dropped = 0;    // arrived but queue was full
  std::uint64_t traps_processed = 0;  // handed to the application handler
};

struct SnmpResult {
  bool ok = false;
  ErrorStatus error_status = ErrorStatus::kNoError;
  std::vector<VarBind> varbinds;  // empty on timeout
};

struct TrapEvent {
  net::IpAddr source;
  Oid trap_oid;
  std::vector<VarBind> varbinds;  // excludes the two standard leading binds
  sim::TimePoint received_at;     // manager local clock
};

class Manager {
 public:
  struct Config {
    std::string community = "public";
    sim::Duration timeout = sim::Duration::ms(500);
    int retries = 1;  // retransmissions after the first attempt
    // Trap sink platform model.
    std::size_t trap_queue_capacity = 64;
    sim::Duration trap_service_time = sim::Duration::ms(2);
    // Override when several managers share one host (only one may own the
    // standard trap port).
    std::uint16_t trap_port = kTrapPort;
  };

  using ResponseHandler = std::function<void(const SnmpResult&)>;
  using TrapHandler = std::function<void(const TrapEvent&)>;

  explicit Manager(net::Host& host);
  Manager(net::Host& host, Config config);

  void get(net::IpAddr agent, std::vector<Oid> oids, ResponseHandler handler);
  void get_next(net::IpAddr agent, std::vector<Oid> oids,
                ResponseHandler handler);
  void set(net::IpAddr agent, std::vector<VarBind> varbinds,
           ResponseHandler handler);
  // GETBULK (SNMPv2c): steps each OID up to max_repetitions times.
  void get_bulk(net::IpAddr agent, std::vector<Oid> oids,
                std::int32_t max_repetitions, ResponseHandler handler);
  // Walks the subtree under `root` with repeated GETNEXT; hands the
  // collected varbinds (possibly empty) to `handler` when done.
  void walk(net::IpAddr agent, Oid root,
            std::function<void(std::vector<VarBind>)> handler);
  // Same result as walk() but via GETBULK: ~max_repetitions fewer round
  // trips (and proportionally less management traffic).
  void bulk_walk(net::IpAddr agent, Oid root, std::int32_t max_repetitions,
                 std::function<void(std::vector<VarBind>)> handler);

  void set_trap_handler(TrapHandler handler) { trap_handler_ = std::move(handler); }

  // Heartbeat watch (paper §5.2.4: "a network monitor may need to perform
  // background polling to detect network failure between it and the
  // network element which would prevent the reception of traps").
  // `handler` fires on every up/down transition of the agent.
  using HealthHandler = std::function<void(net::IpAddr, bool up)>;
  int watch_agent(net::IpAddr agent, sim::Duration interval,
                  HealthHandler handler, int failures_for_down = 2);
  void unwatch(int watch_id);
  // Current belief about a watched agent (nullopt before the first result).
  std::optional<bool> agent_up(net::IpAddr agent) const;

  const ManagerCounters& counters() const { return counters_; }
  net::Host& host() { return host_; }
  const Config& config() const { return config_; }

 private:
  struct Pending {
    net::IpAddr agent;
    Message message;
    ResponseHandler handler;
    int attempts_left;
    sim::EventHandle timer;
  };

  void send_request(net::IpAddr agent, PduType type,
                    std::vector<VarBind> varbinds, ResponseHandler handler);
  void transmit(std::int32_t request_id);
  void on_timeout(std::int32_t request_id);
  void on_response_datagram(const net::Packet& packet);
  void on_trap_datagram(const net::Packet& packet);
  void service_trap_queue();

  struct Watch {
    net::IpAddr agent;
    HealthHandler handler;
    int failures_for_down;
    int consecutive_failures = 0;
    std::optional<bool> believed_up;
    sim::PeriodicTask task;
  };

  net::Host& host_;
  Config config_;
  net::UdpSocket& request_socket_;
  net::UdpSocket& trap_socket_;
  std::int32_t next_request_id_ = 1;
  std::unordered_map<std::int32_t, Pending> pending_;
  std::unordered_map<int, Watch> watches_;
  int next_watch_id_ = 1;
  TrapHandler trap_handler_;
  std::deque<TrapEvent> trap_queue_;
  bool trap_worker_busy_ = false;
  ManagerCounters counters_;
};

}  // namespace netmon::snmp
