#include "snmp/pdu.hpp"

namespace netmon::snmp {

namespace {
BerTag tag_for(PduType type) {
  switch (type) {
    case PduType::kGetRequest: return BerTag::kGetRequest;
    case PduType::kGetNextRequest: return BerTag::kGetNextRequest;
    case PduType::kResponse: return BerTag::kResponse;
    case PduType::kSetRequest: return BerTag::kSetRequest;
    case PduType::kGetBulk: return BerTag::kGetBulkRequest;
    case PduType::kTrap: return BerTag::kTrapV2;
  }
  throw BerError("unknown PDU type");
}

PduType type_for(BerTag tag) {
  switch (tag) {
    case BerTag::kGetRequest: return PduType::kGetRequest;
    case BerTag::kGetNextRequest: return PduType::kGetNextRequest;
    case BerTag::kResponse: return PduType::kResponse;
    case BerTag::kSetRequest: return PduType::kSetRequest;
    case BerTag::kGetBulkRequest: return PduType::kGetBulk;
    case BerTag::kTrapV2: return PduType::kTrap;
    default:
      throw BerError("unknown PDU tag " +
                     std::to_string(static_cast<int>(tag)));
  }
}
}  // namespace

std::vector<std::uint8_t> Message::encode() const {
  BerWriter varbinds;
  for (const VarBind& vb : pdu.varbinds) {
    BerWriter one;
    one.write_oid(vb.oid);
    one.write_value(vb.value);
    varbinds.write_constructed(BerTag::kSequence, one);
  }

  BerWriter body;
  body.write_integer(pdu.request_id);
  body.write_integer(static_cast<std::int64_t>(pdu.error_status));
  body.write_integer(pdu.error_index);
  body.write_constructed(BerTag::kSequence, varbinds);

  BerWriter message;
  message.write_integer(1);  // version: SNMPv2c
  message.write_octet_string(community);
  message.write_constructed(tag_for(pdu.type), body);

  BerWriter top;
  top.write_constructed(BerTag::kSequence, message);
  return top.take();
}

Message Message::decode(std::span<const std::uint8_t> bytes) {
  BerReader top(bytes);
  BerReader msg = top.enter_constructed(BerTag::kSequence);

  Message out;
  const std::int64_t version = msg.read_integer();
  if (version != 1) throw BerError("SNMP: unsupported version");
  out.community = msg.read_octet_string();

  BerTag pdu_tag{};
  BerReader body = msg.enter_any_constructed(pdu_tag);
  out.pdu.type = type_for(pdu_tag);
  out.pdu.request_id = static_cast<std::int32_t>(body.read_integer());
  out.pdu.error_status =
      static_cast<ErrorStatus>(body.read_integer());
  out.pdu.error_index = static_cast<std::int32_t>(body.read_integer());

  BerReader varbinds = body.enter_constructed(BerTag::kSequence);
  while (!varbinds.at_end()) {
    BerReader one = varbinds.enter_constructed(BerTag::kSequence);
    VarBind vb;
    vb.oid = one.read_oid();
    vb.value = one.read_value();
    out.pdu.varbinds.push_back(std::move(vb));
  }
  return out;
}

}  // namespace netmon::snmp
