#pragma once

// SNMP object identifiers with lexicographic ordering (the order GETNEXT
// walks follow).

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace netmon::snmp {

class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> ids) : ids_(ids) {}
  explicit Oid(std::vector<std::uint32_t> ids) : ids_(std::move(ids)) {}

  // Parses "1.3.6.1.2.1.1.1.0"; throws std::invalid_argument on bad input.
  static Oid parse(const std::string& text);

  const std::vector<std::uint32_t>& ids() const { return ids_; }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  std::uint32_t operator[](std::size_t i) const { return ids_.at(i); }

  bool starts_with(const Oid& prefix) const;
  // New OID with extra components appended.
  Oid with(std::initializer_list<std::uint32_t> suffix) const;
  Oid with(std::uint32_t id) const { return with({id}); }
  // Suffix after `prefix` (requires starts_with(prefix)).
  Oid suffix_after(const Oid& prefix) const;

  std::string to_string() const;

  auto operator<=>(const Oid&) const = default;

 private:
  std::vector<std::uint32_t> ids_;
};

// Well-known roots.
namespace oids {
inline const Oid kMib2{1, 3, 6, 1, 2, 1};
inline const Oid kSystem{1, 3, 6, 1, 2, 1, 1};
inline const Oid kInterfaces{1, 3, 6, 1, 2, 1, 2};
inline const Oid kIp{1, 3, 6, 1, 2, 1, 4};
inline const Oid kTcp{1, 3, 6, 1, 2, 1, 6};
inline const Oid kUdp{1, 3, 6, 1, 2, 1, 7};
inline const Oid kRmon{1, 3, 6, 1, 2, 1, 16};
inline const Oid kEnterprises{1, 3, 6, 1, 4, 1};
}  // namespace oids

}  // namespace netmon::snmp
