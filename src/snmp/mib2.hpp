#pragma once

// MIB-II style standard groups wired to the live host/stack counters:
// system, interfaces, ip, tcp, udp. This is the information a COTS agent
// exposes — and, per the paper (§5.2.4), only a small slice of the state a
// high-fidelity monitor would want (e.g. 5 of 22 TCP state variables).

#include "net/host.hpp"
#include "snmp/mib.hpp"

namespace netmon::snmp {

// Well-known OIDs of the variables the scalable monitor polls.
namespace mib2 {
inline const Oid kSysDescr{1, 3, 6, 1, 2, 1, 1, 1, 0};
inline const Oid kSysUpTime{1, 3, 6, 1, 2, 1, 1, 3, 0};
inline const Oid kSysName{1, 3, 6, 1, 2, 1, 1, 5, 0};
inline const Oid kIfNumber{1, 3, 6, 1, 2, 1, 2, 1, 0};
inline const Oid kIfTableEntry{1, 3, 6, 1, 2, 1, 2, 2, 1};
// Columns within ifEntry.
constexpr std::uint32_t kIfIndex = 1;
constexpr std::uint32_t kIfDescr = 2;
constexpr std::uint32_t kIfSpeed = 5;
constexpr std::uint32_t kIfOperStatus = 8;
constexpr std::uint32_t kIfInOctets = 10;
constexpr std::uint32_t kIfInUcastPkts = 11;
constexpr std::uint32_t kIfInDiscards = 13;
constexpr std::uint32_t kIfOutOctets = 16;
constexpr std::uint32_t kIfOutUcastPkts = 17;
constexpr std::uint32_t kIfOutDiscards = 19;

inline Oid if_column(std::uint32_t column, std::uint32_t if_index) {
  return kIfTableEntry.with({column, if_index});
}

inline const Oid kIpInReceives{1, 3, 6, 1, 2, 1, 4, 3, 0};
inline const Oid kIpForwDatagrams{1, 3, 6, 1, 2, 1, 4, 6, 0};
inline const Oid kIpInDelivers{1, 3, 6, 1, 2, 1, 4, 9, 0};
inline const Oid kIpOutRequests{1, 3, 6, 1, 2, 1, 4, 10, 0};
inline const Oid kIpOutNoRoutes{1, 3, 6, 1, 2, 1, 4, 12, 0};

inline const Oid kTcpCurrEstab{1, 3, 6, 1, 2, 1, 6, 9, 0};

inline const Oid kUdpInDatagrams{1, 3, 6, 1, 2, 1, 7, 1, 0};
inline const Oid kUdpNoPorts{1, 3, 6, 1, 2, 1, 7, 2, 0};
inline const Oid kUdpOutDatagrams{1, 3, 6, 1, 2, 1, 7, 4, 0};
}  // namespace mib2

// Registers the standard groups for `host` into `tree`. sysUpTime is
// derived from the host's (drifting, quantized) local clock, reproducing
// the COTS timestamp-granularity fidelity limits.
void register_mib2(MibTree& tree, net::Host& host);

}  // namespace netmon::snmp
