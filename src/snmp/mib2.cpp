#include "snmp/mib2.hpp"

#include "net/tcp.hpp"
#include "net/udp.hpp"

namespace netmon::snmp {

namespace {
Counter32 c32(std::uint64_t v) {
  return Counter32{static_cast<std::uint32_t>(v & 0xFFFFFFFFull)};
}
}  // namespace

void register_mib2(MibTree& tree, net::Host& host) {
  using namespace mib2;

  // --- system -------------------------------------------------------------
  tree.add_const(kSysDescr,
                 SnmpValue(std::string("netmon simulated agent (MIB-II)")));
  tree.add(kSysUpTime, [&host] {
    // TimeTicks: hundredths of a second on the *local* clock.
    const auto local = host.clock().local_now();
    const std::int64_t ticks = local.nanos() / 10'000'000;
    return SnmpValue(TimeTicks{static_cast<std::uint32_t>(
        ticks < 0 ? 0 : ticks & 0xFFFFFFFF)});
  });
  tree.add_const(kSysName, SnmpValue(host.name()));

  // --- interfaces -----------------------------------------------------------
  tree.add(kIfNumber, [&host] {
    return SnmpValue(static_cast<std::int64_t>(host.nics().size()));
  });
  for (std::uint32_t i = 0; i < host.nics().size(); ++i) {
    net::Nic* nic = host.nics()[i].get();
    const std::uint32_t index = i + 1;
    tree.add(if_column(kIfIndex, index),
             [index] { return SnmpValue(static_cast<std::int64_t>(index)); });
    tree.add(if_column(kIfDescr, index),
             [nic] { return SnmpValue(nic->name()); });
    tree.add(if_column(kIfSpeed, index), [nic] {
      const double bps =
          nic->medium() != nullptr ? nic->medium()->bandwidth_bps() : 0.0;
      return SnmpValue(Gauge32{static_cast<std::uint32_t>(bps)});
    });
    tree.add(if_column(kIfOperStatus, index), [nic] {
      return SnmpValue(static_cast<std::int64_t>(nic->up() ? 1 : 2));
    });
    tree.add(if_column(kIfInOctets, index),
             [nic] { return SnmpValue(c32(nic->counters().in_octets)); });
    tree.add(if_column(kIfInUcastPkts, index),
             [nic] { return SnmpValue(c32(nic->counters().in_frames)); });
    tree.add(if_column(kIfInDiscards, index),
             [nic] { return SnmpValue(c32(nic->counters().in_drops)); });
    tree.add(if_column(kIfOutOctets, index),
             [nic] { return SnmpValue(c32(nic->counters().out_octets)); });
    tree.add(if_column(kIfOutUcastPkts, index),
             [nic] { return SnmpValue(c32(nic->counters().out_frames)); });
    tree.add(if_column(kIfOutDiscards, index),
             [nic] { return SnmpValue(c32(nic->counters().out_drops)); });
  }

  // --- ip -------------------------------------------------------------------
  tree.add(kIpInReceives,
           [&host] { return SnmpValue(c32(host.counters().ip_in_receives)); });
  tree.add(kIpForwDatagrams,
           [&host] { return SnmpValue(c32(host.counters().ip_forwarded)); });
  tree.add(kIpInDelivers,
           [&host] { return SnmpValue(c32(host.counters().ip_in_delivers)); });
  tree.add(kIpOutRequests,
           [&host] { return SnmpValue(c32(host.counters().ip_out_requests)); });
  tree.add(kIpOutNoRoutes,
           [&host] { return SnmpValue(c32(host.counters().ip_no_routes)); });

  // --- tcp --------------------------------------------------------------------
  tree.add(kTcpCurrEstab, [&host] {
    return SnmpValue(
        Gauge32{static_cast<std::uint32_t>(host.tcp().active_connections())});
  });

  // --- udp --------------------------------------------------------------------
  tree.add(kUdpInDatagrams, [&host] {
    return SnmpValue(c32(host.udp().counters().in_datagrams));
  });
  tree.add(kUdpNoPorts, [&host] {
    return SnmpValue(c32(host.udp().counters().no_ports));
  });
  tree.add(kUdpOutDatagrams, [&host] {
    return SnmpValue(c32(host.udp().counters().out_datagrams));
  });
}

}  // namespace netmon::snmp
