#include "snmp/mib.hpp"

#include <stdexcept>

namespace netmon::snmp {

void MibTree::add(const Oid& oid, std::function<SnmpValue()> getter) {
  MibVariable var;
  var.get = std::move(getter);
  var.access = Access::kReadOnly;
  if (!vars_.emplace(oid, std::move(var)).second) {
    throw std::logic_error("MibTree: duplicate OID " + oid.to_string());
  }
}

void MibTree::add_writable(const Oid& oid, std::function<SnmpValue()> getter,
                           std::function<bool(const SnmpValue&)> setter) {
  MibVariable var;
  var.get = std::move(getter);
  var.set = std::move(setter);
  var.access = Access::kReadWrite;
  if (!vars_.emplace(oid, std::move(var)).second) {
    throw std::logic_error("MibTree: duplicate OID " + oid.to_string());
  }
}

void MibTree::add_const(const Oid& oid, SnmpValue value) {
  add(oid, [value] { return value; });
}

void MibTree::remove_subtree(const Oid& prefix) {
  for (auto it = vars_.begin(); it != vars_.end();) {
    if (it->first.starts_with(prefix)) {
      it = vars_.erase(it);
    } else {
      ++it;
    }
  }
}

SnmpValue MibTree::get(const Oid& oid) const {
  auto it = vars_.find(oid);
  if (it == vars_.end()) return SnmpValue(NoSuchObject{});
  return it->second.get();
}

std::optional<VarBind> MibTree::get_next(const Oid& oid) const {
  auto it = vars_.upper_bound(oid);
  if (it == vars_.end()) return std::nullopt;
  return VarBind{it->first, it->second.get()};
}

ErrorStatus MibTree::set(const Oid& oid, const SnmpValue& value) {
  auto it = vars_.find(oid);
  if (it == vars_.end()) return ErrorStatus::kNoSuchName;
  if (it->second.access != Access::kReadWrite || !it->second.set) {
    return ErrorStatus::kReadOnly;
  }
  return it->second.set(value) ? ErrorStatus::kNoError
                               : ErrorStatus::kBadValue;
}

std::vector<VarBind> MibTree::walk(const Oid& prefix) const {
  std::vector<VarBind> out;
  for (auto it = vars_.lower_bound(prefix); it != vars_.end(); ++it) {
    if (!it->first.starts_with(prefix)) break;
    out.push_back(VarBind{it->first, it->second.get()});
  }
  return out;
}

}  // namespace netmon::snmp
