#include "snmp/manager.hpp"

#include <memory>

#include "util/logging.hpp"

namespace netmon::snmp {

Manager::Manager(net::Host& host) : Manager(host, Config{}) {}

Manager::Manager(net::Host& host, Config config)
    : host_(host),
      config_(std::move(config)),
      request_socket_(host.udp().bind(
          0, [this](const net::Packet& p) { on_response_datagram(p); })),
      trap_socket_(host.udp().bind(config_.trap_port, [this](const net::Packet& p) {
        on_trap_datagram(p);
      })) {}

void Manager::get(net::IpAddr agent, std::vector<Oid> oids,
                  ResponseHandler handler) {
  std::vector<VarBind> varbinds;
  varbinds.reserve(oids.size());
  for (auto& oid : oids) varbinds.push_back(VarBind{std::move(oid), SnmpValue()});
  send_request(agent, PduType::kGetRequest, std::move(varbinds),
               std::move(handler));
}

void Manager::get_next(net::IpAddr agent, std::vector<Oid> oids,
                       ResponseHandler handler) {
  std::vector<VarBind> varbinds;
  varbinds.reserve(oids.size());
  for (auto& oid : oids) varbinds.push_back(VarBind{std::move(oid), SnmpValue()});
  send_request(agent, PduType::kGetNextRequest, std::move(varbinds),
               std::move(handler));
}

void Manager::set(net::IpAddr agent, std::vector<VarBind> varbinds,
                  ResponseHandler handler) {
  send_request(agent, PduType::kSetRequest, std::move(varbinds),
               std::move(handler));
}

void Manager::get_bulk(net::IpAddr agent, std::vector<Oid> oids,
                       std::int32_t max_repetitions,
                       ResponseHandler handler) {
  std::vector<VarBind> varbinds;
  varbinds.reserve(oids.size());
  for (auto& oid : oids) varbinds.push_back(VarBind{std::move(oid), SnmpValue()});
  const std::int32_t id = next_request_id_++;
  Pending pending;
  pending.agent = agent;
  pending.message.community = config_.community;
  pending.message.pdu.type = PduType::kGetBulk;
  pending.message.pdu.request_id = id;
  pending.message.pdu.set_bulk(0, max_repetitions);
  pending.message.pdu.varbinds = std::move(varbinds);
  pending.handler = std::move(handler);
  pending.attempts_left = config_.retries;
  pending_.emplace(id, std::move(pending));
  transmit(id);
}

void Manager::bulk_walk(net::IpAddr agent, Oid root,
                        std::int32_t max_repetitions,
                        std::function<void(std::vector<VarBind>)> handler) {
  auto collected = std::make_shared<std::vector<VarBind>>();
  // The stepper must not strongly capture its own shared_ptr (permanent
  // self-cycle); instead each in-flight continuation holds the strong
  // reference, so the stepper dies when the walk completes.
  auto step = std::make_shared<std::function<void(Oid)>>();
  *step = [this, agent, root, max_repetitions, collected,
           handler = std::move(handler),
           weak_step = std::weak_ptr(step)](Oid cursor) {
    auto step = weak_step.lock();
    get_bulk(agent, {cursor}, max_repetitions,
             [this, agent, root, collected, handler, step,
              cursor](const SnmpResult& result) {
               (void)this;
               if (!result.ok || result.varbinds.empty()) {
                 handler(*collected);
                 return;
               }
               Oid last = cursor;
               for (const VarBind& vb : result.varbinds) {
                 if (vb.value.is<EndOfMibView>() || !vb.oid.starts_with(root) ||
                     vb.oid <= last) {
                   handler(*collected);
                   return;
                 }
                 collected->push_back(vb);
                 last = vb.oid;
               }
               (*step)(last);
             });
  };
  (*step)(root);
}

void Manager::walk(net::IpAddr agent, Oid root,
                   std::function<void(std::vector<VarBind>)> handler) {
  auto collected = std::make_shared<std::vector<VarBind>>();
  // Same weak self-capture as bulk_walk: the pending continuation owns the
  // stepper, not the stepper itself.
  auto step = std::make_shared<std::function<void(Oid)>>();
  *step = [this, agent, root, collected, handler = std::move(handler),
           weak_step = std::weak_ptr(step)](Oid cursor) {
    auto step = weak_step.lock();
    get_next(agent, {cursor},
             [this, agent, root, collected, handler, step,
              cursor](const SnmpResult& result) {
               (void)this;
               if (!result.ok || result.varbinds.empty()) {
                 handler(*collected);
                 return;
               }
               const VarBind& vb = result.varbinds.front();
               if (vb.value.is<EndOfMibView>() || !vb.oid.starts_with(root) ||
                   vb.oid <= cursor) {
                 handler(*collected);
                 return;
               }
               collected->push_back(vb);
               (*step)(vb.oid);
             });
  };
  (*step)(root);
}

int Manager::watch_agent(net::IpAddr agent, sim::Duration interval,
                         HealthHandler handler, int failures_for_down) {
  const int id = next_watch_id_++;
  Watch watch;
  watch.agent = agent;
  watch.handler = std::move(handler);
  watch.failures_for_down = failures_for_down;
  auto [it, inserted] = watches_.emplace(id, std::move(watch));
  (void)inserted;
  it->second.task = sim::PeriodicTask(
      host_.simulator(), interval, [this, id] {
        auto wit = watches_.find(id);
        if (wit == watches_.end()) return;
        get(wit->second.agent, {Oid{1, 3, 6, 1, 2, 1, 1, 3, 0}},
            [this, id](const SnmpResult& result) {
              auto w = watches_.find(id);
              if (w == watches_.end()) return;
              Watch& watch = w->second;
              if (result.ok) {
                watch.consecutive_failures = 0;
                if (watch.believed_up != std::optional<bool>(true)) {
                  watch.believed_up = true;
                  if (watch.handler) watch.handler(watch.agent, true);
                }
              } else {
                ++watch.consecutive_failures;
                if (watch.consecutive_failures >= watch.failures_for_down &&
                    watch.believed_up != std::optional<bool>(false)) {
                  watch.believed_up = false;
                  if (watch.handler) watch.handler(watch.agent, false);
                }
              }
            });
      });
  return id;
}

void Manager::unwatch(int watch_id) { watches_.erase(watch_id); }

std::optional<bool> Manager::agent_up(net::IpAddr agent) const {
  for (const auto& [id, watch] : watches_) {
    if (watch.agent == agent) return watch.believed_up;
  }
  return std::nullopt;
}

void Manager::send_request(net::IpAddr agent, PduType type,
                           std::vector<VarBind> varbinds,
                           ResponseHandler handler) {
  const std::int32_t id = next_request_id_++;
  Pending pending;
  pending.agent = agent;
  pending.message.community = config_.community;
  pending.message.pdu.type = type;
  pending.message.pdu.request_id = id;
  pending.message.pdu.varbinds = std::move(varbinds);
  pending.handler = std::move(handler);
  pending.attempts_left = config_.retries;
  pending_.emplace(id, std::move(pending));
  transmit(id);
}

void Manager::transmit(std::int32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  auto bytes = pending.message.encode();
  const auto size = static_cast<std::uint32_t>(bytes.size());
  request_socket_.send_to(pending.agent, kSnmpPort, size,
                          std::make_shared<SnmpDatagram>(std::move(bytes)),
                          net::TrafficClass::kManagement);
  ++counters_.requests_sent;
  pending.timer = host_.simulator().schedule_in(
      config_.timeout, [this, request_id] { on_timeout(request_id); });
}

void Manager::on_timeout(std::int32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (pending.attempts_left > 0) {
    --pending.attempts_left;
    ++counters_.retries;
    transmit(request_id);
    return;
  }
  ++counters_.timeouts;
  ResponseHandler handler = std::move(pending.handler);
  pending_.erase(it);
  if (handler) handler(SnmpResult{});
}

void Manager::on_response_datagram(const net::Packet& packet) {
  auto datagram = net::payload_as<SnmpDatagram>(packet);
  if (!datagram) return;
  Message response;
  try {
    response = Message::decode(datagram->bytes);
  } catch (const BerError&) {
    return;
  }
  if (response.pdu.type != PduType::kResponse) return;
  auto it = pending_.find(response.pdu.request_id);
  if (it == pending_.end()) return;  // late duplicate after timeout
  it->second.timer.cancel();
  ResponseHandler handler = std::move(it->second.handler);
  pending_.erase(it);
  ++counters_.responses;

  SnmpResult result;
  result.ok = true;
  result.error_status = response.pdu.error_status;
  result.varbinds = std::move(response.pdu.varbinds);
  if (handler) handler(result);
}

void Manager::on_trap_datagram(const net::Packet& packet) {
  auto datagram = net::payload_as<SnmpDatagram>(packet);
  if (!datagram) return;
  Message trap;
  try {
    trap = Message::decode(datagram->bytes);
  } catch (const BerError&) {
    return;
  }
  if (trap.pdu.type != PduType::kTrap) return;
  ++counters_.traps_received;

  if (trap_queue_.size() >= config_.trap_queue_capacity) {
    ++counters_.traps_dropped;
    return;
  }

  TrapEvent event;
  event.source = packet.src;
  event.received_at = host_.clock().local_now();
  for (const VarBind& vb : trap.pdu.varbinds) {
    if (vb.oid == kSysUpTimeOid) continue;
    if (vb.oid == kSnmpTrapOid && vb.value.is<Oid>()) {
      event.trap_oid = vb.value.as<Oid>();
      continue;
    }
    event.varbinds.push_back(vb);
  }
  trap_queue_.push_back(std::move(event));
  if (!trap_worker_busy_) service_trap_queue();
}

void Manager::service_trap_queue() {
  if (trap_queue_.empty()) {
    trap_worker_busy_ = false;
    return;
  }
  trap_worker_busy_ = true;
  // One service time per trap models the station's per-event CPU cost.
  host_.simulator().schedule_in(config_.trap_service_time, [this] {
    if (trap_queue_.empty()) {
      trap_worker_busy_ = false;
      return;
    }
    TrapEvent event = std::move(trap_queue_.front());
    trap_queue_.pop_front();
    ++counters_.traps_processed;
    if (trap_handler_) trap_handler_(event);
    service_trap_queue();
  });
}

}  // namespace netmon::snmp
