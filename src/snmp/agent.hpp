#pragma once

// SNMP agent embedded in a network element: answers GET/GETNEXT/SET on UDP
// 161 against its MIB tree, and emits SNMPv2c traps toward a management
// station. Processing each request costs a configurable CPU delay, so very
// fast polling loads the agent realistically.

#include <cstdint>
#include <string>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "snmp/mib.hpp"
#include "snmp/mib2.hpp"
#include "snmp/pdu.hpp"

namespace netmon::snmp {

struct AgentCounters {
  std::uint64_t requests_in = 0;
  std::uint64_t responses_out = 0;
  std::uint64_t bad_community = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t traps_sent = 0;
};

class Agent {
 public:
  struct Config {
    std::string community = "public";
    std::uint16_t port = kSnmpPort;
    // Per-request processing latency (MIB lookup + encode on the element).
    sim::Duration processing_delay = sim::Duration::us(200);
    bool register_mib2 = true;
  };

  explicit Agent(net::Host& host);
  Agent(net::Host& host, Config config);

  MibTree& mib() { return mib_; }
  const MibTree& mib() const { return mib_; }
  net::Host& host() { return host_; }

  // Sends an SNMPv2c trap (sysUpTime + snmpTrapOID + extra varbinds).
  void send_trap(net::IpAddr manager, const Oid& trap_oid,
                 std::vector<VarBind> varbinds = {});

  const AgentCounters& counters() const { return counters_; }

 private:
  void on_datagram(const net::Packet& packet);
  void process(const net::Packet& packet, const Message& request);

  net::Host& host_;
  Config config_;
  MibTree mib_;
  net::UdpSocket& socket_;
  AgentCounters counters_;
};

}  // namespace netmon::snmp
