#pragma once

// Scalable (COTS) monitor implementation (paper §5.2): network sensors
// built from SNMP polling of standard MIB-II variables plus RMON probe
// traps. Cheap and standards-based, but lower fidelity: throughput is
// approximated from interface octet counters (which count *all* traffic),
// latency from management round trips on a granular clock, and results
// ride the same lossy UDP as everything else.

#include <functional>
#include <memory>

#include "core/sensor_director.hpp"
#include "net/topology.hpp"
#include "rmon/probe.hpp"
#include "snmp/manager.hpp"

namespace netmon::core {

class SnmpSensor : public NetworkSensor {
 public:
  struct Config {
    // Gap between the two ifOutOctets polls of a throughput estimate,
    // measured on the *management station's* quantized clock.
    sim::Duration throughput_poll_gap = sim::Duration::ms(500);
    std::uint32_t if_index = 1;  // interface polled on the source host
  };

  SnmpSensor(net::Network& network, snmp::Manager& manager);
  SnmpSensor(net::Network& network, snmp::Manager& manager, Config config);

  std::string name() const override { return "snmp-mib2"; }
  bool supports(Metric) const override { return true; }
  void measure(const Path& path, Metric metric, Done done) override;

  std::uint64_t polls_issued() const { return polls_issued_; }

 private:
  void measure_reachability(const Path& path, Done done);
  void measure_throughput(const Path& path, Done done);
  void measure_latency(const Path& path, Done done);

  net::Network& network_;
  snmp::Manager& manager_;
  Config config_;
  std::uint64_t polls_issued_ = 0;
};

class ScalableMonitor {
 public:
  struct Config {
    snmp::Manager::Config manager;
    SnmpSensor::Config sensor;
    // SNMP polls are light; modest parallelism is the realistic default.
    std::size_t max_concurrent = 8;
    // Budgeted multi-lane scheduling (DESIGN.md §11); the default defers
    // the lane count to max_concurrent above. SNMP polls carry no declared
    // load, so the budget/disjoint gates only bind if the caller installs a
    // profiler via director().set_probe_profiler().
    SchedulerConfig scheduling;
    // Samples retained per (path, metric) series.
    std::size_t history_depth = 64;
    // Tiered storage engine under the database (DESIGN.md §13).
    TieredStorageConfig storage;
    // Deadline/retry/breaker supervision; all off by default.
    SupervisionConfig supervision;
  };

  // `station` is the management-station host (SunNet Manager analogue).
  ScalableMonitor(net::Network& network, net::Host& station);
  ScalableMonitor(net::Network& network, net::Host& station, Config config);

  SensorDirector& director() { return director_; }
  MeasurementDatabase& database() { return director_.database(); }
  snmp::Manager& manager() { return manager_; }
  SnmpSensor& sensor() { return sensor_; }
  net::Host& station() { return station_; }

  // Asynchronous notification path: arm a utilization alarm on an RMON
  // probe; its rising/falling traps arrive at this station's manager.
  rmon::Alarm& arm_utilization_alarm(rmon::Probe& probe, double rising,
                                     double falling, sim::Duration interval);
  void set_trap_callback(std::function<void(const snmp::TrapEvent&)> cb);

 private:
  net::Host& station_;
  snmp::Manager manager_;
  SnmpSensor sensor_;
  SensorDirector director_;
  std::function<void(const snmp::TrapEvent&)> trap_callback_;
};

}  // namespace netmon::core
