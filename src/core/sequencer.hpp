#pragma once

// Test sequencer (paper §5.1.4): bounds how many active measurements run at
// once. max_concurrent = unlimited reproduces the intrusive all-paths-in-
// parallel mode (peak overhead C·S·L/P); max_concurrent = 1 is the paper's
// serial sequencer (peak overhead L/P, senescence C·S·T).

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>

namespace netmon::core {

class TestSequencer {
 public:
  // A task receives a completion callback it must invoke exactly once.
  using Done = std::function<void()>;
  using Task = std::function<void(Done)>;

  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  explicit TestSequencer(std::size_t max_concurrent = 1);

  void set_max_concurrent(std::size_t max_concurrent);
  std::size_t max_concurrent() const { return max_concurrent_; }

  void enqueue(Task task);

  std::size_t in_flight() const { return in_flight_; }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t completed() const { return completed_; }
  bool idle() const { return in_flight_ == 0 && queue_.empty(); }

 private:
  void pump();

  std::size_t max_concurrent_;
  std::size_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
  std::deque<Task> queue_;
};

}  // namespace netmon::core
