#pragma once

// Test sequencer (paper §5.1.4): bounds how many active measurements run at
// once. Since the budgeted multi-lane scheduler landed (DESIGN.md §11) the
// sequencer is the thin special case of core::LaneScheduler that keeps the
// paper's vocabulary: max_concurrent = 1 is the paper's serial sequencer
// (peak overhead L/P, senescence C·S·T), kUnlimited the intrusive
// all-paths-in-parallel mode (peak C·S·L/P). With the default scheduler
// config (no budget, no link-disjointness, one priority class) admission is
// plain FIFO, bit-identical to the pre-lane-scheduler sequencer.

#include "core/lane_scheduler.hpp"

namespace netmon::core {

class TestSequencer : public LaneScheduler {
 public:
  explicit TestSequencer(std::size_t max_concurrent = 1)
      : LaneScheduler(SchedulerConfig{.lanes = max_concurrent}) {}

  void set_max_concurrent(std::size_t max_concurrent) {
    set_lanes(max_concurrent);
  }
  std::size_t max_concurrent() const { return config().lanes; }
};

}  // namespace netmon::core
