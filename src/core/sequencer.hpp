#pragma once

// Test sequencer (paper §5.1.4): bounds how many active measurements run at
// once. max_concurrent = unlimited reproduces the intrusive all-paths-in-
// parallel mode (peak overhead C·S·L/P); max_concurrent = 1 is the paper's
// serial sequencer (peak overhead L/P, senescence C·S·T).
//
// Robustness contract: a task's Done may be invoked exactly once. The slot
// accounting survives tasks that violate it anyway — a second invocation is
// a counted no-op, and a task that destroys its Done without ever calling it
// (a crashed or wedged sensor dropping its callback) releases the slot as
// "abandoned" instead of leaking it. Done callbacks outliving the sequencer
// itself degrade to no-ops. Slot accounting is self-checking: a release
// with no slot held, or counters that stop adding up, throw immediately
// rather than silently corrupting the concurrency bound (see
// check_consistency()).

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace netmon::core {

class TestSequencer {
 public:
  // A task receives a completion callback it must invoke exactly once.
  using Done = std::function<void()>;
  using Task = std::function<void(Done)>;

  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  explicit TestSequencer(std::size_t max_concurrent = 1);
  ~TestSequencer();

  void set_max_concurrent(std::size_t max_concurrent);
  std::size_t max_concurrent() const { return max_concurrent_; }

  void enqueue(Task task);

  std::size_t in_flight() const { return in_flight_; }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t launched() const { return launched_; }
  std::uint64_t completed() const { return completed_; }
  // Contract violations absorbed: extra Done invocations beyond the first,
  // and slots reclaimed because every copy of a Done was destroyed uncalled.
  std::uint64_t double_dones() const { return double_dones_; }
  std::uint64_t abandoned() const { return abandoned_; }
  bool idle() const { return in_flight_ == 0 && queue_.empty(); }

  // Slot-accounting invariant: every launch is exactly one of completed,
  // abandoned, or still in flight. Throws std::logic_error on violation.
  // Cheap; tests call it after every phase of a chaos run.
  void check_consistency() const;

  // Self-observability (DESIGN.md §10). Registers "<prefix>." counters and
  // gauges plus, when `now_ns` is provided (the simulator clock), slot-wait
  // and slot-hold histograms — the serialization stall a task suffers
  // between enqueue and launch is exactly the senescence the paper trades
  // for the sequencer's lower intrusiveness. Detached: one null check per
  // transition.
  void attach_observability(obs::Registry& registry,
                            std::string prefix = "sequencer",
                            std::function<std::int64_t()> now_ns = {});
  void detach_observability();

 private:
  struct DoneState;
  struct Entry {
    Task fn;
    std::int64_t enqueued_ns;
  };
  void finish(bool abandoned, std::int64_t launched_ns);
  void pump();
  std::int64_t obs_now() const {
    return obs_now_ns_ ? obs_now_ns_() : 0;
  }

  std::size_t max_concurrent_;
  std::size_t in_flight_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t double_dones_ = 0;
  std::uint64_t abandoned_ = 0;
  bool pumping_ = false;  // flattens re-entrant pumps into the outer loop
  std::deque<Entry> queue_;
  // Liveness token observed (weakly) by outstanding Done callbacks so a
  // Done fired after the sequencer is gone cannot touch freed memory.
  std::shared_ptr<int> liveness_ = std::make_shared<int>(0);

  // Observability handles (null while detached; owned by the registry).
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  std::function<std::int64_t()> obs_now_ns_;
  obs::Histogram* obs_slot_wait_ = nullptr;
  obs::Histogram* obs_slot_hold_ = nullptr;
};

}  // namespace netmon::core
