#include "core/lane_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace netmon::core {

namespace {
// One class level of priority equals this many aging quanta: a background
// probe that has waited 8 quanta outranks a fresh critical one, so aging
// always wins eventually (no starvation by class alone).
constexpr std::int64_t kAgingQuantaPerClass = 8;
// Tolerance for the budget comparison: the committed sum is maintained
// incrementally, so allow for float drift without admitting real overdraft.
constexpr double kBudgetSlack = 1e-6;

struct ReadyRefGreater {
  template <typename Ref>
  bool operator()(const Ref& a, const Ref& b) const {
    return a.seq > b.seq;
  }
};
struct BudgetRefGreater {
  template <typename Ref>
  bool operator()(const Ref& a, const Ref& b) const {
    if (a.offered_bps != b.offered_bps) return a.offered_bps > b.offered_bps;
    return a.seq > b.seq;
  }
};
}  // namespace

const char* to_string(ProbeClass cls) {
  switch (cls) {
    case ProbeClass::kBackground: return "background";
    case ProbeClass::kNormal: return "normal";
    case ProbeClass::kCritical: return "critical";
  }
  return "?";
}

// Shared between every copy of one task's Done callback: the first
// invocation releases the lane, later ones are counted no-ops, and the
// destructor of the last copy releases the lane if nobody ever called it.
// The in-flight Node (footprint, offered load, lane id) stays pool-owned by
// the scheduler until release, so the Done itself carries no footprint.
struct LaneScheduler::DoneState {
  LaneScheduler* sched;
  std::weak_ptr<int> guard;
  Node* node;
  bool called = false;

  DoneState(LaneScheduler* s, Node* n)
      : sched(s), guard(s->liveness_), node(n) {}
  DoneState(const DoneState&) = delete;
  DoneState& operator=(const DoneState&) = delete;

  void invoke() {
    if (guard.expired()) return;  // scheduler destroyed first
    if (called) {
      ++sched->double_dones_;
      return;
    }
    called = true;
    sched->finish(node, /*abandoned=*/false);
  }

  ~DoneState() {
    if (called || guard.expired()) return;
    called = true;
    sched->finish(node, /*abandoned=*/true);
  }
};

LaneScheduler::LaneScheduler(SchedulerConfig config) {
  configure(config);
}

LaneScheduler::~LaneScheduler() { detach_observability(); }

void LaneScheduler::configure(const SchedulerConfig& config) {
  if (config.lanes == 0) {
    throw std::invalid_argument("LaneScheduler: lanes must be >= 1");
  }
  if (config.budget_bps < 0.0) {
    throw std::invalid_argument("LaneScheduler: negative budget");
  }
  config_ = config;
  // A reconfiguration can re-open either gate (wider budget, disjointness
  // switched off), so every parked entry goes back through a gate test.
  rewake_all_parked();
  pump();
}

void LaneScheduler::set_lanes(std::size_t lanes) {
  SchedulerConfig c = config_;
  c.lanes = lanes;
  configure(c);
}

void LaneScheduler::set_clock(std::function<std::int64_t()> now_ns) {
  now_ns_ = std::move(now_ns);
}

void LaneScheduler::set_load_probe(std::function<double()> live_bps) {
  live_bps_ = std::move(live_bps);
}

double LaneScheduler::budget_ceiling() const {
  return config_.budget_bps * (1.0 + kBudgetSlack);
}

// ---------------------------------------------------------------------------
// Node pool and intrusive per-class lists.

LaneScheduler::Node* LaneScheduler::alloc_node() {
  if (!free_nodes_.empty()) {
    Node* n = free_nodes_.back();
    free_nodes_.pop_back();
    return n;
  }
  if (pool_chunks_.empty() || pool_used_ == kNodePoolChunk) {
    pool_chunks_.push_back(std::make_unique<Node[]>(kNodePoolChunk));
    pool_used_ = 0;
  }
  return &pool_chunks_.back()[pool_used_++];
}

void LaneScheduler::free_node(Node* n) {
  n->fn = nullptr;
  n->footprint.clear();  // next enqueue adopts the caller's buffer
  n->link_states.clear();  // keeps capacity: the pool's warm storage
  n->offered_bps = 0.0;
  n->tag = 0;
  n->park_key = 0;
  n->woken_from = 0;
  n->woken_from_ls = nullptr;
  n->ready_refs = 0;
  n->all_prev = n->all_next = nullptr;
  n->state = Node::State::kFree;
  n->woken = false;
  free_nodes_.push_back(n);
}

void LaneScheduler::all_push_back(Node* n) {
  ClassList& list = all_[static_cast<std::size_t>(n->cls)];
  n->all_prev = list.tail;
  n->all_next = nullptr;
  if (list.tail != nullptr) {
    list.tail->all_next = n;
  } else {
    list.head = n;
  }
  list.tail = n;
}

void LaneScheduler::all_unlink(Node* n) {
  ClassList& list = all_[static_cast<std::size_t>(n->cls)];
  if (n->all_prev != nullptr) {
    n->all_prev->all_next = n->all_next;
  } else {
    list.head = n->all_next;
  }
  if (n->all_next != nullptr) {
    n->all_next->all_prev = n->all_prev;
  } else {
    list.tail = n->all_prev;
  }
  n->all_prev = n->all_next = nullptr;
}

void LaneScheduler::all_insert_sorted(Node* n) {
  ClassList& list = all_[static_cast<std::size_t>(n->cls)];
  Node* after = list.tail;
  while (after != nullptr && after->seq > n->seq) after = after->all_prev;
  n->all_prev = after;
  n->all_next = after != nullptr ? after->all_next : list.head;
  if (n->all_next != nullptr) {
    n->all_next->all_prev = n;
  } else {
    list.tail = n;
  }
  if (after != nullptr) {
    after->all_next = n;
  } else {
    list.head = n;
  }
}

// ---------------------------------------------------------------------------
// Ready heaps (lazy deletion: refs are validated against the node when they
// surface, so state transitions never search a heap).

void LaneScheduler::ready_push(Node* n) {
  auto& h = ready_[static_cast<std::size_t>(n->cls)];
  h.push_back(ReadyRef{n->seq, n});
  std::push_heap(h.begin(), h.end(), ReadyRefGreater{});
  ++n->ready_refs;
}

LaneScheduler::Node* LaneScheduler::ready_peek(std::size_t cls) {
  auto& h = ready_[cls];
  while (!h.empty()) {
    const ReadyRef& top = h.front();
    Node* n = top.node;
    if (n->state == Node::State::kReady && n->seq == top.seq &&
        static_cast<std::size_t>(n->cls) == cls) {
      return n;
    }
    if (n->ready_refs > 0) --n->ready_refs;
    std::pop_heap(h.begin(), h.end(), ReadyRefGreater{});
    h.pop_back();
  }
  return nullptr;
}

void LaneScheduler::ready_pop(std::size_t cls) {
  auto& h = ready_[cls];
  Node* n = h.front().node;
  if (n->ready_refs > 0) --n->ready_refs;
  std::pop_heap(h.begin(), h.end(), ReadyRefGreater{});
  h.pop_back();
}

// ---------------------------------------------------------------------------
// Gates, parking, and incremental wake-up.

LaneScheduler::GateResult LaneScheduler::test_gates(const Node& n) {
  if (config_.budget_bps > 0.0 && n.offered_bps > 0.0) {
    const double ceiling = budget_ceiling();
    if (committed_bps_ + n.offered_bps > ceiling) {
      return GateResult{Gate::kBudget, 0, nullptr};
    }
    if (live_bps_ && live_bps_() + n.offered_bps > ceiling) {
      return GateResult{Gate::kBudget, 0, nullptr};
    }
  }
  if (config_.link_disjoint) {
    for (LinkKey key : n.footprint) {
      auto it = busy_links_.find(key);
      if (it != busy_links_.end() && it->second.count > 0) {
        return GateResult{Gate::kLink, key, &it->second};
      }
    }
  }
  return GateResult{Gate::kPass, 0, nullptr};
}

void LaneScheduler::park(Node* n, const GateResult& why) {
  if (n->woken) {
    ++sched_stats_.futile_wakeups;
    n->woken = false;
  }
  const LinkKey baton = n->woken_from;
  LinkState* baton_ls = n->woken_from_ls;
  n->woken_from = 0;
  n->woken_from_ls = nullptr;
  if (why.gate == Gate::kBudget) {
    ++sched_stats_.deferred_budget;
    n->state = Node::State::kParkedBudget;
    ++parked_budget_;
    budget_wait_.push_back(BudgetRef{n->offered_bps, n->seq, n});
    std::push_heap(budget_wait_.begin(), budget_wait_.end(),
                   BudgetRefGreater{});
  } else {
    ++sched_stats_.deferred_disjoint;
    n->state = Node::State::kParkedLink;
    ++parked_links_;
    n->park_key = why.link;
    LinkState& ls = *why.ls;  // found busy in test_gates
    auto& h = ls.waiters[static_cast<std::size_t>(n->cls)];
    h.push_back(ReadyRef{n->seq, n});
    std::push_heap(h.begin(), h.end(), ReadyRefGreater{});
  }
  // Baton passing: this entry carried the wake of a freed link but blocked
  // on a different gate. If that link is still free, its next waiter (same
  // class) takes over, so the wake is never lost — and never fans out.
  if (baton != 0 && baton_ls != nullptr) {
    wake_next_on(baton, *baton_ls, static_cast<std::size_t>(n->cls));
  }
}

void LaneScheduler::wake(Node* n, LinkKey from, LinkState* from_ls) {
  // Caller has already detached n from its park structure (or relies on
  // lazy heap invalidation).
  n->state = Node::State::kReady;
  n->woken = true;
  n->woken_from = from;
  n->woken_from_ls = from_ls;
  ++sched_stats_.wake_tests;
  // A ref this node buried in the ready heap when it last parked (same seq,
  // same class) revalidates with the state flip; pushing another would only
  // grow the heap.
  if (n->ready_refs == 0) ready_push(n);
}

void LaneScheduler::pop_and_wake(LinkKey key, LinkState& ls, std::size_t cls,
                                 bool wake_one) {
  auto& h = ls.waiters[cls];
  while (!h.empty()) {
    const ReadyRef top = h.front();
    Node* n = top.node;
    if (n->state == Node::State::kParkedLink && n->seq == top.seq &&
        n->park_key == key && static_cast<std::size_t>(n->cls) == cls) {
      if (!wake_one) return;  // live waiter stays parked
      wake_one = false;
      std::pop_heap(h.begin(), h.end(), ReadyRefGreater{});
      h.pop_back();
      --parked_links_;
      n->park_key = 0;
      wake(n, key, &ls);
      continue;  // keep purging stale refs behind the woken one
    }
    std::pop_heap(h.begin(), h.end(), ReadyRefGreater{});
    h.pop_back();
  }
}

void LaneScheduler::wake_link_free(LinkKey key, LinkState& ls) {
  // Only the lowest-seq waiter of each class can become that class's
  // candidate (older ready entries in the class are tested first anyway),
  // so one wake per class suffices; the rest ride the baton. The entry
  // stays in the map even when drained — see LinkState.
  for (std::size_t cls = 0; cls < kProbeClassCount; ++cls) {
    pop_and_wake(key, ls, cls, /*wake_one=*/true);
  }
}

void LaneScheduler::wake_next_on(LinkKey key, LinkState& ls,
                                 std::size_t cls) {
  if (ls.count > 0) return;  // re-occupied since the wake: waiters are fine
  pop_and_wake(key, ls, cls, /*wake_one=*/true);
}

void LaneScheduler::wake_budget_fits() {
  const double headroom = budget_ceiling() - committed_bps_;
  auto& h = budget_wait_;
  while (!h.empty()) {
    const BudgetRef top = h.front();
    Node* n = top.node;
    const bool valid =
        n->state == Node::State::kParkedBudget && n->seq == top.seq;
    if (valid && top.offered_bps > headroom) break;
    std::pop_heap(h.begin(), h.end(), BudgetRefGreater{});
    h.pop_back();
    if (!valid) continue;
    --parked_budget_;
    wake(n, 0, nullptr);
  }
}

void LaneScheduler::rewake_all_parked() {
  if (parked_links_ == 0 && parked_budget_ == 0) return;
  for (ClassList& list : all_) {
    for (Node* n = list.head; n != nullptr; n = n->all_next) {
      if (n->state == Node::State::kParkedLink) {
        // Heap refs invalidate lazily; sweep_link_states() clears them.
        n->park_key = 0;
        --parked_links_;
        wake(n, 0, nullptr);
      } else if (n->state == Node::State::kParkedBudget) {
        --parked_budget_;  // heap refs invalidate lazily
        wake(n, 0, nullptr);
      } else if (n->state == Node::State::kReady) {
        // Every parked entry is being woken, so no baton is owed anywhere
        // (and sweep_link_states() may erase the carried entry).
        n->woken_from = 0;
        n->woken_from_ls = nullptr;
      }
    }
  }
  sweep_link_states();
}

void LaneScheduler::sweep_link_states() {
  for (auto it = busy_links_.begin(); it != busy_links_.end();) {
    for (auto& h : it->second.waiters) h.clear();
    if (it->second.count == 0) {
      it = busy_links_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Admission.

void LaneScheduler::enqueue(Task task, ProbeProfile profile) {
  const std::size_t cls = static_cast<std::size_t>(profile.priority);
  if (cls >= kProbeClassCount) {
    throw std::invalid_argument("LaneScheduler: bad probe class");
  }
  Node* n = alloc_node();
  n->fn = std::move(task);
  n->footprint = std::move(profile.footprint);
  n->offered_bps = profile.offered_bps;
  n->tag = profile.tag;
  n->cls = profile.priority;
  n->seq = next_entry_seq_++;
  n->enqueued_ns = now();
  n->state = Node::State::kReady;
  n->woken = false;
  all_push_back(n);
  ready_push(n);
  ++queued_;
  pump();
}

LaneScheduler::Node* LaneScheduler::pick() {
  const bool idle_scheduler = in_flight_ == 0;
  // A live load reading can fall without any scheduler event, so the budget
  // watermark cannot stand in for it: with a probe installed, budget parks
  // are re-tested on every admission pass (link parks stay incremental).
  if (!idle_scheduler && live_bps_ && config_.budget_bps > 0.0 &&
      parked_budget_ > 0) {
    auto& h = budget_wait_;
    while (!h.empty()) {
      const BudgetRef top = h.front();
      Node* n = top.node;
      const bool valid =
          n->state == Node::State::kParkedBudget && n->seq == top.seq;
      std::pop_heap(h.begin(), h.end(), BudgetRefGreater{});
      h.pop_back();
      if (!valid) continue;
      --parked_budget_;
      wake(n, 0, nullptr);
    }
  }
  const std::int64_t t = now();

  struct Candidate {
    Node* node = nullptr;
    std::int64_t score = 0;
    bool starving = false;
  };
  Candidate best;

  for (std::size_t cls = 0; cls < kProbeClassCount; ++cls) {
    Node* cand = nullptr;
    if (idle_scheduler) {
      // Progress guarantee: an idle scheduler admits anything — the serial
      // special case (K=1, B=L/P) must launch the probe whose offered load
      // *equals* the whole budget, and a probe wider than every gate must
      // not pend forever. Gates (and their counters) are bypassed, so the
      // candidate is the plain FIFO head, parked or not.
      cand = all_[cls].head;
    } else {
      // Within a class, older entries never rank below younger ones, so the
      // class's best admissible candidate is its first admissible entry.
      // Parked entries are invariantly inadmissible (the wake rules restore
      // them to ready order before any pick sees the state change), so only
      // ready heads are tested; a failing head parks and the next surfaces.
      for (;;) {
        Node* n = ready_peek(cls);
        if (n == nullptr) break;
        const GateResult g = test_gates(*n);
        if (g.gate == Gate::kPass) {
          cand = n;
          break;
        }
        ready_pop(cls);
        park(n, g);
      }
    }
    if (cand == nullptr) continue;
    const std::int64_t wait =
        t > cand->enqueued_ns ? t - cand->enqueued_ns : 0;
    Candidate c;
    c.node = cand;
    c.score = static_cast<std::int64_t>(cls) * kAgingQuantaPerClass;
    if (config_.aging_quantum_ns > 0) {
      c.score += wait / config_.aging_quantum_ns;
    }
    c.starving = config_.starvation_limit_ns > 0 &&
                 wait >= config_.starvation_limit_ns;
    const bool wins =
        best.node == nullptr ||
        (c.starving != best.starving
             ? c.starving
             : (c.starving
                    // Among starving entries: oldest first.
                    ? (cand->enqueued_ns != best.node->enqueued_ns
                           ? cand->enqueued_ns < best.node->enqueued_ns
                           : cand->seq < best.node->seq)
                    // Otherwise: highest effective priority, FIFO on ties.
                    : (c.score != best.score ? c.score > best.score
                                             : cand->seq < best.node->seq)));
    if (wins) best = c;
  }

  if (best.node == nullptr) return nullptr;
  if (best.starving) ++sched_stats_.starvation_picks;
  return best.node;
}

void LaneScheduler::admit(Node* n) {
  // Remove from waiting structures: every heap ref (ready, budget, link
  // waiter) invalidates lazily against the node's new state. A carried
  // link wake dissolves with the admission — the woken-from key is in this
  // footprint, so it goes busy again and the remaining waiters are parked
  // correctly.
  if (n->state == Node::State::kParkedLink) {
    // Possible only through the idle-path pick, which bypasses gates.
    n->park_key = 0;
    --parked_links_;
  } else if (n->state == Node::State::kParkedBudget) {
    --parked_budget_;
  }
  n->woken_from = 0;
  n->woken_from_ls = nullptr;
  all_unlink(n);
  --queued_;

  // An admission that jumps over an older queued entry is a (deliberate)
  // priority inversion of FIFO order; the counter sizes how non-FIFO the
  // configured policy actually runs.
  for (const ClassList& list : all_) {
    if (list.head != nullptr && list.head->seq < n->seq) {
      ++sched_stats_.priority_inversions;
      break;
    }
  }

  ++in_flight_;
  ++launched_;
  ++sched_stats_.admitted;
  committed_bps_ += n->offered_bps;
  // Cache each key's occupancy entry so the release path decrements without
  // re-hashing (unordered_map references are rehash-stable).
  n->link_states.clear();
  for (LinkKey key : n->footprint) {
    LinkState& ls = busy_links_[key];
    if (ls.count++ == 0) ++occupied_links_;
    n->link_states.push_back(&ls);
  }

  // Smallest free lane id, deterministically.
  std::uint32_t lane;
  if (!free_lanes_.empty()) {
    std::pop_heap(free_lanes_.begin(), free_lanes_.end(),
                  std::greater<std::uint32_t>{});
    lane = free_lanes_.back();
    free_lanes_.pop_back();
  } else {
    lane = lane_high_++;
  }
  n->lane = lane;
  n->state = Node::State::kInFlight;
  n->woken = false;

  const std::int64_t t = now();
  n->launched_ns = t;
  if (trace_capacity_ > 0) {
    if (trace_.size() < trace_capacity_) {
      trace_.push_back(AdmissionRecord{
          trace_emitted_, t, n->seq, n->tag, n->cls, n->offered_bps,
          static_cast<std::uint32_t>(in_flight_), lane});
    }
    ++trace_emitted_;
  }

  if constexpr (obs::kCompiledIn) {
    if (obs_slot_wait_ != nullptr && obs_timed_) {
      obs_slot_wait_->observe(static_cast<double>(t - n->enqueued_ns));
    }
  }
  // The task may complete synchronously — finish() would then recycle the
  // node mid-call — so the callable leaves the node before it runs.
  Task fn = std::move(n->fn);
  n->fn = nullptr;
  auto state = std::make_shared<DoneState>(this, n);
  // The Done callback may fire synchronously or much later; both are fine.
  fn([state] { state->invoke(); });
}

void LaneScheduler::finish(Node* n, bool abandoned) {
  // Lane-release monotonicity contract: every release must match exactly
  // one launch. DoneState guarantees this today; if a refactor ever breaks
  // it, corrupting the concurrency bound silently is the worst outcome, so
  // fail loudly instead.
  if (in_flight_ == 0) {
    throw std::logic_error(
        "LaneScheduler::finish: lane released with none in flight");
  }
  --in_flight_;
  if (abandoned) {
    ++abandoned_;
  } else {
    ++completed_;
  }
  committed_bps_ -= n->offered_bps;
  if (in_flight_ == 0 || committed_bps_ < 0.0) committed_bps_ = 0.0;

  // Incremental wake-up: each link this release actually freed wakes its
  // lowest-seq waiter per class, and the budget watermark wakes only the
  // waiters the freed headroom fits.
  for (std::size_t i = 0; i < n->footprint.size(); ++i) {
    LinkState& ls = *n->link_states[i];
    if (ls.count == 0) continue;
    if (--ls.count == 0) {
      --occupied_links_;
      wake_link_free(n->footprint[i], ls);
    }
  }
  if (config_.budget_bps > 0.0 && n->offered_bps > 0.0 &&
      parked_budget_ > 0) {
    wake_budget_fits();
  }

  free_lanes_.push_back(n->lane);
  std::push_heap(free_lanes_.begin(), free_lanes_.end(),
                 std::greater<std::uint32_t>{});

  if constexpr (obs::kCompiledIn) {
    if (obs_slot_hold_ != nullptr && obs_timed_) {
      obs_slot_hold_->observe(static_cast<double>(now() - n->launched_ns));
    }
  }
  free_node(n);
  pump();
}

void LaneScheduler::pump() {
  // Trampoline: a task completing (or being abandoned) synchronously calls
  // finish() -> pump() re-entrantly; the inner call returns immediately and
  // the outer loop picks up the freed lane, so a long queue of synchronous
  // tasks drains iteratively instead of one stack frame per task.
  if (pumping_) return;
  pumping_ = true;
  while (in_flight_ < config_.lanes && queued_ > 0) {
    Node* n = pick();
    if (n == nullptr) break;
    admit(n);
  }
  pumping_ = false;
}

std::size_t LaneScheduler::reprioritize(std::uint64_t tag, ProbeClass cls) {
  const std::size_t target = static_cast<std::size_t>(cls);
  if (target >= kProbeClassCount) {
    throw std::invalid_argument("LaneScheduler: bad probe class");
  }
  std::vector<Node*> moving;
  for (std::size_t c = 0; c < kProbeClassCount; ++c) {
    if (c == target) continue;
    Node* n = all_[c].head;
    while (n != nullptr) {
      Node* next = n->all_next;
      if (n->tag == tag) {
        all_unlink(n);
        moving.push_back(n);
      }
      n = next;
    }
  }
  std::sort(moving.begin(), moving.end(),
            [](const Node* a, const Node* b) { return a->seq < b->seq; });
  for (Node* n : moving) {
    const std::size_t old_cls = static_cast<std::size_t>(n->cls);
    n->cls = cls;
    // Refs buried under the old class can never revalidate for the new one.
    n->ready_refs = 0;
    all_insert_sorted(n);
    if (n->state == Node::State::kReady) {
      // Re-register in the new class's ready order (the old heap refs
      // invalidate lazily through the class check, so the revalidation
      // counter restarts at the new ref). A carried link wake belongs to
      // the OLD class — its waiters lose their carrier here — so it is
      // handed off before the node changes allegiance.
      ready_push(n);
      if (n->woken_from != 0 && n->woken_from_ls != nullptr) {
        const LinkKey baton = n->woken_from;
        LinkState* baton_ls = n->woken_from_ls;
        n->woken_from = 0;
        n->woken_from_ls = nullptr;
        wake_next_on(baton, *baton_ls, old_cls);
      }
    } else if (n->state == Node::State::kParkedLink) {
      auto it = busy_links_.find(n->park_key);
      if (it != busy_links_.end() && it->second.count > 0) {
        // Still genuinely blocked: register under the new class so the
        // link's next free wakes this class's true minimum.
        auto& h = it->second.waiters[target];
        h.push_back(ReadyRef{n->seq, n});
        std::push_heap(h.begin(), h.end(), ReadyRefGreater{});
      } else {
        // Parked on a link that has since freed (its wake rides with the
        // old class's baton, which this node just left behind): wake it
        // directly rather than reason about carrier coverage.
        const LinkKey key = n->park_key;
        n->park_key = 0;
        --parked_links_;
        wake(n, key, it != busy_links_.end() ? &it->second : nullptr);
      }
    }
    // kParkedBudget: the budget heap is class-independent; nothing moves.
  }
  const std::size_t moved = moving.size();
  if (moved != 0) pump();
  return moved;
}

void LaneScheduler::check_consistency() const {
  if (completed_ + abandoned_ + in_flight_ != launched_) {
    throw std::logic_error(
        "LaneScheduler: lane accounting out of balance (completed + "
        "abandoned + in_flight != launched)");
  }
  std::size_t total = 0;
  std::size_t ready_n = 0;
  std::size_t parked_link_n = 0;
  std::size_t parked_budget_n = 0;
  for (const ClassList& list : all_) {
    for (const Node* n = list.head; n != nullptr; n = n->all_next) {
      ++total;
      switch (n->state) {
        case Node::State::kReady: ++ready_n; break;
        case Node::State::kParkedLink: ++parked_link_n; break;
        case Node::State::kParkedBudget: ++parked_budget_n; break;
        default:
          throw std::logic_error(
              "LaneScheduler: waiting entry in a non-waiting state");
      }
      if (n->all_next != nullptr && n->all_next->seq <= n->seq) {
        throw std::logic_error(
            "LaneScheduler: class list out of seq order");
      }
    }
  }
  if (total != queued_) {
    throw std::logic_error("LaneScheduler: queued count out of balance");
  }
  if (parked_link_n != parked_links_ || parked_budget_n != parked_budget_) {
    throw std::logic_error("LaneScheduler: parked counters out of balance");
  }
  if (in_flight_ == 0 &&
      (occupied_links_ != 0 || std::abs(committed_bps_) > kBudgetSlack)) {
    throw std::logic_error(
        "LaneScheduler: idle scheduler still holds budget or links");
  }

  // Occupancy index == multiset union of in-flight footprints. Entries
  // with count == 0 are legal while they still hold waiters whose wake
  // rides a baton; they must not claim occupancy.
  std::unordered_map<LinkKey, std::uint32_t> occupancy;
  std::size_t in_flight_n = 0;
  for (std::size_t c = 0; c < pool_chunks_.size(); ++c) {
    const std::size_t used =
        c + 1 == pool_chunks_.size() ? pool_used_ : kNodePoolChunk;
    for (std::size_t i = 0; i < used; ++i) {
      const Node& n = pool_chunks_[c][i];
      if (n.state != Node::State::kInFlight) continue;
      ++in_flight_n;
      for (LinkKey key : n.footprint) ++occupancy[key];
    }
  }
  if (in_flight_n != in_flight_) {
    throw std::logic_error("LaneScheduler: in-flight node count mismatch");
  }
  std::size_t occupied_n = 0;
  for (const auto& [key, ls] : busy_links_) {
    if (ls.count == 0) continue;
    ++occupied_n;
    auto it = occupancy.find(key);
    if (it == occupancy.end() || it->second != ls.count) {
      throw std::logic_error(
          "LaneScheduler: occupancy count diverges from in-flight "
          "footprints");
    }
  }
  if (occupied_n != occupied_links_ || occupied_n != occupancy.size()) {
    throw std::logic_error(
        "LaneScheduler: occupancy index has stale or missing keys");
  }

  // Every link-parked entry must be reachable through a live waiter ref
  // under exactly its park key and class (duplicate refs from class moves
  // are tolerated: only the first can wake, the rest purge as stale).
  std::unordered_set<const Node*> live_waiters;
  std::set<std::pair<LinkKey, std::size_t>> waited_free_links;
  for (const auto& [key, ls] : busy_links_) {
    for (std::size_t cls = 0; cls < kProbeClassCount; ++cls) {
      for (const ReadyRef& ref : ls.waiters[cls]) {
        const Node* w = ref.node;
        if (w->state == Node::State::kParkedLink && w->seq == ref.seq &&
            w->park_key == key && static_cast<std::size_t>(w->cls) == cls) {
          live_waiters.insert(w);
          if (ls.count == 0) waited_free_links.insert({key, cls});
        }
      }
    }
  }
  if (live_waiters.size() != parked_links_) {
    throw std::logic_error(
        "LaneScheduler: link-parked entry lost from its waiter heap");
  }
  // Baton existence: waiters parked on a FREE link are only legal while a
  // ready entry of their class carries that link's wake — otherwise the
  // wake was dropped and they would pend forever.
  for (const ClassList& list : all_) {
    for (const Node* n = list.head; n != nullptr; n = n->all_next) {
      if (n->state == Node::State::kReady && n->woken_from != 0) {
        waited_free_links.erase(
            {n->woken_from, static_cast<std::size_t>(n->cls)});
      }
    }
  }
  if (!waited_free_links.empty()) {
    throw std::logic_error(
        "LaneScheduler: waiter parked on a free link with no wake carrier");
  }

  // Every ready entry must be reachable through its class's ready heap —
  // a ready node with no live heap ref is a lost wakeup.
  for (std::size_t cls = 0; cls < kProbeClassCount; ++cls) {
    std::size_t live = 0;
    for (const ReadyRef& ref : ready_[cls]) {
      const Node* n = ref.node;
      if (n->state == Node::State::kReady && n->seq == ref.seq &&
          static_cast<std::size_t>(n->cls) == cls) {
        ++live;
      }
    }
    std::size_t want = 0;
    for (const Node* n = all_[cls].head; n != nullptr; n = n->all_next) {
      if (n->state == Node::State::kReady) ++want;
    }
    if (live < want) {
      throw std::logic_error("LaneScheduler: ready entry lost from heap");
    }
  }

  // The ready-ref revalidation counter must never overcount: a wake that
  // skips its push on the counter's word while no buried ref matches the
  // node's current (seq, class) would be a lost wakeup.
  std::unordered_map<const Node*, std::uint32_t> revalidatable;
  for (std::size_t cls = 0; cls < kProbeClassCount; ++cls) {
    for (const ReadyRef& ref : ready_[cls]) {
      if (ref.node->seq == ref.seq &&
          static_cast<std::size_t>(ref.node->cls) == cls) {
        ++revalidatable[ref.node];
      }
    }
  }
  for (const ClassList& list : all_) {
    for (const Node* n = list.head; n != nullptr; n = n->all_next) {
      auto it = revalidatable.find(n);
      const std::uint32_t have = it != revalidatable.end() ? it->second : 0;
      if (n->ready_refs > have) {
        throw std::logic_error(
            "LaneScheduler: ready-ref counter exceeds revalidatable refs");
      }
    }
  }

  // Budget-parked entries genuinely exceed the current headroom; anything
  // that fits would have been woken by the watermark. (A live-load probe
  // parks entries on an external signal the invariant cannot see.)
  if (!live_bps_ && config_.budget_bps > 0.0) {
    const double ceiling = budget_ceiling();
    for (const ClassList& list : all_) {
      for (const Node* n = list.head; n != nullptr; n = n->all_next) {
        if (n->state == Node::State::kParkedBudget &&
            committed_bps_ + n->offered_bps <= ceiling) {
          throw std::logic_error(
              "LaneScheduler: budget-parked entry fits the watermark");
        }
      }
    }
  }
}

void LaneScheduler::record_admissions(std::size_t capacity) {
  trace_capacity_ = capacity;
  trace_.clear();
  trace_emitted_ = 0;
  if (capacity > 0) trace_.reserve(capacity < 4096 ? capacity : 4096);
}

void LaneScheduler::attach_observability(obs::Registry& registry,
                                         std::string prefix,
                                         std::function<std::int64_t()> now_ns) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    if (now_ns) set_clock(std::move(now_ns));
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  if (now_ns) {
    set_clock(std::move(now_ns));
    obs_timed_ = true;
  } else {
    obs_timed_ = static_cast<bool>(now_ns_);
  }
  registry.gauge_fn(obs_prefix_ + ".in_flight",
                    [this] { return static_cast<double>(in_flight_); });
  registry.gauge_fn(obs_prefix_ + ".queued",
                    [this] { return static_cast<double>(queued_); });
  registry.gauge_fn(obs_prefix_ + ".launched",
                    [this] { return static_cast<double>(launched_); });
  registry.gauge_fn(obs_prefix_ + ".completed",
                    [this] { return static_cast<double>(completed_); });
  registry.gauge_fn(obs_prefix_ + ".double_dones",
                    [this] { return static_cast<double>(double_dones_); });
  registry.gauge_fn(obs_prefix_ + ".abandoned",
                    [this] { return static_cast<double>(abandoned_); });
  registry.gauge_fn(obs_prefix_ + ".lanes", [this] {
    return config_.lanes == kUnlimited ? -1.0
                                       : static_cast<double>(config_.lanes);
  });
  registry.gauge_fn(obs_prefix_ + ".budget_bps",
                    [this] { return config_.budget_bps; });
  registry.gauge_fn(obs_prefix_ + ".committed_bps",
                    [this] { return committed_bps_; });
  registry.gauge_fn(obs_prefix_ + ".busy_links", [this] {
    return static_cast<double>(occupied_links_);
  });
  registry.gauge_fn(obs_prefix_ + ".parked_links", [this] {
    return static_cast<double>(parked_links_);
  });
  registry.gauge_fn(obs_prefix_ + ".parked_budget", [this] {
    return static_cast<double>(parked_budget_);
  });
  registry.gauge_fn(obs_prefix_ + ".deferred_budget", [this] {
    return static_cast<double>(sched_stats_.deferred_budget);
  });
  registry.gauge_fn(obs_prefix_ + ".deferred_disjoint", [this] {
    return static_cast<double>(sched_stats_.deferred_disjoint);
  });
  registry.gauge_fn(obs_prefix_ + ".starvation_picks", [this] {
    return static_cast<double>(sched_stats_.starvation_picks);
  });
  registry.gauge_fn(obs_prefix_ + ".priority_inversions", [this] {
    return static_cast<double>(sched_stats_.priority_inversions);
  });
  registry.gauge_fn(obs_prefix_ + ".wake_tests", [this] {
    return static_cast<double>(sched_stats_.wake_tests);
  });
  registry.gauge_fn(obs_prefix_ + ".futile_wakeups", [this] {
    return static_cast<double>(sched_stats_.futile_wakeups);
  });
  if (obs_timed_) {
    obs_slot_wait_ = &registry.histogram(obs_prefix_ + ".slot_wait_ns");
    obs_slot_hold_ = &registry.histogram(obs_prefix_ + ".slot_hold_ns");
  }
}

void LaneScheduler::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
  obs_slot_wait_ = nullptr;
  obs_slot_hold_ = nullptr;
  obs_timed_ = false;
}

}  // namespace netmon::core
