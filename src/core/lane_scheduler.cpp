#include "core/lane_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netmon::core {

namespace {
// One class level of priority equals this many aging quanta: a background
// probe that has waited 8 quanta outranks a fresh critical one, so aging
// always wins eventually (no starvation by class alone).
constexpr std::int64_t kAgingQuantaPerClass = 8;
// Tolerance for the budget comparison: the committed sum is maintained
// incrementally, so allow for float drift without admitting real overdraft.
constexpr double kBudgetSlack = 1e-6;
}  // namespace

const char* to_string(ProbeClass cls) {
  switch (cls) {
    case ProbeClass::kBackground: return "background";
    case ProbeClass::kNormal: return "normal";
    case ProbeClass::kCritical: return "critical";
  }
  return "?";
}

// Shared between every copy of one task's Done callback: the first
// invocation releases the lane, later ones are counted no-ops, and the
// destructor of the last copy releases the lane if nobody ever called it.
struct LaneScheduler::DoneState {
  LaneScheduler* sched;
  std::weak_ptr<int> guard;
  std::int64_t launched_ns = 0;
  double offered_bps = 0.0;
  std::vector<LinkKey> footprint;
  bool called = false;

  explicit DoneState(LaneScheduler* s) : sched(s), guard(s->liveness_) {}
  DoneState(const DoneState&) = delete;
  DoneState& operator=(const DoneState&) = delete;

  void invoke() {
    if (guard.expired()) return;  // scheduler destroyed first
    if (called) {
      ++sched->double_dones_;
      return;
    }
    called = true;
    sched->finish(*this, /*abandoned=*/false);
  }

  ~DoneState() {
    if (called || guard.expired()) return;
    called = true;
    sched->finish(*this, /*abandoned=*/true);
  }
};

LaneScheduler::LaneScheduler(SchedulerConfig config) {
  configure(config);
}

LaneScheduler::~LaneScheduler() { detach_observability(); }

void LaneScheduler::configure(const SchedulerConfig& config) {
  if (config.lanes == 0) {
    throw std::invalid_argument("LaneScheduler: lanes must be >= 1");
  }
  if (config.budget_bps < 0.0) {
    throw std::invalid_argument("LaneScheduler: negative budget");
  }
  config_ = config;
  pump();
}

void LaneScheduler::set_lanes(std::size_t lanes) {
  SchedulerConfig c = config_;
  c.lanes = lanes;
  configure(c);
}

void LaneScheduler::set_clock(std::function<std::int64_t()> now_ns) {
  now_ns_ = std::move(now_ns);
}

void LaneScheduler::set_load_probe(std::function<double()> live_bps) {
  live_bps_ = std::move(live_bps);
}

void LaneScheduler::enqueue(Task task, ProbeProfile profile) {
  const std::size_t cls = static_cast<std::size_t>(profile.priority);
  if (cls >= kProbeClassCount) {
    throw std::invalid_argument("LaneScheduler: bad probe class");
  }
  queues_[cls].push_back(
      Entry{std::move(task), std::move(profile), now(), next_entry_seq_++});
  ++queued_;
  pump();
}

bool LaneScheduler::gates_admit(const Entry& entry, bool idle_scheduler) {
  // Progress guarantee: an idle scheduler admits anything — the serial
  // special case (K=1, B=L/P) must launch the probe whose offered load
  // *equals* the whole budget, and a probe wider than every gate must not
  // pend forever.
  if (idle_scheduler) return true;
  const ProbeProfile& p = entry.profile;
  if (config_.budget_bps > 0.0 && p.offered_bps > 0.0) {
    if (committed_bps_ + p.offered_bps >
        config_.budget_bps * (1.0 + kBudgetSlack)) {
      ++sched_stats_.deferred_budget;
      return false;
    }
    if (live_bps_ &&
        live_bps_() + p.offered_bps > config_.budget_bps * (1.0 + kBudgetSlack)) {
      ++sched_stats_.deferred_budget;
      return false;
    }
  }
  if (config_.link_disjoint) {
    for (LinkKey key : p.footprint) {
      if (busy_links_.count(key) != 0) {
        ++sched_stats_.deferred_disjoint;
        return false;
      }
    }
  }
  return true;
}

bool LaneScheduler::pick(std::size_t& cls_out, std::size_t& pos_out) {
  const bool idle_scheduler = in_flight_ == 0;
  const std::int64_t t = now();

  struct Candidate {
    std::size_t cls = 0;
    std::size_t pos = 0;
    std::int64_t score = 0;
    std::int64_t enqueued_ns = 0;
    std::uint64_t seq = 0;
    bool starving = false;
    bool valid = false;
  };
  Candidate best;

  for (std::size_t cls = 0; cls < kProbeClassCount; ++cls) {
    std::deque<Entry>& q = queues_[cls];
    // Within a class, older entries never rank below younger ones, so the
    // class's best admissible candidate is its first admissible entry.
    for (std::size_t pos = 0; pos < q.size(); ++pos) {
      if (!gates_admit(q[pos], idle_scheduler)) continue;
      const Entry& e = q[pos];
      const std::int64_t wait = t > e.enqueued_ns ? t - e.enqueued_ns : 0;
      Candidate c;
      c.cls = cls;
      c.pos = pos;
      c.score = static_cast<std::int64_t>(cls) * kAgingQuantaPerClass;
      if (config_.aging_quantum_ns > 0) {
        c.score += wait / config_.aging_quantum_ns;
      }
      c.enqueued_ns = e.enqueued_ns;
      c.seq = e.seq;
      c.starving = config_.starvation_limit_ns > 0 &&
                   wait >= config_.starvation_limit_ns;
      c.valid = true;
      const bool wins =
          !best.valid ||
          (c.starving != best.starving
               ? c.starving
               : (c.starving
                      // Among starving entries: oldest first.
                      ? (c.enqueued_ns != best.enqueued_ns
                             ? c.enqueued_ns < best.enqueued_ns
                             : c.seq < best.seq)
                      // Otherwise: highest effective priority, FIFO on ties.
                      : (c.score != best.score ? c.score > best.score
                                               : c.seq < best.seq)));
      if (wins) best = c;
      break;  // only the first admissible entry per class can win
    }
  }

  if (!best.valid) return false;
  if (best.starving) ++sched_stats_.starvation_picks;
  cls_out = best.cls;
  pos_out = best.pos;
  return true;
}

void LaneScheduler::admit(std::size_t cls, std::size_t pos) {
  std::deque<Entry>& q = queues_[cls];
  Entry entry = std::move(q[pos]);
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(pos));
  --queued_;

  // An admission that jumps over an older queued entry is a (deliberate)
  // priority inversion of FIFO order; the counter sizes how non-FIFO the
  // configured policy actually runs.
  for (const std::deque<Entry>& other : queues_) {
    if (!other.empty() && other.front().seq < entry.seq) {
      ++sched_stats_.priority_inversions;
      break;
    }
  }

  ++in_flight_;
  ++launched_;
  ++sched_stats_.admitted;
  committed_bps_ += entry.profile.offered_bps;
  for (LinkKey key : entry.profile.footprint) ++busy_links_[key];

  const std::int64_t t = now();
  if (trace_capacity_ > 0) {
    if (trace_.size() < trace_capacity_) {
      trace_.push_back(AdmissionRecord{
          trace_emitted_, t, entry.seq, entry.profile.tag,
          entry.profile.priority, entry.profile.offered_bps,
          static_cast<std::uint32_t>(in_flight_)});
    }
    ++trace_emitted_;
  }

  auto state = std::make_shared<DoneState>(this);
  state->launched_ns = t;
  state->offered_bps = entry.profile.offered_bps;
  state->footprint = std::move(entry.profile.footprint);
  if constexpr (obs::kCompiledIn) {
    if (obs_slot_wait_ != nullptr && obs_timed_) {
      obs_slot_wait_->observe(static_cast<double>(t - entry.enqueued_ns));
    }
  }
  // The Done callback may fire synchronously or much later; both are fine.
  entry.fn([state] { state->invoke(); });
}

void LaneScheduler::finish(DoneState& state, bool abandoned) {
  // Lane-release monotonicity contract: every release must match exactly
  // one launch. DoneState guarantees this today; if a refactor ever breaks
  // it, corrupting the concurrency bound silently is the worst outcome, so
  // fail loudly instead.
  if (in_flight_ == 0) {
    throw std::logic_error(
        "LaneScheduler::finish: lane released with none in flight");
  }
  --in_flight_;
  if (abandoned) {
    ++abandoned_;
  } else {
    ++completed_;
  }
  committed_bps_ -= state.offered_bps;
  if (in_flight_ == 0 || committed_bps_ < 0.0) committed_bps_ = 0.0;
  for (LinkKey key : state.footprint) {
    auto it = busy_links_.find(key);
    if (it != busy_links_.end() && --it->second == 0) busy_links_.erase(it);
  }
  if constexpr (obs::kCompiledIn) {
    if (obs_slot_hold_ != nullptr && obs_timed_) {
      obs_slot_hold_->observe(static_cast<double>(now() - state.launched_ns));
    }
  }
  pump();
}

void LaneScheduler::pump() {
  // Trampoline: a task completing (or being abandoned) synchronously calls
  // finish() -> pump() re-entrantly; the inner call returns immediately and
  // the outer loop picks up the freed lane, so a long queue of synchronous
  // tasks drains iteratively instead of one stack frame per task.
  if (pumping_) return;
  pumping_ = true;
  while (in_flight_ < config_.lanes && queued_ > 0) {
    std::size_t cls = 0;
    std::size_t pos = 0;
    if (!pick(cls, pos)) break;
    admit(cls, pos);
  }
  pumping_ = false;
}

std::size_t LaneScheduler::reprioritize(std::uint64_t tag, ProbeClass cls) {
  const std::size_t target = static_cast<std::size_t>(cls);
  if (target >= kProbeClassCount) {
    throw std::invalid_argument("LaneScheduler: bad probe class");
  }
  std::vector<Entry> moving;
  for (std::size_t c = 0; c < kProbeClassCount; ++c) {
    if (c == target) continue;
    std::deque<Entry>& q = queues_[c];
    for (auto it = q.begin(); it != q.end();) {
      if (it->profile.tag == tag) {
        moving.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::deque<Entry>& dst = queues_[target];
  for (Entry& e : moving) {
    e.profile.priority = cls;
    const auto pos = std::lower_bound(
        dst.begin(), dst.end(), e.seq,
        [](const Entry& a, std::uint64_t seq) { return a.seq < seq; });
    dst.insert(pos, std::move(e));
  }
  const std::size_t moved = moving.size();
  if (moved != 0) pump();
  return moved;
}

void LaneScheduler::check_consistency() const {
  if (completed_ + abandoned_ + in_flight_ != launched_) {
    throw std::logic_error(
        "LaneScheduler: lane accounting out of balance (completed + "
        "abandoned + in_flight != launched)");
  }
  std::size_t total = 0;
  for (const std::deque<Entry>& q : queues_) total += q.size();
  if (total != queued_) {
    throw std::logic_error("LaneScheduler: queued count out of balance");
  }
  if (in_flight_ == 0 &&
      (!busy_links_.empty() || std::abs(committed_bps_) > kBudgetSlack)) {
    throw std::logic_error(
        "LaneScheduler: idle scheduler still holds budget or links");
  }
}

void LaneScheduler::record_admissions(std::size_t capacity) {
  trace_capacity_ = capacity;
  trace_.clear();
  trace_emitted_ = 0;
  if (capacity > 0) trace_.reserve(capacity < 4096 ? capacity : 4096);
}

void LaneScheduler::attach_observability(obs::Registry& registry,
                                         std::string prefix,
                                         std::function<std::int64_t()> now_ns) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    if (now_ns) set_clock(std::move(now_ns));
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  if (now_ns) {
    set_clock(std::move(now_ns));
    obs_timed_ = true;
  } else {
    obs_timed_ = static_cast<bool>(now_ns_);
  }
  registry.gauge_fn(obs_prefix_ + ".in_flight",
                    [this] { return static_cast<double>(in_flight_); });
  registry.gauge_fn(obs_prefix_ + ".queued",
                    [this] { return static_cast<double>(queued_); });
  registry.gauge_fn(obs_prefix_ + ".launched",
                    [this] { return static_cast<double>(launched_); });
  registry.gauge_fn(obs_prefix_ + ".completed",
                    [this] { return static_cast<double>(completed_); });
  registry.gauge_fn(obs_prefix_ + ".double_dones",
                    [this] { return static_cast<double>(double_dones_); });
  registry.gauge_fn(obs_prefix_ + ".abandoned",
                    [this] { return static_cast<double>(abandoned_); });
  registry.gauge_fn(obs_prefix_ + ".lanes", [this] {
    return config_.lanes == kUnlimited ? -1.0
                                       : static_cast<double>(config_.lanes);
  });
  registry.gauge_fn(obs_prefix_ + ".budget_bps",
                    [this] { return config_.budget_bps; });
  registry.gauge_fn(obs_prefix_ + ".committed_bps",
                    [this] { return committed_bps_; });
  registry.gauge_fn(obs_prefix_ + ".busy_links", [this] {
    return static_cast<double>(busy_links_.size());
  });
  registry.gauge_fn(obs_prefix_ + ".deferred_budget", [this] {
    return static_cast<double>(sched_stats_.deferred_budget);
  });
  registry.gauge_fn(obs_prefix_ + ".deferred_disjoint", [this] {
    return static_cast<double>(sched_stats_.deferred_disjoint);
  });
  registry.gauge_fn(obs_prefix_ + ".starvation_picks", [this] {
    return static_cast<double>(sched_stats_.starvation_picks);
  });
  registry.gauge_fn(obs_prefix_ + ".priority_inversions", [this] {
    return static_cast<double>(sched_stats_.priority_inversions);
  });
  if (obs_timed_) {
    obs_slot_wait_ = &registry.histogram(obs_prefix_ + ".slot_wait_ns");
    obs_slot_hold_ = &registry.histogram(obs_prefix_ + ".slot_hold_ns");
  }
}

void LaneScheduler::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
  obs_slot_wait_ = nullptr;
  obs_slot_hold_ = nullptr;
  obs_timed_ = false;
}

}  // namespace netmon::core
