#pragma once

// High-fidelity monitor implementation (paper §5.1): NTTCP-based active
// probing at the Application & Support layer. Probes launch *from the
// path's source host* (the "RTDS server simulator" of Figure 5) and mimic
// the monitored application's message length L and inter-send period P.
// The test sequencer bounds concurrency: 1 = the paper's serial sequencer.

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/sensor_director.hpp"
#include "net/topology.hpp"
#include "nttcp/nttcp.hpp"
#include "nttcp/reachability.hpp"

namespace netmon::core {

// Installs and owns the measurement endpoints (NTTCP sinks + echo
// responders — the "RTDS client simulators") on target hosts.
class SinkSet {
 public:
  void install(net::Host& host, std::uint16_t nttcp_port = nttcp::kNttcpPort,
               std::uint16_t echo_port = nttcp::kEchoPort);
  std::size_t size() const { return sinks_.size(); }

 private:
  std::vector<std::unique_ptr<nttcp::NttcpSink>> sinks_;
  std::vector<std::unique_ptr<nttcp::EchoResponder>> responders_;
};

// Application-layer sensor for all three metrics via active probing.
// Multi-leg paths are measured leg by leg: latency sums, throughput takes
// the minimum, reachability requires every leg.
class NttcpSensor : public NetworkSensor {
 public:
  NttcpSensor(net::Network& network, nttcp::NttcpConfig probe_config,
              nttcp::ReachabilityProbe::Config reach_config = {});

  std::string name() const override { return "nttcp"; }
  bool supports(Metric metric) const override;
  void measure(const Path& path, Metric metric, Done done) override;

  nttcp::NttcpConfig& probe_config() { return probe_config_; }
  nttcp::ReachabilityProbe::Config& reach_config() { return reach_config_; }
  std::uint64_t probes_launched() const { return probes_launched_; }
  std::uint64_t probe_bytes_on_wire() const { return probe_bytes_on_wire_; }

 private:
  struct LegAccumulator {
    double latency_sum_s = 0.0;
    double min_throughput_bps = 0.0;
    bool have_throughput = false;
    bool all_ok = true;
  };

  void measure_leg(const Path& path, Metric metric, std::size_t leg_index,
                   std::shared_ptr<LegAccumulator> acc, Done done);
  void cleanup_later(std::uint64_t token);

  net::Network& network_;
  nttcp::NttcpConfig probe_config_;
  nttcp::ReachabilityProbe::Config reach_config_;
  std::uint64_t next_token_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<nttcp::NttcpProbe>>
      active_probes_;
  std::unordered_map<std::uint64_t, std::unique_ptr<nttcp::ReachabilityProbe>>
      active_reach_;
  std::uint64_t probes_launched_ = 0;
  std::uint64_t probe_bytes_on_wire_ = 0;
};

// Builds a SensorDirector::ProbeProfiler from the live topology: offered
// load from the probe's wire footprint (NttcpProbe::peak_load_bps — the
// paper's L/P applied to wire sizes — times the data direction's L3 hop
// count, so declared loads share units with octets_by_class() and the
// IntrusivenessMeter the budget B is asserted against; reachability probes
// declare `reach_offered_bps`, negligible by default) and the
// link-disjointness footprint from Network::route_media over every path leg
// in both directions (data flows out, results flow back; asymmetric routes
// make the directions differ). Footprints are cached per path — construct
// the profiler after auto_route() and rebuild it if routes change.
SensorDirector::ProbeProfiler make_route_profiler(
    net::Network& network, const nttcp::NttcpConfig& probe,
    double reach_offered_bps = 0.0);

class HighFidelityMonitor {
 public:
  struct Config {
    nttcp::NttcpConfig probe;
    nttcp::ReachabilityProbe::Config reach;
    // 1 reproduces the paper's test sequencer; kUnlimited the naive
    // all-paths-in-parallel monitor.
    std::size_t max_concurrent = 1;
    // Budgeted multi-lane scheduling (DESIGN.md §11). The default —
    // lanes = 1, no budget, no disjointness — defers the lane count to
    // max_concurrent above and is bit-identical to the classic sequencer;
    // scheduling.lanes != 1 takes precedence over max_concurrent.
    SchedulerConfig scheduling;
    // With a budget or the disjointness gate active, derive each probe's
    // offered load and link footprint from the topology automatically
    // (make_route_profiler); set false to supply a custom profiler via
    // director().set_probe_profiler().
    bool auto_profile = true;
    // Samples retained per (path, metric) series. The 10k-path fabrics
    // multiply this by C·S·metrics — drop it when soaking large matrices.
    std::size_t history_depth = 64;
    // Tiered storage engine under the database (DESIGN.md §13); the default
    // keeps it enabled with the stock page/tier geometry.
    TieredStorageConfig storage;
    // Deadline/retry/breaker supervision; all off by default.
    SupervisionConfig supervision;
  };

  HighFidelityMonitor(net::Network& network, Config config);

  SensorDirector& director() { return director_; }
  MeasurementDatabase& database() { return director_.database(); }
  NttcpSensor& sensor() { return sensor_; }

 private:
  // The director must be destroyed before the sensor it drives: tearing the
  // sensor down first destroys its in-flight Done callbacks, and the
  // sequencer would pump the next queued measurement into a half-dead
  // sensor. Director-last keeps teardown a no-op (the sequencer's liveness
  // guard is already gone when the sensor's callbacks unwind).
  NttcpSensor sensor_;
  SensorDirector director_;
};

}  // namespace netmon::core
