#pragma once

// The monitor's database (paper §4.1): "enables both current value and last
// known value reporting to the resource manager". Also the home of the
// senescence component of fidelity (§4.4): the age of the newest sample for
// a (path, metric) pair.

#include <cstdint>
#include <map>
#include <optional>

#include "core/path.hpp"
#include "sim/time.hpp"
#include "util/ring_buffer.hpp"

namespace netmon::core {

struct Measurement {
  MetricValue value;
  // Age helper relative to `now`.
  sim::Duration age(sim::TimePoint now) const {
    return now - value.measured_at;
  }
};

class MeasurementDatabase {
 public:
  explicit MeasurementDatabase(std::size_t history_depth = 64)
      : history_depth_(history_depth) {}

  void record(const Path& path, Metric metric, const MetricValue& value);

  // Current-value semantics: the newest sample iff it is younger than
  // max_age (and was a successful measurement).
  std::optional<Measurement> current(const Path& path, Metric metric,
                                     sim::TimePoint now,
                                     sim::Duration max_age) const;
  // Last-known-value semantics: the newest *successful* sample regardless
  // of age — what the manager falls back to when sensors go quiet.
  std::optional<Measurement> last_known(const Path& path, Metric metric) const;
  // Age of the newest sample (successful or not); nullopt if never sampled.
  std::optional<sim::Duration> senescence(const Path& path, Metric metric,
                                          sim::TimePoint now) const;

  const util::RingBuffer<Measurement>* history(const Path& path,
                                               Metric metric) const;

  std::uint64_t records_written() const { return records_written_; }
  std::size_t tracked_series() const { return series_.size(); }

 private:
  struct Series {
    util::RingBuffer<Measurement> history;
    std::optional<Measurement> last_valid;
    explicit Series(std::size_t depth) : history(depth) {}
  };
  using Key = std::pair<Path, Metric>;

  std::size_t history_depth_;
  std::map<Key, Series> series_;
  std::uint64_t records_written_ = 0;
};

}  // namespace netmon::core
