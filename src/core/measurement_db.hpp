#pragma once

// The monitor's database (paper §4.1): "enables both current value and last
// known value reporting to the resource manager". Also the home of the
// senescence component of fidelity (§4.4): the age of the newest sample for
// a (path, metric) pair.
//
// Paths are interned into dense PathIds on first contact; series then live
// in a flat vector indexed by (PathId, Metric), so the steady-state record
// path is an array index away — no tree walk and no Path copy per sample.
// The Path-keyed overloads remain as thin wrappers (one interning lookup)
// for callers that do not hold an id.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/path.hpp"
#include "core/tiered_store.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "util/ring_buffer.hpp"

namespace netmon::core {

struct Measurement {
  MetricValue value;
  // Age helper relative to `now`.
  sim::Duration age(sim::TimePoint now) const {
    return now - value.measured_at;
  }
};

// Dense index of an interned Path. Ids are assigned in interning order,
// starting at 0, and stay valid for the database's lifetime.
using PathId = std::uint32_t;
constexpr PathId kInvalidPathId = 0xFFFFFFFFu;

class MeasurementDatabase {
 public:
  explicit MeasurementDatabase(std::size_t history_depth = 64,
                               TieredStorageConfig storage = {})
      : history_depth_(history_depth), store_(std::move(storage)) {}
  ~MeasurementDatabase() { detach_observability(); }
  MeasurementDatabase(const MeasurementDatabase&) = delete;
  MeasurementDatabase& operator=(const MeasurementDatabase&) = delete;

  // Interning: id_of() assigns (or returns) the dense id for a path;
  // find() never assigns and reports kInvalidPathId for unknown paths.
  PathId id_of(const Path& path);
  PathId find(const Path& path) const;
  const Path& path_of(PathId id) const { return *paths_[id]; }
  std::size_t interned_paths() const { return paths_.size(); }

  // Hot API, keyed by interned id.
  void record(PathId id, Metric metric, const MetricValue& value);
  std::optional<Measurement> current(PathId id, Metric metric,
                                     sim::TimePoint now,
                                     sim::Duration max_age) const;
  std::optional<Measurement> last_known(PathId id, Metric metric) const;
  std::optional<sim::Duration> senescence(PathId id, Metric metric,
                                          sim::TimePoint now) const;
  const util::RingBuffer<Measurement>* history(PathId id, Metric metric) const;

  // Time-range query over the tiered store (DESIGN.md §13): aggregates over
  // [t0, t1] at the coarsest tier satisfying `resolution` (<= 0 requests the
  // finest retained data), stitched across tier boundaries, with evicted
  // sub-ranges reported as explicit gaps. Empty result when tiers are
  // disabled or the series was never recorded.
  TierQueryResult query(PathId id, Metric metric, sim::TimePoint t0,
                        sim::TimePoint t1, sim::Duration resolution) const {
    return store_.query(static_cast<std::uint32_t>(slot(id, metric)),
                        t0.nanos(), t1.nanos(), resolution.nanos());
  }
  TierQueryResult query(const Path& path, Metric metric, sim::TimePoint t0,
                        sim::TimePoint t1, sim::Duration resolution) const {
    const PathId id = find(path);
    if (id == kInvalidPathId) return {};
    return query(id, metric, t0, t1, resolution);
  }
  // The storage engine itself, for stats/tier introspection.
  const TieredStore& tiered() const { return store_; }
  TieredStore& tiered() { return store_; }

  // Federation surfaces (DESIGN.md §14). These split record()'s two halves
  // so a parent can merge a child's stream without double-counting:
  //
  // merge_points feeds already-aggregated tier points into the tiered store
  // ONLY — the ring/last-known fast path is untouched, so replayed pages
  // can never duplicate what deltas already delivered.
  void merge_points(PathId id, Metric metric, const TierPoint* points,
                    std::size_t n) {
    store_.import_points(static_cast<std::uint32_t>(slot(id, metric)), points,
                         n);
  }
  // record_current updates the ring/last-known fast path ONLY — the store
  // never sees it, so a delta and the page that later summarizes the same
  // sample land in disjoint structures. Senescence and current/last_known
  // behave exactly as for locally recorded samples.
  void record_current(PathId id, Metric metric, const MetricValue& value);

  // Called at the end of every record() with the sample just written — the
  // child side of federation taps its outbound delta stream here. Null (the
  // default) costs one branch; the hook must not reenter the database.
  using RecordHook =
      std::function<void(PathId, Metric, const MetricValue&)>;
  void set_record_hook(RecordHook hook) { record_hook_ = std::move(hook); }

  // Inverse of slot(): which (path, metric) a dense series index refers to.
  PathId slot_path(std::size_t series_slot) const {
    return static_cast<PathId>(series_slot / kMetricCount);
  }
  Metric slot_metric(std::size_t series_slot) const {
    return static_cast<Metric>(series_slot % kMetricCount);
  }
  std::size_t series_slot(PathId id, Metric metric) const {
    return slot(id, metric);
  }

  // Registers "<prefix>.<path>.<metric>.retention_horizon_ns" gauges for
  // every series currently tracked by the tiered store (ROADMAP follow-on:
  // per-series retention horizons in the SelfMib). Value is the oldest
  // retained timestamp, -1 while the series holds no tiered data.
  void publish_retention_horizons(obs::Registry& registry,
                                  const std::string& prefix);

  // Path-keyed convenience wrappers. record() interns; the read-only calls
  // return "never sampled" for paths that were never recorded.
  void record(const Path& path, Metric metric, const MetricValue& value) {
    record(id_of(path), metric, value);
  }
  // Current-value semantics: the newest sample iff it is younger than
  // max_age (and was a successful measurement).
  std::optional<Measurement> current(const Path& path, Metric metric,
                                     sim::TimePoint now,
                                     sim::Duration max_age) const {
    const PathId id = find(path);
    if (id == kInvalidPathId) return std::nullopt;
    return current(id, metric, now, max_age);
  }
  // Last-known-value semantics: the newest *successful* sample regardless
  // of age — what the manager falls back to when sensors go quiet.
  std::optional<Measurement> last_known(const Path& path,
                                        Metric metric) const {
    const PathId id = find(path);
    if (id == kInvalidPathId) return std::nullopt;
    return last_known(id, metric);
  }
  // Age of the newest sample (successful or not); nullopt if never sampled.
  std::optional<sim::Duration> senescence(const Path& path, Metric metric,
                                          sim::TimePoint now) const {
    const PathId id = find(path);
    if (id == kInvalidPathId) return std::nullopt;
    return senescence(id, metric, now);
  }
  const util::RingBuffer<Measurement>* history(const Path& path,
                                               Metric metric) const {
    const PathId id = find(path);
    if (id == kInvalidPathId) return nullptr;
    return history(id, metric);
  }

  std::uint64_t records_written() const { return records_written_; }
  // Number of (path, metric) series holding at least one sample. (Interning
  // alone reserves slots but does not create a tracked series.)
  std::size_t tracked_series() const { return tracked_series_; }

  // Self-observability (DESIGN.md §10): the fidelity half of the paper's
  // evaluation, measured. "<prefix>.sample_interval_ns" observes, at record
  // time, the gap between consecutive samples of the same (path, metric)
  // series — the floor any senescence bound (C·S·T) must cover;
  // "<prefix>.age_at_read_ns" observes the age of the newest sample each
  // time a reader consults the series — the senescence the manager actually
  // experienced. Detached (default) record() pays one null check.
  void attach_observability(obs::Registry& registry,
                            std::string prefix = "db");
  void detach_observability();

 private:
  struct Series {
    util::RingBuffer<Measurement> history;
    std::optional<Measurement> last_valid;
    explicit Series(std::size_t depth) : history(depth) {}
  };

  std::size_t slot(PathId id, Metric metric) const {
    return static_cast<std::size_t>(id) * kMetricCount +
           static_cast<std::size_t>(metric);
  }

  std::size_t history_depth_;
  TieredStore store_;
  // Keyed on Path's precomputed structural hash: the steady-state interning
  // lookup is a bucket probe plus one equality check, no string re-hashing.
  std::unordered_map<Path, PathId> ids_;
  std::vector<const Path*> paths_;  // id -> map key (node-stable)
  std::vector<Series> series_;      // interned_paths() * kMetricCount slots
  std::size_t tracked_series_ = 0;
  std::uint64_t records_written_ = 0;

  // Observability handles (null while detached; owned by the registry).
  // Histograms are mutated from const readers: observing a read does not
  // change the database's logical state.
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  obs::Histogram* obs_interval_ = nullptr;
  obs::Histogram* obs_age_read_ = nullptr;
  obs::Registry* horizon_registry_ = nullptr;
  std::string horizon_prefix_;
  RecordHook record_hook_;
};

}  // namespace netmon::core
