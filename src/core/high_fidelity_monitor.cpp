#include "core/high_fidelity_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::core {

void SinkSet::install(net::Host& host, std::uint16_t nttcp_port,
                      std::uint16_t echo_port) {
  sinks_.push_back(std::make_unique<nttcp::NttcpSink>(host, nttcp_port));
  responders_.push_back(
      std::make_unique<nttcp::EchoResponder>(host, echo_port));
}

NttcpSensor::NttcpSensor(net::Network& network,
                         nttcp::NttcpConfig probe_config,
                         nttcp::ReachabilityProbe::Config reach_config)
    : network_(network),
      probe_config_(probe_config),
      reach_config_(reach_config) {}

bool NttcpSensor::supports(Metric metric) const {
  (void)metric;
  return true;  // the application-layer tool measures all three accurately
}

void NttcpSensor::measure(const Path& path, Metric metric, Done done) {
  auto acc = std::make_shared<LegAccumulator>();
  measure_leg(path, metric, 0, std::move(acc), std::move(done));
}

void NttcpSensor::measure_leg(const Path& path, Metric metric,
                              std::size_t leg_index,
                              std::shared_ptr<LegAccumulator> acc,
                              Done done) {
  auto [from, to] = path.leg(leg_index);
  net::Host* source = network_.host_of(from.host);
  if (source == nullptr || !source->up()) {
    done(MetricValue::failed(network_.simulator().now()));
    return;
  }
  const bool last_leg = leg_index + 1 >= path.leg_count();
  const std::uint64_t token = next_token_++;

  if (metric == Metric::kReachability) {
    auto probe = std::make_unique<nttcp::ReachabilityProbe>(
        *source, to.host, reach_config_,
        [this, path, metric, leg_index, acc, done, last_leg,
         token](const nttcp::ReachabilityResult& r) {
          cleanup_later(token);
          if (!r.reachable) {
            done(MetricValue::of(0.0, network_.simulator().now()));
            return;
          }
          if (last_leg) {
            done(MetricValue::of(1.0, network_.simulator().now()));
          } else {
            measure_leg(path, metric, leg_index + 1, acc, done);
          }
        });
    ++probes_launched_;
    probe->start();
    active_reach_.emplace(token, std::move(probe));
    return;
  }

  auto probe = std::make_unique<nttcp::NttcpProbe>(
      *source, to.host, probe_config_,
      [this, path, metric, leg_index, acc, done, last_leg,
       token](const nttcp::NttcpResult& r) {
        cleanup_later(token);
        probe_bytes_on_wire_ += r.probe_bytes_on_wire;
        if (!r.completed) {
          done(MetricValue::failed(network_.simulator().now()));
          return;
        }
        if (metric == Metric::kThroughput) {
          if (!acc->have_throughput || r.throughput_bps < acc->min_throughput_bps) {
            acc->have_throughput = true;
            acc->min_throughput_bps = r.throughput_bps;
          }
        } else {  // one-way latency
          acc->latency_sum_s += r.latency.empty() ? 0.0 : r.latency.median();
        }
        if (!last_leg) {
          measure_leg(path, metric, leg_index + 1, acc, done);
          return;
        }
        const double value = metric == Metric::kThroughput
                                 ? acc->min_throughput_bps
                                 : acc->latency_sum_s;
        done(MetricValue::of(value, network_.simulator().now()));
      });
  ++probes_launched_;
  probe->start();
  active_probes_.emplace(token, std::move(probe));
}

void NttcpSensor::cleanup_later(std::uint64_t token) {
  // Probes finish from inside their own callbacks; destroy them on a fresh
  // event so no object deletes itself mid-call.
  network_.simulator().schedule_in(sim::Duration::ns(0), [this, token] {
    active_probes_.erase(token);
    active_reach_.erase(token);
  });
}

SensorDirector::ProbeProfiler make_route_profiler(
    net::Network& network, const nttcp::NttcpConfig& probe,
    double reach_offered_bps) {
  const double probe_bps = nttcp::NttcpProbe::peak_load_bps(probe);
  struct PathFootprint {
    std::vector<LinkKey> keys;
    double hop_multiplier = 1.0;
  };
  auto cache = std::make_shared<std::unordered_map<Path, PathFootprint>>();
  return [&network, probe_bps, reach_offered_bps,
          cache](const Path& path, Metric metric) {
    ProbeProfile profile;
    auto it = cache->find(path);
    if (it == cache->end()) {
      PathFootprint fp;
      auto add_direction = [&fp, &network](net::IpAddr a, net::IpAddr b) {
        for (const net::Medium* medium : network.route_media(a, b)) {
          const auto key = static_cast<LinkKey>(
              reinterpret_cast<std::uintptr_t>(medium));
          if (std::find(fp.keys.begin(), fp.keys.end(), key) ==
              fp.keys.end()) {
            fp.keys.push_back(key);
          }
        }
      };
      // Legs are measured sequentially, so the concurrent load is the worst
      // single leg's. octets_by_class() charges the burst once per L3 hop
      // (routers re-inject it), so the declared load — which the budget B
      // and the IntrusivenessMeter it is checked against both use — scales
      // by the data direction's hop count.
      for (std::size_t leg = 0; leg < path.leg_count(); ++leg) {
        auto [from, to] = path.leg(leg);
        add_direction(from.host, to.host);
        add_direction(to.host, from.host);
        const std::size_t hops = network.route_hops(from.host, to.host);
        fp.hop_multiplier =
            std::max(fp.hop_multiplier, static_cast<double>(hops));
      }
      it = cache->emplace(path, std::move(fp)).first;
    }
    const double data_bps =
        metric == Metric::kReachability ? reach_offered_bps : probe_bps;
    profile.offered_bps = data_bps * it->second.hop_multiplier;
    profile.footprint = it->second.keys;
    return profile;
  };
}

HighFidelityMonitor::HighFidelityMonitor(net::Network& network, Config config)
    : sensor_(network, config.probe, config.reach),
      director_(network.simulator(), config.max_concurrent,
                config.supervision, config.history_depth,
                std::move(config.storage)) {
  director_.register_sensor(Metric::kThroughput, &sensor_);
  director_.register_sensor(Metric::kOneWayLatency, &sensor_);
  director_.register_sensor(Metric::kReachability, &sensor_);
  SchedulerConfig scheduling = config.scheduling;
  if (scheduling.lanes == 1) scheduling.lanes = config.max_concurrent;
  director_.set_scheduling(scheduling);
  if (config.auto_profile &&
      (scheduling.budget_bps > 0 || scheduling.link_disjoint)) {
    director_.set_probe_profiler(make_route_profiler(network, config.probe));
  }
}

}  // namespace netmon::core
