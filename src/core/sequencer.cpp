#include "core/sequencer.hpp"

#include <stdexcept>

namespace netmon::core {

// Shared between every copy of one task's Done callback: the first
// invocation releases the slot, later ones are counted no-ops, and the
// destructor of the last copy releases the slot if nobody ever called it.
struct TestSequencer::DoneState {
  TestSequencer* seq;
  std::weak_ptr<int> guard;
  std::int64_t launched_ns = 0;
  bool called = false;

  explicit DoneState(TestSequencer* s) : seq(s), guard(s->liveness_) {}
  DoneState(const DoneState&) = delete;
  DoneState& operator=(const DoneState&) = delete;

  void invoke() {
    if (guard.expired()) return;  // sequencer destroyed first
    if (called) {
      ++seq->double_dones_;
      return;
    }
    called = true;
    seq->finish(/*abandoned=*/false, launched_ns);
  }

  ~DoneState() {
    if (called || guard.expired()) return;
    called = true;
    seq->finish(/*abandoned=*/true, launched_ns);
  }
};

TestSequencer::TestSequencer(std::size_t max_concurrent)
    : max_concurrent_(max_concurrent) {
  if (max_concurrent_ == 0) {
    throw std::invalid_argument("TestSequencer: max_concurrent must be >= 1");
  }
}

TestSequencer::~TestSequencer() { detach_observability(); }

void TestSequencer::set_max_concurrent(std::size_t max_concurrent) {
  if (max_concurrent == 0) {
    throw std::invalid_argument("TestSequencer: max_concurrent must be >= 1");
  }
  max_concurrent_ = max_concurrent;
  pump();
}

void TestSequencer::enqueue(Task task) {
  queue_.push_back(Entry{std::move(task), obs_now()});
  pump();
}

void TestSequencer::finish(bool abandoned, std::int64_t launched_ns) {
  // Slot-release monotonicity contract: every release must match exactly
  // one launch. DoneState guarantees this today; if a refactor ever breaks
  // it, corrupting the concurrency bound silently is the worst outcome, so
  // fail loudly instead.
  if (in_flight_ == 0) {
    throw std::logic_error(
        "TestSequencer::finish: slot released with none in flight");
  }
  --in_flight_;
  if (abandoned) {
    ++abandoned_;
  } else {
    ++completed_;
  }
  if constexpr (obs::kCompiledIn) {
    if (obs_slot_hold_ != nullptr && obs_now_ns_) {
      obs_slot_hold_->observe(
          static_cast<double>(obs_now() - launched_ns));
    }
  }
  pump();
}

void TestSequencer::pump() {
  // Trampoline: a task completing (or being abandoned) synchronously calls
  // finish() -> pump() re-entrantly; the inner call returns immediately and
  // the outer loop picks up the freed slot, so a long queue of synchronous
  // tasks drains iteratively instead of one stack frame per task.
  if (pumping_) return;
  pumping_ = true;
  while (in_flight_ < max_concurrent_ && !queue_.empty()) {
    Entry entry = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    ++launched_;
    auto state = std::make_shared<DoneState>(this);
    if constexpr (obs::kCompiledIn) {
      if (obs_slot_wait_ != nullptr && obs_now_ns_) {
        const std::int64_t now = obs_now();
        state->launched_ns = now;
        obs_slot_wait_->observe(static_cast<double>(now - entry.enqueued_ns));
      }
    }
    // The Done callback may fire synchronously or much later; both are fine.
    entry.fn([state] { state->invoke(); });
  }
  pumping_ = false;
}

void TestSequencer::check_consistency() const {
  if (completed_ + abandoned_ + in_flight_ != launched_) {
    throw std::logic_error(
        "TestSequencer: slot accounting out of balance (completed + "
        "abandoned + in_flight != launched)");
  }
}

void TestSequencer::attach_observability(obs::Registry& registry,
                                         std::string prefix,
                                         std::function<std::int64_t()> now_ns) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    (void)now_ns;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  obs_now_ns_ = std::move(now_ns);
  registry.gauge_fn(obs_prefix_ + ".in_flight",
                    [this] { return static_cast<double>(in_flight_); });
  registry.gauge_fn(obs_prefix_ + ".queued",
                    [this] { return static_cast<double>(queue_.size()); });
  registry.gauge_fn(obs_prefix_ + ".launched",
                    [this] { return static_cast<double>(launched_); });
  registry.gauge_fn(obs_prefix_ + ".completed",
                    [this] { return static_cast<double>(completed_); });
  registry.gauge_fn(obs_prefix_ + ".double_dones",
                    [this] { return static_cast<double>(double_dones_); });
  registry.gauge_fn(obs_prefix_ + ".abandoned",
                    [this] { return static_cast<double>(abandoned_); });
  if (obs_now_ns_) {
    obs_slot_wait_ = &registry.histogram(obs_prefix_ + ".slot_wait_ns");
    obs_slot_hold_ = &registry.histogram(obs_prefix_ + ".slot_hold_ns");
  }
}

void TestSequencer::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
  obs_now_ns_ = nullptr;
  obs_slot_wait_ = nullptr;
  obs_slot_hold_ = nullptr;
}

}  // namespace netmon::core
