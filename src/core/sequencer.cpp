#include "core/sequencer.hpp"

#include <stdexcept>

namespace netmon::core {

TestSequencer::TestSequencer(std::size_t max_concurrent)
    : max_concurrent_(max_concurrent) {
  if (max_concurrent_ == 0) {
    throw std::invalid_argument("TestSequencer: max_concurrent must be >= 1");
  }
}

void TestSequencer::set_max_concurrent(std::size_t max_concurrent) {
  if (max_concurrent == 0) {
    throw std::invalid_argument("TestSequencer: max_concurrent must be >= 1");
  }
  max_concurrent_ = max_concurrent;
  pump();
}

void TestSequencer::enqueue(Task task) {
  queue_.push_back(std::move(task));
  pump();
}

void TestSequencer::pump() {
  while (in_flight_ < max_concurrent_ && !queue_.empty()) {
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    // The Done callback may fire synchronously or much later; both are fine.
    task([this] {
      --in_flight_;
      ++completed_;
      pump();
    });
  }
}

}  // namespace netmon::core
