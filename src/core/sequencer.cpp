#include "core/sequencer.hpp"

#include <stdexcept>

namespace netmon::core {

// Shared between every copy of one task's Done callback: the first
// invocation releases the slot, later ones are counted no-ops, and the
// destructor of the last copy releases the slot if nobody ever called it.
struct TestSequencer::DoneState {
  TestSequencer* seq;
  std::weak_ptr<int> guard;
  bool called = false;

  explicit DoneState(TestSequencer* s) : seq(s), guard(s->liveness_) {}
  DoneState(const DoneState&) = delete;
  DoneState& operator=(const DoneState&) = delete;

  void invoke() {
    if (guard.expired()) return;  // sequencer destroyed first
    if (called) {
      ++seq->double_dones_;
      return;
    }
    called = true;
    seq->finish(/*abandoned=*/false);
  }

  ~DoneState() {
    if (called || guard.expired()) return;
    called = true;
    seq->finish(/*abandoned=*/true);
  }
};

TestSequencer::TestSequencer(std::size_t max_concurrent)
    : max_concurrent_(max_concurrent) {
  if (max_concurrent_ == 0) {
    throw std::invalid_argument("TestSequencer: max_concurrent must be >= 1");
  }
}

void TestSequencer::set_max_concurrent(std::size_t max_concurrent) {
  if (max_concurrent == 0) {
    throw std::invalid_argument("TestSequencer: max_concurrent must be >= 1");
  }
  max_concurrent_ = max_concurrent;
  pump();
}

void TestSequencer::enqueue(Task task) {
  queue_.push_back(std::move(task));
  pump();
}

void TestSequencer::finish(bool abandoned) {
  --in_flight_;
  if (abandoned) {
    ++abandoned_;
  } else {
    ++completed_;
  }
  pump();
}

void TestSequencer::pump() {
  // Trampoline: a task completing (or being abandoned) synchronously calls
  // finish() -> pump() re-entrantly; the inner call returns immediately and
  // the outer loop picks up the freed slot, so a long queue of synchronous
  // tasks drains iteratively instead of one stack frame per task.
  if (pumping_) return;
  pumping_ = true;
  while (in_flight_ < max_concurrent_ && !queue_.empty()) {
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    auto state = std::make_shared<DoneState>(this);
    // The Done callback may fire synchronously or much later; both are fine.
    task([state] { state->invoke(); });
  }
  pumping_ = false;
}

}  // namespace netmon::core
