#include "core/hybrid_monitor.hpp"

#include "util/logging.hpp"

namespace netmon::core {

namespace {
ScalableMonitor::Config background_config(const HybridMonitor::Config& c) {
  ScalableMonitor::Config out;
  out.manager = c.manager;
  out.sensor = c.snmp;
  out.max_concurrent = c.background_concurrency;
  out.supervision = c.supervision;
  return out;
}
}  // namespace

HybridMonitor::HybridMonitor(net::Network& network, net::Host& station,
                             Config config)
    : network_(network),
      config_(config),
      background_(network, station, background_config(config)),
      targeted_sensor_(network, config.probe) {
  background_.set_trap_callback([this](const snmp::TrapEvent& event) {
    if (event.trap_oid != rmon::rmon_mib::kRisingAlarmTrap) return;
    ++escalations_;
    for (const PathRequest& pr : paths_) escalate(pr.path);
  });
}

void HybridMonitor::start(std::vector<PathRequest> paths,
                          SensorDirector::TupleCallback on_tuple) {
  paths_ = std::move(paths);
  on_tuple_ = std::move(on_tuple);
  MonitorRequest request;
  request.paths = paths_;
  request.mode = MonitorRequest::Mode::kPeriodic;
  request.period = config_.background_period;
  request.reporting = MonitorRequest::Reporting::kAsynchronous;
  // The hybrid applies its own fidelity-authority rule before recording.
  request.record_to_database = false;
  background_request_ = background_.director().submit(
      request, [this](const PathMetricTuple& t) { on_background_tuple(t); });
}

void HybridMonitor::stop() {
  if (background_request_ != 0) {
    background_.director().cancel(background_request_);
    background_request_ = 0;
  }
}

void HybridMonitor::on_background_tuple(const PathMetricTuple& tuple) {
  // Record unless a fresher high-fidelity sample holds authority for this
  // (path, metric) series.
  auto it = targeted_recorded_.find({tuple.path, tuple.metric});
  const bool targeted_fresh =
      it != targeted_recorded_.end() &&
      network_.simulator().now() - it->second < config_.targeted_authority;
  if (!targeted_fresh) {
    background_.database().record(tuple.path, tuple.metric, tuple.value);
  }
  if (on_tuple_) on_tuple_(tuple);

  const bool reach_lost = tuple.metric == Metric::kReachability &&
                          tuple.value.valid && tuple.value.value < 0.5;
  const bool throughput_low =
      tuple.metric == Metric::kThroughput && tuple.value.valid &&
      config_.throughput_alert_bps > 0.0 &&
      tuple.value.value < config_.throughput_alert_bps;
  const bool failed = !tuple.value.valid;
  if (reach_lost || throughput_low || failed) {
    ++escalations_;
    escalate(tuple.path);
  }
}

bool HybridMonitor::cooldown_ok(const Path& path) {
  const auto now = network_.simulator().now();
  auto it = last_targeted_.find(path);
  if (it != last_targeted_.end() &&
      now - it->second < config_.targeted_cooldown) {
    return false;
  }
  last_targeted_[path] = now;
  return true;
}

void HybridMonitor::escalate(const Path& path) {
  if (!cooldown_ok(path)) return;
  probe_now(path, Metric::kReachability);
  probe_now(path, Metric::kThroughput);
}

void HybridMonitor::probe_now(const Path& path, Metric metric) {
  targeted_sequencer_.enqueue([this, path, metric](TestSequencer::Done done) {
    targeted_sensor_.measure(
        path, metric, [this, path, metric, done](MetricValue value) {
          ++targeted_done_;
          background_.database().record(path, metric, value);
          if (value.valid) {
            targeted_recorded_[{path, metric}] = network_.simulator().now();
          }
          if (on_tuple_) on_tuple_(PathMetricTuple{path, metric, value});
          done();
        });
  });
}

HybridMonitor::~HybridMonitor() { detach_observability(); }

void HybridMonitor::attach_observability(obs::Registry& registry,
                                         std::string prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  registry.gauge_fn(obs_prefix_ + ".escalations", [this] {
    return static_cast<double>(escalations_);
  });
  registry.gauge_fn(obs_prefix_ + ".targeted_measurements", [this] {
    return static_cast<double>(targeted_done_);
  });
  background_.director().attach_observability(registry,
                                              obs_prefix_ + ".background");
  targeted_sequencer_.attach_observability(
      registry, obs_prefix_ + ".targeted",
      [this] { return network_.simulator().now().nanos(); });
}

void HybridMonitor::detach_observability() {
  if (obs_registry_ == nullptr) return;
  background_.director().detach_observability();
  targeted_sequencer_.detach_observability();
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
}

rmon::Alarm& HybridMonitor::arm_utilization_alarm(rmon::Probe& probe,
                                                  double rising,
                                                  double falling,
                                                  sim::Duration interval) {
  return background_.arm_utilization_alarm(probe, rising, falling, interval);
}

}  // namespace netmon::core
