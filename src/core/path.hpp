#pragma once

// The dynamic-path abstraction (paper §3, after Welch [2]): instead of
// monitoring the communication infrastructure as a whole, the resource
// manager names application-level paths — ordered lists of application
// processes — and the metrics to collect on each.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace netmon::core {

struct ProcessEndpoint {
  std::string process;  // e.g. "rtds-server"
  net::IpAddr host;
  std::uint16_t port = 0;

  auto operator<=>(const ProcessEndpoint&) const = default;
  std::string to_string() const;
};

class Path {
 public:
  Path() = default;
  // Requires at least two endpoints.
  explicit Path(std::vector<ProcessEndpoint> endpoints);
  Path(ProcessEndpoint from, ProcessEndpoint to);

  const std::vector<ProcessEndpoint>& endpoints() const { return endpoints_; }
  const ProcessEndpoint& source() const { return endpoints_.front(); }
  const ProcessEndpoint& destination() const { return endpoints_.back(); }
  std::size_t leg_count() const { return endpoints_.size() - 1; }
  std::pair<const ProcessEndpoint&, const ProcessEndpoint&> leg(
      std::size_t i) const;

  std::string to_string() const;  // "a@10.0.0.1 -> b@10.0.0.2"

  // Structural hash, computed once at construction (endpoints are immutable
  // afterwards). Lets hash containers key on Path without re-hashing the
  // endpoint strings per lookup — the measurement database's interning step
  // sits on the per-sample hot path.
  std::size_t hash() const { return hash_; }

  bool operator==(const Path& o) const {
    return hash_ == o.hash_ && endpoints_ == o.endpoints_;
  }
  std::strong_ordering operator<=>(const Path& o) const {
    return endpoints_ <=> o.endpoints_;
  }

 private:
  std::vector<ProcessEndpoint> endpoints_;
  std::size_t hash_ = 0;
};

enum class Metric : std::uint8_t {
  kThroughput,     // end-to-end application-level throughput, bits/second
  kOneWayLatency,  // seconds
  kReachability,   // 1.0 reachable / 0.0 not
};
constexpr std::size_t kMetricCount = 3;
const char* to_string(Metric metric);

// Provenance of a sample under supervision (DESIGN.md §9): the resource
// manager can weigh a first-attempt reading differently from one that needed
// retries, came from a lower-fidelity fallback sensor, or is a re-report of
// the last known value after the whole sensor chain was exhausted.
enum class SampleQuality : std::uint8_t {
  kFresh,     // first attempt on the primary sensor succeeded
  kRetried,   // succeeded after >= 1 retry of the same sensor
  kFallback,  // succeeded via a fallback sensor in the chain
  kStale,     // supervision exhausted; last known value re-reported
};
const char* to_string(SampleQuality quality);

struct MetricValue {
  double value = 0.0;
  bool valid = false;          // false: the measurement itself failed
  sim::TimePoint measured_at;  // true simulation time of completion
  SampleQuality quality = SampleQuality::kFresh;

  static MetricValue of(double v, sim::TimePoint at) {
    return MetricValue{v, true, at};
  }
  static MetricValue failed(sim::TimePoint at) {
    return MetricValue{0.0, false, at};
  }
};

// The (path, metric) tuple reported to the resource manager (paper §4.1).
struct PathMetricTuple {
  Path path;
  Metric metric = Metric::kThroughput;
  MetricValue value;
};

}  // namespace netmon::core

template <>
struct std::hash<netmon::core::Path> {
  std::size_t operator()(const netmon::core::Path& p) const {
    return p.hash();
  }
};
