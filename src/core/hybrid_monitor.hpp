#pragma once

// Hybrid monitor (paper §7, "a promising approach appears to be a hybrid
// implementation"): cheap, scalable SNMP polling in the background, with
// high-fidelity NTTCP probes triggered on demand — when an RMON alarm trap
// fires or when a background sample looks anomalous (reachability lost or
// throughput below requirement). The targeted probes stay serialized
// through their own sequencer, so the monitoring overhead remains bounded.

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/high_fidelity_monitor.hpp"
#include "core/scalable_monitor.hpp"

namespace netmon::core {

class HybridMonitor {
 public:
  struct Config {
    nttcp::NttcpConfig probe;              // targeted high-fidelity probe
    SnmpSensor::Config snmp;               // background sensor
    snmp::Manager::Config manager;
    sim::Duration background_period = sim::Duration::sec(5);
    // Background anomaly rule that escalates to a targeted probe.
    double throughput_alert_bps = 0.0;     // <= 0 disables
    // Minimum spacing between targeted probes of the same path.
    sim::Duration targeted_cooldown = sim::Duration::sec(2);
    // While a targeted (high-fidelity) record is younger than this, lower-
    // fidelity background samples do not overwrite it in the database.
    sim::Duration targeted_authority = sim::Duration::sec(30);
    std::size_t background_concurrency = 8;
    // Deadline/retry/breaker supervision for the background director; all
    // off by default (identical to the unsupervised monitor).
    SupervisionConfig supervision;
  };

  HybridMonitor(net::Network& network, net::Host& station, Config config);

  // Starts background monitoring of the given paths; every tuple —
  // background or targeted — flows to `on_tuple`, and everything lands in
  // one measurement database. Targeted tuples carry NTTCP fidelity.
  void start(std::vector<PathRequest> paths,
             SensorDirector::TupleCallback on_tuple);
  void stop();

  // Escalate now: run a high-fidelity measurement of this path.
  void probe_now(const Path& path, Metric metric);

  // Arm an RMON utilization alarm whose rising trap escalates every
  // monitored path crossing that probe's segment.
  rmon::Alarm& arm_utilization_alarm(rmon::Probe& probe, double rising,
                                     double falling, sim::Duration interval);

  MeasurementDatabase& database() { return background_.database(); }
  ScalableMonitor& background() { return background_; }
  NttcpSensor& targeted_sensor() { return targeted_sensor_; }

  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t targeted_measurements() const { return targeted_done_; }

  // Self-observability (DESIGN.md §10): escalation/targeted counters under
  // "<prefix>.", the background director under "<prefix>.background", the
  // targeted sequencer under "<prefix>.targeted" (slot waits measured on
  // the simulator clock).
  void attach_observability(obs::Registry& registry,
                            std::string prefix = "hybrid");
  void detach_observability();
  ~HybridMonitor();

 private:
  void on_background_tuple(const PathMetricTuple& tuple);
  void escalate(const Path& path);
  bool cooldown_ok(const Path& path);

  net::Network& network_;
  Config config_;
  ScalableMonitor background_;
  NttcpSensor targeted_sensor_;
  TestSequencer targeted_sequencer_{1};
  SensorDirector::TupleCallback on_tuple_;
  std::vector<PathRequest> paths_;
  SensorDirector::RequestId background_request_ = 0;
  std::map<Path, sim::TimePoint> last_targeted_;
  std::map<std::pair<Path, Metric>, sim::TimePoint> targeted_recorded_;
  std::uint64_t escalations_ = 0;
  std::uint64_t targeted_done_ = 0;
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
};

}  // namespace netmon::core
