#pragma once

// The sensor director (paper §4.1, Figure 2): receives requests from the
// resource manager as lists of (path, metrics), initiates collection via
// network sensors (through the test sequencer), records results in the
// measurement database, and reports (path, metric) tuples back either
// synchronously (batched per round) or asynchronously (per measurement).
//
// Supervision layer (DESIGN.md §9): every measurement runs under an optional
// deadline (a sensor that never invokes `done` is timed out and its
// sequencer slot reclaimed; a late completion degrades to a counted no-op),
// failed or timed-out attempts are retried with capped exponential backoff
// plus deterministic jitter, a per-(sensor, path) circuit breaker trips after
// consecutive failures (with half-open probing to recover), and a registered
// fallback sensor chain (e.g. NTTCP -> SNMP, the paper's §7 hybrid) degrades
// fidelity gracefully. Every sample carries a SampleQuality flag. All
// supervision features default OFF, in which case behavior (and event
// scheduling) is identical to the unsupervised director.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/measurement_db.hpp"
#include "core/path.hpp"
#include "core/sequencer.hpp"
#include "sim/simulator.hpp"

namespace netmon::core {

// A network sensor collects one metric sample for one path (paper §4.1:
// "network sensors are responsible for collecting network performance
// data"). Implementations exist at different instrumentation points.
class NetworkSensor {
 public:
  using Done = std::function<void(MetricValue)>;

  virtual ~NetworkSensor() = default;
  virtual std::string name() const = 0;
  virtual bool supports(Metric metric) const = 0;
  // Must invoke `done` exactly once (possibly with a failed MetricValue).
  virtual void measure(const Path& path, Metric metric, Done done) = 0;
};

struct PathRequest {
  Path path;
  std::vector<Metric> metrics;
  // Lane-scheduler admission class (DESIGN.md §11): paths the resource
  // manager is actively deciding about go kCritical; bulk matrix coverage
  // can ride kBackground. Ignored by the default FIFO configuration.
  ProbeClass priority = ProbeClass::kNormal;
};

struct MonitorRequest {
  std::vector<PathRequest> paths;

  enum class Mode {
    kOnce,        // one round of measurements
    kContinuous,  // re-run each round as soon as the previous finishes
    kPeriodic,    // rounds start every `period`
  };
  Mode mode = Mode::kOnce;
  sim::Duration period = sim::Duration::sec(5);

  enum class Reporting {
    kAsynchronous,  // each tuple pushed as its measurement completes
    kSynchronous,   // all tuples of a round delivered together at round end
  };
  Reporting reporting = Reporting::kAsynchronous;

  bool record_to_database = true;
};

// Supervision of the measurement pipeline. The defaults disable everything,
// reproducing the unsupervised director bit for bit.
struct SupervisionConfig {
  // Per-attempt deadline; a sensor that has not completed by then is timed
  // out, its sequencer slot reclaimed, and the attempt counted failed.
  // Zero disables the deadline.
  sim::Duration deadline = sim::Duration::ns(0);

  // Retries of a failed/timed-out attempt against the *same* sensor, with
  // capped exponential backoff and deterministic jitter derived from
  // (path, metric, attempt). Zero disables retries.
  int max_retries = 0;
  sim::Duration backoff_base = sim::Duration::ms(100);
  sim::Duration backoff_max = sim::Duration::sec(5);

  // Circuit breaker: after this many consecutive failures a sensor is
  // skipped (the chain falls through to the next sensor) until
  // `breaker_open_for` has elapsed; then a single half-open probe is
  // admitted, and its outcome closes or re-opens the breaker.
  // Scoped per (sensor, path) — the usual per-endpoint outlier rule — so a
  // dead target cannot poison a sensor's standing on healthy paths, while a
  // sensor-wide pathology (hang, crash) still trips every path's breaker
  // within `breaker_threshold` attempts each.
  // Zero disables the breaker.
  int breaker_threshold = 0;
  sim::Duration breaker_open_for = sim::Duration::sec(10);

  // When the whole chain is exhausted, re-report the last known good value
  // tagged SampleQuality::kStale (the database still records the failure).
  bool report_stale_on_exhaustion = false;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState state);

// Per-(sensor, path) health as seen by the supervision layer.
struct SensorHealth {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  sim::TimePoint open_until{};
  bool probe_in_flight = false;  // half-open admits one probe at a time
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;  // includes timeouts
  std::uint64_t trips = 0;     // closed/half-open -> open transitions
};

struct DirectorStats {
  std::uint64_t requests_accepted = 0;
  std::uint64_t measurements_started = 0;
  std::uint64_t measurements_completed = 0;
  std::uint64_t measurements_failed = 0;  // completed with valid == false
  std::uint64_t tuples_reported = 0;
  std::uint64_t rounds_completed = 0;
  // Supervision counters.
  std::uint64_t timeouts = 0;          // attempts killed by the deadline
  std::uint64_t late_completions = 0;  // done() after timeout: counted no-op
  std::uint64_t retries = 0;           // backoff re-attempts scheduled
  std::uint64_t fallbacks = 0;         // chain advanced to a fallback sensor
  std::uint64_t breaker_skips = 0;     // sensors skipped with an open breaker
  std::uint64_t exhausted = 0;         // jobs that ran out of sensors
  std::uint64_t stale_reports = 0;     // last-known re-reports on exhaustion
};

class SensorDirector {
 public:
  using TupleCallback = std::function<void(const PathMetricTuple&)>;
  using RoundCallback =
      std::function<void(const std::vector<PathMetricTuple>&)>;
  using RequestId = std::uint64_t;

  SensorDirector(sim::Simulator& sim, std::size_t max_concurrent = 1);
  SensorDirector(sim::Simulator& sim, std::size_t max_concurrent,
                 SupervisionConfig supervision,
                 std::size_t history_depth = 64,
                 TieredStorageConfig storage = {});
  ~SensorDirector();

  // Sensor registration; the last *primary* registered for a metric wins
  // (and clears that metric's fallback chain). register_fallback appends to
  // the chain; fallbacks are tried in registration order after the primary.
  // Sensors are not owned: every registered sensor must outlive the
  // director (destroy the director first — see HighFidelityMonitor).
  void register_sensor(Metric metric, NetworkSensor* sensor);
  void register_fallback(Metric metric, NetworkSensor* sensor);
  NetworkSensor* sensor_for(Metric metric) const;
  const std::vector<NetworkSensor*>& chain_for(Metric metric) const {
    return chains_[static_cast<std::size_t>(metric)];
  }

  void set_supervision(SupervisionConfig supervision) {
    supervision_ = supervision;
  }
  const SupervisionConfig& supervision() const { return supervision_; }

  // Lane-scheduler generalization (DESIGN.md §11). set_scheduling replaces
  // the embedded scheduler's configuration (lanes, budget, disjointness,
  // aging); the profiler, when set, describes each measurement's offered
  // load and link footprint to the admission gates — without one every
  // probe is unconstrained (tag and priority are still filled in). Changes
  // affect admissions from the next pump; already-launched probes finish.
  using ProbeProfiler = std::function<ProbeProfile(const Path&, Metric)>;
  void set_scheduling(const SchedulerConfig& scheduling) {
    sequencer_.configure(scheduling);
  }
  void set_probe_profiler(ProbeProfiler profiler) {
    profiler_ = std::move(profiler);
  }
  // Breaker state of a sensor on one path; nullptr if that pair was never
  // exercised with the breaker enabled.
  const SensorHealth* health(const NetworkSensor* sensor,
                             const Path& path) const;

  // Resource-manager interface. Either callback may be null.
  RequestId submit(MonitorRequest request, TupleCallback on_tuple,
                   RoundCallback on_round = nullptr);
  void cancel(RequestId id);
  bool active(RequestId id) const { return requests_.count(id) != 0; }

  // --- control-plane retuning hooks (DESIGN.md §12) -----------------------
  // Adjusts a live request's period in place. The change takes effect when
  // the *next* round is scheduled — the in-flight round's cadence was fixed
  // when it started. Only meaningful for kPeriodic requests (kContinuous
  // ignores the period). False for unknown requests or non-positive periods.
  bool retune_period(RequestId id, sim::Duration period);
  std::optional<sim::Duration> period_of(RequestId id) const;
  // Re-classifies one path of a live request: probes of that path already
  // queued in the lane scheduler are re-ranked immediately (by PathId tag,
  // so other requests sharing the path move with it), and every subsequent
  // round enqueues the path at the new class. False when the request does
  // not carry the path.
  bool set_path_priority(RequestId id, const Path& path, ProbeClass priority);
  // Current class of one path of a live request (first match); nullopt when
  // the request or path is unknown.
  std::optional<ProbeClass> path_priority(RequestId id,
                                          const Path& path) const;

  MeasurementDatabase& database() { return database_; }
  const MeasurementDatabase& database() const { return database_; }
  TestSequencer& sequencer() { return sequencer_; }
  const DirectorStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

  // Self-observability (DESIGN.md §10). Registers the director's pipeline
  // counters and sample-quality mix under "<prefix>.", forwards to the
  // embedded sequencer ("<prefix>.sequencer", with the simulator clock, so
  // slot-wait = serialization stall is measured) and database
  // ("<prefix>.db", senescence), and publishes per-(sensor, path)
  // success/failure/trip counters as health entries appear. Breaker
  // transitions additionally emit trace events when the registry has a
  // TraceSink.
  void attach_observability(obs::Registry& registry,
                            std::string prefix = "director");
  void detach_observability();

 private:
  struct ActiveRequest {
    RequestId id;
    MonitorRequest request;
    TupleCallback on_tuple;
    RoundCallback on_round;
    std::vector<PathMetricTuple> round_tuples;
    std::size_t outstanding = 0;
    sim::TimePoint round_started;
    bool cancelled = false;
  };

  // One (path, metric) measurement job, possibly spanning several attempts
  // across several sensors of the chain.
  struct Job {
    std::shared_ptr<ActiveRequest> request;
    Path path;
    PathId path_id = kInvalidPathId;
    Metric metric = Metric::kThroughput;
    ProbeClass priority = ProbeClass::kNormal;
    std::size_t sensor_index = 0;  // position in the fallback chain
    int attempt = 0;               // retries consumed on the current sensor
  };

  void start_round(std::shared_ptr<ActiveRequest> request);
  void enqueue_job(std::shared_ptr<Job> job);
  void launch(std::shared_ptr<Job> job, TestSequencer::Done done);
  void attempt_failed(const std::shared_ptr<Job>& job, NetworkSensor* sensor,
                      TestSequencer::Done done);
  void exhaust(const std::shared_ptr<Job>& job, TestSequencer::Done done);
  sim::Duration backoff_delay(const Job& job) const;

  bool breaker_admits(NetworkSensor* sensor, PathId path);
  void breaker_success(NetworkSensor* sensor, PathId path);
  void breaker_failure(NetworkSensor* sensor, PathId path);
  // health_ lookup that registers the pair's observability gauges on first
  // contact (when attached).
  SensorHealth& health_entry(NetworkSensor* sensor, PathId path);
  void publish_health(const NetworkSensor* sensor, PathId path,
                      const SensorHealth& h);

  void job_finished(const std::shared_ptr<ActiveRequest>& request,
                    const Path& path, PathId path_id, Metric metric,
                    const MetricValue& reported,
                    const MetricValue* recorded = nullptr);
  void round_finished(const std::shared_ptr<ActiveRequest>& request);

  sim::Simulator& sim_;
  TestSequencer sequencer_;
  MeasurementDatabase database_;
  std::array<std::vector<NetworkSensor*>, kMetricCount> chains_{};
  SupervisionConfig supervision_;
  ProbeProfiler profiler_;
  std::map<std::pair<const NetworkSensor*, PathId>, SensorHealth> health_;
  std::map<RequestId, std::shared_ptr<ActiveRequest>> requests_;
  RequestId next_id_ = 1;
  DirectorStats stats_;

  // Observability handles (null while detached; owned by the registry).
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  std::array<obs::Counter*, 4> obs_quality_{};  // indexed by SampleQuality
};

}  // namespace netmon::core
