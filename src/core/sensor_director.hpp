#pragma once

// The sensor director (paper §4.1, Figure 2): receives requests from the
// resource manager as lists of (path, metrics), initiates collection via
// network sensors (through the test sequencer), records results in the
// measurement database, and reports (path, metric) tuples back either
// synchronously (batched per round) or asynchronously (per measurement).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/measurement_db.hpp"
#include "core/path.hpp"
#include "core/sequencer.hpp"
#include "sim/simulator.hpp"

namespace netmon::core {

// A network sensor collects one metric sample for one path (paper §4.1:
// "network sensors are responsible for collecting network performance
// data"). Implementations exist at different instrumentation points.
class NetworkSensor {
 public:
  using Done = std::function<void(MetricValue)>;

  virtual ~NetworkSensor() = default;
  virtual std::string name() const = 0;
  virtual bool supports(Metric metric) const = 0;
  // Must invoke `done` exactly once (possibly with a failed MetricValue).
  virtual void measure(const Path& path, Metric metric, Done done) = 0;
};

struct PathRequest {
  Path path;
  std::vector<Metric> metrics;
};

struct MonitorRequest {
  std::vector<PathRequest> paths;

  enum class Mode {
    kOnce,        // one round of measurements
    kContinuous,  // re-run each round as soon as the previous finishes
    kPeriodic,    // rounds start every `period`
  };
  Mode mode = Mode::kOnce;
  sim::Duration period = sim::Duration::sec(5);

  enum class Reporting {
    kAsynchronous,  // each tuple pushed as its measurement completes
    kSynchronous,   // all tuples of a round delivered together at round end
  };
  Reporting reporting = Reporting::kAsynchronous;

  bool record_to_database = true;
};

struct DirectorStats {
  std::uint64_t requests_accepted = 0;
  std::uint64_t measurements_started = 0;
  std::uint64_t measurements_completed = 0;
  std::uint64_t measurements_failed = 0;  // completed with valid == false
  std::uint64_t tuples_reported = 0;
  std::uint64_t rounds_completed = 0;
};

class SensorDirector {
 public:
  using TupleCallback = std::function<void(const PathMetricTuple&)>;
  using RoundCallback =
      std::function<void(const std::vector<PathMetricTuple>&)>;
  using RequestId = std::uint64_t;

  SensorDirector(sim::Simulator& sim, std::size_t max_concurrent = 1);

  // Sensor registration; the last sensor registered for a metric wins.
  void register_sensor(Metric metric, NetworkSensor* sensor);
  NetworkSensor* sensor_for(Metric metric) const;

  // Resource-manager interface. Either callback may be null.
  RequestId submit(MonitorRequest request, TupleCallback on_tuple,
                   RoundCallback on_round = nullptr);
  void cancel(RequestId id);
  bool active(RequestId id) const { return requests_.count(id) != 0; }

  MeasurementDatabase& database() { return database_; }
  const MeasurementDatabase& database() const { return database_; }
  TestSequencer& sequencer() { return sequencer_; }
  const DirectorStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct ActiveRequest {
    RequestId id;
    MonitorRequest request;
    TupleCallback on_tuple;
    RoundCallback on_round;
    std::vector<PathMetricTuple> round_tuples;
    std::size_t outstanding = 0;
    sim::TimePoint round_started;
    bool cancelled = false;
  };

  void start_round(std::shared_ptr<ActiveRequest> request);
  void job_finished(const std::shared_ptr<ActiveRequest>& request,
                    const Path& path, PathId path_id, Metric metric,
                    MetricValue value);
  void round_finished(const std::shared_ptr<ActiveRequest>& request);

  sim::Simulator& sim_;
  TestSequencer sequencer_;
  MeasurementDatabase database_;
  std::array<NetworkSensor*, kMetricCount> sensors_{};
  std::map<RequestId, std::shared_ptr<ActiveRequest>> requests_;
  RequestId next_id_ = 1;
  DirectorStats stats_;
};

}  // namespace netmon::core
