#include "core/measurement_db.hpp"

namespace netmon::core {

PathId MeasurementDatabase::id_of(const Path& path) {
  auto [it, inserted] =
      ids_.try_emplace(path, static_cast<PathId>(paths_.size()));
  if (inserted) {
    paths_.push_back(&it->first);  // map nodes are stable
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      series_.emplace_back(history_depth_);
    }
  }
  return it->second;
}

PathId MeasurementDatabase::find(const Path& path) const {
  auto it = ids_.find(path);
  return it == ids_.end() ? kInvalidPathId : it->second;
}

void MeasurementDatabase::record(PathId id, Metric metric,
                                 const MetricValue& value) {
  Series& series = series_[slot(id, metric)];
  if (series.history.empty()) {
    ++tracked_series_;
  } else if constexpr (obs::kCompiledIn) {
    if (obs_interval_ != nullptr) {
      // Gap since the previous sample of this series: the measured
      // senescence floor the paper's C·S·T bound must dominate.
      obs_interval_->observe(static_cast<double>(
          (value.measured_at - series.history.newest().value.measured_at)
              .nanos()));
    }
  }
  const Measurement m{value};
  series.history.push(m);
  if (value.valid) series.last_valid = m;
  ++records_written_;
  // The tiered store rides alongside the ring/last-known fast path and never
  // feeds back into it: current/last_known stay bit-identical with tiers on.
  if (store_.enabled()) {
    store_.record(static_cast<std::uint32_t>(slot(id, metric)),
                  value.measured_at.nanos(), value.value, value.valid);
  }
  if (record_hook_) record_hook_(id, metric, value);
}

void MeasurementDatabase::record_current(PathId id, Metric metric,
                                         const MetricValue& value) {
  Series& series = series_[slot(id, metric)];
  if (series.history.empty()) ++tracked_series_;
  const Measurement m{value};
  series.history.push(m);
  if (value.valid) series.last_valid = m;
  ++records_written_;
}

std::optional<Measurement> MeasurementDatabase::current(
    PathId id, Metric metric, sim::TimePoint now, sim::Duration max_age) const {
  const Series& series = series_[slot(id, metric)];
  if (!series.last_valid) return std::nullopt;
  const Measurement& m = *series.last_valid;
  if constexpr (obs::kCompiledIn) {
    if (obs_age_read_ != nullptr) {
      obs_age_read_->observe(static_cast<double>(m.age(now).nanos()));
    }
  }
  if (m.age(now) > max_age) return std::nullopt;
  return m;
}

std::optional<Measurement> MeasurementDatabase::last_known(
    PathId id, Metric metric) const {
  return series_[slot(id, metric)].last_valid;
}

std::optional<sim::Duration> MeasurementDatabase::senescence(
    PathId id, Metric metric, sim::TimePoint now) const {
  const Series& series = series_[slot(id, metric)];
  if (series.history.empty()) return std::nullopt;
  return series.history.newest().age(now);
}

void MeasurementDatabase::attach_observability(obs::Registry& registry,
                                               std::string prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  obs_interval_ = &registry.histogram(obs_prefix_ + ".sample_interval_ns");
  obs_age_read_ = &registry.histogram(obs_prefix_ + ".age_at_read_ns");
  registry.gauge_fn(obs_prefix_ + ".records_written", [this] {
    return static_cast<double>(records_written_);
  });
  registry.gauge_fn(obs_prefix_ + ".tracked_series", [this] {
    return static_cast<double>(tracked_series_);
  });
  registry.gauge_fn(obs_prefix_ + ".interned_paths", [this] {
    return static_cast<double>(paths_.size());
  });
  store_.attach_observability(registry, obs_prefix_);
}

void MeasurementDatabase::publish_retention_horizons(obs::Registry& registry,
                                                     const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  if (horizon_registry_ != nullptr) {
    horizon_registry_->remove_prefix(horizon_prefix_);
  }
  horizon_registry_ = &registry;
  horizon_prefix_ = prefix;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (series_[s].history.empty()) continue;
    const std::string name = prefix + "." + path_of(slot_path(s)).to_string() +
                             "." + to_string(slot_metric(s)) +
                             ".retention_horizon_ns";
    registry.gauge_fn(name, [this, s] {
      const auto h = store_.retention_horizon(static_cast<std::uint32_t>(s));
      return h ? static_cast<double>(*h) : -1.0;
    });
  }
}

void MeasurementDatabase::detach_observability() {
  if (horizon_registry_ != nullptr) {
    horizon_registry_->remove_prefix(horizon_prefix_);
    horizon_registry_ = nullptr;
  }
  if (obs_registry_ == nullptr) return;
  store_.detach_observability();
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
  obs_interval_ = nullptr;
  obs_age_read_ = nullptr;
}

const util::RingBuffer<Measurement>* MeasurementDatabase::history(
    PathId id, Metric metric) const {
  const Series& series = series_[slot(id, metric)];
  if (series.history.empty()) return nullptr;
  return &series.history;
}

}  // namespace netmon::core
