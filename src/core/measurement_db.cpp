#include "core/measurement_db.hpp"

namespace netmon::core {

PathId MeasurementDatabase::id_of(const Path& path) {
  auto [it, inserted] =
      ids_.try_emplace(path, static_cast<PathId>(paths_.size()));
  if (inserted) {
    paths_.push_back(&it->first);  // map nodes are stable
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      series_.emplace_back(history_depth_);
    }
  }
  return it->second;
}

PathId MeasurementDatabase::find(const Path& path) const {
  auto it = ids_.find(path);
  return it == ids_.end() ? kInvalidPathId : it->second;
}

void MeasurementDatabase::record(PathId id, Metric metric,
                                 const MetricValue& value) {
  Series& series = series_[slot(id, metric)];
  if (series.history.empty()) ++tracked_series_;
  const Measurement m{value};
  series.history.push(m);
  if (value.valid) series.last_valid = m;
  ++records_written_;
}

std::optional<Measurement> MeasurementDatabase::current(
    PathId id, Metric metric, sim::TimePoint now, sim::Duration max_age) const {
  const Series& series = series_[slot(id, metric)];
  if (!series.last_valid) return std::nullopt;
  const Measurement& m = *series.last_valid;
  if (m.age(now) > max_age) return std::nullopt;
  return m;
}

std::optional<Measurement> MeasurementDatabase::last_known(
    PathId id, Metric metric) const {
  return series_[slot(id, metric)].last_valid;
}

std::optional<sim::Duration> MeasurementDatabase::senescence(
    PathId id, Metric metric, sim::TimePoint now) const {
  const Series& series = series_[slot(id, metric)];
  if (series.history.empty()) return std::nullopt;
  return series.history.newest().age(now);
}

const util::RingBuffer<Measurement>* MeasurementDatabase::history(
    PathId id, Metric metric) const {
  const Series& series = series_[slot(id, metric)];
  if (series.history.empty()) return nullptr;
  return &series.history;
}

}  // namespace netmon::core
