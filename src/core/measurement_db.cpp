#include "core/measurement_db.hpp"

namespace netmon::core {

void MeasurementDatabase::record(const Path& path, Metric metric,
                                 const MetricValue& value) {
  auto [it, inserted] =
      series_.try_emplace(Key{path, metric}, history_depth_);
  Series& series = it->second;
  const Measurement m{value};
  series.history.push(m);
  if (value.valid) series.last_valid = m;
  ++records_written_;
}

std::optional<Measurement> MeasurementDatabase::current(
    const Path& path, Metric metric, sim::TimePoint now,
    sim::Duration max_age) const {
  auto it = series_.find(Key{path, metric});
  if (it == series_.end() || !it->second.last_valid) return std::nullopt;
  const Measurement& m = *it->second.last_valid;
  if (m.age(now) > max_age) return std::nullopt;
  return m;
}

std::optional<Measurement> MeasurementDatabase::last_known(
    const Path& path, Metric metric) const {
  auto it = series_.find(Key{path, metric});
  if (it == series_.end()) return std::nullopt;
  return it->second.last_valid;
}

std::optional<sim::Duration> MeasurementDatabase::senescence(
    const Path& path, Metric metric, sim::TimePoint now) const {
  auto it = series_.find(Key{path, metric});
  if (it == series_.end() || it->second.history.empty()) return std::nullopt;
  return it->second.history.newest().age(now);
}

const util::RingBuffer<Measurement>* MeasurementDatabase::history(
    const Path& path, Metric metric) const {
  auto it = series_.find(Key{path, metric});
  if (it == series_.end()) return nullptr;
  return &it->second.history;
}

}  // namespace netmon::core
