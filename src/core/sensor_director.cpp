#include "core/sensor_director.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/backoff.hpp"
#include "util/logging.hpp"

namespace netmon::core {

namespace {

// Shared between one attempt's deadline timer and its sensor completion:
// whichever settles first wins; the loser degrades to a counted no-op.
struct AttemptState {
  bool settled = false;
  sim::EventHandle timer;
};

}  // namespace

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

SensorDirector::SensorDirector(sim::Simulator& sim, std::size_t max_concurrent)
    : SensorDirector(sim, max_concurrent, SupervisionConfig{}) {}

SensorDirector::SensorDirector(sim::Simulator& sim, std::size_t max_concurrent,
                               SupervisionConfig supervision,
                               std::size_t history_depth,
                               TieredStorageConfig storage)
    : sim_(sim),
      sequencer_(max_concurrent),
      database_(history_depth, std::move(storage)),
      supervision_(supervision) {
  // Simulation time drives the scheduler's senescence-weighted aging and
  // starvation accounting (inert under the default FIFO configuration).
  sequencer_.set_clock([this] { return sim_.now().nanos(); });
}

SensorDirector::~SensorDirector() { detach_observability(); }

void SensorDirector::register_sensor(Metric metric, NetworkSensor* sensor) {
  if (sensor != nullptr && !sensor->supports(metric)) {
    throw std::invalid_argument("SensorDirector: sensor " + sensor->name() +
                                " does not support metric " +
                                std::string(to_string(metric)));
  }
  auto& chain = chains_[static_cast<std::size_t>(metric)];
  chain.clear();
  if (sensor != nullptr) chain.push_back(sensor);
}

void SensorDirector::register_fallback(Metric metric, NetworkSensor* sensor) {
  if (sensor == nullptr) {
    throw std::invalid_argument("SensorDirector: null fallback sensor");
  }
  if (!sensor->supports(metric)) {
    throw std::invalid_argument("SensorDirector: sensor " + sensor->name() +
                                " does not support metric " +
                                std::string(to_string(metric)));
  }
  chains_[static_cast<std::size_t>(metric)].push_back(sensor);
}

NetworkSensor* SensorDirector::sensor_for(Metric metric) const {
  const auto& chain = chains_[static_cast<std::size_t>(metric)];
  return chain.empty() ? nullptr : chain.front();
}

const SensorHealth* SensorDirector::health(const NetworkSensor* sensor,
                                           const Path& path) const {
  const PathId id = database_.find(path);
  if (id == kInvalidPathId) return nullptr;
  auto it = health_.find({sensor, id});
  return it == health_.end() ? nullptr : &it->second;
}

SensorDirector::RequestId SensorDirector::submit(MonitorRequest request,
                                                 TupleCallback on_tuple,
                                                 RoundCallback on_round) {
  if (request.paths.empty()) {
    throw std::invalid_argument("SensorDirector::submit: empty path list");
  }
  for (const PathRequest& pr : request.paths) {
    for (Metric metric : pr.metrics) {
      if (sensor_for(metric) == nullptr) {
        throw std::logic_error(
            "SensorDirector::submit: no sensor registered for metric " +
            std::string(to_string(metric)));
      }
    }
  }
  auto active = std::make_shared<ActiveRequest>();
  active->id = next_id_++;
  active->request = std::move(request);
  active->on_tuple = std::move(on_tuple);
  active->on_round = std::move(on_round);
  requests_[active->id] = active;
  ++stats_.requests_accepted;
  start_round(active);
  return active->id;
}

void SensorDirector::cancel(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  it->second->cancelled = true;  // in-flight jobs drain silently
  requests_.erase(it);
}

bool SensorDirector::retune_period(RequestId id, sim::Duration period) {
  auto it = requests_.find(id);
  if (it == requests_.end() || period.nanos() <= 0) return false;
  it->second->request.period = period;
  return true;
}

std::optional<sim::Duration> SensorDirector::period_of(RequestId id) const {
  auto it = requests_.find(id);
  if (it == requests_.end()) return std::nullopt;
  return it->second->request.period;
}

bool SensorDirector::set_path_priority(RequestId id, const Path& path,
                                       ProbeClass priority) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return false;
  bool found = false;
  for (PathRequest& pr : it->second->request.paths) {
    if (pr.path == path) {
      pr.priority = priority;
      found = true;
    }
  }
  if (!found) return false;
  const PathId path_id = database_.find(path);
  if (path_id != kInvalidPathId) sequencer_.reprioritize(path_id, priority);
  return true;
}

std::optional<ProbeClass> SensorDirector::path_priority(
    RequestId id, const Path& path) const {
  auto it = requests_.find(id);
  if (it == requests_.end()) return std::nullopt;
  for (const PathRequest& pr : it->second->request.paths) {
    if (pr.path == path) return pr.priority;
  }
  return std::nullopt;
}

void SensorDirector::start_round(std::shared_ptr<ActiveRequest> request) {
  if (request->cancelled) return;
  request->round_started = sim_.now();
  request->round_tuples.clear();
  request->outstanding = 0;
  for (const PathRequest& pr : request->request.paths) {
    request->outstanding += pr.metrics.size();
  }
  if (request->outstanding == 0) {
    round_finished(request);
    return;
  }
  for (const PathRequest& pr : request->request.paths) {
    // Intern once per round; the per-measurement hot path below records by
    // dense id and never re-keys the database on the full Path.
    const PathId path_id = database_.id_of(pr.path);
    for (Metric metric : pr.metrics) {
      auto job = std::make_shared<Job>();
      job->request = request;
      job->path = pr.path;
      job->path_id = path_id;
      job->metric = metric;
      job->priority = pr.priority;
      enqueue_job(std::move(job));
    }
  }
}

void SensorDirector::enqueue_job(std::shared_ptr<Job> job) {
  ProbeProfile profile;
  if (profiler_) profile = profiler_(job->path, job->metric);
  profile.priority = job->priority;
  profile.tag = job->path_id;
  sequencer_.enqueue(
      [this, job = std::move(job)](TestSequencer::Done done) {
        launch(job, std::move(done));
      },
      std::move(profile));
}

void SensorDirector::launch(std::shared_ptr<Job> job,
                            TestSequencer::Done done) {
  if (job->request->cancelled) {
    // Account for the skipped job so the round can still close out.
    job_finished(job->request, job->path, job->path_id, job->metric,
                 MetricValue::failed(sim_.now()));
    done();
    return;
  }
  const auto& chain = chains_[static_cast<std::size_t>(job->metric)];
  NetworkSensor* sensor = nullptr;
  while (job->sensor_index < chain.size()) {
    NetworkSensor* candidate = chain[job->sensor_index];
    if (breaker_admits(candidate, job->path_id)) {
      sensor = candidate;
      break;
    }
    ++stats_.breaker_skips;
    ++job->sensor_index;
    job->attempt = 0;
  }
  if (sensor == nullptr) {
    exhaust(job, std::move(done));
    return;
  }

  ++stats_.measurements_started;
  auto attempt = std::make_shared<AttemptState>();
  if (!supervision_.deadline.is_zero()) {
    attempt->timer = sim_.schedule_in(
        supervision_.deadline, [this, job, sensor, attempt, done] {
          if (attempt->settled) return;
          attempt->settled = true;
          ++stats_.timeouts;
          attempt_failed(job, sensor, done);
        });
  }
  sensor->measure(
      job->path, job->metric,
      [this, job, sensor, attempt, done](MetricValue value) {
        if (attempt->settled) {
          // Completion after the deadline killed the attempt (or after a
          // misbehaving sensor already reported): counted no-op.
          ++stats_.late_completions;
          return;
        }
        attempt->settled = true;
        attempt->timer.cancel();
        if (!value.valid) {
          attempt_failed(job, sensor, done);
          return;
        }
        breaker_success(sensor, job->path_id);
        if (job->sensor_index > 0) {
          value.quality = SampleQuality::kFallback;
        } else if (job->attempt > 0) {
          value.quality = SampleQuality::kRetried;
        }
        job_finished(job->request, job->path, job->path_id, job->metric,
                     value);
        done();
      });
}

void SensorDirector::attempt_failed(const std::shared_ptr<Job>& job,
                                    NetworkSensor* sensor,
                                    TestSequencer::Done done) {
  breaker_failure(sensor, job->path_id);
  if (job->attempt < supervision_.max_retries) {
    ++job->attempt;
    ++stats_.retries;
    // Release the sequencer slot for the duration of the backoff; the retry
    // re-queues and competes for a slot like any other measurement.
    done();
    sim_.schedule_in(backoff_delay(*job),
                     [this, job] { enqueue_job(job); });
    return;
  }
  const auto& chain = chains_[static_cast<std::size_t>(job->metric)];
  if (job->sensor_index + 1 < chain.size()) {
    ++job->sensor_index;
    job->attempt = 0;
    ++stats_.fallbacks;
    // Degrade immediately to the next sensor, reusing the held slot.
    launch(job, std::move(done));
    return;
  }
  exhaust(job, std::move(done));
}

void SensorDirector::exhaust(const std::shared_ptr<Job>& job,
                             TestSequencer::Done done) {
  ++stats_.exhausted;
  const MetricValue failed = MetricValue::failed(sim_.now());
  if (supervision_.report_stale_on_exhaustion) {
    if (auto last = database_.last_known(job->path_id, job->metric)) {
      // Re-report the last known good value, flagged stale, while the
      // database records the failure (so senescence keeps advancing and
      // last_known is not refreshed with old data).
      MetricValue reported = last->value;
      reported.quality = SampleQuality::kStale;
      MetricValue recorded = failed;
      recorded.quality = SampleQuality::kStale;
      ++stats_.stale_reports;
      job_finished(job->request, job->path, job->path_id, job->metric,
                   reported, &recorded);
      done();
      return;
    }
  }
  job_finished(job->request, job->path, job->path_id, job->metric, failed);
  done();
}

sim::Duration SensorDirector::backoff_delay(const Job& job) const {
  // Jitter keyed by the job identity so paths sharing a failure do not retry
  // in lockstep — and two runs of the same scenario stay bit-identical
  // (util/backoff.hpp; the formula moved there verbatim, so supervised
  // schedules are unchanged).
  const std::uint64_t key = (std::uint64_t(job.path_id) << 16) ^
                            (std::uint64_t(job.attempt) << 8) ^
                            std::uint64_t(job.metric);
  return util::jittered_backoff(supervision_.backoff_base,
                                supervision_.backoff_max, job.attempt, key);
}

void SensorDirector::attach_observability(obs::Registry& registry,
                                          std::string prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  obs_registry_ = &registry;
  obs_prefix_ = std::move(prefix);
  sequencer_.attach_observability(registry, obs_prefix_ + ".sequencer",
                                  [this] { return sim_.now().nanos(); });
  database_.attach_observability(registry, obs_prefix_ + ".db");

  struct Field {
    const char* name;
    std::uint64_t DirectorStats::* member;
  };
  static constexpr Field kFields[] = {
      {"requests_accepted", &DirectorStats::requests_accepted},
      {"measurements_started", &DirectorStats::measurements_started},
      {"measurements_completed", &DirectorStats::measurements_completed},
      {"measurements_failed", &DirectorStats::measurements_failed},
      {"tuples_reported", &DirectorStats::tuples_reported},
      {"rounds_completed", &DirectorStats::rounds_completed},
      {"timeouts", &DirectorStats::timeouts},
      {"late_completions", &DirectorStats::late_completions},
      {"retries", &DirectorStats::retries},
      {"fallbacks", &DirectorStats::fallbacks},
      {"breaker_skips", &DirectorStats::breaker_skips},
      {"exhausted", &DirectorStats::exhausted},
      {"stale_reports", &DirectorStats::stale_reports},
  };
  for (const Field& f : kFields) {
    registry.gauge_fn(obs_prefix_ + "." + f.name, [this, m = f.member] {
      return static_cast<double>(stats_.*m);
    });
  }
  static constexpr SampleQuality kQualities[] = {
      SampleQuality::kFresh, SampleQuality::kRetried, SampleQuality::kFallback,
      SampleQuality::kStale};
  for (SampleQuality q : kQualities) {
    obs_quality_[static_cast<std::size_t>(q)] = &registry.counter(
        obs_prefix_ + ".quality." + to_string(q));
  }
  // Health entries that predate the attach get their gauges now.
  for (const auto& [key, h] : health_) {
    publish_health(key.first, key.second, h);
  }
}

void SensorDirector::detach_observability() {
  if (obs_registry_ == nullptr) return;
  sequencer_.detach_observability();
  database_.detach_observability();
  obs_registry_->remove_prefix(obs_prefix_);
  obs_registry_ = nullptr;
  obs_quality_ = {};
}

SensorHealth& SensorDirector::health_entry(NetworkSensor* sensor,
                                           PathId path) {
  auto [it, inserted] = health_.try_emplace({sensor, path});
  if constexpr (obs::kCompiledIn) {
    if (inserted && obs_registry_ != nullptr) {
      publish_health(sensor, path, it->second);
    }
  }
  return it->second;
}

void SensorDirector::publish_health(const NetworkSensor* sensor, PathId path,
                                    const SensorHealth& h) {
  // Map nodes are stable, so binding gauge callbacks to the entry is safe
  // for the director's lifetime; detach_observability removes them.
  const std::string base = obs_prefix_ + ".health." + sensor->name() + "." +
                           database_.path_of(path).to_string();
  obs_registry_->gauge_fn(base + ".successes", [&h] {
    return static_cast<double>(h.successes);
  });
  obs_registry_->gauge_fn(base + ".failures", [&h] {
    return static_cast<double>(h.failures);
  });
  obs_registry_->gauge_fn(base + ".trips",
                          [&h] { return static_cast<double>(h.trips); });
  obs_registry_->gauge_fn(base + ".breaker_state", [&h] {
    return static_cast<double>(h.state);
  });
}

bool SensorDirector::breaker_admits(NetworkSensor* sensor, PathId path) {
  if (supervision_.breaker_threshold <= 0) return true;
  SensorHealth& h = health_entry(sensor, path);
  switch (h.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (sim_.now() < h.open_until) return false;
      h.state = BreakerState::kHalfOpen;
      h.probe_in_flight = false;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (h.probe_in_flight) return false;
      h.probe_in_flight = true;
      return true;
  }
  return true;
}

void SensorDirector::breaker_success(NetworkSensor* sensor, PathId path) {
  if (supervision_.breaker_threshold <= 0) return;
  SensorHealth& h = health_entry(sensor, path);
  ++h.successes;
  h.consecutive_failures = 0;
  if (h.state != BreakerState::kClosed) {
    NETMON_INFO("director", "breaker for ", sensor->name(), " on ",
                database_.path_of(path).to_string(), " closed");
    h.state = BreakerState::kClosed;
    if constexpr (obs::kCompiledIn) {
      if (obs_registry_ != nullptr) {
        obs_registry_->emit(sim_.now().nanos(), "breaker",
                            sensor->name() + ".closed",
                            static_cast<double>(path));
      }
    }
  }
  h.probe_in_flight = false;
}

void SensorDirector::breaker_failure(NetworkSensor* sensor, PathId path) {
  if (supervision_.breaker_threshold <= 0) return;
  SensorHealth& h = health_entry(sensor, path);
  ++h.failures;
  ++h.consecutive_failures;
  const bool trip =
      h.state == BreakerState::kHalfOpen ||
      (h.state == BreakerState::kClosed &&
       h.consecutive_failures >= supervision_.breaker_threshold);
  if (trip) {
    h.state = BreakerState::kOpen;
    h.open_until = sim_.now() + supervision_.breaker_open_for;
    h.probe_in_flight = false;
    ++h.trips;
    NETMON_WARN("director", "breaker for ", sensor->name(), " on ",
                database_.path_of(path).to_string(), " opened (",
                h.consecutive_failures, " consecutive failures)");
    if constexpr (obs::kCompiledIn) {
      if (obs_registry_ != nullptr) {
        obs_registry_->emit(sim_.now().nanos(), "breaker",
                            sensor->name() + ".opened",
                            static_cast<double>(path));
      }
    }
  }
}

void SensorDirector::job_finished(
    const std::shared_ptr<ActiveRequest>& request, const Path& path,
    PathId path_id, Metric metric, const MetricValue& reported,
    const MetricValue* recorded) {
  ++stats_.measurements_completed;
  const MetricValue& to_record = recorded != nullptr ? *recorded : reported;
  if (!to_record.valid) ++stats_.measurements_failed;
  if constexpr (obs::kCompiledIn) {
    // Quality mix of what the manager is told (the reported value carries
    // the fresh/retried/fallback/stale provenance flag).
    if (obs_quality_[0] != nullptr) {
      obs_quality_[static_cast<std::size_t>(reported.quality)]->inc();
    }
  }

  if (!request->cancelled) {
    if (request->request.record_to_database) {
      database_.record(path_id, metric, to_record);
    }
    PathMetricTuple tuple{path, metric, reported};
    if (request->request.reporting == MonitorRequest::Reporting::kSynchronous) {
      request->round_tuples.push_back(tuple);
    } else if (request->on_tuple) {
      ++stats_.tuples_reported;
      request->on_tuple(tuple);
    }
  }

  if (request->outstanding == 0) return;  // defensive; should not happen
  if (--request->outstanding == 0) round_finished(request);
}

void SensorDirector::round_finished(
    const std::shared_ptr<ActiveRequest>& request) {
  ++stats_.rounds_completed;
  if (!request->cancelled &&
      request->request.reporting == MonitorRequest::Reporting::kSynchronous) {
    stats_.tuples_reported += request->round_tuples.size();
    if (request->on_round) request->on_round(request->round_tuples);
    // Synchronous mode also supports a per-tuple callback for convenience.
    if (request->on_tuple) {
      for (const auto& tuple : request->round_tuples) {
        request->on_tuple(tuple);
      }
    }
  }

  if (request->cancelled) return;
  switch (request->request.mode) {
    case MonitorRequest::Mode::kOnce:
      requests_.erase(request->id);
      break;
    case MonitorRequest::Mode::kContinuous:
      // Immediately begin the next round (the sequencer still bounds
      // concurrency, so this is the paper's cycling sequencer).
      sim_.schedule_in(sim::Duration::ns(0),
                       [this, request] { start_round(request); });
      break;
    case MonitorRequest::Mode::kPeriodic: {
      const sim::TimePoint next =
          request->round_started + request->request.period;
      const sim::TimePoint at = next > sim_.now() ? next : sim_.now();
      sim_.schedule_at(at, [this, request] { start_round(request); });
      break;
    }
  }
}

}  // namespace netmon::core
