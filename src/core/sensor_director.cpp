#include "core/sensor_director.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::core {

SensorDirector::SensorDirector(sim::Simulator& sim, std::size_t max_concurrent)
    : sim_(sim), sequencer_(max_concurrent) {}

void SensorDirector::register_sensor(Metric metric, NetworkSensor* sensor) {
  if (sensor != nullptr && !sensor->supports(metric)) {
    throw std::invalid_argument("SensorDirector: sensor " + sensor->name() +
                                " does not support metric " +
                                std::string(to_string(metric)));
  }
  sensors_[static_cast<std::size_t>(metric)] = sensor;
}

NetworkSensor* SensorDirector::sensor_for(Metric metric) const {
  return sensors_[static_cast<std::size_t>(metric)];
}

SensorDirector::RequestId SensorDirector::submit(MonitorRequest request,
                                                 TupleCallback on_tuple,
                                                 RoundCallback on_round) {
  if (request.paths.empty()) {
    throw std::invalid_argument("SensorDirector::submit: empty path list");
  }
  for (const PathRequest& pr : request.paths) {
    for (Metric metric : pr.metrics) {
      if (sensor_for(metric) == nullptr) {
        throw std::logic_error(
            "SensorDirector::submit: no sensor registered for metric " +
            std::string(to_string(metric)));
      }
    }
  }
  auto active = std::make_shared<ActiveRequest>();
  active->id = next_id_++;
  active->request = std::move(request);
  active->on_tuple = std::move(on_tuple);
  active->on_round = std::move(on_round);
  requests_[active->id] = active;
  ++stats_.requests_accepted;
  start_round(active);
  return active->id;
}

void SensorDirector::cancel(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  it->second->cancelled = true;  // in-flight jobs drain silently
  requests_.erase(it);
}

void SensorDirector::start_round(std::shared_ptr<ActiveRequest> request) {
  if (request->cancelled) return;
  request->round_started = sim_.now();
  request->round_tuples.clear();
  request->outstanding = 0;
  for (const PathRequest& pr : request->request.paths) {
    request->outstanding += pr.metrics.size();
  }
  if (request->outstanding == 0) {
    round_finished(request);
    return;
  }
  for (const PathRequest& pr : request->request.paths) {
    // Intern once per round; the per-measurement hot path below records by
    // dense id and never re-keys the database on the full Path.
    const PathId path_id = database_.id_of(pr.path);
    for (Metric metric : pr.metrics) {
      NetworkSensor* sensor = sensor_for(metric);
      sequencer_.enqueue([this, request, sensor, path = pr.path, path_id,
                          metric](TestSequencer::Done done) {
        if (request->cancelled) {
          // Account for the skipped job so the round can still close out.
          job_finished(request, path, path_id, metric,
                       MetricValue::failed(sim_.now()));
          done();
          return;
        }
        ++stats_.measurements_started;
        sensor->measure(path, metric,
                        [this, request, path, path_id, metric,
                         done](MetricValue value) {
                          job_finished(request, path, path_id, metric, value);
                          done();
                        });
      });
    }
  }
}

void SensorDirector::job_finished(
    const std::shared_ptr<ActiveRequest>& request, const Path& path,
    PathId path_id, Metric metric, MetricValue value) {
  ++stats_.measurements_completed;
  if (!value.valid) ++stats_.measurements_failed;

  if (!request->cancelled) {
    if (request->request.record_to_database) {
      database_.record(path_id, metric, value);
    }
    PathMetricTuple tuple{path, metric, value};
    if (request->request.reporting == MonitorRequest::Reporting::kSynchronous) {
      request->round_tuples.push_back(tuple);
    } else if (request->on_tuple) {
      ++stats_.tuples_reported;
      request->on_tuple(tuple);
    }
  }

  if (request->outstanding == 0) return;  // defensive; should not happen
  if (--request->outstanding == 0) round_finished(request);
}

void SensorDirector::round_finished(
    const std::shared_ptr<ActiveRequest>& request) {
  ++stats_.rounds_completed;
  if (!request->cancelled &&
      request->request.reporting == MonitorRequest::Reporting::kSynchronous) {
    stats_.tuples_reported += request->round_tuples.size();
    if (request->on_round) request->on_round(request->round_tuples);
    // Synchronous mode also supports a per-tuple callback for convenience.
    if (request->on_tuple) {
      for (const auto& tuple : request->round_tuples) {
        request->on_tuple(tuple);
      }
    }
  }

  if (request->cancelled) return;
  switch (request->request.mode) {
    case MonitorRequest::Mode::kOnce:
      requests_.erase(request->id);
      break;
    case MonitorRequest::Mode::kContinuous:
      // Immediately begin the next round (the sequencer still bounds
      // concurrency, so this is the paper's cycling sequencer).
      sim_.schedule_in(sim::Duration::ns(0),
                       [this, request] { start_round(request); });
      break;
    case MonitorRequest::Mode::kPeriodic: {
      const sim::TimePoint next =
          request->round_started + request->request.period;
      const sim::TimePoint at = next > sim_.now() ? next : sim_.now();
      sim_.schedule_at(at, [this, request] { start_round(request); });
      break;
    }
  }
}

}  // namespace netmon::core
