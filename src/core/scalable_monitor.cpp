#include "core/scalable_monitor.hpp"

#include "snmp/mib2.hpp"
#include "util/logging.hpp"

namespace netmon::core {

SnmpSensor::SnmpSensor(net::Network& network, snmp::Manager& manager)
    : SnmpSensor(network, manager, Config{}) {}

SnmpSensor::SnmpSensor(net::Network& network, snmp::Manager& manager,
                       Config config)
    : network_(network), manager_(manager), config_(config) {}

void SnmpSensor::measure(const Path& path, Metric metric, Done done) {
  switch (metric) {
    case Metric::kReachability:
      measure_reachability(path, std::move(done));
      return;
    case Metric::kThroughput:
      measure_throughput(path, std::move(done));
      return;
    case Metric::kOneWayLatency:
      measure_latency(path, std::move(done));
      return;
  }
}

void SnmpSensor::measure_reachability(const Path& path, Done done) {
  // A path is reachable when the agents on BOTH endpoints answer (paper
  // §5.2.2: "the sensor director could translate (path, metric)-tuples ...
  // to SNMP MIB queries"). A poll the manager abandons after its retries is
  // a *failed* sample, never a silently-missing or falsely-valid one: the
  // supervision layer decides whether to retry, fall back, or strike.
  ++polls_issued_;
  manager_.get(path.destination().host, {snmp::mib2::kSysUpTime},
               [this, src = path.source().host,
                done = std::move(done)](const snmp::SnmpResult& r) {
                 if (!r.ok) {
                   done(MetricValue::failed(network_.simulator().now()));
                   return;
                 }
                 ++polls_issued_;
                 manager_.get(src, {snmp::mib2::kSysUpTime},
                              [this, done = std::move(done)](
                                  const snmp::SnmpResult& r2) {
                                done(r2.ok ? MetricValue::of(
                                                 1.0,
                                                 network_.simulator().now())
                                           : MetricValue::failed(
                                                 network_.simulator().now()));
                              });
               });
}

void SnmpSensor::measure_throughput(const Path& path, Done done) {
  // Two polls of ifOutOctets on the source host, Δ apart; the rate estimate
  // uses the management station's own (quantized, drifting) clock and
  // counts every byte the interface emitted — not just this path's.
  const net::IpAddr agent = path.source().host;
  const snmp::Oid oid =
      snmp::mib2::if_column(snmp::mib2::kIfOutOctets, config_.if_index);
  ++polls_issued_;
  auto t0 = manager_.host().clock().local_now();
  manager_.get(agent, {oid},
               [this, agent, oid, t0, done = std::move(done)](
                   const snmp::SnmpResult& first) {
    if (!first.ok || first.varbinds.empty() ||
        first.varbinds[0].value.is_exception()) {
      done(MetricValue::failed(network_.simulator().now()));
      return;
    }
    const std::uint64_t octets0 = first.varbinds[0].value.to_uint64();
    manager_.host().simulator().schedule_in(
        config_.throughput_poll_gap,
        [this, agent, oid, t0, octets0, done = std::move(done)] {
          ++polls_issued_;
          manager_.get(agent, {oid},
                       [this, t0, octets0, done = std::move(done)](
                           const snmp::SnmpResult& second) {
            if (!second.ok || second.varbinds.empty() ||
                second.varbinds[0].value.is_exception()) {
              done(MetricValue::failed(network_.simulator().now()));
              return;
            }
            const std::uint64_t octets1 =
                second.varbinds[0].value.to_uint64();
            const auto t1 = manager_.host().clock().local_now();
            const double dt = (t1 - t0).to_seconds();
            if (dt <= 0.0 || octets1 < octets0) {
              // Quantized clock showed no elapsed time, or counter wrap.
              done(MetricValue::failed(network_.simulator().now()));
              return;
            }
            const double bps =
                static_cast<double>(octets1 - octets0) * 8.0 / dt;
            done(MetricValue::of(bps, network_.simulator().now()));
          });
        });
  });
}

void SnmpSensor::measure_latency(const Path& path, Done done) {
  // Best available approximation: half the management round trip to the
  // destination agent, on the station's quantized clock. Includes agent
  // processing time; can read zero outright on a coarse clock.
  ++polls_issued_;
  const auto t0 = manager_.host().clock().local_now();
  manager_.get(path.destination().host, {snmp::mib2::kSysUpTime},
               [this, t0, done = std::move(done)](const snmp::SnmpResult& r) {
                 if (!r.ok) {
                   done(MetricValue::failed(network_.simulator().now()));
                   return;
                 }
                 const auto t1 = manager_.host().clock().local_now();
                 const double half_rtt = (t1 - t0).to_seconds() / 2.0;
                 done(MetricValue::of(half_rtt, network_.simulator().now()));
               });
}

ScalableMonitor::ScalableMonitor(net::Network& network, net::Host& station)
    : ScalableMonitor(network, station, Config{}) {}

ScalableMonitor::ScalableMonitor(net::Network& network, net::Host& station,
                                 Config config)
    : station_(station),
      manager_(station, config.manager),
      sensor_(network, manager_, config.sensor),
      director_(network.simulator(), config.max_concurrent,
                config.supervision, config.history_depth,
                std::move(config.storage)) {
  director_.register_sensor(Metric::kThroughput, &sensor_);
  director_.register_sensor(Metric::kOneWayLatency, &sensor_);
  director_.register_sensor(Metric::kReachability, &sensor_);
  SchedulerConfig scheduling = config.scheduling;
  if (scheduling.lanes == 1) scheduling.lanes = config.max_concurrent;
  director_.set_scheduling(scheduling);
  manager_.set_trap_handler([this](const snmp::TrapEvent& event) {
    if (trap_callback_) trap_callback_(event);
  });
}

rmon::Alarm& ScalableMonitor::arm_utilization_alarm(rmon::Probe& probe,
                                                    double rising,
                                                    double falling,
                                                    sim::Duration interval) {
  rmon::AlarmConfig alarm;
  alarm.description = "segment utilization";
  alarm.sample = probe.sample_utilization();
  alarm.sample_type = rmon::SampleType::kAbsolute;
  alarm.interval = interval;
  alarm.rising_threshold = rising;
  alarm.falling_threshold = falling;
  return probe.add_alarm(std::move(alarm), station_.primary_ip());
}

void ScalableMonitor::set_trap_callback(
    std::function<void(const snmp::TrapEvent&)> cb) {
  trap_callback_ = std::move(cb);
}

}  // namespace netmon::core
