#pragma once

// Tiered time-series storage engine (DESIGN.md §13), the netdata-style
// substrate under core::MeasurementDatabase: every (PathId, Metric) series
// appends raw samples into fixed-size pages (tier 0); when a page fills it
// is sealed and immediately downsampled — groups of `rollup_factor`
// consecutive points become one min/mean/max/count point (with first/last
// timestamps) of the next tier — so each coarser tier retains a longer
// horizon in geometrically fewer points. All pages come from one pooled
// allocator under a global page bound; when the pool is exhausted, sealed
// pages are evicted deterministically, lowest tier first and oldest first
// within a tier (raw history goes first — its aggregate survives one tier
// up — and the coarsest rollups go last). Open pages (the write head of
// each series×tier) are never evicted; if every pooled page is an open
// page the pool overcommits rather than drop live writes, so the true
// bound is max(max_pages, one open page per active series×tier).
//
// The range query `query(series, t0, t1, resolution)` picks the coarsest
// tier whose estimated per-point span still satisfies the requested
// resolution and stitches across tier boundaries: ranges older than the
// target tier's retained horizon are served from coarser tiers, and the
// newest samples not yet rolled up into the target tier are served from
// the finer tiers' open pages. Data evicted from every tier is reported as
// an explicit gap — a truthful "this was lost", never an interpolation.
//
// The engine never touches the simulator: recording and querying schedule
// no events, so attaching it cannot perturb the event-core golden trace.
// Everything is deterministic for a given op sequence — the model-based
// harness (tests/db_model_test.cpp) diffs query results and the eviction
// trace hash across same-seed runs.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace netmon::core {

struct TieredStorageConfig {
  // Master switch: disabled, record() is a single predictable branch and
  // queries return empty results (the flat last-known path is unaffected
  // either way).
  bool enabled = true;
  // Points per page, every tier. Must be a multiple of rollup_factor so a
  // sealed page downsamples into whole next-tier points (no cross-page
  // accumulator, and a sealed page's data is always fully represented one
  // tier up before it becomes evictable).
  std::size_t page_points = 64;
  // Points of tier t aggregated into one point of tier t+1.
  std::size_t rollup_factor = 8;
  // Total tiers including tier 0 (raw). 1 disables downsampling.
  std::size_t tiers = 3;
  // Global page-pool bound across all series and tiers (see overcommit
  // caveat above). Pages are allocated lazily up to this count.
  std::size_t max_pages = 4096;

  void validate() const;  // throws std::invalid_argument
};

// One stored point. Tier 0 uses the degenerate form (count == 1,
// first == last, min == max == sum == value); rollups aggregate min/max/sum
// over *valid* samples only, while `count` keeps the full sample count so
// senescence-style accounting survives downsampling.
struct TierPoint {
  std::int64_t first_ns = 0;
  std::int64_t last_ns = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint32_t count = 0;
  std::uint32_t valid_count = 0;

  double mean() const {
    return valid_count != 0 ? sum / static_cast<double>(valid_count) : 0.0;
  }
};

struct QueryPoint {
  std::int64_t first_ns = 0;
  std::int64_t last_ns = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::uint64_t count = 0;
  std::uint64_t valid_count = 0;
  std::uint8_t tier = 0;
};

// A sub-range of the query whose data existed but has been evicted from
// every tier. Half-open [from_ns, to_ns).
struct QueryGap {
  std::int64_t from_ns = 0;
  std::int64_t to_ns = 0;
};

struct TierQueryResult {
  std::vector<QueryPoint> points;  // time-ordered; adjacent stitched
                                   // segments may overlap by at most one
                                   // coarse point's span at the boundary
  std::vector<QueryGap> gaps;
  bool complete() const { return gaps.empty(); }
};

struct TierStats {
  std::uint64_t pages = 0;   // live (open + sealed) pages of this tier
  std::uint64_t points = 0;  // live points of this tier
  std::uint64_t rollovers = 0;  // pages sealed (cumulative)
  std::uint64_t evictions = 0;  // pages evicted (cumulative)
  std::uint64_t evicted_points = 0;
};

struct StoreStats {
  std::uint64_t pages_in_use = 0;
  std::uint64_t pages_free = 0;
  std::uint64_t pool_pages = 0;  // allocated from the heap (never shrinks)
  std::uint64_t overcommits = 0;  // allocations past max_pages (all open)
  std::uint64_t samples = 0;      // raw samples recorded (cumulative)
  std::uint64_t imported_points = 0;  // points merged via import_points
  std::uint64_t bytes = 0;        // live point payload, pages × page bytes
};

class TieredStore {
 public:
  static constexpr std::size_t kMaxTiers = 8;

  explicit TieredStore(TieredStorageConfig config = {});
  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  bool enabled() const { return config_.enabled; }
  const TieredStorageConfig& config() const { return config_; }

  // Appends one raw sample to `series` (a dense slot index — the database
  // uses PathId * kMetricCount + metric). Timestamps are expected to be
  // non-decreasing per series (the director records in completion order);
  // out-of-order samples are stored as-is and keep positional first/last.
  void record(std::uint32_t series, std::int64_t at_ns, double value,
              bool valid);

  // Bulk import of already-aggregated points into tier 0 of `series` —
  // the receive side of federation (DESIGN.md §14): a parent merges a
  // child's sealed pages here. Points keep their counts (an imported point
  // may summarize many raw samples), participate in rollup/sealing/eviction
  // like locally recorded data, and are expected in non-decreasing time
  // order per series, like record().
  void import_points(std::uint32_t series, const TierPoint* points,
                     std::size_t n);

  // Called when a page seals, after it is marked sealed and before its
  // points roll up a tier — the points are intact and the hook may copy
  // them (federation spools tier-0 pages here). The hook MUST NOT reenter
  // the store: the sealing page is mid-mutation. Null (the default) costs
  // one branch per seal.
  using SealHook = std::function<void(std::uint32_t series, std::size_t tier,
                                      const TierPoint* points, std::size_t n)>;
  void set_seal_hook(SealHook hook) { seal_hook_ = std::move(hook); }

  // Oldest timestamp still retained for `series` across every tier — the
  // truthful "queries further back hit a gap" horizon. Empty when the
  // series holds no data (or the store is disabled).
  std::optional<std::int64_t> retention_horizon(std::uint32_t series) const;

  // Time-range query; `resolution_ns <= 0` requests the finest data. See
  // the header comment for tier selection and stitching semantics.
  // Inverted ranges (t1 < t0) yield an empty, gap-free result.
  TierQueryResult query(std::uint32_t series, std::int64_t t0_ns,
                        std::int64_t t1_ns, std::int64_t resolution_ns) const;

  // Tier the query planner would serve `resolution_ns` from, given the
  // series' observed mean sample interval (diagnostic; also the property
  // tests' oracle for the selection rule).
  std::size_t select_tier(std::uint32_t series,
                          std::int64_t resolution_ns) const;

  const StoreStats& stats() const { return stats_; }
  const TierStats& tier_stats(std::size_t tier) const {
    return tier_stats_[tier];
  }
  std::size_t tier_count() const { return config_.tiers; }
  std::size_t page_bytes() const;

  // Deterministic eviction accounting: a rolling FNV-1a hash over every
  // eviction record (seq, series, tier, first, last, points) plus the
  // total count — the model test's same-seed trace identity check.
  std::uint64_t eviction_hash() const { return eviction_hash_; }
  std::uint64_t evictions() const { return evictions_; }

  // Self-observability (DESIGN.md §10): "<prefix>.pool.*" gauges and
  // per-tier "<prefix>.tier<t>.{pages,points}" gauges plus
  // "<prefix>.tier<t>.{rollovers,evictions}" counters (seeded with the
  // cumulative totals at attach time, so they stay true counters).
  void attach_observability(obs::Registry& registry, const std::string& prefix);
  void detach_observability();

 private:
  struct Page {
    std::uint32_t series = 0;
    std::uint16_t used = 0;
    std::uint8_t tier = 0;
    std::uint64_t seal_seq = 0;  // 0 while open
    std::vector<TierPoint> points;
  };

  struct TierState {
    std::vector<std::int32_t> pages;  // time-ordered; the last may be open
    std::uint64_t rollovers = 0;
  };

  struct SeriesState {
    std::vector<TierState> tiers;  // sized config_.tiers on first record
    std::int64_t first_ns = 0;
    std::int64_t last_ns = 0;
    std::uint64_t samples = 0;
  };

  SeriesState& series_state(std::uint32_t series);
  void append_point(std::uint32_t series, SeriesState& s, std::size_t tier,
                    const TierPoint& point);
  void seal_page(std::uint32_t series, SeriesState& s, std::size_t tier,
                 std::int32_t page_index);
  std::int32_t alloc_page(std::uint32_t series, std::size_t tier);
  bool evict_one();

  // First retained timestamp of a tier (open page included); INT64_MAX when
  // the tier holds no points.
  std::int64_t retained_start(const SeriesState& s, std::size_t tier) const;
  void emit_range(const SeriesState& s, std::size_t tier, std::int64_t t0_ns,
                  std::int64_t t1_ns, std::int64_t before_ns,
                  bool open_page_only, TierQueryResult& out) const;

  TieredStorageConfig config_;
  std::vector<Page> pool_;
  std::vector<std::int32_t> free_;
  std::vector<SeriesState> series_;
  // Per-tier eviction FIFO of (page index, seal seq); the seq guards
  // against entries whose page was already recycled.
  std::deque<std::pair<std::int32_t, std::uint64_t>> sealed_fifo_[kMaxTiers];
  TierStats tier_stats_[kMaxTiers];
  StoreStats stats_;
  SealHook seal_hook_;
  std::uint64_t seal_counter_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t eviction_hash_ = 1469598103934665603ull;  // FNV-1a basis

  // Observability handles (null while detached; owned by the registry).
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  obs::Counter* obs_rollovers_[kMaxTiers] = {};
  obs::Counter* obs_evictions_[kMaxTiers] = {};
};

}  // namespace netmon::core
