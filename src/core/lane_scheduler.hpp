#pragma once

// Budgeted multi-lane probe scheduler — the generalization of the paper's
// §5.1.4 test sequencer that makes the C·S path matrix scale past 9×3.
//
// The paper offers two extremes: probe every path in parallel (peak overhead
// C·S·L/P, ≈59 Mbit/s on the HiPer-D matrix) or strictly serialize through
// a single slot (peak L/P ≈ 2.18 Mbit/s, senescence C·S·T). Neither serves
// a 100k-path fabric. The lane scheduler admits up to K concurrent probes
// ("lanes") subject to two admission gates:
//
//   budget   — the sum of the declared offered loads of in-flight probes
//              stays within an intrusiveness budget B bps (optionally
//              cross-checked against a live meter reading);
//   disjoint — no two in-flight probes share a link, so concurrent probes
//              never contend for the same bottleneck and each measurement
//              stays as clean as a serialized one.
//
// Candidates are ranked by priority class with senescence-weighted aging
// (effective priority grows with queue wait), so resource-manager-critical
// paths go first but no path starves; a hard starvation limit additionally
// front-runs any entry that has waited too long. The serial sequencer is
// the exact special case K=1, B=L/P: with one lane the first admission is
// always unconditional (progress guarantee), so admission order degrades to
// FIFO and reproduces the paper's golden trace bit for bit. Senescence
// generalizes from C·S·T to ⌈C·S/K⌉·T (DESIGN.md §11).
//
// Admission is indexed, not scanned (DESIGN.md §15). Earlier versions
// re-tested every deferred entry against the gates on every enqueue and
// every release — O(deferred × footprint) per admission, 32.6M futile gate
// scans over one hostile 10k-path soak. Now a waiting entry is gate-tested
// only when it heads its class's ready order; a failing test *parks* it on
// the first gate that blocked it (a per-class waiter heap under the busy
// LinkKey, or a budget wait-heap ordered by required headroom). A release
// wakes, per freed link, only the LOWEST-seq waiter of each class — the
// only parked entry that can possibly become that class's candidate — and
// budget waiters only as the freed watermark fits them. If a woken entry
// re-parks on a different gate while its link is still free, the wake is
// handed down to the link's next waiter (baton passing), so a convoy of
// 10k probes queued behind one trunk costs O(classes) wake-ups per
// release, not O(waiters). Each gate test is O(footprint); parked entries
// cost nothing until the state they wait on changes. The admission
// *policy* — first currently-admissible entry per class in FIFO order,
// ranked by aging/starvation — is unchanged, proven equivalent to a naive
// full-scan reference by the differential model test
// (tests/scheduler_model_test.cpp).
//
// Robustness contract (inherited from the original sequencer): a task's
// Done may be invoked exactly once; extra invocations are counted no-ops, a
// task that drops its Done uncalled releases the lane as "abandoned", and
// Dones outliving the scheduler degrade to no-ops. Lane accounting and the
// occupancy/waiter index are self-checking (check_consistency()).

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace netmon::core {

// Opaque identity of a network medium (link or shared segment) occupied by a
// probe. Only equality matters; callers derive keys from topology objects.
using LinkKey = std::uint64_t;

// Admission priority classes (paper §4.1: the resource manager names which
// paths it is actively making reconfiguration decisions about).
enum class ProbeClass : std::uint8_t {
  kBackground = 0,  // bulk matrix coverage
  kNormal = 1,      // default
  kCritical = 2,    // resource-manager-critical paths
};
constexpr std::size_t kProbeClassCount = 3;
const char* to_string(ProbeClass cls);

// What one queued probe will do to the network while it runs: the admission
// gates weigh this, the trace records it. An empty profile (unknown load,
// unknown footprint) is always admissible — constraints can only be applied
// to probes that declare themselves.
struct ProbeProfile {
  double offered_bps = 0.0;        // declared peak load while in flight
  ProbeClass priority = ProbeClass::kNormal;
  std::uint64_t tag = 0;           // caller identity (e.g. PathId) for traces
  std::vector<LinkKey> footprint;  // media the probe occupies, in route order
};

struct SchedulerConfig {
  // K: concurrent lanes. 1 reproduces the paper's serial test sequencer.
  std::size_t lanes = 1;
  // B: intrusiveness budget in bps over the declared offered loads of
  // in-flight probes. 0 disables the gate. An idle scheduler always admits
  // one probe regardless of B (progress guarantee) — the serial sequencer
  // itself offers exactly L/P, which must not deadlock under B = L/P.
  double budget_bps = 0.0;
  // Reject concurrent probes whose footprints share any LinkKey.
  bool link_disjoint = false;
  // Senescence-weighted aging: effective priority = class·8 + wait/quantum,
  // so a queued probe gains one class level per 8 quanta waited and any
  // class eventually outranks any other. Zero disables aging (pure class
  // order, FIFO within class).
  std::int64_t aging_quantum_ns = 500'000'000;  // 500 ms
  // Hard bound: an entry that has waited at least this long is admitted
  // before any non-starving entry (oldest first), still subject to the
  // budget/disjoint gates. Zero disables.
  std::int64_t starvation_limit_ns = 0;
};

struct SchedulerStats {
  std::uint64_t admitted = 0;            // == launched
  // A gate test that failed and parked the entry on the budget watermark /
  // a busy link's waiter list. Counted once per blocking transition, not
  // once per scan pass — a parked entry costs nothing until woken.
  std::uint64_t deferred_budget = 0;
  std::uint64_t deferred_disjoint = 0;
  std::uint64_t starvation_picks = 0;    // admissions forced by the limit
  std::uint64_t priority_inversions = 0; // admitted over an older entry
  // Incremental wake-up accounting (DESIGN.md §15): entries moved from a
  // park structure back to ready order by a wake event (blocking link
  // freed, budget watermark rose, or a reconfiguration re-opened a gate).
  // This is the *entire* re-test cost of a release — the honest successor
  // of the old deferred×release full-scan count, assertable from SelfMib.
  std::uint64_t wake_tests = 0;
  // Woken entries whose next gate test still failed (re-parked): wake-ups
  // that did no useful work. A high futile share means many waiters block
  // on more than one gate (e.g. everything queues behind one trunk).
  std::uint64_t futile_wakeups = 0;

  friend bool operator==(const SchedulerStats& a, const SchedulerStats& b) {
    return a.admitted == b.admitted &&
           a.deferred_budget == b.deferred_budget &&
           a.deferred_disjoint == b.deferred_disjoint &&
           a.starvation_picks == b.starvation_picks &&
           a.priority_inversions == b.priority_inversions &&
           a.wake_tests == b.wake_tests &&
           a.futile_wakeups == b.futile_wakeups;
  }
  friend bool operator!=(const SchedulerStats& a, const SchedulerStats& b) {
    return !(a == b);
  }
};

// One admission, in admission order — the deterministic trace the property
// tests replay (same seed ⇒ identical trace).
struct AdmissionRecord {
  std::uint64_t admit_seq = 0;  // 0-based admission index
  std::int64_t at_ns = 0;       // scheduler clock at admission
  std::uint64_t entry_seq = 0;  // enqueue order of the admitted entry
  std::uint64_t tag = 0;        // ProbeProfile::tag
  ProbeClass priority = ProbeClass::kNormal;
  double offered_bps = 0.0;
  std::uint32_t in_flight_after = 0;
  std::uint32_t lane = 0;       // smallest lane id free at admission
};

class LaneScheduler {
 public:
  // A task receives a completion callback it must invoke exactly once.
  using Done = std::function<void()>;
  using Task = std::function<void(Done)>;

  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  explicit LaneScheduler(SchedulerConfig config = {});
  ~LaneScheduler();
  LaneScheduler(const LaneScheduler&) = delete;
  LaneScheduler& operator=(const LaneScheduler&) = delete;

  void configure(const SchedulerConfig& config);
  const SchedulerConfig& config() const { return config_; }
  void set_lanes(std::size_t lanes);

  // Clock used for aging, starvation, and trace timestamps. Without one the
  // scheduler is timeless: aging is inert and admission is class-then-FIFO.
  void set_clock(std::function<std::int64_t()> now_ns);

  // Live load reading (e.g. obs::IntrusivenessMeter's last monitoring-class
  // sample). When set and the budget gate is active, a candidate is also
  // held back while `live() + offered > B` — unless the scheduler is idle,
  // preserving the progress guarantee. A live reading can drop without any
  // scheduler event, so while a probe is installed every admission pass
  // re-wakes the budget-parked set (the watermark cannot index an external
  // signal); link-parked entries still wake incrementally.
  void set_load_probe(std::function<double()> live_bps);

  void enqueue(Task task) { enqueue(std::move(task), ProbeProfile{}); }
  void enqueue(Task task, ProbeProfile profile);

  std::size_t in_flight() const { return in_flight_; }
  std::size_t queued() const { return queued_; }
  std::uint64_t launched() const { return launched_; }
  std::uint64_t completed() const { return completed_; }
  // Contract violations absorbed: extra Done invocations beyond the first,
  // and lanes reclaimed because every copy of a Done was destroyed uncalled.
  std::uint64_t double_dones() const { return double_dones_; }
  std::uint64_t abandoned() const { return abandoned_; }
  bool idle() const { return in_flight_ == 0 && queued_ == 0; }
  // Declared load committed to in-flight probes (the budget gate's view).
  double committed_bps() const { return committed_bps_; }
  // Links occupied by in-flight probes.
  std::size_t busy_links() const { return occupied_links_; }
  // Waiting entries currently parked on a busy link / the budget watermark.
  // queued() - parked_on_links() - parked_on_budget() entries are in ready
  // order (not known-blocked; heads are gate-tested at admission time).
  std::size_t parked_on_links() const { return parked_links_; }
  std::size_t parked_on_budget() const { return parked_budget_; }
  const SchedulerStats& scheduler_stats() const { return sched_stats_; }

  // Lane-accounting and index invariants: every launch is exactly one of
  // completed, abandoned, or still in flight; the committed budget and the
  // link-occupancy index drain to zero when nothing is in flight; the
  // occupancy counts equal the multiset union of in-flight footprints;
  // every link-parked entry waits under a currently busy key, and every
  // budget-parked entry genuinely exceeds the current headroom. Throws
  // std::logic_error on violation.
  void check_consistency() const;

  // Re-classifies every queued entry whose profile tag equals `tag`
  // (DESIGN.md §12: the control plane concentrates probe budget on volatile
  // or decision-critical paths). Moved entries keep their enqueue seq and
  // merge into the destination class in seq order, preserving the per-class
  // FIFO invariant; in-flight probes are unaffected. Returns the number of
  // entries moved.
  std::size_t reprioritize(std::uint64_t tag, ProbeClass cls);

  // Bounded admission trace; capacity 0 (default) disables recording.
  void record_admissions(std::size_t capacity);
  const std::vector<AdmissionRecord>& admissions() const { return trace_; }
  std::uint64_t admissions_recorded() const { return trace_emitted_; }

  // Self-observability (DESIGN.md §10/§11/§15). Registers "<prefix>."
  // counters and gauges plus, when `now_ns` is provided, slot-wait and
  // slot-hold histograms (the serialization stall a probe suffers between
  // enqueue and launch is exactly the senescence the paper trades for
  // bounded intrusiveness). A now_ns passed here also becomes the scheduler
  // clock.
  void attach_observability(obs::Registry& registry,
                            std::string prefix = "sequencer",
                            std::function<std::int64_t()> now_ns = {});
  void detach_observability();

 private:
  struct DoneState;
  struct LinkState;

  // One waiting or in-flight request. Nodes are pool-allocated with stable
  // addresses (intrusive list members) and recycled through a free list;
  // enqueue adopts the caller's footprint buffer (ProbeProfile is taken by
  // value) rather than copying it, so a warmed-up scheduler enqueues
  // without touching the allocator.
  struct Node {
    Task fn;
    std::vector<LinkKey> footprint;
    // Occupancy entries for `footprint`, cached at admission so release
    // decrements the counts without re-hashing the keys. LinkState
    // addresses are stable (node-based map, entries never erased while a
    // probe occupies them).
    std::vector<LinkState*> link_states;
    double offered_bps = 0.0;
    std::uint64_t tag = 0;
    std::uint64_t seq = 0;
    std::int64_t enqueued_ns = 0;
    std::int64_t launched_ns = 0;
    LinkKey park_key = 0;       // blocking link while kParkedLink
    // While kReady after a link wake: the link whose wake this node carries.
    // If the node re-parks on a different gate while that link is still
    // free, the wake passes to the link's next waiter (baton passing).
    LinkKey woken_from = 0;
    LinkState* woken_from_ls = nullptr;
    // Refs in ready_ heaps that revalidate for this node's current
    // (seq, cls): while > 0 a wake can flip state to kReady without
    // pushing a duplicate ref (a park leaves its ref buried; re-waking
    // makes it live again). Undercounting only costs a duplicate push.
    std::uint32_t ready_refs = 0;
    Node* all_prev = nullptr;   // per-class seq-ordered list of waiters
    Node* all_next = nullptr;
    std::uint32_t lane = 0;     // lane id while in flight
    ProbeClass cls = ProbeClass::kNormal;
    enum class State : std::uint8_t {
      kFree,         // on the node free list
      kReady,        // waiting, not known-blocked (in the ready heap)
      kParkedLink,   // waiting in busy_links_[park_key]'s waiter heap
      kParkedBudget, // waiting on the budget watermark heap
      kInFlight,
    } state = State::kFree;
    bool woken = false;  // last transition was a wake (futile accounting)
  };

  // Lazy-deletion heap references: validity is re-checked against the node
  // at pop time (seq/class/state/park key), so parking or admitting an
  // entry never has to search a heap.
  struct ReadyRef {
    std::uint64_t seq = 0;
    Node* node = nullptr;
  };
  struct BudgetRef {
    double offered_bps = 0.0;
    std::uint64_t seq = 0;
    Node* node = nullptr;
  };
  struct LinkState {
    std::uint32_t count = 0;  // in-flight probes occupying this link
    // Entries parked on this link: per-class lazy min-heaps by seq, so a
    // release can wake exactly the one waiter per class that could become
    // that class's candidate. Zero-count entries persist (live waiters'
    // wakes ride batons, see Node::woken_from; dead entries keep the map
    // and their heap capacity warm — the index is bounded by the distinct
    // links ever probed, and sweep_link_states() reclaims on configure).
    std::vector<ReadyRef> waiters[kProbeClassCount];
  };
  struct ClassList {
    Node* head = nullptr;
    Node* tail = nullptr;
  };
  enum class Gate : std::uint8_t { kPass, kBudget, kLink };
  struct GateResult {
    Gate gate = Gate::kPass;
    LinkKey link = 0;
    LinkState* ls = nullptr;  // the blocking link's entry when gate == kLink
  };

  std::int64_t now() const { return now_ns_ ? now_ns_() : 0; }
  double budget_ceiling() const;
  Node* alloc_node();
  void free_node(Node* n);
  void all_push_back(Node* n);
  void all_unlink(Node* n);
  void all_insert_sorted(Node* n);
  void ready_push(Node* n);
  Node* ready_peek(std::size_t cls);
  void ready_pop(std::size_t cls);
  GateResult test_gates(const Node& n);
  void park(Node* n, const GateResult& why);
  void wake(Node* n, LinkKey from, LinkState* from_ls);
  // Pops stale refs off one class's waiter heap; wakes the min-seq live
  // waiter if `wake_one`.
  void pop_and_wake(LinkKey key, LinkState& ls, std::size_t cls,
                    bool wake_one);
  // count hit 0: one wake per class
  void wake_link_free(LinkKey key, LinkState& ls);
  // baton handoff
  void wake_next_on(LinkKey key, LinkState& ls, std::size_t cls);
  void wake_budget_fits();
  void rewake_all_parked();
  void sweep_link_states();  // drop stale refs / empty zero-count entries
  Node* pick();
  void admit(Node* n);
  void finish(Node* n, bool abandoned);
  void pump();

  SchedulerConfig config_;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
  std::size_t parked_links_ = 0;
  std::size_t parked_budget_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t double_dones_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t next_entry_seq_ = 0;
  double committed_bps_ = 0.0;
  bool pumping_ = false;  // flattens re-entrant pumps into the outer loop

  // Stable node storage: fixed-size chunks so a cold scheduler pays one
  // allocation per kNodePoolChunk enqueues, not one per node.
  static constexpr std::size_t kNodePoolChunk = 64;
  std::vector<std::unique_ptr<Node[]>> pool_chunks_;
  std::size_t pool_used_ = 0;  // slots used in the newest chunk
  std::vector<Node*> free_nodes_;
  ClassList all_[kProbeClassCount];  // every waiting entry, seq order
  std::vector<ReadyRef> ready_[kProbeClassCount];  // min-heaps by seq
  std::vector<BudgetRef> budget_wait_;  // min-heap by (offered, seq)
  // Occupancy index: LinkKey -> in-flight count + parked waiter heaps.
  std::unordered_map<LinkKey, LinkState> busy_links_;
  std::size_t occupied_links_ = 0;  // entries with count > 0
  // Lane id recycling: smallest freed id first, deterministic.
  std::vector<std::uint32_t> free_lanes_;  // min-heap
  std::uint32_t lane_high_ = 0;

  SchedulerStats sched_stats_;
  std::function<std::int64_t()> now_ns_;
  std::function<double()> live_bps_;
  std::vector<AdmissionRecord> trace_;
  std::size_t trace_capacity_ = 0;
  std::uint64_t trace_emitted_ = 0;
  // Liveness token observed (weakly) by outstanding Done callbacks so a
  // Done fired after the scheduler is gone cannot touch freed memory.
  std::shared_ptr<int> liveness_ = std::make_shared<int>(0);

  // Observability handles (null while detached; owned by the registry).
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  bool obs_timed_ = false;
  obs::Histogram* obs_slot_wait_ = nullptr;
  obs::Histogram* obs_slot_hold_ = nullptr;
};

}  // namespace netmon::core
