#pragma once

// Budgeted multi-lane probe scheduler — the generalization of the paper's
// §5.1.4 test sequencer that makes the C·S path matrix scale past 9×3.
//
// The paper offers two extremes: probe every path in parallel (peak overhead
// C·S·L/P, ≈59 Mbit/s on the HiPer-D matrix) or strictly serialize through
// a single slot (peak L/P ≈ 2.18 Mbit/s, senescence C·S·T). Neither serves
// a 10k-path fabric. The lane scheduler admits up to K concurrent probes
// ("lanes") subject to two admission gates:
//
//   budget   — the sum of the declared offered loads of in-flight probes
//              stays within an intrusiveness budget B bps (optionally
//              cross-checked against a live meter reading);
//   disjoint — no two in-flight probes share a link, so concurrent probes
//              never contend for the same bottleneck and each measurement
//              stays as clean as a serialized one.
//
// Candidates are ranked by priority class with senescence-weighted aging
// (effective priority grows with queue wait), so resource-manager-critical
// paths go first but no path starves; a hard starvation limit additionally
// front-runs any entry that has waited too long. The serial sequencer is
// the exact special case K=1, B=L/P: with one lane the first admission is
// always unconditional (progress guarantee), so admission order degrades to
// FIFO and reproduces the paper's golden trace bit for bit. Senescence
// generalizes from C·S·T to ⌈C·S/K⌉·T (DESIGN.md §11).
//
// Robustness contract (inherited from the original sequencer): a task's
// Done may be invoked exactly once; extra invocations are counted no-ops, a
// task that drops its Done uncalled releases the lane as "abandoned", and
// Dones outliving the scheduler degrade to no-ops. Lane accounting is
// self-checking (check_consistency()).

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace netmon::core {

// Opaque identity of a network medium (link or shared segment) occupied by a
// probe. Only equality matters; callers derive keys from topology objects.
using LinkKey = std::uint64_t;

// Admission priority classes (paper §4.1: the resource manager names which
// paths it is actively making reconfiguration decisions about).
enum class ProbeClass : std::uint8_t {
  kBackground = 0,  // bulk matrix coverage
  kNormal = 1,      // default
  kCritical = 2,    // resource-manager-critical paths
};
constexpr std::size_t kProbeClassCount = 3;
const char* to_string(ProbeClass cls);

// What one queued probe will do to the network while it runs: the admission
// gates weigh this, the trace records it. An empty profile (unknown load,
// unknown footprint) is always admissible — constraints can only be applied
// to probes that declare themselves.
struct ProbeProfile {
  double offered_bps = 0.0;        // declared peak load while in flight
  ProbeClass priority = ProbeClass::kNormal;
  std::uint64_t tag = 0;           // caller identity (e.g. PathId) for traces
  std::vector<LinkKey> footprint;  // media the probe occupies, in route order
};

struct SchedulerConfig {
  // K: concurrent lanes. 1 reproduces the paper's serial test sequencer.
  std::size_t lanes = 1;
  // B: intrusiveness budget in bps over the declared offered loads of
  // in-flight probes. 0 disables the gate. An idle scheduler always admits
  // one probe regardless of B (progress guarantee) — the serial sequencer
  // itself offers exactly L/P, which must not deadlock under B = L/P.
  double budget_bps = 0.0;
  // Reject concurrent probes whose footprints share any LinkKey.
  bool link_disjoint = false;
  // Senescence-weighted aging: effective priority = class·8 + wait/quantum,
  // so a queued probe gains one class level per 8 quanta waited and any
  // class eventually outranks any other. Zero disables aging (pure class
  // order, FIFO within class).
  std::int64_t aging_quantum_ns = 500'000'000;  // 500 ms
  // Hard bound: an entry that has waited at least this long is admitted
  // before any non-starving entry (oldest first), still subject to the
  // budget/disjoint gates. Zero disables.
  std::int64_t starvation_limit_ns = 0;
};

struct SchedulerStats {
  std::uint64_t admitted = 0;            // == launched
  std::uint64_t deferred_budget = 0;     // scan skips due to the budget gate
  std::uint64_t deferred_disjoint = 0;   // scan skips due to shared links
  std::uint64_t starvation_picks = 0;    // admissions forced by the limit
  std::uint64_t priority_inversions = 0; // admitted over an older entry
};

// One admission, in admission order — the deterministic trace the property
// tests replay (same seed ⇒ identical trace).
struct AdmissionRecord {
  std::uint64_t admit_seq = 0;  // 0-based admission index
  std::int64_t at_ns = 0;       // scheduler clock at admission
  std::uint64_t entry_seq = 0;  // enqueue order of the admitted entry
  std::uint64_t tag = 0;        // ProbeProfile::tag
  ProbeClass priority = ProbeClass::kNormal;
  double offered_bps = 0.0;
  std::uint32_t in_flight_after = 0;
};

class LaneScheduler {
 public:
  // A task receives a completion callback it must invoke exactly once.
  using Done = std::function<void()>;
  using Task = std::function<void(Done)>;

  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  explicit LaneScheduler(SchedulerConfig config = {});
  ~LaneScheduler();
  LaneScheduler(const LaneScheduler&) = delete;
  LaneScheduler& operator=(const LaneScheduler&) = delete;

  void configure(const SchedulerConfig& config);
  const SchedulerConfig& config() const { return config_; }
  void set_lanes(std::size_t lanes);

  // Clock used for aging, starvation, and trace timestamps. Without one the
  // scheduler is timeless: aging is inert and admission is class-then-FIFO.
  void set_clock(std::function<std::int64_t()> now_ns);

  // Live load reading (e.g. obs::IntrusivenessMeter's last monitoring-class
  // sample). When set and the budget gate is active, a candidate is also
  // held back while `live() + offered > B` — unless the scheduler is idle,
  // preserving the progress guarantee.
  void set_load_probe(std::function<double()> live_bps);

  void enqueue(Task task) { enqueue(std::move(task), ProbeProfile{}); }
  void enqueue(Task task, ProbeProfile profile);

  std::size_t in_flight() const { return in_flight_; }
  std::size_t queued() const { return queued_; }
  std::uint64_t launched() const { return launched_; }
  std::uint64_t completed() const { return completed_; }
  // Contract violations absorbed: extra Done invocations beyond the first,
  // and lanes reclaimed because every copy of a Done was destroyed uncalled.
  std::uint64_t double_dones() const { return double_dones_; }
  std::uint64_t abandoned() const { return abandoned_; }
  bool idle() const { return in_flight_ == 0 && queued_ == 0; }
  // Declared load committed to in-flight probes (the budget gate's view).
  double committed_bps() const { return committed_bps_; }
  // Links occupied by in-flight probes (multiset cardinality).
  std::size_t busy_links() const { return busy_links_.size(); }
  const SchedulerStats& scheduler_stats() const { return sched_stats_; }

  // Lane-accounting invariant: every launch is exactly one of completed,
  // abandoned, or still in flight; plus the committed budget and busy-link
  // multiset must drain to zero when nothing is in flight. Throws
  // std::logic_error on violation.
  void check_consistency() const;

  // Re-classifies every queued entry whose profile tag equals `tag`
  // (DESIGN.md §12: the control plane concentrates probe budget on volatile
  // or decision-critical paths). Moved entries keep their enqueue seq and
  // merge into the destination class in seq order, preserving the per-class
  // FIFO invariant; in-flight probes are unaffected. Returns the number of
  // entries moved.
  std::size_t reprioritize(std::uint64_t tag, ProbeClass cls);

  // Bounded admission trace; capacity 0 (default) disables recording.
  void record_admissions(std::size_t capacity);
  const std::vector<AdmissionRecord>& admissions() const { return trace_; }
  std::uint64_t admissions_recorded() const { return trace_emitted_; }

  // Self-observability (DESIGN.md §10/§11). Registers "<prefix>." counters
  // and gauges plus, when `now_ns` is provided, slot-wait and slot-hold
  // histograms (the serialization stall a probe suffers between enqueue and
  // launch is exactly the senescence the paper trades for bounded
  // intrusiveness). A now_ns passed here also becomes the scheduler clock.
  void attach_observability(obs::Registry& registry,
                            std::string prefix = "sequencer",
                            std::function<std::int64_t()> now_ns = {});
  void detach_observability();

 private:
  struct DoneState;
  struct Entry {
    Task fn;
    ProbeProfile profile;
    std::int64_t enqueued_ns = 0;
    std::uint64_t seq = 0;
  };

  std::int64_t now() const { return now_ns_ ? now_ns_() : 0; }
  bool gates_admit(const Entry& entry, bool idle_scheduler);
  // Scans class queues for the best admissible candidate; returns false if
  // nothing can be admitted right now.
  bool pick(std::size_t& cls_out, std::size_t& pos_out);
  void admit(std::size_t cls, std::size_t pos);
  void finish(DoneState& state, bool abandoned);
  void pump();

  SchedulerConfig config_;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t double_dones_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t next_entry_seq_ = 0;
  double committed_bps_ = 0.0;
  bool pumping_ = false;  // flattens re-entrant pumps into the outer loop
  // One FIFO per class: within a class an older entry never ranks below a
  // younger one, so each class's best admissible candidate is the first
  // admissible entry in queue order.
  std::deque<Entry> queues_[kProbeClassCount];
  std::unordered_map<LinkKey, std::uint32_t> busy_links_;
  SchedulerStats sched_stats_;
  std::function<std::int64_t()> now_ns_;
  std::function<double()> live_bps_;
  std::vector<AdmissionRecord> trace_;
  std::size_t trace_capacity_ = 0;
  std::uint64_t trace_emitted_ = 0;
  // Liveness token observed (weakly) by outstanding Done callbacks so a
  // Done fired after the scheduler is gone cannot touch freed memory.
  std::shared_ptr<int> liveness_ = std::make_shared<int>(0);

  // Observability handles (null while detached; owned by the registry).
  obs::Registry* obs_registry_ = nullptr;
  std::string obs_prefix_;
  bool obs_timed_ = false;
  obs::Histogram* obs_slot_wait_ = nullptr;
  obs::Histogram* obs_slot_hold_ = nullptr;
};

}  // namespace netmon::core
