#include "core/path.hpp"

#include <stdexcept>

namespace netmon::core {

std::string ProcessEndpoint::to_string() const {
  std::string out = process;
  out += '@';
  out += host.to_string();
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  return out;
}

Path::Path(std::vector<ProcessEndpoint> endpoints)
    : endpoints_(std::move(endpoints)) {
  if (endpoints_.size() < 2) {
    throw std::invalid_argument("Path: needs at least two endpoints");
  }
}

Path::Path(ProcessEndpoint from, ProcessEndpoint to)
    : Path(std::vector<ProcessEndpoint>{std::move(from), std::move(to)}) {}

std::pair<const ProcessEndpoint&, const ProcessEndpoint&> Path::leg(
    std::size_t i) const {
  if (i + 1 >= endpoints_.size()) throw std::out_of_range("Path::leg");
  return {endpoints_[i], endpoints_[i + 1]};
}

std::string Path::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i) out += " -> ";
    out += endpoints_[i].to_string();
  }
  return out;
}

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kThroughput: return "throughput";
    case Metric::kOneWayLatency: return "one-way-latency";
    case Metric::kReachability: return "reachability";
  }
  return "?";
}

}  // namespace netmon::core
