#include "core/path.hpp"

#include <stdexcept>

namespace netmon::core {

std::string ProcessEndpoint::to_string() const {
  std::string out = process;
  out += '@';
  out += host.to_string();
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  return out;
}

namespace {

// FNV-1a over the endpoint fields; length-prefix the strings so
// ("ab","c") and ("a","bc") cannot collide structurally.
std::size_t hash_endpoints(const std::vector<ProcessEndpoint>& endpoints) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  for (const ProcessEndpoint& e : endpoints) {
    const std::uint64_t len = e.process.size();
    mix(&len, sizeof len);
    mix(e.process.data(), e.process.size());
    const std::uint32_t raw = e.host.raw();
    mix(&raw, sizeof raw);
    mix(&e.port, sizeof e.port);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

Path::Path(std::vector<ProcessEndpoint> endpoints)
    : endpoints_(std::move(endpoints)) {
  if (endpoints_.size() < 2) {
    throw std::invalid_argument("Path: needs at least two endpoints");
  }
  hash_ = hash_endpoints(endpoints_);
}

Path::Path(ProcessEndpoint from, ProcessEndpoint to)
    : Path(std::vector<ProcessEndpoint>{std::move(from), std::move(to)}) {}

std::pair<const ProcessEndpoint&, const ProcessEndpoint&> Path::leg(
    std::size_t i) const {
  if (i + 1 >= endpoints_.size()) throw std::out_of_range("Path::leg");
  return {endpoints_[i], endpoints_[i + 1]};
}

std::string Path::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i) out += " -> ";
    out += endpoints_[i].to_string();
  }
  return out;
}

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kThroughput: return "throughput";
    case Metric::kOneWayLatency: return "one-way-latency";
    case Metric::kReachability: return "reachability";
  }
  return "?";
}

const char* to_string(SampleQuality quality) {
  switch (quality) {
    case SampleQuality::kFresh: return "fresh";
    case SampleQuality::kRetried: return "retried";
    case SampleQuality::kFallback: return "fallback";
    case SampleQuality::kStale: return "stale";
  }
  return "?";
}

}  // namespace netmon::core
