#include "core/tiered_store.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netmon::core {

namespace {

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

TierPoint merge_points(const TierPoint* pts, std::size_t n) {
  TierPoint m;
  m.first_ns = pts[0].first_ns;
  m.last_ns = pts[n - 1].last_ns;
  bool any_valid = false;
  for (std::size_t i = 0; i < n; ++i) {
    const TierPoint& p = pts[i];
    m.count += p.count;
    m.valid_count += p.valid_count;
    m.sum += p.sum;
    if (p.valid_count != 0) {
      if (!any_valid) {
        m.min = p.min;
        m.max = p.max;
        any_valid = true;
      } else {
        m.min = std::min(m.min, p.min);
        m.max = std::max(m.max, p.max);
      }
    }
  }
  return m;
}

}  // namespace

void TieredStorageConfig::validate() const {
  if (!enabled) return;
  if (tiers < 1 || tiers > TieredStore::kMaxTiers) {
    throw std::invalid_argument("TieredStorageConfig: tiers must be 1..8");
  }
  if (page_points < 2) {
    throw std::invalid_argument("TieredStorageConfig: page_points must be >= 2");
  }
  if (tiers > 1) {
    if (rollup_factor < 2) {
      throw std::invalid_argument(
          "TieredStorageConfig: rollup_factor must be >= 2");
    }
    if (page_points % rollup_factor != 0) {
      throw std::invalid_argument(
          "TieredStorageConfig: page_points must be a multiple of "
          "rollup_factor");
    }
  }
  if (max_pages < 2) {
    throw std::invalid_argument("TieredStorageConfig: max_pages must be >= 2");
  }
}

TieredStore::TieredStore(TieredStorageConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

std::size_t TieredStore::page_bytes() const {
  return config_.page_points * sizeof(TierPoint);
}

TieredStore::SeriesState& TieredStore::series_state(std::uint32_t series) {
  if (series >= series_.size()) series_.resize(series + 1);
  SeriesState& s = series_[series];
  if (s.tiers.empty()) s.tiers.resize(config_.tiers);
  return s;
}

void TieredStore::record(std::uint32_t series, std::int64_t at_ns,
                         double value, bool valid) {
  if (!config_.enabled) return;
  SeriesState& s = series_state(series);
  if (s.samples == 0) s.first_ns = at_ns;
  s.last_ns = at_ns;
  ++s.samples;
  ++stats_.samples;
  TierPoint point;
  point.first_ns = at_ns;
  point.last_ns = at_ns;
  if (valid) {
    point.min = point.max = point.sum = value;
    point.valid_count = 1;
  }
  point.count = 1;
  append_point(series, s, 0, point);
}

void TieredStore::import_points(std::uint32_t series, const TierPoint* points,
                                std::size_t n) {
  if (!config_.enabled || n == 0) return;
  SeriesState& s = series_state(series);
  for (std::size_t i = 0; i < n; ++i) {
    const TierPoint& p = points[i];
    if (s.samples == 0) s.first_ns = p.first_ns;
    s.last_ns = p.last_ns;
    s.samples += p.count;
    ++stats_.imported_points;
    append_point(series, s, 0, p);
  }
}

std::optional<std::int64_t> TieredStore::retention_horizon(
    std::uint32_t series) const {
  if (!config_.enabled || series >= series_.size()) return std::nullopt;
  const SeriesState& s = series_[series];
  if (s.tiers.empty()) return std::nullopt;
  std::int64_t earliest = kNever;
  for (std::size_t t = 0; t < config_.tiers; ++t) {
    earliest = std::min(earliest, retained_start(s, t));
  }
  if (earliest == kNever) return std::nullopt;
  return earliest;
}

void TieredStore::append_point(std::uint32_t series, SeriesState& s,
                               std::size_t tier, const TierPoint& point) {
  TierState& ts = s.tiers[tier];
  std::int32_t idx;
  if (ts.pages.empty() || pool_[ts.pages.back()].seal_seq != 0) {
    idx = alloc_page(series, tier);
    ts.pages.push_back(idx);
  } else {
    idx = ts.pages.back();
  }
  Page& page = pool_[idx];
  page.points[page.used++] = point;
  ++tier_stats_[tier].points;
  if (page.used == config_.page_points) seal_page(series, s, tier, idx);
}

void TieredStore::seal_page(std::uint32_t series, SeriesState& s,
                            std::size_t tier, std::int32_t page_index) {
  {
    Page& page = pool_[page_index];
    page.seal_seq = ++seal_counter_;
    sealed_fifo_[tier].emplace_back(page_index, page.seal_seq);
  }
  ++s.tiers[tier].rollovers;
  ++tier_stats_[tier].rollovers;
  if constexpr (obs::kCompiledIn) {
    if (obs_rollovers_[tier] != nullptr) obs_rollovers_[tier]->inc();
  }
  // The hook sees the page before the recursive rollup below, which may
  // need a page and evict — possibly this very one.
  if (seal_hook_) {
    const Page& page = pool_[page_index];
    seal_hook_(series, tier, page.points.data(), page.used);
  }
  if (tier + 1 >= config_.tiers) return;

  // Downsample the sealed page into whole next-tier points. Copy first: the
  // recursive append may need a page and evict — possibly this very page.
  const std::size_t groups = config_.page_points / config_.rollup_factor;
  std::vector<TierPoint> merged;
  merged.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    merged.push_back(
        merge_points(pool_[page_index].points.data() + g * config_.rollup_factor,
                     config_.rollup_factor));
  }
  for (const TierPoint& m : merged) append_point(series, s, tier + 1, m);
}

std::int32_t TieredStore::alloc_page(std::uint32_t series, std::size_t tier) {
  std::int32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    --stats_.pages_free;
  } else if (pool_.size() < config_.max_pages) {
    pool_.emplace_back();
    idx = static_cast<std::int32_t>(pool_.size() - 1);
    ++stats_.pool_pages;
  } else if (evict_one()) {
    idx = free_.back();
    free_.pop_back();
    --stats_.pages_free;
  } else {
    // Every pooled page is an open write head: overcommit rather than drop
    // live samples (see the header's bound caveat).
    ++stats_.overcommits;
    pool_.emplace_back();
    idx = static_cast<std::int32_t>(pool_.size() - 1);
    ++stats_.pool_pages;
  }
  Page& page = pool_[idx];
  page.series = series;
  page.tier = static_cast<std::uint8_t>(tier);
  page.used = 0;
  page.seal_seq = 0;
  if (page.points.size() != config_.page_points) {
    page.points.resize(config_.page_points);
  }
  ++stats_.pages_in_use;
  stats_.bytes += page_bytes();
  ++tier_stats_[tier].pages;
  return idx;
}

bool TieredStore::evict_one() {
  for (std::size_t tier = 0; tier < config_.tiers; ++tier) {
    auto& fifo = sealed_fifo_[tier];
    while (!fifo.empty()) {
      const auto [idx, seq] = fifo.front();
      fifo.pop_front();
      Page& page = pool_[idx];
      if (page.seal_seq != seq) continue;  // recycled since sealing
      // Within one series×tier, seal order is time order, so the global
      // FIFO head is that series' oldest retained sealed page.
      auto& pages = series_[page.series].tiers[tier].pages;
      auto it = std::find(pages.begin(), pages.end(), idx);
      if (it != pages.end()) pages.erase(it);

      fnv_mix(eviction_hash_, seq);
      fnv_mix(eviction_hash_, page.series);
      fnv_mix(eviction_hash_, tier);
      fnv_mix(eviction_hash_,
              static_cast<std::uint64_t>(page.points[0].first_ns));
      fnv_mix(eviction_hash_,
              static_cast<std::uint64_t>(page.points[page.used - 1].last_ns));
      fnv_mix(eviction_hash_, page.used);
      ++evictions_;
      ++tier_stats_[tier].evictions;
      tier_stats_[tier].evicted_points += page.used;
      tier_stats_[tier].points -= page.used;
      --tier_stats_[tier].pages;
      --stats_.pages_in_use;
      stats_.bytes -= page_bytes();
      if constexpr (obs::kCompiledIn) {
        if (obs_evictions_[tier] != nullptr) obs_evictions_[tier]->inc();
      }
      page.seal_seq = 0;
      page.used = 0;
      free_.push_back(idx);
      ++stats_.pages_free;
      return true;
    }
  }
  return false;
}

std::int64_t TieredStore::retained_start(const SeriesState& s,
                                         std::size_t tier) const {
  const TierState& ts = s.tiers[tier];
  if (ts.pages.empty()) return kNever;
  const Page& page = pool_[ts.pages.front()];
  if (page.used == 0) return kNever;
  return page.points[0].first_ns;
}

std::size_t TieredStore::select_tier(std::uint32_t series,
                                     std::int64_t resolution_ns) const {
  if (series >= series_.size()) return 0;
  const SeriesState& s = series_[series];
  if (resolution_ns <= 0 || s.samples < 2) return 0;
  double interval = static_cast<double>(s.last_ns - s.first_ns) /
                    static_cast<double>(s.samples - 1);
  if (interval < 1.0) interval = 1.0;
  // Coarsest tier whose estimated per-point span (mean raw interval ×
  // rollup^tier, evicted history included) still fits the resolution; a
  // resolution coarser than every tier serves from the coarsest.
  std::size_t tier = 0;
  double span = interval;
  while (tier + 1 < config_.tiers) {
    const double next = span * static_cast<double>(config_.rollup_factor);
    if (next > static_cast<double>(resolution_ns)) break;
    span = next;
    ++tier;
  }
  return tier;
}

void TieredStore::emit_range(const SeriesState& s, std::size_t tier,
                             std::int64_t t0_ns, std::int64_t t1_ns,
                             std::int64_t before_ns, bool open_page_only,
                             TierQueryResult& out) const {
  const TierState& ts = s.tiers[tier];
  for (const std::int32_t idx : ts.pages) {
    const Page& page = pool_[idx];
    if (open_page_only && page.seal_seq != 0) continue;
    if (page.used == 0) continue;
    if (page.points[0].first_ns > t1_ns) break;  // pages are time-ordered
    if (page.points[page.used - 1].last_ns < t0_ns) continue;
    for (std::uint16_t i = 0; i < page.used; ++i) {
      const TierPoint& p = page.points[i];
      if (p.last_ns < t0_ns) continue;
      if (p.first_ns > t1_ns) return;
      if (p.first_ns >= before_ns) return;  // finer coverage takes over here
      QueryPoint q;
      q.first_ns = p.first_ns;
      q.last_ns = p.last_ns;
      q.min = p.min;
      q.max = p.max;
      q.mean = p.mean();
      q.count = p.count;
      q.valid_count = p.valid_count;
      q.tier = static_cast<std::uint8_t>(tier);
      out.points.push_back(q);
    }
  }
}

TierQueryResult TieredStore::query(std::uint32_t series, std::int64_t t0_ns,
                                   std::int64_t t1_ns,
                                   std::int64_t resolution_ns) const {
  TierQueryResult result;
  if (!config_.enabled || series >= series_.size()) return result;
  const SeriesState& s = series_[series];
  if (s.samples == 0 || s.tiers.empty() || t1_ns < t0_ns) return result;

  const std::size_t target = select_tier(series, resolution_ns);

  // The serve ladder: tier `target` serves everything it retains; each
  // coarser tier serves only strictly before the point where the next finer
  // ladder tier's retention begins.
  struct Rung {
    std::size_t tier;
    std::int64_t before_ns;
  };
  std::vector<Rung> ladder;
  std::int64_t before = kNever;
  for (std::size_t t = target; t < config_.tiers; ++t) {
    const std::int64_t start = retained_start(s, t);
    if (start == kNever) continue;
    ladder.push_back(Rung{t, before});
    before = start;
    if (start <= t0_ns) break;  // everything older is outside the query
  }

  // Anything older than the earliest retained point of ANY tier was evicted
  // from the whole hierarchy: report it as a gap, never interpolate it.
  std::int64_t earliest = kNever;
  for (std::size_t t = 0; t < config_.tiers; ++t) {
    earliest = std::min(earliest, retained_start(s, t));
  }
  if (earliest > s.first_ns) {
    const std::int64_t from = std::max(t0_ns, s.first_ns);
    const std::int64_t to =
        std::min(t1_ns == kNever ? kNever : t1_ns + 1, earliest);
    if (from < to) result.gaps.push_back(QueryGap{from, to});
  }

  // Emit oldest (coarsest rung) first, so points come out time-ordered.
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    emit_range(s, it->tier, t0_ns, t1_ns, it->before_ns, false, result);
  }
  // Stitch the newest samples not yet rolled up into the target tier: the
  // finer tiers' open pages, finest last (they hold the newest data).
  for (std::size_t t = target; t-- > 0;) {
    emit_range(s, t, t0_ns, t1_ns, kNever, true, result);
  }
  return result;
}

void TieredStore::attach_observability(obs::Registry& registry,
                                       const std::string& prefix) {
  if constexpr (!obs::kCompiledIn) {
    (void)registry;
    (void)prefix;
    return;
  }
  detach_observability();
  if (!config_.enabled) return;
  obs_registry_ = &registry;
  obs_prefix_ = prefix;
  registry.gauge_fn(prefix + ".pool.pages_in_use", [this] {
    return static_cast<double>(stats_.pages_in_use);
  });
  registry.gauge_fn(prefix + ".pool.pages", [this] {
    return static_cast<double>(stats_.pool_pages);
  });
  registry.gauge_fn(prefix + ".pool.bytes", [this] {
    return static_cast<double>(stats_.bytes);
  });
  registry.gauge_fn(prefix + ".pool.overcommits", [this] {
    return static_cast<double>(stats_.overcommits);
  });
  for (std::size_t t = 0; t < config_.tiers; ++t) {
    const std::string tp = prefix + ".tier" + std::to_string(t);
    registry.gauge_fn(tp + ".pages", [this, t] {
      return static_cast<double>(tier_stats_[t].pages);
    });
    registry.gauge_fn(tp + ".points", [this, t] {
      return static_cast<double>(tier_stats_[t].points);
    });
    // True monotone counters, seeded with the cumulative totals so a
    // mid-life attach still reports the real rollover/eviction history.
    obs_rollovers_[t] = &registry.counter(tp + ".rollovers");
    obs_rollovers_[t]->inc(tier_stats_[t].rollovers);
    obs_evictions_[t] = &registry.counter(tp + ".evictions");
    obs_evictions_[t]->inc(tier_stats_[t].evictions);
  }
}

void TieredStore::detach_observability() {
  if (obs_registry_ == nullptr) return;
  obs_registry_->remove_prefix(obs_prefix_ + ".pool");
  obs_registry_->remove_prefix(obs_prefix_ + ".tier");
  obs_registry_ = nullptr;
  for (std::size_t t = 0; t < kMaxTiers; ++t) {
    obs_rollovers_[t] = nullptr;
    obs_evictions_[t] = nullptr;
  }
}

}  // namespace netmon::core
