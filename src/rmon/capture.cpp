#include "rmon/capture.hpp"

namespace netmon::rmon {

bool PacketFilter::matches(const net::Frame& frame) const {
  const net::Packet& p = frame.packet;
  if (src && p.src != *src) return false;
  if (dst && p.dst != *dst) return false;
  if (protocol && p.protocol != *protocol) return false;
  if (dst_port && p.dst_port != *dst_port) return false;
  if (traffic_class && p.traffic_class != *traffic_class) return false;
  const std::uint32_t size = frame.size_bytes();
  if (size < min_size_bytes) return false;
  if (max_size_bytes != 0 && size > max_size_bytes) return false;
  return true;
}

std::string PacketFilter::describe() const {
  std::string out;
  auto append = [&out](const std::string& term) {
    if (!out.empty()) out += " and ";
    out += term;
  };
  if (src) append("src=" + src->to_string());
  if (dst) append("dst=" + dst->to_string());
  if (protocol) {
    append(std::string("proto=") +
           (*protocol == net::IpProto::kTcp   ? "tcp"
            : *protocol == net::IpProto::kUdp ? "udp"
                                              : "icmp"));
  }
  if (dst_port) append("port=" + std::to_string(*dst_port));
  if (traffic_class) append(std::string("class=") + to_string(*traffic_class));
  if (min_size_bytes) append("size>=" + std::to_string(min_size_bytes));
  if (max_size_bytes) append("size<=" + std::to_string(max_size_bytes));
  return out.empty() ? "any" : out;
}

CaptureChannel::CaptureChannel(PacketFilter filter, std::size_t buffer_frames,
                               bool stop_when_full)
    : filter_(std::move(filter)),
      stop_when_full_(stop_when_full),
      buffer_(buffer_frames) {}

void CaptureChannel::start() { state_ = State::kCapturing; }
void CaptureChannel::arm() { state_ = State::kArmed; }
void CaptureChannel::stop() {
  if (state_ == State::kCapturing || state_ == State::kArmed) {
    state_ = State::kIdle;
  }
}

void CaptureChannel::clear() {
  buffer_.clear();
  if (state_ == State::kFull) state_ = State::kIdle;
}

void CaptureChannel::offer(const net::Frame& frame, sim::TimePoint local_now) {
  if (!filter_.matches(frame)) return;
  ++matched_;
  if (state_ != State::kCapturing) {
    if (state_ == State::kFull) ++dropped_full_;
    return;
  }
  if (stop_when_full_ && buffer_.full()) {
    state_ = State::kFull;
    ++dropped_full_;
    return;
  }
  CapturedFrame captured;
  captured.captured_at = local_now;
  captured.src_mac = frame.src;
  captured.dst_mac = frame.dst;
  captured.src_ip = frame.packet.src;
  captured.dst_ip = frame.packet.dst;
  captured.protocol = frame.packet.protocol;
  captured.src_port = frame.packet.src_port;
  captured.dst_port = frame.packet.dst_port;
  captured.size_bytes = frame.size_bytes();
  buffer_.push(captured);
  ++accepted_;
}

}  // namespace netmon::rmon
