#include "rmon/history.hpp"

#include <stdexcept>

namespace netmon::rmon {

HistoryGroup::HistoryGroup(sim::Simulator& sim, sim::Duration interval,
                           std::size_t bucket_count, Sources sources)
    : interval_(interval), sources_(std::move(sources)), buckets_(bucket_count) {
  if (!sources_.packets || !sources_.octets || !sources_.local_clock) {
    throw std::invalid_argument("HistoryGroup: missing sources");
  }
  last_packets_ = sources_.packets();
  last_octets_ = sources_.octets();
  last_broadcasts_ = sources_.broadcasts ? sources_.broadcasts() : 0;
  interval_start_local_ = sources_.local_clock();
  task_ = sim::PeriodicTask(sim, interval_, [this] { roll(); });
}

void HistoryGroup::roll() {
  const std::uint64_t packets = sources_.packets();
  const std::uint64_t octets = sources_.octets();
  const std::uint64_t broadcasts =
      sources_.broadcasts ? sources_.broadcasts() : 0;

  HistoryBucket bucket;
  bucket.start_local = interval_start_local_;
  bucket.packets = packets - last_packets_;
  bucket.octets = octets - last_octets_;
  bucket.broadcast_pkts = broadcasts - last_broadcasts_;
  if (sources_.bandwidth_bps > 0.0) {
    bucket.utilization = static_cast<double>(bucket.octets) * 8.0 /
                         (sources_.bandwidth_bps * interval_.to_seconds());
  }
  buckets_.push(bucket);
  ++intervals_completed_;

  last_packets_ = packets;
  last_octets_ = octets;
  last_broadcasts_ = broadcasts;
  interval_start_local_ = sources_.local_clock();
}

}  // namespace netmon::rmon
