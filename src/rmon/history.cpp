#include "rmon/history.hpp"

#include <algorithm>
#include <stdexcept>

namespace netmon::rmon {

HistoryGroup::HistoryGroup(sim::Simulator& sim, sim::Duration interval,
                           std::size_t bucket_count, Sources sources,
                           std::size_t long_term_factor,
                           std::size_t long_term_buckets)
    : interval_(interval),
      sources_(std::move(sources)),
      buckets_(bucket_count),
      long_term_factor_(long_term_factor) {
  if (!sources_.packets || !sources_.octets || !sources_.local_clock) {
    throw std::invalid_argument("HistoryGroup: missing sources");
  }
  if (long_term_factor_ > 0) {
    if (long_term_factor_ < 2 || long_term_buckets == 0) {
      throw std::invalid_argument(
          "HistoryGroup: long-term tier needs factor >= 2 and depth >= 1");
    }
    long_term_.emplace(long_term_buckets);
  }
  last_packets_ = sources_.packets();
  last_octets_ = sources_.octets();
  last_broadcasts_ = sources_.broadcasts ? sources_.broadcasts() : 0;
  interval_start_local_ = sources_.local_clock();
  task_ = sim::PeriodicTask(sim, interval_, [this] { roll(); });
}

void HistoryGroup::roll() {
  const std::uint64_t packets = sources_.packets();
  const std::uint64_t octets = sources_.octets();
  const std::uint64_t broadcasts =
      sources_.broadcasts ? sources_.broadcasts() : 0;

  HistoryBucket bucket;
  bucket.start_local = interval_start_local_;
  bucket.packets = packets - last_packets_;
  bucket.octets = octets - last_octets_;
  bucket.broadcast_pkts = broadcasts - last_broadcasts_;
  if (sources_.bandwidth_bps > 0.0) {
    bucket.utilization = static_cast<double>(bucket.octets) * 8.0 /
                         (sources_.bandwidth_bps * interval_.to_seconds());
  }
  buckets_.push(bucket);
  ++intervals_completed_;

  if (long_term_factor_ > 0) {
    LongTermBucket& acc = accumulating_;
    if (acc.intervals == 0) {
      acc.start_local = bucket.start_local;
      acc.min_utilization = acc.max_utilization = bucket.utilization;
    } else {
      acc.min_utilization = std::min(acc.min_utilization, bucket.utilization);
      acc.max_utilization = std::max(acc.max_utilization, bucket.utilization);
    }
    acc.packets += bucket.packets;
    acc.octets += bucket.octets;
    acc.broadcast_pkts += bucket.broadcast_pkts;
    // mean_utilization holds the running sum until the bucket completes.
    acc.mean_utilization += bucket.utilization;
    ++acc.intervals;
    if (acc.intervals == long_term_factor_) {
      acc.mean_utilization /= static_cast<double>(acc.intervals);
      long_term_->push(acc);
      accumulating_ = LongTermBucket{};
    }
  }

  last_packets_ = packets;
  last_octets_ = octets;
  last_broadcasts_ = broadcasts;
  interval_start_local_ = sources_.local_clock();
}

}  // namespace netmon::rmon
