#pragma once

// RMON history group: periodic buckets of segment activity with a bounded
// number of retained intervals (oldest overwritten), timestamped with the
// probe's local (granular, drifting) clock. An optional long-term tier
// aggregates every `long_term_factor` completed intervals into one coarse
// bucket (min/mean/max utilization + summed counters) — the same rollup
// shape as the tiered measurement store (DESIGN.md §13), mirroring RMON's
// convention of running a short- and a long-interval control row side by
// side on one data source.

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/simulator.hpp"
#include "util/ring_buffer.hpp"

namespace netmon::rmon {

struct HistoryBucket {
  sim::TimePoint start_local;  // probe clock at interval start
  std::uint64_t packets = 0;
  std::uint64_t octets = 0;
  std::uint64_t broadcast_pkts = 0;
  double utilization = 0.0;  // fraction of the interval the medium was used
};

// One long-term bucket: `intervals` consecutive base buckets rolled up.
struct LongTermBucket {
  sim::TimePoint start_local;  // probe clock at the first base interval
  std::uint64_t packets = 0;
  std::uint64_t octets = 0;
  std::uint64_t broadcast_pkts = 0;
  double min_utilization = 0.0;
  double max_utilization = 0.0;
  double mean_utilization = 0.0;
  std::uint32_t intervals = 0;
};

class HistoryGroup {
 public:
  struct Sources {
    std::function<std::uint64_t()> packets;
    std::function<std::uint64_t()> octets;
    std::function<std::uint64_t()> broadcasts;
    std::function<sim::TimePoint()> local_clock;
    double bandwidth_bps = 0.0;
  };

  // `long_term_factor` base intervals per long-term bucket (0 disables the
  // long-term tier); `long_term_buckets` is its retained depth.
  HistoryGroup(sim::Simulator& sim, sim::Duration interval,
               std::size_t bucket_count, Sources sources,
               std::size_t long_term_factor = 0,
               std::size_t long_term_buckets = 0);

  sim::Duration interval() const { return interval_; }
  const util::RingBuffer<HistoryBucket>& buckets() const { return buckets_; }
  std::uint64_t intervals_completed() const { return intervals_completed_; }
  // Null when the long-term tier is disabled.
  const util::RingBuffer<LongTermBucket>* long_term() const {
    return long_term_ ? &*long_term_ : nullptr;
  }
  void stop() { task_.cancel(); }

 private:
  void roll();

  sim::Duration interval_;
  Sources sources_;
  util::RingBuffer<HistoryBucket> buckets_;
  std::uint64_t intervals_completed_ = 0;
  std::uint64_t last_packets_ = 0;
  std::uint64_t last_octets_ = 0;
  std::uint64_t last_broadcasts_ = 0;
  sim::TimePoint interval_start_local_{};
  sim::PeriodicTask task_;

  // Long-term tier accumulator (folds finished base buckets until `factor`
  // of them are in, then pushes one coarse bucket).
  std::size_t long_term_factor_ = 0;
  std::optional<util::RingBuffer<LongTermBucket>> long_term_;
  LongTermBucket accumulating_{};
};

}  // namespace netmon::rmon
