#pragma once

// RMON history group: periodic buckets of segment activity with a bounded
// number of retained intervals (oldest overwritten), timestamped with the
// probe's local (granular, drifting) clock.

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "util/ring_buffer.hpp"

namespace netmon::rmon {

struct HistoryBucket {
  sim::TimePoint start_local;  // probe clock at interval start
  std::uint64_t packets = 0;
  std::uint64_t octets = 0;
  std::uint64_t broadcast_pkts = 0;
  double utilization = 0.0;  // fraction of the interval the medium was used
};

class HistoryGroup {
 public:
  struct Sources {
    std::function<std::uint64_t()> packets;
    std::function<std::uint64_t()> octets;
    std::function<std::uint64_t()> broadcasts;
    std::function<sim::TimePoint()> local_clock;
    double bandwidth_bps = 0.0;
  };

  HistoryGroup(sim::Simulator& sim, sim::Duration interval,
               std::size_t bucket_count, Sources sources);

  sim::Duration interval() const { return interval_; }
  const util::RingBuffer<HistoryBucket>& buckets() const { return buckets_; }
  std::uint64_t intervals_completed() const { return intervals_completed_; }
  void stop() { task_.cancel(); }

 private:
  void roll();

  sim::Duration interval_;
  Sources sources_;
  util::RingBuffer<HistoryBucket> buckets_;
  std::uint64_t intervals_completed_ = 0;
  std::uint64_t last_packets_ = 0;
  std::uint64_t last_octets_ = 0;
  std::uint64_t last_broadcasts_ = 0;
  sim::TimePoint interval_start_local_{};
  sim::PeriodicTask task_;
};

}  // namespace netmon::rmon
