#pragma once

// RMON probe: a passive monitor attached promiscuously to a shared segment
// (it sees nothing useful on switched media — paper §4.3). Implements the
// subset of RMON-1 the paper's experiments used: the Ethernet statistics
// group, the history group, and the alarm/event groups with rising/falling
// threshold traps. All collected state is exposed through the probe host's
// SNMP agent under the standard rmon subtree.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/shared_segment.hpp"
#include "net/topology.hpp"
#include "rmon/alarm.hpp"
#include "rmon/capture.hpp"
#include "rmon/history.hpp"
#include "snmp/agent.hpp"

namespace netmon::rmon {

// etherStatsEntry-style counters (RMON-1 statistics group).
struct EtherStats {
  std::uint64_t packets = 0;
  std::uint64_t octets = 0;
  std::uint64_t broadcast_pkts = 0;
  std::uint64_t pkts_64 = 0;
  std::uint64_t pkts_65_127 = 0;
  std::uint64_t pkts_128_255 = 0;
  std::uint64_t pkts_256_511 = 0;
  std::uint64_t pkts_512_1023 = 0;
  std::uint64_t pkts_1024_1518 = 0;
  std::uint64_t oversize_pkts = 0;
};

// RMON MIB anchors (1.3.6.1.2.1.16.*, statistics table index 1).
namespace rmon_mib {
inline const snmp::Oid kEtherStatsEntry{1, 3, 6, 1, 2, 1, 16, 1, 1, 1};
inline const snmp::Oid kEtherStatsOctets = kEtherStatsEntry.with({4, 1});
inline const snmp::Oid kEtherStatsPkts = kEtherStatsEntry.with({5, 1});
inline const snmp::Oid kEtherStatsBroadcast = kEtherStatsEntry.with({6, 1});
// Gauge: utilization in hundredths of a percent over the last poll window.
inline const snmp::Oid kEtherStatsUtilization =
    snmp::Oid{1, 3, 6, 1, 2, 1, 16, 1, 1, 1, 21, 1};
inline const snmp::Oid kRisingAlarmTrap{1, 3, 6, 1, 2, 1, 16, 0, 1};
inline const snmp::Oid kFallingAlarmTrap{1, 3, 6, 1, 2, 1, 16, 0, 2};
}  // namespace rmon_mib

class Probe {
 public:
  struct Config {
    // Window over which the utilization MIB variable is computed.
    sim::Duration utilization_window = sim::Duration::sec(1);
    snmp::Agent::Config agent;
  };

  // `host` must already be attached (with an IP) to `segment`; its first
  // NIC on that segment is switched to promiscuous mode for capture.
  Probe(net::Host& host, net::SharedSegment& segment);
  Probe(net::Host& host, net::SharedSegment& segment, Config config);

  net::Host& host() { return host_; }
  snmp::Agent& agent() { return *agent_; }
  const EtherStats& ether_stats() const { return stats_; }

  // Utilization over the most recent completed window, in [0,1].
  double windowed_utilization() const { return window_utilization_; }

  // Frames captured from a given source MAC (media-layer "reachability"
  // sniffing, paper §4.3). Counts only what this probe can actually hear.
  std::uint64_t frames_seen_from(net::MacAddr src) const;

  // --- history group -------------------------------------------------------
  // Optional long-term tier: every `long_term_factor` completed intervals
  // fold into one coarse bucket, `long_term_buckets` deep (0 disables).
  HistoryGroup& add_history(sim::Duration interval, std::size_t buckets,
                            std::size_t long_term_factor = 0,
                            std::size_t long_term_buckets = 0);
  const std::vector<std::unique_ptr<HistoryGroup>>& histories() const {
    return histories_;
  }

  // --- alarm/event groups --------------------------------------------------
  // Registers an alarm on a sampled quantity; when it crosses a threshold
  // the probe sends the standard rising/falling RMON trap to `manager`.
  Alarm& add_alarm(AlarmConfig config, net::IpAddr manager);
  Alarm& add_alarm(AlarmConfig config, AlarmHandler on_cross);
  const std::vector<std::unique_ptr<Alarm>>& alarms() const { return alarms_; }

  // --- filter/capture groups -----------------------------------------------
  CaptureChannel& add_capture(PacketFilter filter, std::size_t buffer_frames,
                              bool stop_when_full = true);
  const std::vector<std::unique_ptr<CaptureChannel>>& captures() const {
    return captures_;
  }
  // Downloads the channel's buffer to a management station as chunked UDP
  // datagrams (TrafficClass::kManagement). The paper warns that "heavy use
  // of downloading captured information from RMON probes can introduce a
  // significant overhead" — this makes that overhead real and measurable.
  // `done` receives the number of records transferred.
  void download_capture(const CaptureChannel& channel, net::IpAddr manager,
                        std::function<void(std::size_t)> done = nullptr);

  // Convenience samplers for alarm variables.
  std::function<double()> sample_octets() const;
  std::function<double()> sample_packets() const;
  std::function<double()> sample_utilization() const;

 private:
  void on_frame(const net::Frame& frame);
  void register_mib();
  void roll_utilization_window();

  net::Host& host_;
  net::SharedSegment& segment_;
  Config config_;
  std::unique_ptr<snmp::Agent> agent_;
  EtherStats stats_;
  std::unordered_map<net::MacAddr, std::uint64_t> frames_by_src_;
  std::vector<std::unique_ptr<HistoryGroup>> histories_;
  std::vector<std::unique_ptr<Alarm>> alarms_;
  std::vector<std::unique_ptr<CaptureChannel>> captures_;
  net::UdpSocket* download_socket_ = nullptr;
  // Utilization window bookkeeping.
  std::uint64_t window_start_octets_ = 0;
  double window_utilization_ = 0.0;
  sim::PeriodicTask window_task_;
};

}  // namespace netmon::rmon
