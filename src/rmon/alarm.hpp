#pragma once

// RMON alarm group: periodic sampling of a variable with rising/falling
// thresholds and the standard hysteresis rule — after a rising event, no
// further rising event may fire until the falling threshold is crossed
// (and vice versa).

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hpp"

namespace netmon::rmon {

enum class SampleType { kAbsolute, kDelta };
enum class AlarmDirection { kRising, kFalling };

struct AlarmCrossing {
  int alarm_index = 0;
  AlarmDirection direction = AlarmDirection::kRising;
  double sampled_value = 0.0;
  double threshold = 0.0;
  sim::TimePoint at;  // true sim time of the sample
};

using AlarmHandler = std::function<void(const AlarmCrossing&)>;

struct AlarmConfig {
  std::string description;
  std::function<double()> sample;
  SampleType sample_type = SampleType::kDelta;
  sim::Duration interval = sim::Duration::sec(1);
  double rising_threshold = 0.0;
  double falling_threshold = 0.0;
  // Which direction may fire first (RMON alarmStartupAlarm).
  AlarmDirection startup = AlarmDirection::kRising;
};

class Alarm {
 public:
  Alarm(sim::Simulator& sim, int index, AlarmConfig config,
        AlarmHandler handler);

  int index() const { return index_; }
  const AlarmConfig& config() const { return config_; }
  std::uint64_t rising_events() const { return rising_events_; }
  std::uint64_t falling_events() const { return falling_events_; }
  double last_sample() const { return last_value_; }
  void stop() { task_.cancel(); }

 private:
  void tick();

  sim::Simulator& sim_;
  int index_;
  AlarmConfig config_;
  AlarmHandler handler_;
  bool have_previous_raw_ = false;
  double previous_raw_ = 0.0;
  double last_value_ = 0.0;
  // Which direction is currently armed; hysteresis per RMON rules.
  bool rising_armed_;
  bool falling_armed_;
  std::uint64_t rising_events_ = 0;
  std::uint64_t falling_events_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace netmon::rmon
