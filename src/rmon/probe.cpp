#include "rmon/probe.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::rmon {

Probe::Probe(net::Host& host, net::SharedSegment& segment)
    : Probe(host, segment, Config{}) {}

Probe::Probe(net::Host& host, net::SharedSegment& segment, Config config)
    : host_(host), segment_(segment), config_(std::move(config)) {
  // Find the host interface on this segment and make it promiscuous.
  net::Nic* capture = nullptr;
  for (const auto& nic : host_.nics()) {
    if (nic->medium() == &segment_) {
      capture = nic.get();
      break;
    }
  }
  if (capture == nullptr) {
    throw std::invalid_argument("Probe: host " + host_.name() +
                                " is not attached to segment " +
                                segment_.name());
  }
  capture->set_promiscuous(true);
  capture->add_tap([this](const net::Frame& f) { on_frame(f); });

  agent_ = std::make_unique<snmp::Agent>(host_, config_.agent);
  register_mib();

  window_task_ = sim::PeriodicTask(host_.simulator(),
                                   config_.utilization_window,
                                   [this] { roll_utilization_window(); });
}

void Probe::on_frame(const net::Frame& frame) {
  const std::uint32_t size = frame.size_bytes();
  ++stats_.packets;
  stats_.octets += size;
  if (frame.dst.is_broadcast()) ++stats_.broadcast_pkts;
  if (size <= 64) {
    ++stats_.pkts_64;
  } else if (size <= 127) {
    ++stats_.pkts_65_127;
  } else if (size <= 255) {
    ++stats_.pkts_128_255;
  } else if (size <= 511) {
    ++stats_.pkts_256_511;
  } else if (size <= 1023) {
    ++stats_.pkts_512_1023;
  } else if (size <= 1518) {
    ++stats_.pkts_1024_1518;
  } else {
    ++stats_.oversize_pkts;
  }
  ++frames_by_src_[frame.src];
  if (!captures_.empty()) {
    const auto local = host_.clock().local_now();
    for (auto& channel : captures_) channel->offer(frame, local);
  }
}

CaptureChannel& Probe::add_capture(PacketFilter filter,
                                   std::size_t buffer_frames,
                                   bool stop_when_full) {
  captures_.push_back(std::make_unique<CaptureChannel>(
      std::move(filter), buffer_frames, stop_when_full));
  return *captures_.back();
}

void Probe::download_capture(const CaptureChannel& channel,
                             net::IpAddr manager,
                             std::function<void(std::size_t)> done) {
  if (download_socket_ == nullptr) {
    download_socket_ = &host_.udp().bind(0, nullptr);
  }
  // Each captured record costs ~40 bytes on the wire; pack ~32 per
  // datagram. The transfer is paced at one datagram per millisecond, as a
  // probe's management CPU would.
  constexpr std::size_t kRecordBytes = 40;
  constexpr std::size_t kRecordsPerChunk = 32;
  const std::size_t total = channel.buffer().size();
  const std::size_t chunks = (total + kRecordsPerChunk - 1) / kRecordsPerChunk;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t records =
        std::min(kRecordsPerChunk, total - i * kRecordsPerChunk);
    host_.simulator().schedule_in(
        sim::Duration::ms(1) * static_cast<std::int64_t>(i),
        [this, manager, records] {
          download_socket_->send_to(
              manager, 16200, static_cast<std::uint32_t>(records * kRecordBytes),
              nullptr, net::TrafficClass::kManagement);
        });
  }
  if (done) {
    host_.simulator().schedule_in(
        sim::Duration::ms(1) * static_cast<std::int64_t>(chunks),
        [done = std::move(done), total] { done(total); });
  }
}

std::uint64_t Probe::frames_seen_from(net::MacAddr src) const {
  auto it = frames_by_src_.find(src);
  return it == frames_by_src_.end() ? 0 : it->second;
}

void Probe::roll_utilization_window() {
  const std::uint64_t octets = stats_.octets;
  const double bits =
      static_cast<double>(octets - window_start_octets_) * 8.0;
  window_utilization_ =
      bits / (segment_.bandwidth_bps() *
              config_.utilization_window.to_seconds());
  window_start_octets_ = octets;
}

void Probe::register_mib() {
  using namespace rmon_mib;
  snmp::MibTree& mib = agent_->mib();
  mib.add(kEtherStatsOctets, [this] {
    return snmp::SnmpValue(snmp::Counter32{
        static_cast<std::uint32_t>(stats_.octets & 0xFFFFFFFFull)});
  });
  mib.add(kEtherStatsPkts, [this] {
    return snmp::SnmpValue(snmp::Counter32{
        static_cast<std::uint32_t>(stats_.packets & 0xFFFFFFFFull)});
  });
  mib.add(kEtherStatsBroadcast, [this] {
    return snmp::SnmpValue(snmp::Counter32{
        static_cast<std::uint32_t>(stats_.broadcast_pkts & 0xFFFFFFFFull)});
  });
  mib.add(kEtherStatsUtilization, [this] {
    // Hundredths of a percent, as real probes report it.
    return snmp::SnmpValue(snmp::Gauge32{
        static_cast<std::uint32_t>(window_utilization_ * 10000.0)});
  });
}

HistoryGroup& Probe::add_history(sim::Duration interval, std::size_t buckets,
                                 std::size_t long_term_factor,
                                 std::size_t long_term_buckets) {
  HistoryGroup::Sources sources;
  sources.packets = [this] { return stats_.packets; };
  sources.octets = [this] { return stats_.octets; };
  sources.broadcasts = [this] { return stats_.broadcast_pkts; };
  sources.local_clock = [this] { return host_.clock().local_now(); };
  sources.bandwidth_bps = segment_.bandwidth_bps();
  histories_.push_back(std::make_unique<HistoryGroup>(
      host_.simulator(), interval, buckets, std::move(sources),
      long_term_factor, long_term_buckets));
  return *histories_.back();
}

Alarm& Probe::add_alarm(AlarmConfig config, net::IpAddr manager) {
  const int index = static_cast<int>(alarms_.size()) + 1;
  auto handler = [this, manager](const AlarmCrossing& crossing) {
    const auto& trap_oid = crossing.direction == AlarmDirection::kRising
                               ? rmon_mib::kRisingAlarmTrap
                               : rmon_mib::kFallingAlarmTrap;
    std::vector<snmp::VarBind> varbinds;
    varbinds.push_back(snmp::VarBind{
        snmp::Oid{1, 3, 6, 1, 2, 1, 16, 3, 1, 1, 1,
                  static_cast<std::uint32_t>(crossing.alarm_index)},
        snmp::SnmpValue(static_cast<std::int64_t>(crossing.sampled_value))});
    agent_->send_trap(manager, trap_oid, std::move(varbinds));
  };
  alarms_.push_back(std::make_unique<Alarm>(host_.simulator(), index,
                                            std::move(config), handler));
  return *alarms_.back();
}

Alarm& Probe::add_alarm(AlarmConfig config, AlarmHandler on_cross) {
  const int index = static_cast<int>(alarms_.size()) + 1;
  alarms_.push_back(std::make_unique<Alarm>(
      host_.simulator(), index, std::move(config), std::move(on_cross)));
  return *alarms_.back();
}

std::function<double()> Probe::sample_octets() const {
  return [this] { return static_cast<double>(stats_.octets); };
}
std::function<double()> Probe::sample_packets() const {
  return [this] { return static_cast<double>(stats_.packets); };
}
std::function<double()> Probe::sample_utilization() const {
  return [this] { return window_utilization_; };
}

}  // namespace netmon::rmon
