#pragma once

// RMON filter/capture groups (paper §5.2.1: an RMON probe can "actively
// filter data packets, identify a triggering condition, capture packets,
// ... and support the download of captured packets to a management
// station"). A CaptureChannel applies a packet filter to everything the
// probe hears, stores matching frames in a bounded circular buffer, can be
// armed to start on a trigger, and supports chunked download — whose
// wire cost is real, which is how the paper's warning about "heavy use of
// downloading captured information" becomes measurable.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/ring_buffer.hpp"

namespace netmon::rmon {

// Conjunctive packet filter; unset fields match anything.
struct PacketFilter {
  std::optional<net::IpAddr> src;
  std::optional<net::IpAddr> dst;
  std::optional<net::IpProto> protocol;
  std::optional<std::uint16_t> dst_port;
  std::optional<net::TrafficClass> traffic_class;
  std::uint32_t min_size_bytes = 0;
  std::uint32_t max_size_bytes = 0;  // 0 = unlimited

  bool matches(const net::Frame& frame) const;
  std::string describe() const;
};

struct CapturedFrame {
  sim::TimePoint captured_at;  // probe local clock
  net::MacAddr src_mac;
  net::MacAddr dst_mac;
  net::IpAddr src_ip;
  net::IpAddr dst_ip;
  net::IpProto protocol = net::IpProto::kUdp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t size_bytes = 0;
};

class CaptureChannel {
 public:
  enum class State { kIdle, kArmed, kCapturing, kFull };

  CaptureChannel(PacketFilter filter, std::size_t buffer_frames,
                 bool stop_when_full = true);

  const PacketFilter& filter() const { return filter_; }
  State state() const { return state_; }

  // Starts capturing immediately.
  void start();
  // Arms the channel: capture begins at the first matching frame after the
  // trigger fires (RMON's channel/event coupling).
  void arm();
  void trigger() { if (state_ == State::kArmed) state_ = State::kCapturing; }
  void stop();
  void clear();

  // Called by the probe for every frame it hears.
  void offer(const net::Frame& frame, sim::TimePoint local_now);

  const util::RingBuffer<CapturedFrame>& buffer() const { return buffer_; }
  std::uint64_t matched() const { return matched_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t dropped_full() const { return dropped_full_; }

 private:
  PacketFilter filter_;
  bool stop_when_full_;
  State state_ = State::kIdle;
  util::RingBuffer<CapturedFrame> buffer_;
  std::uint64_t matched_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_full_ = 0;
};

}  // namespace netmon::rmon
