#include "rmon/alarm.hpp"

#include <stdexcept>

namespace netmon::rmon {

Alarm::Alarm(sim::Simulator& sim, int index, AlarmConfig config,
             AlarmHandler handler)
    : sim_(sim),
      index_(index),
      config_(std::move(config)),
      handler_(std::move(handler)) {
  if (!config_.sample) throw std::invalid_argument("Alarm: no sampler");
  if (config_.rising_threshold < config_.falling_threshold) {
    throw std::invalid_argument("Alarm: rising threshold below falling");
  }
  rising_armed_ = config_.startup != AlarmDirection::kFalling;
  falling_armed_ = config_.startup != AlarmDirection::kRising;
  task_ = sim::PeriodicTask(sim_, config_.interval, [this] { tick(); });
}

void Alarm::tick() {
  const double raw = config_.sample();
  double value = raw;
  if (config_.sample_type == SampleType::kDelta) {
    if (!have_previous_raw_) {
      have_previous_raw_ = true;
      previous_raw_ = raw;
      return;  // first delta needs two samples
    }
    value = raw - previous_raw_;
    previous_raw_ = raw;
  }
  last_value_ = value;

  if (rising_armed_ && value >= config_.rising_threshold) {
    rising_armed_ = false;
    falling_armed_ = true;
    ++rising_events_;
    if (handler_) {
      handler_(AlarmCrossing{index_, AlarmDirection::kRising, value,
                             config_.rising_threshold, sim_.now()});
    }
  } else if (falling_armed_ && value <= config_.falling_threshold) {
    falling_armed_ = false;
    rising_armed_ = true;
    ++falling_events_;
    if (handler_) {
      handler_(AlarmCrossing{index_, AlarmDirection::kFalling, value,
                             config_.falling_threshold, sim_.now()});
    }
  }
}

}  // namespace netmon::rmon
