#include "manager/resource_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace netmon::mgr {

ResourceManager::ResourceManager(core::SensorDirector& director, Config config)
    : director_(director), config_(std::move(config)) {
  if (config_.strikes < 1) {
    throw std::invalid_argument("ResourceManager: strikes must be >= 1");
  }
  if (config_.trend.window.nanos() > 0 &&
      (config_.trend.quantile <= 0.5 || config_.trend.quantile >= 1.0 ||
       config_.trend.min_samples < 1)) {
    throw std::invalid_argument(
        "ResourceManager: trend quantile must be in (0.5, 1) and "
        "min_samples >= 1");
  }
  if (config_.senescence_bound.nanos() > 0 &&
      config_.senescence_check_period.nanos() <= 0) {
    throw std::invalid_argument(
        "ResourceManager: senescence_check_period must be > 0 when the "
        "bound is enabled");
  }
}

ResourceManager::~ResourceManager() { senescence_timer_.cancel(); }

void ResourceManager::senescence_scan() {
  const sim::TimePoint now = director_.simulator().now();
  const core::MeasurementDatabase& db = director_.database();
  for (auto& [name, state] : apps_) {
    bool struck = false;
    for (net::IpAddr client : state.app.client_pool) {
      const core::Path path(
          core::ProcessEndpoint{state.app.name + "-server", state.active,
                                state.app.port},
          core::ProcessEndpoint{state.app.name + "-client", client,
                                state.app.port});
      for (core::Metric metric : config_.metrics) {
        const auto age = db.senescence(path, metric, now);
        if (age && *age > config_.senescence_bound) {
          ++state.strikes[{state.active, client}];
          ++senescence_strikes_;
          struck = true;
          break;  // one strike per path per sweep, oldest metric wins
        }
      }
    }
    if (struck) maybe_reconfigure(state);
  }
}

void ResourceManager::remove_reconfiguration_listener(ListenerHandle handle) {
  for (auto it = reconfig_listeners_.begin(); it != reconfig_listeners_.end();
       ++it) {
    if (it->first == handle) {
      reconfig_listeners_.erase(it);
      return;
    }
  }
}

core::MonitorRequest ResourceManager::build_request(
    const ManagedApplication& app) const {
  core::MonitorRequest request;
  for (net::IpAddr server : app.server_pool) {
    for (net::IpAddr client : app.client_pool) {
      core::PathRequest pr;
      pr.path = core::Path(
          core::ProcessEndpoint{app.name + "-server", server, app.port},
          core::ProcessEndpoint{app.name + "-client", client, app.port});
      pr.metrics = config_.metrics;
      request.paths.push_back(std::move(pr));
    }
  }
  request.mode = config_.mode;
  request.period = config_.period;
  request.reporting = core::MonitorRequest::Reporting::kAsynchronous;
  return request;
}

void ResourceManager::manage(ManagedApplication app,
                             net::IpAddr initial_server) {
  if (std::find(app.server_pool.begin(), app.server_pool.end(),
                initial_server) == app.server_pool.end()) {
    throw std::invalid_argument(
        "ResourceManager::manage: initial server not in pool");
  }
  // The <= 0 sentinels disable individual checks; all of them disabled at
  // once means no sample could ever strike — reject the misconfiguration
  // instead of monitoring a matrix that can never trigger anything.
  const Requirements& req = app.requirements;
  if (!req.require_reachability && req.min_throughput_bps <= 0.0 &&
      req.max_latency_s <= 0.0) {
    throw std::invalid_argument("ResourceManager::manage: every requirement "
                                "of " +
                                app.name + " is disabled");
  }
  const std::string name = app.name;
  AppState state;
  state.app = std::move(app);
  state.active = initial_server;
  auto [it, inserted] = apps_.emplace(name, std::move(state));
  if (!inserted) {
    throw std::logic_error("ResourceManager: already managing " + name);
  }
  it->second.request = director_.submit(
      build_request(it->second.app),
      [this, name](const core::PathMetricTuple& tuple) {
        on_tuple(name, tuple);
      });
  if (config_.senescence_bound.nanos() > 0 && !senescence_timer_.pending()) {
    senescence_timer_ = director_.simulator().schedule_periodic(
        config_.senescence_check_period, [this] { senescence_scan(); });
  }
}

void ResourceManager::stop(const std::string& application) {
  auto it = apps_.find(application);
  if (it == apps_.end()) return;
  director_.cancel(it->second.request);
  apps_.erase(it);
}

net::IpAddr ResourceManager::active_server(
    const std::string& application) const {
  auto it = apps_.find(application);
  if (it == apps_.end()) {
    throw std::out_of_range("ResourceManager: unknown application " +
                            application);
  }
  return it->second.active;
}

bool ResourceManager::tuple_is_bad(const Requirements& req,
                                   const core::PathMetricTuple& tuple) const {
  if (!tuple.value.valid) return true;  // the measurement itself failed
  switch (tuple.metric) {
    case core::Metric::kReachability:
      return req.require_reachability && tuple.value.value < 0.5;
    case core::Metric::kThroughput:
      return req.min_throughput_bps > 0.0 &&
             tuple.value.value < req.min_throughput_bps;
    case core::Metric::kOneWayLatency:
      return req.max_latency_s > 0.0 && tuple.value.value > req.max_latency_s;
  }
  return false;
}

std::optional<double> ResourceManager::windowed_quantile(
    const core::MeasurementDatabase& db, const core::Path& path,
    core::Metric metric, sim::TimePoint now, sim::Duration window, double q,
    bool upper, std::uint64_t* valid_samples) {
  if (valid_samples != nullptr) *valid_samples = 0;
  const sim::TimePoint t0 =
      window.nanos() >= now.nanos() ? sim::TimePoint() : now - window;
  const core::TierQueryResult result =
      db.query(path, metric, t0, now, sim::Duration::ns(0));
  // Each point stands in for valid_count raw samples at its min or max —
  // the tail-conservative representative for the side being judged.
  struct Entry {
    double value;
    std::uint64_t weight;
  };
  std::vector<Entry> entries;
  entries.reserve(result.points.size());
  std::uint64_t total = 0;
  for (const core::QueryPoint& p : result.points) {
    if (p.valid_count == 0) continue;
    entries.push_back(Entry{upper ? p.max : p.min, p.valid_count});
    total += p.valid_count;
  }
  if (valid_samples != nullptr) *valid_samples = total;
  if (total == 0) return std::nullopt;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  // Ascending rank ceil(q·N) for the upper tail; the mirrored N-ceil(q·N)+1
  // for the lower tail (both leave the same number of samples beyond them).
  const auto rank_up = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  const std::uint64_t rank =
      upper ? std::max<std::uint64_t>(rank_up, 1)
            : std::max<std::uint64_t>(total - rank_up + 1, 1);
  std::uint64_t cumulative = 0;
  for (const Entry& e : entries) {
    cumulative += e.weight;
    if (cumulative >= rank) return e.value;
  }
  return entries.back().value;
}

bool ResourceManager::trend_verdict(const Requirements& req,
                                    const core::PathMetricTuple& tuple,
                                    bool last_sample_bad) {
  if (config_.trend.window.nanos() <= 0) return last_sample_bad;
  bool upper;
  double threshold;
  if (tuple.metric == core::Metric::kOneWayLatency && req.max_latency_s > 0.0) {
    upper = true;
    threshold = req.max_latency_s;
  } else if (tuple.metric == core::Metric::kThroughput &&
             req.min_throughput_bps > 0.0) {
    upper = false;
    threshold = req.min_throughput_bps;
  } else {
    return last_sample_bad;
  }
  std::uint64_t n = 0;
  const std::optional<double> tail = windowed_quantile(
      director_.database(), tuple.path, tuple.metric, tuple.value.measured_at,
      config_.trend.window, config_.trend.quantile, upper, &n);
  if (!tail || n < static_cast<std::uint64_t>(config_.trend.min_samples)) {
    return last_sample_bad;  // not enough history to trust the tail yet
  }
  const bool bad = upper ? *tail > threshold : *tail < threshold;
  if (bad != last_sample_bad) ++trend_overrides_;
  return bad;
}

void ResourceManager::on_tuple(const std::string& app_name,
                               const core::PathMetricTuple& tuple) {
  auto it = apps_.find(app_name);
  if (it == apps_.end()) return;
  AppState& state = it->second;
  ++tuples_consumed_;

  const core::SampleQuality quality = tuple.value.quality;
  if (quality != core::SampleQuality::kFresh) ++degraded_tuples_;
  if (quality == core::SampleQuality::kStale) ++stale_tuples_;
  // A stale tuple is old data re-reported because the monitor could not
  // measure the path at all — weigh it as evidence of failure, never as a
  // passing sample.
  const bool stale_bad =
      config_.stale_is_bad && quality == core::SampleQuality::kStale;

  const net::IpAddr server = tuple.path.source().host;
  const net::IpAddr client = tuple.path.destination().host;
  int& strikes = state.strikes[{server, client}];
  bool bad = stale_bad || tuple_is_bad(state.app.requirements, tuple);
  // A valid performance sample may be re-judged by the window's tail
  // quantile; liveness evidence (reachability, failed or stale samples)
  // is never smoothed.
  if (!stale_bad && tuple.value.valid) {
    bad = trend_verdict(state.app.requirements, tuple, bad);
  }
  if (bad) {
    ++strikes;
  } else if (tuple.metric == core::Metric::kReachability ||
             tuple.metric == core::Metric::kThroughput) {
    // Any passing liveness-bearing sample clears the path's strikes.
    strikes = 0;
  }
  maybe_reconfigure(state);
  if (tuple_observer_) tuple_observer_(app_name, tuple);
}

int ResourceManager::path_strikes(const std::string& application,
                                  net::IpAddr server,
                                  net::IpAddr client) const {
  auto it = apps_.find(application);
  if (it == apps_.end()) return 0;
  auto sit = it->second.strikes.find({server, client});
  return sit == it->second.strikes.end() ? 0 : sit->second;
}

std::size_t ResourceManager::strike_entries() const {
  std::size_t total = 0;
  for (const auto& [name, state] : apps_) total += state.strikes.size();
  return total;
}

const ManagedApplication* ResourceManager::application(
    const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : &it->second.app;
}

std::vector<std::string> ResourceManager::applications() const {
  std::vector<std::string> names;
  names.reserve(apps_.size());
  for (const auto& [name, state] : apps_) names.push_back(name);
  return names;
}

core::SensorDirector::RequestId ResourceManager::request_id(
    const std::string& application) const {
  auto it = apps_.find(application);
  return it == apps_.end() ? 0 : it->second.request;
}

double ResourceManager::failing_fraction(const std::string& application,
                                         net::IpAddr server) const {
  auto it = apps_.find(application);
  if (it == apps_.end()) return 0.0;
  const AppState& state = it->second;
  if (state.app.client_pool.empty()) return 0.0;
  std::size_t failed = 0;
  for (net::IpAddr client : state.app.client_pool) {
    auto sit = state.strikes.find({server, client});
    if (sit != state.strikes.end() && sit->second >= config_.strikes) {
      ++failed;
    }
  }
  return static_cast<double>(failed) /
         static_cast<double>(state.app.client_pool.size());
}

std::optional<net::IpAddr> ResourceManager::pick_replacement(
    const AppState& state) const {
  // Choose the pool member with the lowest failing fraction; ties go to
  // pool order. The active (failed) server is excluded.
  std::optional<net::IpAddr> best;
  double best_fraction = 2.0;
  for (net::IpAddr candidate : state.app.server_pool) {
    if (candidate == state.active) continue;
    const double fraction = failing_fraction(state.app.name, candidate);
    if (fraction < best_fraction) {
      best_fraction = fraction;
      best = candidate;
    }
  }
  return best;
}

void ResourceManager::maybe_reconfigure(AppState& state) {
  const double fraction = failing_fraction(state.app.name, state.active);
  if (fraction < config_.failure_fraction) return;

  auto replacement = pick_replacement(state);
  if (!replacement) {
    NETMON_WARN("mgr", state.app.name,
                ": active server degraded but no replacement available");
    return;
  }
  // A replacement that looks no healthier than the server we would leave is
  // not a reconfiguration, it is thrashing: under a monitor-wide outage
  // (every path striking) the pool members ping-pong forever. Hold position
  // until some member is observably better.
  if (failing_fraction(state.app.name, *replacement) >= fraction) {
    NETMON_WARN("mgr", state.app.name,
                ": active server degraded but no healthier replacement; "
                "holding position");
    return;
  }
  const net::IpAddr old_server = state.active;
  state.active = *replacement;
  ++reconfigurations_;
  // Prune the server we are leaving: its (server, client) entries would
  // otherwise accumulate forever across failovers (the map is keyed by
  // every pool member ever active). Its standing restarts from zero if it
  // ever becomes a candidate again.
  for (auto sit = state.strikes.begin(); sit != state.strikes.end();) {
    if (sit->first.first == old_server) {
      sit = state.strikes.erase(sit);
    } else {
      ++sit;
    }
  }
  // Give the new server a clean slate so a stale strike doesn't bounce us.
  for (net::IpAddr client : state.app.client_pool) {
    state.strikes[{state.active, client}] = 0;
  }
  NETMON_INFO("mgr", state.app.name, ": reconfiguring ",
              old_server.to_string(), " -> ", state.active.to_string(),
              " (failing fraction ", fraction, ")");
  const ReconfigurationEvent event{state.app.name, old_server, state.active,
                                   director_.simulator().now(),
                                   "failing fraction " +
                                       std::to_string(fraction)};
  if (on_reconfig_) on_reconfig_(event);
  // Dispatch by handle snapshot: a listener may unregister itself (or any
  // other listener) during the callback without invalidating this loop.
  std::vector<ListenerHandle> snapshot;
  snapshot.reserve(reconfig_listeners_.size());
  for (const auto& [handle, listener] : reconfig_listeners_) {
    snapshot.push_back(handle);
  }
  for (const ListenerHandle handle : snapshot) {
    for (const auto& [h, listener] : reconfig_listeners_) {
      if (h == handle) {
        listener(event);
        break;
      }
    }
  }
}

}  // namespace netmon::mgr
