#pragma once

// Resource manager (paper §1, Figure 1): consumes (path, metric) tuples
// from a network resource monitor and reconfigures the system from its
// replicated pools when critical components fail or resources fall below
// requirements. Mirrors the HiPer-D RTDS arrangement (§5.1): a pool of S
// servers and C clients, with the full S×C path matrix monitored.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/sensor_director.hpp"

namespace netmon::mgr {

struct Requirements {
  // <= 0 disables a check.
  double min_throughput_bps = 0.0;
  double max_latency_s = 0.0;
  bool require_reachability = true;
};

struct ManagedApplication {
  std::string name;
  std::vector<net::IpAddr> server_pool;
  std::vector<net::IpAddr> client_pool;
  std::uint16_t port = 0;
  Requirements requirements;
};

struct ReconfigurationEvent {
  std::string application;
  net::IpAddr old_server;
  net::IpAddr new_server;
  sim::TimePoint at;
  std::string reason;
};

class ResourceManager {
 public:
  struct Config {
    // How the monitor is driven.
    core::MonitorRequest::Mode mode = core::MonitorRequest::Mode::kContinuous;
    sim::Duration period = sim::Duration::sec(2);
    std::vector<core::Metric> metrics = {core::Metric::kReachability,
                                         core::Metric::kThroughput};
    // A path is failed after this many consecutive bad samples.
    int strikes = 2;
    // The active server is failed when at least this fraction of its
    // client paths are failed.
    double failure_fraction = 0.5;
    // Quality weighing (DESIGN.md §9): a SampleQuality::kStale tuple is a
    // re-report of old data after the sensor chain was exhausted — by
    // default it strikes the path like a failed sample instead of clearing
    // strikes like the good sample it superficially resembles.
    bool stale_is_bad = true;
  };

  using ReconfigCallback = std::function<void(const ReconfigurationEvent&)>;
  // Observes every tuple *after* strike accounting and reconfiguration
  // evaluation — the control plane's sensor→trigger feed (DESIGN.md §12).
  using TupleObserver =
      std::function<void(const std::string& application,
                         const core::PathMetricTuple& tuple)>;

  ResourceManager(core::SensorDirector& director, Config config);

  // Starts monitoring the full server×client path matrix and managing the
  // active server. `initial_server` must be in the pool. Throws
  // std::invalid_argument when every requirement is disabled (<= 0
  // sentinels and require_reachability false): such a matrix could never
  // strike, so "managing" it would silently monitor without ever acting.
  void manage(ManagedApplication app, net::IpAddr initial_server);
  void stop(const std::string& application);

  net::IpAddr active_server(const std::string& application) const;
  void set_reconfiguration_callback(ReconfigCallback cb) {
    on_reconfig_ = std::move(cb);
  }
  // Additional reconfiguration listeners (the user callback slot above stays
  // independent); listeners fire after it, in registration order.
  void add_reconfiguration_listener(ReconfigCallback cb) {
    reconfig_listeners_.push_back(std::move(cb));
  }
  void set_tuple_observer(TupleObserver observer) {
    tuple_observer_ = std::move(observer);
  }

  // Failing-path fraction for a server of an application (diagnostics).
  double failing_fraction(const std::string& application,
                          net::IpAddr server) const;
  // Current consecutive-bad-sample count for one (server, client) path of an
  // application; 0 when unknown.
  int path_strikes(const std::string& application, net::IpAddr server,
                   net::IpAddr client) const;
  // Total (server, client) strike entries held across all applications.
  // Bounded: pool_size × client_count per app while managed, 0 after stop.
  std::size_t strike_entries() const;
  const ManagedApplication* application(const std::string& name) const;
  std::vector<std::string> applications() const;
  // The live monitor request driving an application; 0 when unknown.
  core::SensorDirector::RequestId request_id(
      const std::string& application) const;
  core::SensorDirector& director() { return director_; }
  const Config& config() const { return config_; }

  std::uint64_t tuples_consumed() const { return tuples_consumed_; }
  std::uint64_t reconfigurations() const { return reconfigurations_; }
  // Tuples consumed whose quality was degraded (retried/fallback/stale).
  std::uint64_t degraded_tuples() const { return degraded_tuples_; }
  std::uint64_t stale_tuples() const { return stale_tuples_; }

 private:
  struct AppState {
    ManagedApplication app;
    net::IpAddr active;
    core::SensorDirector::RequestId request = 0;
    // (server, client) -> consecutive bad samples
    std::map<std::pair<net::IpAddr, net::IpAddr>, int> strikes;
  };

  void on_tuple(const std::string& app_name,
                const core::PathMetricTuple& tuple);
  bool tuple_is_bad(const Requirements& req,
                    const core::PathMetricTuple& tuple) const;
  void maybe_reconfigure(AppState& state);
  std::optional<net::IpAddr> pick_replacement(const AppState& state) const;
  core::MonitorRequest build_request(const ManagedApplication& app) const;

  core::SensorDirector& director_;
  Config config_;
  ReconfigCallback on_reconfig_;
  std::vector<ReconfigCallback> reconfig_listeners_;
  TupleObserver tuple_observer_;
  std::map<std::string, AppState> apps_;
  std::uint64_t tuples_consumed_ = 0;
  std::uint64_t reconfigurations_ = 0;
  std::uint64_t degraded_tuples_ = 0;
  std::uint64_t stale_tuples_ = 0;
};

}  // namespace netmon::mgr
