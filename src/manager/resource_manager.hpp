#pragma once

// Resource manager (paper §1, Figure 1): consumes (path, metric) tuples
// from a network resource monitor and reconfigures the system from its
// replicated pools when critical components fail or resources fall below
// requirements. Mirrors the HiPer-D RTDS arrangement (§5.1): a pool of S
// servers and C clients, with the full S×C path matrix monitored.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/sensor_director.hpp"

namespace netmon::mgr {

struct Requirements {
  // <= 0 disables a check.
  double min_throughput_bps = 0.0;
  double max_latency_s = 0.0;
  bool require_reachability = true;
};

struct ManagedApplication {
  std::string name;
  std::vector<net::IpAddr> server_pool;
  std::vector<net::IpAddr> client_pool;
  std::uint16_t port = 0;
  Requirements requirements;
};

struct ReconfigurationEvent {
  std::string application;
  net::IpAddr old_server;
  net::IpAddr new_server;
  sim::TimePoint at;
  std::string reason;
};

class ResourceManager {
 public:
  struct Config {
    // How the monitor is driven.
    core::MonitorRequest::Mode mode = core::MonitorRequest::Mode::kContinuous;
    sim::Duration period = sim::Duration::sec(2);
    std::vector<core::Metric> metrics = {core::Metric::kReachability,
                                         core::Metric::kThroughput};
    // A path is failed after this many consecutive bad samples.
    int strikes = 2;
    // The active server is failed when at least this fraction of its
    // client paths are failed.
    double failure_fraction = 0.5;
    // Quality weighing (DESIGN.md §9): a SampleQuality::kStale tuple is a
    // re-report of old data after the sensor chain was exhausted — by
    // default it strikes the path like a failed sample instead of clearing
    // strikes like the good sample it superficially resembles.
    bool stale_is_bad = true;

    // Trend-based breaker verdicts (DESIGN.md §13): judge throughput and
    // latency tuples by a tail quantile over a range query of the tiered
    // store instead of the last sample alone, so a single spike in an
    // otherwise healthy window cannot strike the path — and a sustained
    // shift strikes even when individual samples wobble around the
    // threshold. Reachability, invalid, and stale samples always keep
    // last-sample semantics (liveness must not be smoothed away).
    struct TrendConfig {
      // Query window ending at the tuple's timestamp; zero disables trend
      // evaluation entirely (classic last-sample strikes).
      sim::Duration window = sim::Duration::sec(0);
      // Valid raw samples the window must hold before the quantile is
      // trusted; fewer falls back to the last-sample verdict. 100 is the
      // floor at which p99 excludes exactly one outlier.
      int min_samples = 100;
      // Tail fraction: latency uses the upper q-quantile (p99 high is bad),
      // throughput the mirrored lower tail (p01 low is bad).
      double quantile = 0.99;
    };
    TrendConfig trend;

    // Senescence watchdog (DESIGN.md §14): with a positive bound, the
    // manager periodically sweeps the active server's client paths and
    // strikes any whose newest database sample — however it arrived,
    // locally sensed or federated from a zone monitor — is older than the
    // bound. A silent zone therefore degrades into failover pressure
    // instead of being trusted forever. Zero (the default) disables the
    // sweep entirely: no timer is scheduled, event order is unchanged.
    sim::Duration senescence_bound = sim::Duration::sec(0);
    sim::Duration senescence_check_period = sim::Duration::sec(1);
  };

  using ReconfigCallback = std::function<void(const ReconfigurationEvent&)>;
  // Observes every tuple *after* strike accounting and reconfiguration
  // evaluation — the control plane's sensor→trigger feed (DESIGN.md §12).
  using TupleObserver =
      std::function<void(const std::string& application,
                         const core::PathMetricTuple& tuple)>;

  ResourceManager(core::SensorDirector& director, Config config);
  ~ResourceManager();

  // Starts monitoring the full server×client path matrix and managing the
  // active server. `initial_server` must be in the pool. Throws
  // std::invalid_argument when every requirement is disabled (<= 0
  // sentinels and require_reachability false): such a matrix could never
  // strike, so "managing" it would silently monitor without ever acting.
  void manage(ManagedApplication app, net::IpAddr initial_server);
  void stop(const std::string& application);

  net::IpAddr active_server(const std::string& application) const;
  void set_reconfiguration_callback(ReconfigCallback cb) {
    on_reconfig_ = std::move(cb);
  }
  // Additional reconfiguration listeners (the user callback slot above stays
  // independent); listeners fire after it, in registration order. The
  // returned handle unregisters — anything shorter-lived than the manager
  // (e.g. a control plane) must remove itself before its captures die.
  using ListenerHandle = std::uint64_t;
  ListenerHandle add_reconfiguration_listener(ReconfigCallback cb) {
    const ListenerHandle handle = next_listener_++;
    reconfig_listeners_.emplace_back(handle, std::move(cb));
    return handle;
  }
  // Safe on unknown handles and from inside a listener dispatch (the
  // removed listener simply stops firing).
  void remove_reconfiguration_listener(ListenerHandle handle);
  void set_tuple_observer(TupleObserver observer) {
    tuple_observer_ = std::move(observer);
  }

  // Failing-path fraction for a server of an application (diagnostics).
  double failing_fraction(const std::string& application,
                          net::IpAddr server) const;
  // Current consecutive-bad-sample count for one (server, client) path of an
  // application; 0 when unknown.
  int path_strikes(const std::string& application, net::IpAddr server,
                   net::IpAddr client) const;
  // Total (server, client) strike entries held across all applications.
  // Bounded: pool_size × client_count per app while managed, 0 after stop.
  std::size_t strike_entries() const;
  const ManagedApplication* application(const std::string& name) const;
  std::vector<std::string> applications() const;
  // The live monitor request driving an application; 0 when unknown.
  core::SensorDirector::RequestId request_id(
      const std::string& application) const;
  core::SensorDirector& director() { return director_; }
  const Config& config() const { return config_; }

  std::uint64_t tuples_consumed() const { return tuples_consumed_; }
  std::uint64_t reconfigurations() const { return reconfigurations_; }
  // Tuples consumed whose quality was degraded (retried/fallback/stale).
  std::uint64_t degraded_tuples() const { return degraded_tuples_; }
  std::uint64_t stale_tuples() const { return stale_tuples_; }
  // Tuples whose trend verdict disagreed with (and overrode) the
  // last-sample verdict — both directions count.
  std::uint64_t trend_overrides() const { return trend_overrides_; }
  // Strikes issued by the senescence watchdog sweep.
  std::uint64_t senescence_strikes() const { return senescence_strikes_; }

  // Weighted tail quantile over a tiered range query: points are weighed by
  // their valid sample count and represented by their max (`upper` true, the
  // latency convention) or min (`upper` false, throughput — evaluated at the
  // mirrored lower rank). Returns nullopt when the window holds no valid
  // samples; `valid_samples` (optional) receives the window's valid count so
  // callers can apply a min-samples floor. Exposed for direct testing.
  static std::optional<double> windowed_quantile(
      const core::MeasurementDatabase& db, const core::Path& path,
      core::Metric metric, sim::TimePoint now, sim::Duration window, double q,
      bool upper, std::uint64_t* valid_samples = nullptr);

 private:
  struct AppState {
    ManagedApplication app;
    net::IpAddr active;
    core::SensorDirector::RequestId request = 0;
    // (server, client) -> consecutive bad samples
    std::map<std::pair<net::IpAddr, net::IpAddr>, int> strikes;
  };

  void on_tuple(const std::string& app_name,
                const core::PathMetricTuple& tuple);
  bool tuple_is_bad(const Requirements& req,
                    const core::PathMetricTuple& tuple) const;
  bool trend_verdict(const Requirements& req,
                     const core::PathMetricTuple& tuple, bool last_sample_bad);
  void maybe_reconfigure(AppState& state);
  void senescence_scan();
  std::optional<net::IpAddr> pick_replacement(const AppState& state) const;
  core::MonitorRequest build_request(const ManagedApplication& app) const;

  core::SensorDirector& director_;
  Config config_;
  ReconfigCallback on_reconfig_;
  std::vector<std::pair<ListenerHandle, ReconfigCallback>> reconfig_listeners_;
  ListenerHandle next_listener_ = 1;
  TupleObserver tuple_observer_;
  std::map<std::string, AppState> apps_;
  std::uint64_t tuples_consumed_ = 0;
  std::uint64_t reconfigurations_ = 0;
  std::uint64_t degraded_tuples_ = 0;
  std::uint64_t stale_tuples_ = 0;
  std::uint64_t trend_overrides_ = 0;
  std::uint64_t senescence_strikes_ = 0;
  sim::EventHandle senescence_timer_;
};

}  // namespace netmon::mgr
