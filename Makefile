# Convenience wrappers around the CMake presets (see CMakePresets.json).
#   make build      - configure + build the default tree in ./build
#   make test       - tier-1 test suite on the default tree
#   make sanitize   - tier-1 test suite under ASan+UBSan in ./build-sanitize
#   make bench      - run microbenchmarks, writing BENCH_micro.json

.PHONY: build test sanitize bench clean

build:
	cmake --preset default
	cmake --build --preset default -j

test: build
	ctest --preset default

sanitize:
	cmake --preset sanitize
	cmake --build --preset sanitize -j
	ctest --preset sanitize

bench: build
	bench/run_benchmarks.sh

clean:
	rm -rf build build-sanitize
