// Tests for the self-observability layer: P² streaming-quantile accuracy
// against exact quantiles on seeded streams, registry snapshot determinism
// (same seed ⇒ byte-identical export), the trace ring, the self-MIB group,
// and — most importantly — the passivity guarantee: attaching a registry to
// the simulator leaves the event-core golden trace hash unchanged.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/lane_scheduler.hpp"
#include "core/measurement_db.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile.hpp"
#include "obs/self_mib.hpp"
#include "sim/simulator.hpp"
#include "snmp/mib.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netmon::obs {
namespace {

// ---------------------------------------------------------------------------
// P² quantile estimator

TEST(P2Quantile, RejectsOutOfRangeProbability) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
  EXPECT_NO_THROW(P2Quantile(0.5));
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile med(0.5);
  EXPECT_EQ(med.value(), 0.0);  // empty
  med.add(30.0);
  EXPECT_EQ(med.value(), 30.0);
  med.add(10.0);
  med.add(20.0);
  EXPECT_EQ(med.value(), 20.0);  // true median of {10,20,30}
  med.add(40.0);
  EXPECT_EQ(med.count(), 4u);
}

// The estimator must track exact quantiles within a few percent of the
// sample range on well-behaved distributions. These bounds are loose enough
// to be robust to the seed, tight enough to catch a broken marker update.
void expect_close_quantiles(util::Rng& rng,
                            const std::function<double(util::Rng&)>& draw,
                            double tolerance_frac) {
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  util::SampleSet exact;
  for (int i = 0; i < 20000; ++i) {
    const double x = draw(rng);
    p50.add(x);
    p90.add(x);
    p99.add(x);
    exact.add(x);
  }
  const double range = exact.max() - exact.min();
  EXPECT_NEAR(p50.value(), exact.quantile(0.5), tolerance_frac * range);
  EXPECT_NEAR(p90.value(), exact.quantile(0.9), tolerance_frac * range);
  EXPECT_NEAR(p99.value(), exact.quantile(0.99), tolerance_frac * range);
}

TEST(P2Quantile, TracksUniformStream) {
  util::Rng rng(42);
  expect_close_quantiles(
      rng, [](util::Rng& r) { return r.uniform(0.0, 1000.0); }, 0.02);
}

TEST(P2Quantile, TracksExponentialStream) {
  util::Rng rng(7);
  expect_close_quantiles(
      rng, [](util::Rng& r) { return r.exponential(50.0); }, 0.05);
}

TEST(P2Quantile, TracksNormalStream) {
  util::Rng rng(1998);
  expect_close_quantiles(
      rng, [](util::Rng& r) { return r.normal(100.0, 15.0); }, 0.05);
}

TEST(P2Quantile, DeterministicForIdenticalStreams) {
  P2Quantile a(0.9), b(0.9);
  util::Rng ra(3), rb(3);
  for (int i = 0; i < 5000; ++i) {
    a.add(ra.exponential(10.0));
    b.add(rb.exponential(10.0));
  }
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.count(), b.count());
}

TEST(QuantileSketch, ExactScalarStatistics) {
  QuantileSketch s;
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  for (double x : {5.0, 1.0, 9.0, 3.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.sum(), 18.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.mean(), 4.5);
  // quantile() routes to the nearest tracked estimator.
  EXPECT_EQ(s.quantile(0.5), s.p50());
  EXPECT_EQ(s.quantile(0.9), s.p90());
  EXPECT_EQ(s.quantile(0.99), s.p99());
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, HandlesAreStableAndGetOrCreate) {
  Registry reg;
  Counter& c1 = reg.counter("x.count");
  Counter& c2 = reg.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(c2.value(), 3u);
  // Node-based storage: creating more metrics must not move the handle.
  for (int i = 0; i < 100; ++i) reg.counter("y." + std::to_string(i));
  EXPECT_EQ(&reg.counter("x.count"), &c1);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(Registry, KindClashThrows) {
  Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::logic_error);
  EXPECT_THROW(reg.histogram("m"), std::logic_error);
  EXPECT_THROW(reg.gauge_fn("m", [] { return 0.0; }), std::logic_error);
}

TEST(Registry, GaugeFnReRegisterReplaces) {
  Registry reg;
  reg.gauge_fn("g", [] { return 1.0; });
  reg.gauge_fn("g", [] { return 2.0; });
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 2.0);
}

TEST(Registry, RemovePrefixDetachesOnlyThatComponent) {
  Registry reg;
  reg.counter("sim.schedules");
  reg.histogram("sim.queue_depth");
  reg.gauge_fn("sim.now_seconds", [] { return 0.0; });
  reg.counter("director.launches");
  reg.remove_prefix("sim.");
  EXPECT_FALSE(reg.contains("sim.schedules"));
  EXPECT_FALSE(reg.contains("sim.queue_depth"));
  EXPECT_FALSE(reg.contains("sim.now_seconds"));
  EXPECT_TRUE(reg.contains("director.launches"));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, SnapshotIsNameSortedAcrossKinds) {
  Registry reg;
  reg.histogram("c.hist");
  reg.counter("a.count");
  reg.gauge("b.gauge");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.count");
  EXPECT_EQ(snap[1].name, "b.gauge");
  EXPECT_EQ(snap[2].name, "c.hist");
}

// Snapshot determinism: the same seeded workload must export the identical
// byte string — the property that makes obs snapshots diffable in CI.
std::string seeded_export(std::uint64_t seed) {
  Registry reg;
  util::Rng rng(seed);
  Counter& events = reg.counter("run.events");
  Histogram& latency = reg.histogram("run.latency_us");
  Gauge& level = reg.gauge("run.level");
  for (int i = 0; i < 4000; ++i) {
    events.inc();
    latency.observe(rng.exponential(250.0));
    level.set(rng.uniform(0.0, 10.0));
  }
  reg.gauge_fn("run.events_twice",
               [&events] { return static_cast<double>(events.value()) * 2; });
  return reg.export_json();
}

TEST(Registry, ExportIsByteIdenticalPerSeed) {
  const std::string a = seeded_export(1234);
  const std::string b = seeded_export(1234);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, seeded_export(1235));
}

TEST(Registry, ExportFormatsContainEveryMetric) {
  Registry reg;
  reg.counter("n.count").inc(7);
  reg.gauge("n.gauge").set(2.5);
  reg.histogram("n.hist").observe(4.0);
  const std::string text = reg.export_text();
  const std::string json = reg.export_json();
  for (const char* name : {"n.count", "n.gauge", "n.hist"}) {
    EXPECT_NE(text.find(name), std::string::npos) << text;
    EXPECT_NE(json.find(name), std::string::npos) << json;
  }
  EXPECT_NE(text.find('7'), std::string::npos);
  EXPECT_NE(json.find("2.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace sink

TEST(TraceSink, BoundedRingKeepsNewestAndCountsDrops) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.emit(i, "cat", "ev" + std::to_string(i), i * 1.0);
  }
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the retained tail.
  EXPECT_EQ(events.front().name, "ev6");
  EXPECT_EQ(events.back().name, "ev9");
  EXPECT_EQ(events.back().at_ns, 9);
}

TEST(TraceSink, RegistryForwardsOnlyWhenAttached) {
  Registry reg;
  reg.emit(1, "cat", "dropped-on-floor", 0.0);  // no sink: must be a no-op
  TraceSink sink(8);
  reg.set_trace(&sink);
  reg.emit(2, "cat", "kept", 1.0);
  reg.set_trace(nullptr);
  reg.emit(3, "cat", "dropped-again", 2.0);
  ASSERT_EQ(sink.emitted(), 1u);
  EXPECT_EQ(sink.events().front().name, "kept");
}

// ---------------------------------------------------------------------------
// Passivity: instrumentation must not perturb simulation order. This is the
// event-core golden-trace workload from tests/event_core_test.cpp, run with
// a registry attached; the hash must match the seed implementation exactly.

constexpr std::uint64_t kGoldenTraceHash = 0x1648e4f5d335438full;

std::uint64_t instrumented_trace_hash(Registry* registry) {
  sim::Simulator s;
  if (registry != nullptr) s.attach_observability(*registry);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h, &s](std::uint64_t marker) {
    h ^= marker;
    h *= 1099511628211ull;
    h ^= static_cast<std::uint64_t>(s.now().nanos());
    h *= 1099511628211ull;
  };

  auto p30 = s.schedule_periodic(sim::Duration::ms(30), [&] { mix(1); });
  auto p10 = s.schedule_periodic(sim::Duration::ms(10), [&] { mix(2); });
  auto p15 = s.schedule_periodic(sim::Duration::ms(15), [&] { mix(3); });

  for (int i = 0; i < 40; ++i) {
    s.schedule_in(sim::Duration::ms(3 * ((i * 7) % 31)), [&mix, i] {
      mix(100 + static_cast<std::uint64_t>(i));
    });
  }

  sim::EventHandle doomed =
      s.schedule_in(sim::Duration::ms(55), [&] { mix(999); });
  s.schedule_in(sim::Duration::ms(42), [&] {
    mix(4);
    doomed.cancel();
    s.schedule_in(sim::Duration::ms(1), [&] { mix(5); });
    s.schedule_at(s.now(), [&] { mix(6); });
  });
  s.schedule_in(sim::Duration::ms(65), [&] {
    mix(7);
    p30.cancel();
  });
  auto self_cancel = std::make_shared<sim::EventHandle>();
  *self_cancel = s.schedule_periodic(sim::Duration::ms(7), [&, self_cancel] {
    mix(9);
    if (s.now().nanos() >= sim::Duration::ms(21).nanos()) {
      self_cancel->cancel();
    }
  });

  s.run_until(sim::TimePoint::from_nanos(0) + sim::Duration::ms(80));
  p10.cancel();
  p15.cancel();
  s.run();
  mix(static_cast<std::uint64_t>(s.events_executed()));
  return h;
}

TEST(Passivity, GoldenTraceHashUnchangedWithRegistryAttached) {
  EXPECT_EQ(instrumented_trace_hash(nullptr), kGoldenTraceHash);
  Registry reg;
  EXPECT_EQ(instrumented_trace_hash(&reg), kGoldenTraceHash);
  // The simulator detached itself on destruction; nothing dangles.
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Passivity, SimulatorDetachesOnDestruction) {
  Registry reg;
  {
    sim::Simulator s;
    s.attach_observability(reg, "scoped");
    if constexpr (kCompiledIn) {
      s.schedule_in(sim::Duration::ms(1), [] {});
      s.run();
      EXPECT_TRUE(reg.contains("scoped.schedules"));
    }
  }
  EXPECT_EQ(reg.size(), 0u);  // registry safely outlives the simulator
}

TEST(Passivity, RuntimeDetachStopsUpdatesCompiledInOrNot) {
  Registry reg;
  sim::Simulator s;
  s.attach_observability(reg);
  s.schedule_in(sim::Duration::ms(1), [] {});
  s.run();
  s.detach_observability();
  EXPECT_EQ(reg.size(), 0u);
  // Scheduling after detach must not touch the (removed) metrics.
  s.schedule_in(sim::Duration::ms(1), [] {});
  s.run();
  EXPECT_EQ(reg.size(), 0u);
}

// ---------------------------------------------------------------------------
// Self-MIB group

TEST(SelfMib, PublishesRegistryAndRefreshes) {
  Registry reg;
  reg.counter("a.events").inc(41);
  reg.gauge("a.level").set(1.5);
  reg.histogram("a.lat").observe(2.0);

  snmp::MibTree mib;
  SelfMib self(mib, reg);
  const snmp::Oid base = self.base();

  // selfMetricCount reads live registry size.
  EXPECT_EQ(mib.get(base.with({1, 0})), snmp::SnmpValue(snmp::Gauge32{3}));

  // Counter row 1: name + Counter64 value resolved by name at read time.
  EXPECT_EQ(mib.get(base.with({2, 1, 1})), snmp::SnmpValue("a.events"));
  reg.counter("a.events").inc();  // live: no refresh needed for the value
  EXPECT_EQ(mib.get(base.with({2, 1, 2})),
            snmp::SnmpValue(snmp::Counter64{42}));

  // Gauge row: milli-units fixed point.
  EXPECT_EQ(mib.get(base.with({3, 1, 2})),
            snmp::SnmpValue(std::int64_t{1500}));

  // Histogram row: count as Counter64.
  EXPECT_EQ(mib.get(base.with({4, 1, 2})),
            snmp::SnmpValue(snmp::Counter64{1}));

  // Metrics added later appear after refresh().
  reg.counter("b.more").inc(5);
  EXPECT_TRUE(mib.get(base.with({2, 2, 2})).is_exception());
  self.refresh();
  EXPECT_EQ(mib.get(base.with({2, 2, 1})), snmp::SnmpValue("b.more"));

  // A removed metric reads as zero, never dangles.
  reg.remove_prefix("a.");
  EXPECT_EQ(mib.get(base.with({2, 1, 2})),
            snmp::SnmpValue(snmp::Counter64{0}));

  const std::size_t before = mib.size();
  EXPECT_GT(before, 0u);
  {
    SelfMib scoped(mib, reg, base.with({99}));
    EXPECT_GT(mib.size(), before);
  }
  EXPECT_EQ(mib.size(), before);  // destructor removed its subtree
}

// ---------------------------------------------------------------------------
// Per-series retention horizons (DESIGN.md §14 / ROADMAP follow-on): the
// tiered store's oldest retained timestamp per series, surfaced as registry
// gauges and thus walkable through the SelfMib like any other self-metric.

TEST(RetentionHorizons, PublishedPerSeriesAndVisibleInSelfMib) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  core::TieredStorageConfig storage;
  storage.page_points = 8;
  storage.rollup_factor = 4;
  storage.tiers = 2;
  Registry reg;  // must outlive db: ~MeasurementDatabase detaches from it
  core::MeasurementDatabase db(16, storage);
  const core::Path path(
      core::ProcessEndpoint{"s", net::IpAddr(10, 9, 0, 1), 1},
      core::ProcessEndpoint{"c", net::IpAddr(10, 9, 0, 2), 1});
  for (int i = 0; i < 20; ++i) {
    db.record(path, core::Metric::kThroughput,
              core::MetricValue::of(i, sim::TimePoint::from_nanos(
                                           i * 1'000'000'000ll)));
  }

  db.publish_retention_horizons(reg, "db.retention");
  const std::string name = "db.retention." + path.to_string() + "." +
                           core::to_string(core::Metric::kThroughput) +
                           ".retention_horizon_ns";
  ASSERT_TRUE(reg.contains(name));

  // The gauge reads the store's live horizon.
  const core::PathId id = db.find(path);
  ASSERT_NE(id, core::kInvalidPathId);
  const auto horizon = db.tiered().retention_horizon(static_cast<std::uint32_t>(
      db.series_slot(id, core::Metric::kThroughput)));
  ASSERT_TRUE(horizon.has_value());
  double published = -2.0;
  for (const auto& entry : reg.snapshot()) {
    if (entry.name == name) published = entry.value;
  }
  EXPECT_DOUBLE_EQ(published, static_cast<double>(*horizon));

  // Walkable via the SelfMib like every other registry metric.
  snmp::MibTree mib;
  SelfMib self(mib, reg);
  bool seen = false;
  for (const auto& bind : mib.walk(self.base())) {
    if (bind.value == snmp::SnmpValue(name)) seen = true;
  }
  EXPECT_TRUE(seen);

  // Never-sampled metrics of the same path get no gauge; a series with no
  // tiered data reports -1 instead of a stale number.
  const std::string latency_name =
      "db.retention." + path.to_string() + "." +
      core::to_string(core::Metric::kOneWayLatency) + ".retention_horizon_ns";
  EXPECT_FALSE(reg.contains(latency_name));
}

TEST(RetentionHorizons, DisabledTiersReadMinusOne) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  core::TieredStorageConfig storage;
  storage.enabled = false;
  Registry reg;  // must outlive db: ~MeasurementDatabase detaches from it
  core::MeasurementDatabase db(16, storage);
  const core::Path path(
      core::ProcessEndpoint{"s", net::IpAddr(10, 9, 1, 1), 1},
      core::ProcessEndpoint{"c", net::IpAddr(10, 9, 1, 2), 1});
  db.record(path, core::Metric::kReachability,
            core::MetricValue::of(1.0, sim::TimePoint::from_nanos(1)));
  db.publish_retention_horizons(reg, "db.retention");
  const std::string name = "db.retention." + path.to_string() + "." +
                           core::to_string(core::Metric::kReachability) +
                           ".retention_horizon_ns";
  ASSERT_TRUE(reg.contains(name));
  for (const auto& entry : reg.snapshot()) {
    if (entry.name == name) EXPECT_DOUBLE_EQ(entry.value, -1.0);
  }
}

// ---------------------------------------------------------------------------
// Scheduler wake-up telemetry (DESIGN.md §15): the incremental admission
// gate publishes its entire re-test cost as wake_tests / futile_wakeups
// gauges, so the old 32.6M-futile-scan class of regression is assertable
// straight from telemetry — and walkable via the SelfMib like any gauge.

TEST(SchedulerWakeupGauges, PublishedInRegistryAndSelfMib) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  core::SchedulerConfig cfg;
  cfg.lanes = 3;
  cfg.link_disjoint = true;
  core::LaneScheduler sched(cfg);
  Registry reg;
  sched.attach_observability(reg, "seq");

  // Holders on a trunk and a side link, two waiters queued on the trunk.
  // Freeing the trunk wakes only its lowest-seq waiter (1 wake test); that
  // waiter blocks on the side link — 1 futile wakeup — and its baton wakes
  // the next trunk waiter (2nd wake test), which admits.
  const core::LinkKey trunk = 42;
  const core::LinkKey side = 7;
  std::vector<core::LaneScheduler::Done> running;
  auto submit = [&](std::vector<core::LinkKey> footprint) {
    core::ProbeProfile p;
    p.footprint = std::move(footprint);
    sched.enqueue(
        [&running](core::LaneScheduler::Done done) {
          running.push_back(std::move(done));
        },
        p);
  };
  submit({trunk});        // holder A
  submit({side});         // holder B
  submit({trunk, side});  // W1: woken by the trunk, re-parks on side
  submit({trunk});        // W2: admitted via W1's baton
  ASSERT_EQ(running.size(), 2u);
  EXPECT_EQ(sched.parked_on_links(), 2u);
  auto done = std::move(running.front());  // holder A: frees the trunk
  running.erase(running.begin());
  done();

  EXPECT_EQ(sched.scheduler_stats().wake_tests, 2u);
  EXPECT_EQ(sched.scheduler_stats().futile_wakeups, 1u);

  ASSERT_TRUE(reg.contains("seq.wake_tests"));
  ASSERT_TRUE(reg.contains("seq.futile_wakeups"));
  ASSERT_TRUE(reg.contains("seq.parked_links"));
  ASSERT_TRUE(reg.contains("seq.parked_budget"));
  double wake = -1.0, futile = -1.0, parked = -1.0;
  for (const auto& entry : reg.snapshot()) {
    if (entry.name == "seq.wake_tests") wake = entry.value;
    if (entry.name == "seq.futile_wakeups") futile = entry.value;
    if (entry.name == "seq.parked_links") parked = entry.value;
  }
  EXPECT_DOUBLE_EQ(wake, 2.0);
  EXPECT_DOUBLE_EQ(futile, 1.0);
  EXPECT_DOUBLE_EQ(parked, 1.0);

  // Visible through the SelfMib gauge table by name, like any self-metric.
  snmp::MibTree mib;
  SelfMib self(mib, reg);
  bool wake_row = false, futile_row = false;
  for (const auto& bind : mib.walk(self.base())) {
    if (bind.value == snmp::SnmpValue("seq.wake_tests")) wake_row = true;
    if (bind.value == snmp::SnmpValue("seq.futile_wakeups")) futile_row = true;
  }
  EXPECT_TRUE(wake_row);
  EXPECT_TRUE(futile_row);

  while (!running.empty()) {
    auto d = std::move(running.front());
    running.erase(running.begin());
    d();
  }
  EXPECT_TRUE(sched.idle());
  sched.check_consistency();
  sched.detach_observability();
  EXPECT_FALSE(reg.contains("seq.wake_tests"));
}

TEST(SelfMib, WalkIsOrderedAndTerminates) {
  Registry reg;
  reg.counter("w.one").inc(1);
  reg.counter("w.two").inc(2);
  snmp::MibTree mib;
  SelfMib self(mib, reg);
  const auto binds = mib.walk(self.base());
  ASSERT_GE(binds.size(), 5u);  // count + 2×(name,value)
  for (std::size_t i = 1; i < binds.size(); ++i) {
    EXPECT_TRUE(binds[i - 1].oid < binds[i].oid);
  }
}

}  // namespace
}  // namespace netmon::obs
