#include <gtest/gtest.h>

#include <set>

#include "apps/traffic.hpp"
#include "net/topology.hpp"
#include "snmp/agent.hpp"
#include "snmp/ber.hpp"
#include "snmp/manager.hpp"
#include "snmp/mib2.hpp"
#include "util/rng.hpp"

namespace netmon::snmp {
namespace {

using sim::Duration;

TEST(Oid, ParseFormatRoundTrip) {
  const auto oid = Oid::parse("1.3.6.1.2.1.1.1.0");
  EXPECT_EQ(oid.to_string(), "1.3.6.1.2.1.1.1.0");
  EXPECT_EQ(oid.size(), 9u);
  EXPECT_THROW(Oid::parse(""), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1..2"), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1.x.2"), std::invalid_argument);
}

TEST(Oid, LexicographicOrdering) {
  EXPECT_LT(Oid({1, 3, 6}), Oid({1, 3, 6, 1}));
  EXPECT_LT(Oid({1, 3, 6, 1}), Oid({1, 3, 7}));
  EXPECT_LT(Oid({1, 3}), Oid({2}));
}

TEST(Oid, PrefixOperations) {
  const Oid base{1, 3, 6, 1};
  EXPECT_TRUE(base.with({2, 1}).starts_with(base));
  EXPECT_FALSE(base.starts_with(base.with(9)));
  EXPECT_EQ(base.with({2, 1}).suffix_after(base), Oid({2, 1}));
  EXPECT_THROW(Oid({1, 2}).suffix_after(Oid({9})), std::invalid_argument);
}

// --- BER round-trip properties ---------------------------------------------

SnmpValue roundtrip(const SnmpValue& value) {
  BerWriter w;
  w.write_value(value);
  BerReader r(w.bytes());
  return r.read_value();
}

TEST(Ber, ValueRoundTripsAllTypes) {
  EXPECT_EQ(roundtrip(SnmpValue(Null{})), SnmpValue(Null{}));
  EXPECT_EQ(roundtrip(SnmpValue(std::int64_t(0))), SnmpValue(std::int64_t(0)));
  EXPECT_EQ(roundtrip(SnmpValue(std::int64_t(-1))),
            SnmpValue(std::int64_t(-1)));
  EXPECT_EQ(roundtrip(SnmpValue(std::string("hello"))),
            SnmpValue(std::string("hello")));
  EXPECT_EQ(roundtrip(SnmpValue(Oid{1, 3, 6, 1, 4, 1, 99999, 1})),
            SnmpValue(Oid{1, 3, 6, 1, 4, 1, 99999, 1}));
  EXPECT_EQ(roundtrip(SnmpValue(net::IpAddr(192, 168, 1, 250))),
            SnmpValue(net::IpAddr(192, 168, 1, 250)));
  EXPECT_EQ(roundtrip(SnmpValue(Counter32{0xFFFFFFFFu})),
            SnmpValue(Counter32{0xFFFFFFFFu}));
  EXPECT_EQ(roundtrip(SnmpValue(Gauge32{42})), SnmpValue(Gauge32{42}));
  EXPECT_EQ(roundtrip(SnmpValue(TimeTicks{123456})),
            SnmpValue(TimeTicks{123456}));
  EXPECT_EQ(roundtrip(SnmpValue(Counter64{0xDEADBEEFCAFEull})),
            SnmpValue(Counter64{0xDEADBEEFCAFEull}));
  EXPECT_EQ(roundtrip(SnmpValue(EndOfMibView{})), SnmpValue(EndOfMibView{}));
  EXPECT_EQ(roundtrip(SnmpValue(NoSuchObject{})), SnmpValue(NoSuchObject{}));
}

// Property sweep: integers across the full signed range round-trip.
class BerIntegerProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BerIntegerProperty, RoundTrips) {
  const SnmpValue v(GetParam());
  EXPECT_EQ(roundtrip(v), v);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, BerIntegerProperty,
    ::testing::Values(std::int64_t(0), 1, -1, 127, 128, -128, -129, 255, 256,
                      32767, 32768, -32768, -32769, INT64_MAX, INT64_MIN,
                      INT64_MAX - 1, INT64_MIN + 1));

TEST(Ber, FuzzedValuesRoundTrip) {
  util::Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    switch (rng.uniform_int(0, 4)) {
      case 0: {
        const SnmpValue v(static_cast<std::int64_t>(rng.next()));
        EXPECT_EQ(roundtrip(v), v);
        break;
      }
      case 1: {
        std::string s;
        const int len = static_cast<int>(rng.uniform_int(0, 300));
        for (int j = 0; j < len; ++j) {
          s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        }
        const SnmpValue v(s);
        EXPECT_EQ(roundtrip(v), v);
        break;
      }
      case 2: {
        std::vector<std::uint32_t> ids{1,
                                       static_cast<std::uint32_t>(
                                           rng.uniform_int(0, 39))};
        const int len = static_cast<int>(rng.uniform_int(0, 12));
        for (int j = 0; j < len; ++j) {
          ids.push_back(static_cast<std::uint32_t>(
              rng.uniform_int(0, 0xFFFFFFFFll)));
        }
        const SnmpValue v{Oid(ids)};
        EXPECT_EQ(roundtrip(v), v);
        break;
      }
      case 3: {
        const SnmpValue v(Counter64{rng.next()});
        EXPECT_EQ(roundtrip(v), v);
        break;
      }
      default: {
        const SnmpValue v(Counter32{
            static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFFll))});
        EXPECT_EQ(roundtrip(v), v);
        break;
      }
    }
  }
}

TEST(Ber, TruncatedInputThrows) {
  BerWriter w;
  w.write_octet_string("hello world");
  auto bytes = w.bytes();
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    BerReader r(std::span(bytes.data(), cut));
    EXPECT_THROW(r.read_octet_string(), BerError) << "cut=" << cut;
  }
}

TEST(Ber, WrongTagThrows) {
  BerWriter w;
  w.write_integer(5);
  BerReader r(w.bytes());
  EXPECT_THROW(r.read_octet_string(), BerError);
}

TEST(Ber, LongFormLengths) {
  std::string big(300, 'x');
  BerWriter w;
  w.write_octet_string(big);
  BerReader r(w.bytes());
  EXPECT_EQ(r.read_octet_string(), big);
}

TEST(Pdu, MessageEncodeDecodeRoundTrip) {
  Message msg;
  msg.community = "hiper-d";
  msg.pdu.type = PduType::kGetRequest;
  msg.pdu.request_id = 777;
  msg.pdu.varbinds.push_back(VarBind{mib2::kSysUpTime, SnmpValue(Null{})});
  msg.pdu.varbinds.push_back(
      VarBind{mib2::kIfNumber, SnmpValue(std::int64_t(3))});
  const auto bytes = msg.encode();
  const Message decoded = Message::decode(bytes);
  EXPECT_EQ(decoded.community, "hiper-d");
  EXPECT_EQ(decoded.pdu.type, PduType::kGetRequest);
  EXPECT_EQ(decoded.pdu.request_id, 777);
  ASSERT_EQ(decoded.pdu.varbinds.size(), 2u);
  EXPECT_EQ(decoded.pdu.varbinds[0].oid, mib2::kSysUpTime);
  EXPECT_EQ(decoded.pdu.varbinds[1].value, SnmpValue(std::int64_t(3)));
}

TEST(Pdu, AllPduTypesRoundTrip) {
  for (PduType type :
       {PduType::kGetRequest, PduType::kGetNextRequest, PduType::kResponse,
        PduType::kSetRequest, PduType::kTrap}) {
    Message msg;
    msg.pdu.type = type;
    msg.pdu.request_id = 5;
    const Message decoded = Message::decode(msg.encode());
    EXPECT_EQ(decoded.pdu.type, type);
  }
}

TEST(Pdu, GarbageRejected) {
  std::vector<std::uint8_t> junk{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_THROW(Message::decode(junk), BerError);
}

// --- MibTree ----------------------------------------------------------------

TEST(MibTree, GetExactAndMissing) {
  MibTree tree;
  tree.add_const(Oid{1, 3, 6, 1}, SnmpValue(std::int64_t(7)));
  EXPECT_EQ(tree.get(Oid{1, 3, 6, 1}), SnmpValue(std::int64_t(7)));
  EXPECT_TRUE(tree.get(Oid{1, 3, 6, 2}).is<NoSuchObject>());
}

TEST(MibTree, DuplicateRegistrationThrows) {
  MibTree tree;
  tree.add_const(Oid{1, 3}, SnmpValue(1));
  EXPECT_THROW(tree.add_const(Oid{1, 3}, SnmpValue(2)), std::logic_error);
}

TEST(MibTree, GetNextIsStrictSuccessor) {
  MibTree tree;
  tree.add_const(Oid{1, 3, 1}, SnmpValue(1));
  tree.add_const(Oid{1, 3, 2}, SnmpValue(2));
  tree.add_const(Oid{1, 3, 2, 1}, SnmpValue(3));
  auto next = tree.get_next(Oid{1, 3, 1});
  ASSERT_TRUE(next);
  EXPECT_EQ(next->oid, Oid({1, 3, 2}));
  next = tree.get_next(Oid{1, 3, 2});
  ASSERT_TRUE(next);
  EXPECT_EQ(next->oid, Oid({1, 3, 2, 1}));
  EXPECT_FALSE(tree.get_next(Oid{1, 3, 2, 1}));
  // Starting before everything finds the first entry.
  next = tree.get_next(Oid{1});
  ASSERT_TRUE(next);
  EXPECT_EQ(next->oid, Oid({1, 3, 1}));
}

TEST(MibTree, WalkVisitsEveryVariableExactlyOnce) {
  MibTree tree;
  util::Rng rng(5);
  std::set<Oid> expected;
  for (int i = 0; i < 200; ++i) {
    Oid oid{1, 3, static_cast<std::uint32_t>(rng.uniform_int(0, 30)),
            static_cast<std::uint32_t>(rng.uniform_int(0, 30))};
    if (expected.insert(oid).second) {
      tree.add_const(oid, SnmpValue(std::int64_t(i)));
    }
  }
  // Walk via repeated get_next, as a manager would.
  std::set<Oid> seen;
  Oid cursor{1};
  while (auto next = tree.get_next(cursor)) {
    EXPECT_TRUE(seen.insert(next->oid).second) << "duplicate visit";
    EXPECT_GT(next->oid, cursor);
    cursor = next->oid;
  }
  EXPECT_EQ(seen, expected);
}

TEST(MibTree, SetRespectsAccess) {
  MibTree tree;
  std::int64_t stored = 1;
  tree.add_const(Oid{1, 1}, SnmpValue(5));
  tree.add_writable(
      Oid{1, 2}, [&] { return SnmpValue(stored); },
      [&](const SnmpValue& v) {
        if (!v.is<std::int64_t>()) return false;
        stored = v.as<std::int64_t>();
        return true;
      });
  EXPECT_EQ(tree.set(Oid{1, 1}, SnmpValue(9)), ErrorStatus::kReadOnly);
  EXPECT_EQ(tree.set(Oid{1, 9}, SnmpValue(9)), ErrorStatus::kNoSuchName);
  EXPECT_EQ(tree.set(Oid{1, 2}, SnmpValue("wrong type")),
            ErrorStatus::kBadValue);
  EXPECT_EQ(tree.set(Oid{1, 2}, SnmpValue(9)), ErrorStatus::kNoError);
  EXPECT_EQ(stored, 9);
}

TEST(MibTree, RemoveSubtree) {
  MibTree tree;
  tree.add_const(Oid{1, 2, 1}, SnmpValue(1));
  tree.add_const(Oid{1, 2, 2}, SnmpValue(2));
  tree.add_const(Oid{1, 3}, SnmpValue(3));
  tree.remove_subtree(Oid{1, 2});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.contains(Oid{1, 3}));
}

// --- agent/manager over the simulated network -------------------------------

class SnmpNetFixture : public ::testing::Test {
 protected:
  SnmpNetFixture() : network(sim, util::Rng(31)) {
    station = &network.add_host("station");
    element = &network.add_host("element");
    network.connect(*station, net::IpAddr(10, 0, 0, 1), *element,
                    net::IpAddr(10, 0, 0, 2), 24, 10e6, Duration::us(100));
    network.auto_route();
    agent = std::make_unique<Agent>(*element);
    manager = std::make_unique<Manager>(*station);
  }
  sim::Simulator sim;
  net::Network network;
  net::Host* station;
  net::Host* element;
  std::unique_ptr<Agent> agent;
  std::unique_ptr<Manager> manager;
  const net::IpAddr agent_ip{10, 0, 0, 2};
};

TEST_F(SnmpNetFixture, GetSysNameEndToEnd) {
  SnmpResult result;
  manager->get(agent_ip, {mib2::kSysName},
               [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.varbinds.size(), 1u);
  EXPECT_EQ(result.varbinds[0].value, SnmpValue(std::string("element")));
}

TEST_F(SnmpNetFixture, GetMissingOidReturnsNoSuchObject) {
  SnmpResult result;
  manager->get(agent_ip, {Oid{1, 3, 6, 1, 99}},
               [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.varbinds[0].value.is<NoSuchObject>());
}

TEST_F(SnmpNetFixture, InterfaceCountersVisibleViaGet) {
  // Generate some traffic first so ifOutOctets is nonzero.
  element->udp().bind(7000, nullptr);
  auto& sock = station->udp().bind(0, nullptr);
  sock.send_to(agent_ip, 7000, 400, nullptr, net::TrafficClass::kApplication);
  sim.run();

  SnmpResult result;
  manager->get(agent_ip,
               {mib2::if_column(mib2::kIfInOctets, 1),
                mib2::if_column(mib2::kIfOperStatus, 1)},
               [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.varbinds[0].value.to_uint64(), 400u);
  EXPECT_EQ(result.varbinds[1].value, SnmpValue(std::int64_t(1)));
}

TEST_F(SnmpNetFixture, WalkSystemGroup) {
  std::vector<VarBind> rows;
  bool done = false;
  manager->walk(agent_ip, oids::kSystem, [&](std::vector<VarBind> r) {
    rows = std::move(r);
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  ASSERT_EQ(rows.size(), 3u);  // sysDescr, sysUpTime, sysName
  EXPECT_EQ(rows[0].oid, mib2::kSysDescr);
  EXPECT_EQ(rows[2].oid, mib2::kSysName);
}

TEST_F(SnmpNetFixture, WalkWholeMibTerminates) {
  std::vector<VarBind> rows;
  manager->walk(agent_ip, Oid{1, 3},
                [&](std::vector<VarBind> r) { rows = std::move(r); });
  sim.run();
  EXPECT_EQ(rows.size(), agent->mib().size());
}

TEST_F(SnmpNetFixture, BadCommunityIgnored) {
  Manager::Config cfg;
  cfg.community = "wrong";
  cfg.timeout = Duration::ms(100);
  cfg.retries = 0;
  cfg.trap_port = 1162;  // the fixture's manager owns 162
  Manager strict(*station, cfg);
  SnmpResult result;
  result.ok = true;
  strict.get(agent_ip, {mib2::kSysName},
             [&](const SnmpResult& r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(agent->counters().bad_community, 1u);
}

TEST_F(SnmpNetFixture, TimeoutAndRetryWhenAgentDown) {
  element->set_up(false);
  SnmpResult result;
  result.ok = true;
  manager->get(agent_ip, {mib2::kSysName},
               [&](const SnmpResult& r) { result = r; });
  sim.run_for(Duration::sec(10));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(manager->counters().timeouts, 1u);
  EXPECT_EQ(manager->counters().retries, 1u);  // default config: 1 retry
  EXPECT_EQ(manager->counters().requests_sent, 2u);
}

TEST_F(SnmpNetFixture, SetWritableVariable) {
  std::int64_t threshold = 10;
  agent->mib().add_writable(
      Oid{1, 3, 6, 1, 4, 1, 42, 1}, [&] { return SnmpValue(threshold); },
      [&](const SnmpValue& v) {
        if (!v.is<std::int64_t>()) return false;
        threshold = v.as<std::int64_t>();
        return true;
      });
  SnmpResult result;
  manager->set(agent_ip,
               {VarBind{Oid{1, 3, 6, 1, 4, 1, 42, 1}, SnmpValue(99)}},
               [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.error_status, ErrorStatus::kNoError);
  EXPECT_EQ(threshold, 99);
}

TEST_F(SnmpNetFixture, SetReadOnlyReportsError) {
  SnmpResult result;
  manager->set(agent_ip, {VarBind{mib2::kSysName, SnmpValue("x")}},
               [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.error_status, ErrorStatus::kReadOnly);
}

TEST_F(SnmpNetFixture, TrapDeliveredToManager) {
  std::vector<TrapEvent> traps;
  manager->set_trap_handler([&](const TrapEvent& t) { traps.push_back(t); });
  agent->send_trap(net::IpAddr(10, 0, 0, 1), Oid{1, 3, 6, 1, 4, 1, 42, 0, 1},
                   {VarBind{Oid{1, 3, 6, 1, 4, 1, 42, 2}, SnmpValue(5)}});
  sim.run();
  ASSERT_EQ(traps.size(), 1u);
  EXPECT_EQ(traps[0].trap_oid, Oid({1, 3, 6, 1, 4, 1, 42, 0, 1}));
  EXPECT_EQ(traps[0].source, agent_ip);
  ASSERT_EQ(traps[0].varbinds.size(), 1u);
  EXPECT_EQ(traps[0].varbinds[0].value, SnmpValue(std::int64_t(5)));
}

TEST_F(SnmpNetFixture, TrapFloodOverrunsStationQueue) {
  // Station processes 1 trap / 2 ms with a 64-deep queue: a 500-trap burst
  // must lose some — the paper's "management station could be overrun".
  std::vector<TrapEvent> traps;
  manager->set_trap_handler([&](const TrapEvent& t) { traps.push_back(t); });
  // Pace the flood just above the wire's drain rate so the element's own
  // transmit queue is not the bottleneck: the *station* must be what
  // overruns (1 trap / 2 ms service, 64-deep queue vs 1 trap / 200 us).
  for (int i = 0; i < 500; ++i) {
    sim.schedule_in(Duration::us(200 * i), [this] {
      agent->send_trap(net::IpAddr(10, 0, 0, 1),
                       Oid{1, 3, 6, 1, 4, 1, 42, 0, 1});
    });
  }
  sim.run();
  const auto& c = manager->counters();
  EXPECT_GT(c.traps_dropped, 0u);
  EXPECT_EQ(c.traps_processed, traps.size());
  EXPECT_LT(traps.size(), 500u);
  EXPECT_EQ(c.traps_received, c.traps_processed + c.traps_dropped);
}

TEST_F(SnmpNetFixture, GetBulkStepsRepeatedly) {
  SnmpResult result;
  manager->get_bulk(agent_ip, {oids::kSystem}, 3,
                    [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.varbinds.size(), 3u);
  EXPECT_EQ(result.varbinds[0].oid, mib2::kSysDescr);
  EXPECT_EQ(result.varbinds[1].oid, mib2::kSysUpTime);
  EXPECT_EQ(result.varbinds[2].oid, mib2::kSysName);
}

TEST_F(SnmpNetFixture, GetBulkPastEndReturnsEndOfMibView) {
  SnmpResult result;
  // Start just before the end of the MIB: the agent pads with endOfMibView.
  manager->get_bulk(agent_ip, {Oid{1, 3, 6, 1, 2, 1, 7, 4}}, 5,
                    [&](const SnmpResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.ok);
  ASSERT_GE(result.varbinds.size(), 2u);
  EXPECT_EQ(result.varbinds[0].oid, mib2::kUdpOutDatagrams);
  EXPECT_TRUE(result.varbinds.back().value.is<EndOfMibView>());
}

TEST_F(SnmpNetFixture, BulkWalkMatchesGetNextWalk) {
  std::vector<VarBind> via_next, via_bulk;
  manager->walk(agent_ip, Oid{1, 3},
                [&](std::vector<VarBind> r) { via_next = std::move(r); });
  sim.run();
  manager->bulk_walk(agent_ip, Oid{1, 3}, 8,
                     [&](std::vector<VarBind> r) { via_bulk = std::move(r); });
  sim.run();
  ASSERT_EQ(via_bulk.size(), via_next.size());
  for (std::size_t i = 0; i < via_bulk.size(); ++i) {
    EXPECT_EQ(via_bulk[i].oid, via_next[i].oid);
  }
}

TEST_F(SnmpNetFixture, BulkWalkUsesFewerRequests) {
  std::uint64_t before = manager->counters().requests_sent;
  manager->walk(agent_ip, Oid{1, 3}, [](std::vector<VarBind>) {});
  sim.run();
  const std::uint64_t next_requests =
      manager->counters().requests_sent - before;
  before = manager->counters().requests_sent;
  manager->bulk_walk(agent_ip, Oid{1, 3}, 16, [](std::vector<VarBind>) {});
  sim.run();
  const std::uint64_t bulk_requests =
      manager->counters().requests_sent - before;
  EXPECT_LT(bulk_requests * 4, next_requests);
}

TEST(PduBulk, GetBulkFieldsRoundTripOnWire) {
  Message msg;
  msg.pdu.type = PduType::kGetBulk;
  msg.pdu.request_id = 9;
  msg.pdu.set_bulk(1, 25);
  msg.pdu.varbinds.push_back(VarBind{Oid{1, 3, 6}, SnmpValue(Null{})});
  const Message decoded = Message::decode(msg.encode());
  EXPECT_EQ(decoded.pdu.type, PduType::kGetBulk);
  EXPECT_EQ(decoded.pdu.non_repeaters(), 1);
  EXPECT_EQ(decoded.pdu.max_repetitions(), 25);
}

TEST_F(SnmpNetFixture, HeartbeatWatchDetectsDownAndRecovery) {
  // Paper §5.2.4: background polling detects failures that would silently
  // suppress traps.
  std::vector<std::pair<net::IpAddr, bool>> transitions;
  manager->watch_agent(agent_ip, Duration::sec(1),
                       [&](net::IpAddr ip, bool up) {
                         transitions.emplace_back(ip, up);
                       });
  sim.run_for(Duration::sec(5));
  ASSERT_EQ(transitions.size(), 1u);  // initial "up"
  EXPECT_TRUE(transitions[0].second);
  EXPECT_EQ(manager->agent_up(agent_ip), std::optional<bool>(true));

  element->set_up(false);
  sim.run_for(Duration::sec(10));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_FALSE(transitions[1].second);
  EXPECT_EQ(manager->agent_up(agent_ip), std::optional<bool>(false));

  element->set_up(true);
  sim.run_for(Duration::sec(10));
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_TRUE(transitions[2].second);
}

TEST_F(SnmpNetFixture, UnwatchStopsPolling) {
  const int id = manager->watch_agent(agent_ip, Duration::sec(1),
                                      [](net::IpAddr, bool) {});
  sim.run_for(Duration::sec(3));
  const auto sent = manager->counters().requests_sent;
  manager->unwatch(id);
  sim.run_for(Duration::sec(5));
  EXPECT_EQ(manager->counters().requests_sent, sent);
  EXPECT_FALSE(manager->agent_up(agent_ip).has_value());
}

TEST_F(SnmpNetFixture, LateDuplicateResponseIgnored) {
  // Shorten timeout below the agent processing delay: the response arrives
  // after the retry already went out; the second response must not confuse
  // the manager.
  Manager::Config cfg;
  cfg.timeout = Duration::us(150);  // < 200us agent processing delay
  cfg.retries = 2;
  cfg.trap_port = 1163;
  Manager impatient(*station, cfg);
  int callbacks = 0;
  impatient.get(agent_ip, {mib2::kSysName},
                [&](const SnmpResult&) { ++callbacks; });
  sim.run();
  EXPECT_EQ(callbacks, 1);
}

}  // namespace
}  // namespace netmon::snmp
