// Model-based randomized test for the tiered storage engine under
// core::MeasurementDatabase (core/tiered_store.hpp, DESIGN.md §13): 50k
// mixed record / range-query / point-read operations per seed against a
// naive full-retention reference that keeps every raw sample. Storage
// engines fail silently — a wrong rollup still *looks* like data — so the
// oracle recomputes every returned point from raw samples: counts and
// min/max must be exact, means within float-reassociation tolerance, tier-0
// points must be single exact samples, and every in-range raw sample must
// be accounted for by a point or an explicit eviction gap. The same seed
// must produce bit-identical query results and the same eviction trace
// hash on a second run.
//
// The geometry is deliberately tiny (8-point pages, rollup 4, 128-page
// pool for 24 live series) so 40k records force thousands of rollovers and
// evictions — the paths a production-sized config would only hit after
// hours of ingest.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/measurement_db.hpp"
#include "core/tiered_store.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

using core::MeasurementDatabase;
using core::Metric;
using core::MetricValue;
using core::PathId;
using core::QueryGap;
using core::QueryPoint;
using core::TieredStorageConfig;
using core::TieredStore;
using core::TierQueryResult;
using sim::Duration;
using sim::TimePoint;

constexpr std::int64_t kUs = 1'000;
constexpr std::int64_t kMs = 1'000'000;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = (a + 0x9E3779B97F4A7C15ull) * 0xBF58476D1CE4E5B9ull;
  x ^= b * 0x94D049BB133111EBull;
  x ^= x >> 27;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 31;
  return x;
}

void fnv(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// ---- Naive full-retention reference ---------------------------------------

struct RawSample {
  std::int64_t at = 0;
  double value = 0.0;
  bool valid = false;
};

// Recomputes one returned point from the raw samples in its time range.
// Per-series timestamps are strictly increasing, so time-range membership
// is exactly the positional membership the engine aggregated.
void check_point(const std::vector<RawSample>& raw, const QueryPoint& p) {
  std::uint64_t count = 0;
  std::uint64_t valid_count = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (const RawSample& s : raw) {
    if (s.at < p.first_ns || s.at > p.last_ns) continue;
    ++count;
    if (!s.valid) continue;
    ++valid_count;
    mn = std::min(mn, s.value);
    mx = std::max(mx, s.value);
    sum += s.value;
  }
  ASSERT_EQ(p.count, count);
  ASSERT_EQ(p.valid_count, valid_count);
  if (p.tier == 0) {
    ASSERT_EQ(p.count, 1u);  // tier 0 points are raw samples
  }
  if (valid_count > 0) {
    // min/max are copied, never recomputed: exact at every tier.
    ASSERT_EQ(p.min, mn);
    ASSERT_EQ(p.max, mx);
    const double mean = sum / static_cast<double>(valid_count);
    ASSERT_NEAR(p.mean, mean, 1e-9 * std::max(1.0, std::fabs(mean)));
  }
}

void check_query(const std::vector<RawSample>& raw, std::int64_t t0,
                 std::int64_t t1, const TierQueryResult& r) {
  for (const QueryPoint& p : r.points) {
    ASSERT_LE(p.first_ns, p.last_ns);
    ASSERT_GE(p.last_ns, t0);  // every point overlaps the query range
    ASSERT_LE(p.first_ns, t1);
    ASSERT_NO_FATAL_FAILURE(check_point(raw, p));
  }
  for (const QueryGap& g : r.gaps) {
    ASSERT_LT(g.from_ns, g.to_ns);
    // A gap is "this was evicted everywhere": no retained point may
    // intersect it.
    for (const QueryPoint& p : r.points) {
      ASSERT_TRUE(p.last_ns < g.from_ns || p.first_ns >= g.to_ns);
    }
  }
  // Completeness: every raw sample in range is inside a point or a gap.
  for (const RawSample& s : raw) {
    if (s.at < t0 || s.at > t1) continue;
    bool covered = false;
    for (const QueryPoint& p : r.points) {
      if (s.at >= p.first_ns && s.at <= p.last_ns) {
        covered = true;
        break;
      }
    }
    for (const QueryGap& g : r.gaps) {
      if (s.at >= g.from_ns && s.at < g.to_ns) {
        covered = true;
        break;
      }
    }
    ASSERT_TRUE(covered) << "sample at " << s.at << " in [" << t0 << ", "
                         << t1 << "] neither returned nor reported evicted";
  }
}

// ---- One full operation stream --------------------------------------------

struct StreamOutcome {
  std::uint64_t result_hash = 1469598103934665603ull;
  std::uint64_t eviction_hash = 0;
  std::uint64_t evictions = 0;
  std::uint64_t queries = 0;
  std::uint64_t records = 0;
};

constexpr int kPaths = 8;
constexpr int kSeries = kPaths * static_cast<int>(core::kMetricCount);
constexpr int kOps = 50'000;

TieredStorageConfig tiny_config() {
  TieredStorageConfig config;
  config.page_points = 8;
  config.rollup_factor = 4;
  config.tiers = 3;
  // 24 live series × 3 tiers keep up to 72 open pages; 128 leaves 56 slots
  // of sealed history so eviction churns constantly.
  config.max_pages = 128;
  return config;
}

// Runs the seeded op stream against the database, checking every query
// against the reference. `verify` false skips the oracle (the second run
// only needs the outcome hashes for the determinism diff).
void run_stream(std::uint64_t seed, bool verify, StreamOutcome* outcome) {
  StreamOutcome& out = *outcome;
  util::Rng rng(seed);
  MeasurementDatabase db(/*history_depth=*/16, tiny_config());
  std::vector<core::Path> paths;
  std::vector<PathId> ids;
  for (int i = 0; i < kPaths; ++i) {
    paths.push_back(core::Path(
        core::ProcessEndpoint{"model-server", net::IpAddr(10, 0, 0, 1), 7000},
        core::ProcessEndpoint{"model-client",
                              net::IpAddr(10, 0, 1, static_cast<std::uint8_t>(i)),
                              7000}));
    ids.push_back(db.id_of(paths.back()));
  }

  std::vector<std::vector<RawSample>> reference(kSeries);
  std::vector<std::int64_t> next_ns(kSeries, 0);
  std::int64_t horizon = 0;  // newest timestamp recorded anywhere

  for (int op = 0; op < kOps; ++op) {
    const std::int64_t roll = rng.uniform_int(0, 99);
    const int s = static_cast<int>(rng.uniform_int(0, kSeries - 1));
    const PathId id = ids[s / static_cast<int>(core::kMetricCount)];
    const auto metric =
        static_cast<Metric>(s % static_cast<int>(core::kMetricCount));
    if (roll < 80) {
      // Record: strictly increasing per-series timestamps, ~10% failed
      // samples (they count toward senescence but not min/mean/max).
      const std::uint64_t h = mix(seed ^ 0xDB, static_cast<std::uint64_t>(op));
      next_ns[s] += (1 + static_cast<std::int64_t>(h % 5)) * 100 * kUs;
      const std::int64_t at = next_ns[s];
      horizon = std::max(horizon, at);
      const double value = static_cast<double>((h >> 8) % 1'000'000) * 0.001;
      const bool valid = (h >> 3) % 10 != 0;
      const TimePoint tp = TimePoint::from_nanos(at);
      db.record(id, metric,
                valid ? MetricValue::of(value, tp) : MetricValue::failed(tp));
      reference[s].push_back(RawSample{at, value, valid});
      ++out.records;
    } else if (roll < 95) {
      // Range query: random window (occasionally inverted or empty) at a
      // random resolution, including far coarser than the oldest tier.
      std::int64_t t0 = rng.uniform_int(0, std::max<std::int64_t>(horizon, 1));
      std::int64_t t1 = t0 + rng.uniform_int(-2, 40) * 50 * kMs;
      if (rng.uniform_int(0, 19) == 0) std::swap(t0, t1);
      const std::int64_t resolution =
          rng.uniform_int(0, 1) == 0
              ? 0
              : (std::int64_t{1} << rng.uniform_int(0, 8)) * kMs;
      const TierQueryResult r =
          db.query(id, metric, TimePoint::from_nanos(t0),
                   TimePoint::from_nanos(t1), Duration::ns(resolution));
      ++out.queries;
      if (t1 < t0) {
        ASSERT_TRUE(r.points.empty() && r.gaps.empty()) << "inverted range";
      } else if (verify) {
        ASSERT_NO_FATAL_FAILURE(check_query(reference[s], t0, t1, r))
            << "op " << op << " series " << s;
      }
      fnv(out.result_hash, r.points.size());
      for (const QueryPoint& p : r.points) {
        fnv(out.result_hash, static_cast<std::uint64_t>(p.first_ns));
        fnv(out.result_hash, static_cast<std::uint64_t>(p.last_ns));
        fnv(out.result_hash, bits(p.min));
        fnv(out.result_hash, bits(p.max));
        fnv(out.result_hash, bits(p.mean));
        fnv(out.result_hash, p.count);
        fnv(out.result_hash, p.valid_count);
        fnv(out.result_hash, p.tier);
      }
      for (const QueryGap& g : r.gaps) {
        fnv(out.result_hash, static_cast<std::uint64_t>(g.from_ns));
        fnv(out.result_hash, static_cast<std::uint64_t>(g.to_ns));
      }
    } else if (verify) {
      // Point reads: the flat fast path must agree with the reference
      // regardless of what the tiered store does alongside it.
      const RawSample* last_valid = nullptr;
      for (const RawSample& raw : reference[s]) {
        if (raw.valid) last_valid = &raw;
      }
      const auto known = db.last_known(id, metric);
      if (last_valid == nullptr) {
        ASSERT_FALSE(known.has_value());
      } else {
        ASSERT_TRUE(known.has_value());
        ASSERT_EQ(known->value.value, last_valid->value);
        ASSERT_EQ(known->value.measured_at.nanos(), last_valid->at);
      }
      const auto age =
          db.senescence(id, metric, TimePoint::from_nanos(horizon));
      if (reference[s].empty()) {
        ASSERT_FALSE(age.has_value());
      } else {
        ASSERT_TRUE(age.has_value());
        ASSERT_EQ(age->nanos(), horizon - reference[s].back().at);
      }
    }
  }

  out.eviction_hash = db.tiered().eviction_hash();
  out.evictions = db.tiered().evictions();
}

TEST(DbModel, RandomOpsMatchFullRetentionReference) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    SCOPED_TRACE(seed);
    StreamOutcome first;
    run_stream(seed, /*verify=*/true, &first);
    if (HasFatalFailure()) return;
    // The stream must actually have exercised rollover and eviction.
    EXPECT_GT(first.records, static_cast<std::uint64_t>(kOps) / 2);
    EXPECT_GT(first.queries, 0u);
    EXPECT_GT(first.evictions, 0u);

    // Same seed ⇒ identical query results and identical eviction trace.
    StreamOutcome second;
    run_stream(seed, /*verify=*/false, &second);
    EXPECT_EQ(first.result_hash, second.result_hash);
    EXPECT_EQ(first.eviction_hash, second.eviction_hash);
    EXPECT_EQ(first.evictions, second.evictions);
  }
}

// ---- Property pins the random walk would only hit by luck -----------------

TieredStorageConfig small(std::size_t tiers, std::size_t max_pages) {
  TieredStorageConfig config;
  config.page_points = 8;
  config.rollup_factor = 4;
  config.tiers = tiers;
  config.max_pages = max_pages;
  return config;
}

TEST(DbProperty, EmptyAndUnknownRangesAreCleanlyEmpty) {
  TieredStore store(small(3, 64));
  EXPECT_TRUE(store.query(0, 0, 1'000, 0).points.empty());  // never recorded
  for (int i = 0; i < 20; ++i) {
    store.record(0, (i + 10) * kMs, static_cast<double>(i), true);
  }
  // Range entirely before the data: no data ever existed there — empty and
  // complete, not a gap.
  TierQueryResult before = store.query(0, 0, 5 * kMs, 0);
  EXPECT_TRUE(before.points.empty());
  EXPECT_TRUE(before.complete());
  // Range entirely after the data.
  TierQueryResult after = store.query(0, 100 * kMs, 200 * kMs, 0);
  EXPECT_TRUE(after.points.empty());
  EXPECT_TRUE(after.complete());
  // Inverted range.
  TierQueryResult inverted = store.query(0, 20 * kMs, 10 * kMs, 0);
  EXPECT_TRUE(inverted.points.empty());
  EXPECT_TRUE(inverted.gaps.empty());
}

TEST(DbProperty, QueryStraddlesRolloverAndTierBoundary) {
  // 100 samples at 1 ms spacing: tier 0 holds the newest, tier 1 the
  // rolled-up bulk. A tier-1-resolution query spanning everything must
  // stitch sealed tier-1 points with the open pages' fresh samples and
  // cover every sample exactly once in aggregate.
  TieredStore store(small(3, 1024));
  constexpr int kSamples = 100;
  for (int i = 0; i < kSamples; ++i) {
    store.record(7, (1 + i) * kMs, static_cast<double>(i), true);
  }
  const std::size_t tier = store.select_tier(7, 4 * kMs);
  EXPECT_EQ(tier, 1u);
  const TierQueryResult r = store.query(7, 0, 200 * kMs, 4 * kMs);
  EXPECT_TRUE(r.complete());  // nothing was evicted
  std::uint64_t total = 0;
  bool saw_coarse = false;
  bool saw_fine = false;
  std::int64_t prev_first = std::numeric_limits<std::int64_t>::min();
  for (const QueryPoint& p : r.points) {
    total += p.count;
    saw_coarse |= p.tier >= 1;
    saw_fine |= p.tier == 0;
    EXPECT_GE(p.first_ns, prev_first);  // time-ordered output
    prev_first = p.first_ns;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kSamples));
  EXPECT_TRUE(saw_coarse);
  EXPECT_TRUE(saw_fine);  // the not-yet-rolled-up tail came from tier 0
}

TEST(DbProperty, ResolutionCoarserThanOldestTierServesCoarsest) {
  TieredStore store(small(3, 1024));
  for (int i = 0; i < 512; ++i) {
    store.record(0, (1 + i) * kMs, static_cast<double>(i % 7), true);
  }
  // 1 ms interval, rollup 4: tier 2 spans ~16 ms per point. Ask for 1000x
  // coarser — selection must cap at the coarsest tier, not walk off the
  // ladder, and the query must still cover everything.
  EXPECT_EQ(store.select_tier(0, 16'000 * kMs), 2u);
  const TierQueryResult r = store.query(0, 0, 1'000 * kMs, 16'000 * kMs);
  EXPECT_TRUE(r.complete());
  std::uint64_t total = 0;
  for (const QueryPoint& p : r.points) total += p.count;
  EXPECT_EQ(total, 512u);
}

TEST(DbProperty, EvictionLeavesTruthfulGapNotInterpolation) {
  // Single tier, 4-page pool: old pages fall off the end of the world.
  TieredStore store(small(1, 4));
  constexpr int kSamples = 200;
  for (int i = 0; i < kSamples; ++i) {
    store.record(0, (1 + i) * kMs, 1.0, true);
  }
  ASSERT_GT(store.evictions(), 0u);
  const TierQueryResult r = store.query(0, 0, 1'000 * kMs, 0);
  ASSERT_EQ(r.gaps.size(), 1u);
  EXPECT_FALSE(r.complete());
  // The gap starts at the first sample ever recorded and ends exactly
  // where retained data begins.
  EXPECT_EQ(r.gaps[0].from_ns, 1 * kMs);
  ASSERT_FALSE(r.points.empty());
  EXPECT_EQ(r.gaps[0].to_ns, r.points.front().first_ns);
  // Retained points + evicted range account for every sample: no value was
  // invented for the evicted span.
  std::uint64_t retained = 0;
  for (const QueryPoint& p : r.points) {
    retained += p.count;
    EXPECT_GE(p.first_ns, r.gaps[0].to_ns);
  }
  EXPECT_EQ(retained + store.tier_stats(0).evicted_points,
            static_cast<std::uint64_t>(kSamples));
}

TEST(DbProperty, EvictionPrefersRawTiersAndOldestPages) {
  TieredStore store(small(2, 8));
  for (int i = 0; i < 400; ++i) {
    store.record(0, (1 + i) * kMs, 1.0, true);
  }
  // Tier 0 must bear all evictions while tier 1 still has sealed pages to
  // give — the aggregate outlives the raw data it summarizes.
  EXPECT_GT(store.tier_stats(0).evictions, 0u);
  const TierQueryResult r = store.query(0, 0, 1'000 * kMs, 4 * kMs);
  std::uint64_t covered = 0;
  for (const QueryPoint& p : r.points) covered += p.count;
  for (const QueryGap& g : r.gaps) {
    for (const QueryPoint& p : r.points) {
      EXPECT_TRUE(p.last_ns < g.from_ns || p.first_ns >= g.to_ns);
    }
  }
  // Tier-1 rollups keep the early history readable even though its raw
  // pages are long gone: only samples whose rollup page was *also* evicted
  // (rollup_factor raw samples per evicted tier-1 point) may be missing.
  EXPECT_GE(covered + store.tier_stats(1).evicted_points *
                          store.config().rollup_factor,
            400u);
}

TEST(DbProperty, SelectTierFollowsMeanIntervalRule) {
  TieredStore store(small(3, 256));
  for (int i = 0; i < 64; ++i) {
    store.record(3, i * kMs, 0.0, true);  // exactly 1 ms mean interval
  }
  EXPECT_EQ(store.select_tier(3, 0), 0u);        // finest requested
  EXPECT_EQ(store.select_tier(3, 1 * kMs), 0u);  // tier 1 spans 4 ms: too coarse
  EXPECT_EQ(store.select_tier(3, 4 * kMs), 1u);
  EXPECT_EQ(store.select_tier(3, 15 * kMs), 1u);  // tier 2 spans 16 ms
  EXPECT_EQ(store.select_tier(3, 16 * kMs), 2u);
  EXPECT_EQ(store.select_tier(3, 1'000'000 * kMs), 2u);  // capped at coarsest
}

TEST(DbProperty, DisabledStoreIsInert) {
  TieredStorageConfig config;
  config.enabled = false;
  MeasurementDatabase db(16, config);
  const core::Path path(
      core::ProcessEndpoint{"s", net::IpAddr(10, 0, 0, 1), 1},
      core::ProcessEndpoint{"c", net::IpAddr(10, 0, 0, 2), 1});
  const PathId id = db.id_of(path);
  db.record(id, Metric::kThroughput,
            MetricValue::of(5.0, TimePoint::from_nanos(kMs)));
  EXPECT_EQ(db.tiered().stats().samples, 0u);
  EXPECT_EQ(db.tiered().stats().pages_in_use, 0u);
  EXPECT_TRUE(db.query(id, Metric::kThroughput, TimePoint::from_nanos(0),
                       TimePoint::from_nanos(10 * kMs), Duration::ns(0))
                  .points.empty());
  // The flat fast path is untouched by the disabled store.
  EXPECT_TRUE(db.last_known(id, Metric::kThroughput).has_value());
}

TEST(DbProperty, InvalidConfigsAreRejected) {
  TieredStorageConfig bad;
  bad.page_points = 10;  // not a multiple of rollup_factor 8
  EXPECT_THROW(TieredStore{bad}, std::invalid_argument);
  bad = TieredStorageConfig{};
  bad.tiers = 0;
  EXPECT_THROW(TieredStore{bad}, std::invalid_argument);
  bad = TieredStorageConfig{};
  bad.tiers = TieredStore::kMaxTiers + 1;
  EXPECT_THROW(TieredStore{bad}, std::invalid_argument);
  bad = TieredStorageConfig{};
  bad.rollup_factor = 1;
  EXPECT_THROW(TieredStore{bad}, std::invalid_argument);
  bad = TieredStorageConfig{};
  bad.rollup_factor = 1;
  bad.tiers = 1;  // single tier never rolls up: factor is irrelevant
  EXPECT_NO_THROW(TieredStore{bad});
}

TEST(DbProperty, InvalidSamplesCountButNeverShapeAggregates) {
  TieredStore store(small(2, 64));
  for (int i = 0; i < 16; ++i) {
    // Alternate valid 2.0 with failed probes carrying garbage values.
    store.record(0, (1 + i) * kMs, i % 2 == 0 ? 2.0 : 999.0, i % 2 == 0);
  }
  const TierQueryResult r = store.query(0, 0, 100 * kMs, 4 * kMs);
  std::uint64_t count = 0;
  std::uint64_t valid = 0;
  for (const QueryPoint& p : r.points) {
    count += p.count;
    valid += p.valid_count;
    if (p.valid_count > 0) {
      EXPECT_EQ(p.min, 2.0);
      EXPECT_EQ(p.max, 2.0);
      EXPECT_EQ(p.mean, 2.0);
    }
  }
  EXPECT_EQ(count, 16u);  // failures still count toward sample accounting
  EXPECT_EQ(valid, 8u);
}

}  // namespace
}  // namespace netmon
