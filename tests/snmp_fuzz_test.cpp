// Fuzz-style robustness tests for the BER codec (snmp/ber + snmp/pdu):
// seeded random Messages must survive encode → decode → re-encode with a
// byte-identical wire image, and arbitrary corruption of valid wire images
// (truncation at every prefix length, random byte mutations) must either
// decode to something or throw BerError — never crash, hang, or read out of
// bounds. The CI sanitize preset (ASan/UBSan) turns the "never read out of
// bounds" half into a hard check.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "snmp/ber.hpp"
#include "snmp/pdu.hpp"
#include "snmp/value.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

using snmp::Message;
using snmp::Oid;
using snmp::Pdu;
using snmp::PduType;
using snmp::SnmpValue;
using snmp::VarBind;

Oid random_oid(util::Rng& rng) {
  // First two arcs must satisfy the 40·x+y first-byte encoding, so start
  // every OID at the conventional 1.3 (iso.org) like real MIBs do.
  std::vector<std::uint32_t> ids{1, 3};
  const int extra = static_cast<int>(rng.uniform_int(0, 10));
  for (int i = 0; i < extra; ++i) {
    // Spread across multi-byte base-128 encodings, including > 2^28.
    const int magnitude = static_cast<int>(rng.uniform_int(0, 4));
    const std::int64_t cap = std::int64_t{1} << (7 * (magnitude + 1) > 32
                                                     ? 32
                                                     : 7 * (magnitude + 1));
    ids.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, cap - 1)));
  }
  return Oid(std::move(ids));
}

SnmpValue random_value(util::Rng& rng) {
  switch (rng.uniform_int(0, 10)) {
    case 0:
      return SnmpValue();  // Null
    case 1: {
      // Signed integers across all encoded widths, both signs.
      const int shift = static_cast<int>(rng.uniform_int(0, 62));
      const std::int64_t magnitude = rng.uniform_int(0, (std::int64_t{1} << shift));
      return SnmpValue(rng.bernoulli(0.5) ? -magnitude : magnitude);
    }
    case 2: {
      std::string s;
      const int len = static_cast<int>(rng.uniform_int(0, 300));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      }
      return SnmpValue(std::move(s));
    }
    case 3:
      return SnmpValue(random_oid(rng));
    case 4:
      return SnmpValue(net::IpAddr(
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255))));
    case 5:
      return SnmpValue(snmp::Counter32{
          static_cast<std::uint32_t>(rng.next())});
    case 6:
      return SnmpValue(snmp::Gauge32{static_cast<std::uint32_t>(rng.next())});
    case 7:
      return SnmpValue(snmp::TimeTicks{
          static_cast<std::uint32_t>(rng.next())});
    case 8:
      return SnmpValue(snmp::Counter64{rng.next()});
    case 9:
      return SnmpValue(SnmpValue::Storage(snmp::EndOfMibView{}));
    default:
      return SnmpValue(SnmpValue::Storage(snmp::NoSuchObject{}));
  }
}

Message random_message(util::Rng& rng) {
  Message msg;
  const int community_len = static_cast<int>(rng.uniform_int(0, 32));
  msg.community.clear();
  for (int i = 0; i < community_len; ++i) {
    msg.community.push_back(static_cast<char>(rng.uniform_int(0, 255)));
  }
  msg.pdu.type = static_cast<PduType>(rng.uniform_int(0, 5));
  msg.pdu.request_id = static_cast<std::int32_t>(
      rng.uniform_int(std::numeric_limits<std::int32_t>::min(),
                      std::numeric_limits<std::int32_t>::max()));
  if (msg.pdu.type == PduType::kGetBulk) {
    msg.pdu.set_bulk(static_cast<std::int32_t>(rng.uniform_int(0, 5)),
                     static_cast<std::int32_t>(rng.uniform_int(0, 100)));
  } else {
    msg.pdu.error_status =
        static_cast<snmp::ErrorStatus>(rng.uniform_int(0, 5));
    msg.pdu.error_index = static_cast<std::int32_t>(rng.uniform_int(0, 20));
  }
  const int binds = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < binds; ++i) {
    msg.pdu.varbinds.push_back(VarBind{random_oid(rng), random_value(rng)});
  }
  return msg;
}

TEST(SnmpFuzz, EncodeDecodeReEncodeIsByteIdentical) {
  util::Rng rng(0xBE12);
  for (int i = 0; i < 2000; ++i) {
    const Message original = random_message(rng);
    const std::vector<std::uint8_t> wire = original.encode();
    Message decoded;
    try {
      decoded = Message::decode(wire);
    } catch (const snmp::BerError& e) {
      FAIL() << "round " << i << ": valid encoding rejected: " << e.what();
    }
    EXPECT_EQ(decoded.community, original.community) << "round " << i;
    EXPECT_EQ(decoded.pdu.type, original.pdu.type) << "round " << i;
    EXPECT_EQ(decoded.pdu.request_id, original.pdu.request_id)
        << "round " << i;
    EXPECT_EQ(decoded.pdu.varbinds, original.pdu.varbinds) << "round " << i;
    const std::vector<std::uint8_t> rewire = decoded.encode();
    ASSERT_EQ(rewire, wire) << "round " << i
                            << ": re-encoding is not byte-identical";
  }
}

TEST(SnmpFuzz, TruncatedBuffersErrorButNeverCrash) {
  util::Rng rng(0x7A11);
  for (int i = 0; i < 200; ++i) {
    const std::vector<std::uint8_t> wire = random_message(rng).encode();
    // Every proper prefix is malformed: BER lengths are definite, so a cut
    // anywhere leaves some TLV short.
    for (std::size_t len = 0; len < wire.size(); ++len) {
      try {
        (void)Message::decode(std::span(wire.data(), len));
        ADD_FAILURE() << "round " << i << ": truncation to " << len << "/"
                      << wire.size() << " bytes decoded successfully";
      } catch (const snmp::BerError&) {
        // expected
      }
    }
  }
}

TEST(SnmpFuzz, MutatedBuffersEitherDecodeOrThrowBerError) {
  util::Rng rng(0xF00D);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> wire = random_message(rng).encode();
    if (wire.empty()) continue;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      const Message decoded = Message::decode(wire);
      // A surviving mutant must still re-encode cleanly — decode may only
      // produce structurally valid messages.
      (void)decoded.encode();
    } catch (const snmp::BerError&) {
      // Equally fine: the mutation broke the framing.
    }
  }
}

TEST(SnmpFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(0xDEAD);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 600)));
    for (std::uint8_t& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      (void)Message::decode(junk);
    } catch (const snmp::BerError&) {
      // expected for almost all inputs
    }
  }
}

}  // namespace
}  // namespace netmon
