// Parameterized property sweeps across randomized configurations: the
// system-wide invariants from DESIGN.md §6 must hold for *every* seed and
// parameter point, not just the hand-picked ones in the unit tests.

#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "apps/traffic.hpp"
#include "core/measurement_db.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "nttcp/nttcp.hpp"

namespace netmon {
namespace {

using sim::Duration;

// --- TCP: stream integrity under every loss regime ---------------------------

struct TcpCase {
  std::uint64_t seed;
  double bandwidth_bps;
  Duration delay;
  std::size_t queue;  // NIC queue depth: small queues force heavy loss
  std::size_t bytes;
};

class TcpIntegritySweep : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpIntegritySweep, DeliversExactStream) {
  const TcpCase& c = GetParam();
  sim::Simulator sim;
  net::Network network(sim, util::Rng(c.seed));
  auto& a = network.add_host("a");
  auto& b = network.add_host("b");
  auto [na, nb] = network.connect(a, net::IpAddr(10, 0, 0, 1), b,
                                  net::IpAddr(10, 0, 0, 2), 24,
                                  c.bandwidth_bps, c.delay, c.queue);
  (void)na;
  (void)nb;
  network.auto_route();

  std::vector<std::byte> payload(c.bytes);
  util::Rng rng(c.seed ^ 0xABCD);
  for (auto& byte : payload) {
    byte = static_cast<std::byte>(rng.uniform_int(0, 255));
  }
  std::vector<std::byte> received;
  b.tcp().listen(9000, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->set_receive_handler([&received, conn](std::span<const std::byte> d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto conn = a.tcp().connect(net::IpAddr(10, 0, 0, 2), 9000);
  conn->set_established_handler([&] { conn->send(payload); });
  sim.run_for(Duration::sec(300));

  // Invariant: the delivered stream equals the sent stream, in order, with
  // no gaps or duplicates — no matter how much the path lost.
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  EXPECT_EQ(conn->counters().bytes_acked, payload.size());
}

INSTANTIATE_TEST_SUITE_P(
    LossRegimes, TcpIntegritySweep,
    ::testing::Values(
        TcpCase{1, 10e6, Duration::ms(1), 64, 100'000},
        TcpCase{2, 10e6, Duration::ms(1), 8, 100'000},    // brutal queue
        TcpCase{3, 1e6, Duration::ms(20), 16, 60'000},    // slow, long RTT
        TcpCase{4, 100e6, Duration::us(50), 32, 400'000}, // fast LAN
        TcpCase{5, 2e6, Duration::ms(5), 4, 50'000},      // tiny queue
        TcpCase{6, 10e6, Duration::ms(1), 64, 1},         // single byte
        TcpCase{7, 10e6, Duration::ms(1), 64, 1460},      // exactly one MSS
        TcpCase{8, 10e6, Duration::ms(1), 64, 1461}));    // MSS + 1

// --- NTTCP: accounting invariants across burst configurations ----------------

struct ProbeCase {
  std::uint64_t seed;
  std::uint32_t length;
  std::uint32_t count;
  int inter_send_ms;
};

class NttcpSweep : public ::testing::TestWithParam<ProbeCase> {};

TEST_P(NttcpSweep, AccountingInvariantsHold) {
  const ProbeCase& c = GetParam();
  sim::Simulator sim;
  apps::TestbedOptions options;
  options.servers = 1;
  options.clients = 1;
  options.seed = c.seed;
  apps::Testbed bed(sim, options);

  nttcp::NttcpConfig cfg;
  cfg.message_length = c.length;
  cfg.message_count = c.count;
  cfg.inter_send = Duration::ms(c.inter_send_ms);
  nttcp::NttcpResult result;
  bool done = false;
  nttcp::NttcpProbe probe(bed.server(0), bed.client_ip(0), cfg,
                          [&](const nttcp::NttcpResult& r) {
                            result = r;
                            done = true;
                          });
  probe.start();
  sim.run_for(Duration::sec(120));

  ASSERT_TRUE(done);
  ASSERT_TRUE(result.completed);
  // Invariants: nothing received that was not sent; bytes match message
  // accounting; loss fraction consistent; latency samples = received count
  // on an uncongested switched path (no losses expected).
  EXPECT_EQ(result.messages_sent, c.count);
  EXPECT_LE(result.messages_received, result.messages_sent);
  EXPECT_EQ(result.bytes_received,
            std::uint64_t(result.messages_received) * c.length);
  EXPECT_NEAR(result.loss_fraction,
              1.0 - double(result.messages_received) / double(c.count), 1e-9);
  EXPECT_EQ(result.latency.count(), result.messages_received);
  EXPECT_GT(result.probe_bytes_on_wire,
            std::uint64_t(result.messages_sent) * c.length);
}

INSTANTIATE_TEST_SUITE_P(
    Bursts, NttcpSweep,
    ::testing::Values(ProbeCase{11, 64, 1, 1}, ProbeCase{12, 64, 2, 1},
                      ProbeCase{13, 8192, 8, 30}, ProbeCase{14, 1024, 64, 2},
                      ProbeCase{15, 16384, 4, 10},
                      ProbeCase{16, 1, 16, 1}));  // minimal message

// --- shared segment: byte conservation under contention -----------------------

class SegmentConservationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentConservationSweep, DeliveredPlusDroppedEqualsSent) {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(GetParam()));
  auto& seg = network.add_segment("lan", 10e6);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < 5; ++i) {
    auto& h = network.add_host("h" + std::to_string(i));
    network.attach(h, seg, net::IpAddr(192, 168, 0, std::uint8_t(i + 1)), 24);
    hosts.push_back(&h);
  }
  network.auto_route();
  hosts[4]->udp().bind(7000, nullptr);

  util::Rng rng(GetParam() ^ 0xFEED);
  std::uint64_t attempted = 0;
  for (int s = 0; s < 4; ++s) {
    auto& sock = hosts[s]->udp().bind(0, nullptr);
    for (int i = 0; i < 200; ++i) {
      sim.schedule_in(Duration::us(rng.uniform_int(0, 500'000)), [&sock, &attempted] {
        ++attempted;
        sock.send_to(net::IpAddr(192, 168, 0, 5), 7000, 600, nullptr,
                     net::TrafficClass::kOther);
      });
    }
  }
  sim.run();

  std::uint64_t transmitted = 0, dropped = 0;
  for (int s = 0; s < 4; ++s) {
    transmitted += hosts[s]->nic(0).counters().out_frames;
    dropped += hosts[s]->nic(0).counters().out_drops;
  }
  // Conservation: every attempted datagram was either transmitted onto the
  // segment or counted as a drop; every transmitted frame was heard.
  EXPECT_EQ(transmitted + dropped, attempted);
  EXPECT_EQ(hosts[4]->nic(0).counters().in_frames, transmitted);
  EXPECT_EQ(seg.stats().frames_carried, transmitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentConservationSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- measurement database: last-known monotonicity under random updates -------

TEST(MeasurementDbProperty, LastKnownAlwaysNewestValidRecord) {
  util::Rng rng(77);
  core::MeasurementDatabase db(8);
  core::Path path(
      core::ProcessEndpoint{"a", net::IpAddr(1, 1, 1, 1), 0},
      core::ProcessEndpoint{"b", net::IpAddr(2, 2, 2, 2), 0});
  std::optional<std::pair<std::int64_t, double>> newest_valid;
  std::int64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.uniform_int(1, 100);
    const bool valid = rng.bernoulli(0.7);
    const double value = rng.uniform(0.0, 100.0);
    db.record(path, core::Metric::kThroughput,
              valid ? core::MetricValue::of(value,
                                            sim::TimePoint::from_nanos(t))
                    : core::MetricValue::failed(sim::TimePoint::from_nanos(t)));
    if (valid) newest_valid = {t, value};
    auto last = db.last_known(path, core::Metric::kThroughput);
    ASSERT_EQ(last.has_value(), newest_valid.has_value());
    if (last) {
      EXPECT_EQ(last->value.measured_at.nanos(), newest_valid->first);
      EXPECT_DOUBLE_EQ(last->value.value, newest_valid->second);
    }
    // Senescence equals the age of the newest record of any validity.
    auto age = db.senescence(path, core::Metric::kThroughput,
                             sim::TimePoint::from_nanos(t + 5));
    ASSERT_TRUE(age);
    EXPECT_EQ(age->nanos(), 5);
  }
}

}  // namespace
}  // namespace netmon
