// Federation tests (DESIGN.md §14), in three layers:
//  1. Wire codec fuzzing, mirroring tests/snmp_fuzz_test.cpp: seeded random
//     messages must survive encode → parse → re-encode byte-identically,
//     every prefix truncation must read as incomplete (not an error), and
//     random mutations/garbage must either decode or throw WireError —
//     never crash or read out of bounds (the sanitize preset hardens this).
//  2. Parent watermark protocol against a hand-driven raw client: duplicate
//     pages are skipped and re-acked, sequence jumps are counted as
//     implicit gaps, gap reports below the watermark are not double-counted,
//     and protocol violations kill exactly the offending session.
//  3. End-to-end child ↔ parent over the simulated TCP stack: streaming
//     exactness, spool overflow with truthful gap accounting, crash/restart
//     replay of only unacked pages, zone staleness, and same-seed
//     determinism of both replication logs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/measurement_db.hpp"
#include "fed/child.hpp"
#include "fed/parent.hpp"
#include "fed/wire.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace netmon::fed {
namespace {

using core::Metric;
using core::MetricValue;
using core::Path;
using core::ProcessEndpoint;
using core::TierPoint;
using sim::Duration;
using sim::TimePoint;

// --- wire codec fuzzing ------------------------------------------------------

std::string random_string(util::Rng& rng, int max_len) {
  std::string s;
  const int len = static_cast<int>(rng.uniform_int(0, max_len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
  }
  return s;
}

std::vector<TierPoint> random_points(util::Rng& rng) {
  std::vector<TierPoint> points(
      static_cast<std::size_t>(rng.uniform_int(0, 12)));
  std::int64_t t = rng.uniform_int(0, 1'000'000'000);
  for (TierPoint& p : points) {
    p.first_ns = t + rng.uniform_int(0, 5'000'000);
    p.last_ns = p.first_ns + rng.uniform_int(0, 5'000'000);
    t = p.last_ns;
    p.min = static_cast<double>(rng.uniform_int(-1'000'000, 1'000'000)) * 0.5;
    p.max = p.min + static_cast<double>(rng.uniform_int(0, 1'000'000));
    p.count = static_cast<std::uint32_t>(rng.uniform_int(1, 100));
    p.valid_count = static_cast<std::uint32_t>(rng.uniform_int(0, p.count));
    p.sum = p.min * p.valid_count;
  }
  return points;
}

Message random_message(util::Rng& rng) {
  switch (rng.uniform_int(0, 7)) {
    case 0:
      return HelloMsg{random_string(rng, 40), rng.next(),
                      static_cast<std::uint16_t>(rng.uniform_int(0, 65535))};
    case 1: {
      HelloAckMsg ack;
      ack.incarnation = rng.next();
      const int n = static_cast<int>(rng.uniform_int(0, 8));
      for (int i = 0; i < n; ++i) {
        ack.watermarks.push_back(SeriesWatermark{
            static_cast<std::uint32_t>(rng.next()), rng.next()});
      }
      return ack;
    }
    case 2: {
      SeriesDeclMsg decl;
      decl.series = static_cast<std::uint32_t>(rng.next());
      decl.metric = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) {
        decl.endpoints.push_back(WireEndpoint{
            random_string(rng, 24), static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint16_t>(rng.uniform_int(0, 65535))});
      }
      return decl;
    }
    case 3:
      return PageMsg{static_cast<std::uint32_t>(rng.next()), rng.next(),
                     static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
                     random_points(rng)};
    case 4:
      return DeltaMsg{
          static_cast<std::uint32_t>(rng.next()),
          rng.uniform_int(-1'000'000'000, 1'000'000'000'000),
          static_cast<double>(rng.uniform_int(-1'000'000, 1'000'000)) * 0.25,
          rng.bernoulli(0.5)};
    case 5:
      return AckMsg{static_cast<std::uint32_t>(rng.next()), rng.next()};
    case 6: {
      const std::uint64_t from = rng.next() >> 1;
      return GapMsg{static_cast<std::uint32_t>(rng.next()), from,
                    from + rng.next() % 1024, rng.next()};
    }
    default:
      return HeartbeatMsg{rng.uniform_int(0, 1'000'000'000'000)};
  }
}

// Parses exactly one message out of a complete frame.
Message parse_one(const std::vector<std::byte>& frame) {
  FrameParser parser;
  parser.feed(frame);
  auto m = parser.next();
  if (!m) throw WireError("frame did not yield a message");
  if (parser.buffered() != 0) throw WireError("trailing bytes after frame");
  return *m;
}

TEST(FedWire, CrcKnownVector) {
  // The IEEE 802.3 check value: CRC32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::byte*>(s), 9), 0xCBF43926u);
}

TEST(FedWire, EncodeParseReEncodeIsByteIdentical) {
  util::Rng rng(0xFED1);
  for (int i = 0; i < 1000; ++i) {
    const Message original = random_message(rng);
    const std::vector<std::byte> frame = encode(original);
    Message decoded;
    try {
      decoded = parse_one(frame);
    } catch (const WireError& e) {
      FAIL() << "round " << i << ": valid frame rejected: " << e.what();
    }
    EXPECT_EQ(decoded.index(), original.index()) << "round " << i;
    ASSERT_EQ(encode(decoded), frame)
        << "round " << i << ": re-encoding is not byte-identical";
  }
}

TEST(FedWire, ExtremeValuesRoundTrip) {
  // Zigzag/varint edge magnitudes: timestamps far apart in both directions,
  // maximal counters.
  PageMsg page;
  page.series = 0xFFFFFFFFu;
  page.page_seq = 0xFFFFFFFFFFFFFFFFull;
  page.tier = 255;
  TierPoint a;
  a.first_ns = -(std::int64_t{1} << 62);
  a.last_ns = std::int64_t{1} << 62;
  a.min = -1e300;
  a.max = 1e300;
  a.sum = 12345.6789;
  a.count = 0xFFFFFFFFu;
  a.valid_count = 0xFFFFFFFFu;
  TierPoint b;  // time runs backwards relative to a: offsets go negative
  b.first_ns = -(std::int64_t{1} << 61);
  b.last_ns = b.first_ns;
  b.count = 1;
  b.valid_count = 0;
  page.points = {a, b};
  const auto frame = encode(page);
  const Message decoded = parse_one(frame);
  EXPECT_EQ(encode(decoded), frame);
  const auto& p = std::get<PageMsg>(decoded);
  ASSERT_EQ(p.points.size(), 2u);
  EXPECT_EQ(p.points[0].first_ns, a.first_ns);
  EXPECT_EQ(p.points[0].last_ns, a.last_ns);
  EXPECT_EQ(p.points[1].first_ns, b.first_ns);

  const GapMsg gap{1, 0xFFFFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFFFFFull,
                   0xFFFFFFFFFFFFFFFFull};
  const auto gap_frame = encode(gap);
  const Message gap_decoded = parse_one(gap_frame);
  const auto& g = std::get<GapMsg>(gap_decoded);
  EXPECT_EQ(g.from_seq, gap.from_seq);
  EXPECT_EQ(g.to_seq, gap.to_seq);
  EXPECT_EQ(g.points, gap.points);
}

TEST(FedWire, EveryPrefixTruncationIsIncompleteNotError) {
  util::Rng rng(0xFED2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<std::byte> frame = encode(random_message(rng));
    for (std::size_t len = 0; len < frame.size(); ++len) {
      FrameParser parser;
      parser.feed(std::span(frame.data(), len));
      std::optional<Message> m;
      try {
        m = parser.next();
      } catch (const WireError& e) {
        FAIL() << "round " << i << ": truncation to " << len << "/"
               << frame.size() << " bytes threw: " << e.what();
      }
      EXPECT_FALSE(m.has_value())
          << "round " << i << ": truncation to " << len << " bytes decoded";
      // The tail must complete the message once the rest arrives.
      parser.feed(std::span(frame.data() + len, frame.size() - len));
      EXPECT_TRUE(parser.next().has_value()) << "round " << i;
    }
  }
}

TEST(FedWire, MutatedFramesEitherDecodeOrThrowWireError) {
  util::Rng rng(0xFED3);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> frame = encode(random_message(rng));
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
      frame[pos] = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    FrameParser parser;
    parser.feed(frame);
    try {
      while (auto m = parser.next()) {
        // A surviving mutant must still re-encode cleanly.
        (void)encode(*m);
      }
    } catch (const WireError&) {
      // Equally fine: the mutation broke framing, CRC, or validation.
    }
  }
}

TEST(FedWire, RandomGarbageNeverCrashes) {
  util::Rng rng(0xFED4);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 600)));
    for (std::byte& b : junk) {
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    FrameParser parser;
    parser.feed(junk);
    try {
      while (parser.next()) {
      }
    } catch (const WireError&) {
      // expected for almost all inputs
    }
  }
}

TEST(FedWire, ChunkedFeedYieldsEveryMessageInOrder) {
  util::Rng rng(0xFED5);
  std::vector<Message> sent;
  std::vector<std::byte> stream;
  for (int i = 0; i < 40; ++i) {
    sent.push_back(random_message(rng));
    const auto frame = encode(sent.back());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameParser parser;
  std::vector<Message> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    parser.feed(std::span(stream.data() + i, 1));
    while (auto m = parser.next()) got.push_back(std::move(*m));
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(encode(got[i]), encode(sent[i])) << "message " << i;
  }
  EXPECT_EQ(parser.buffered(), 0u);
}

// --- shared topology fixture -------------------------------------------------

core::TieredStorageConfig small_tiers() {
  core::TieredStorageConfig cfg;
  cfg.page_points = 8;  // pages seal every 8 samples, so tests stream early
  cfg.rollup_factor = 4;
  cfg.tiers = 2;
  return cfg;
}

class FedFixture : public ::testing::Test {
 protected:
  FedFixture()
      : network(sim, util::Rng(7)),
        parent_db(16),
        child_db(16, small_tiers()) {
    parent_host = &network.add_host("parent");
    child_host = &network.add_host("child");
    network.connect(*parent_host, net::IpAddr(10, 0, 0, 1), *child_host,
                    net::IpAddr(10, 0, 0, 2), 24, 10e6, Duration::ms(1));
    network.auto_route();
  }

  FedChildConfig child_config() {
    FedChildConfig cfg;
    cfg.zone = "zone-a";
    cfg.parent_ip = net::IpAddr(10, 0, 0, 1);
    return cfg;
  }

  static Path app_path(int i = 0) {
    return Path(ProcessEndpoint{"app-server", net::IpAddr(10, 1, 0, 10), 5000},
                ProcessEndpoint{"app-client",
                                net::IpAddr(10, 1, 0, 100 + i), 5000});
  }

  // Records `n` samples `gap` apart, advancing simulated time.
  void record_samples(const Path& path, int n, Duration gap,
                      double base = 1000.0) {
    for (int i = 0; i < n; ++i) {
      sim.run_for(gap);
      child_db.record(path, Metric::kThroughput,
                      MetricValue::of(base + i, sim.now()));
    }
  }

  void set_host_nics(net::Host& host, bool up) {
    for (const auto& nic : host.nics()) nic->set_up(up);
  }

  // Sum of per-point sample counts the parent's store holds for a path.
  std::uint64_t merged_count(const Path& path) {
    const auto result = parent_db.query(path, Metric::kThroughput,
                                        TimePoint::from_nanos(0), sim.now(),
                                        Duration::ns(0));
    std::uint64_t count = 0;
    for (const auto& p : result.points) count += p.count;
    return count;
  }

  sim::Simulator sim;
  net::Network network;
  net::Host* parent_host;
  net::Host* child_host;
  core::MeasurementDatabase parent_db;
  core::MeasurementDatabase child_db;
};

// --- parent watermark protocol via a raw client ------------------------------

// A hand-driven wire-speaking client: lets tests hit the parent with exact
// message sequences (duplicates, jumps, garbage) no well-behaved child sends.
class RawClient {
 public:
  RawClient(net::Host& host, net::IpAddr ip, std::uint16_t port) {
    conn_ = host.tcp().connect(ip, port);
    conn_->set_receive_handler([this](std::span<const std::byte> data) {
      parser_.feed(data);
      while (auto m = parser_.next()) received.push_back(std::move(*m));
    });
    conn_->set_close_handler([this] { closed = true; });
  }
  ~RawClient() {
    conn_->set_close_handler(nullptr);
    conn_->set_receive_handler(nullptr);
  }

  void send(const Message& m) {
    const auto frame = encode(m);
    conn_->send(std::span<const std::byte>(frame.data(), frame.size()));
  }
  void send_raw(const std::vector<std::byte>& bytes) {
    conn_->send(std::span<const std::byte>(bytes.data(), bytes.size()));
  }

  template <typename T>
  int count() const {
    int n = 0;
    for (const auto& m : received) n += std::holds_alternative<T>(m);
    return n;
  }
  const AckMsg* last_ack() const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (const auto* ack = std::get_if<AckMsg>(&*it)) return ack;
    }
    return nullptr;
  }

  std::vector<Message> received;
  bool closed = false;

 private:
  std::shared_ptr<net::TcpConnection> conn_;
  FrameParser parser_;
};

TierPoint simple_point(std::int64_t at_ns, double v) {
  TierPoint p;
  p.first_ns = at_ns;
  p.last_ns = at_ns;
  p.min = p.max = p.sum = v;
  p.count = 1;
  p.valid_count = 1;
  return p;
}

PageMsg simple_page(std::uint32_t series, std::uint64_t seq, int points) {
  PageMsg page;
  page.series = series;
  page.page_seq = seq;
  for (int i = 0; i < points; ++i) {
    page.points.push_back(
        simple_point(static_cast<std::int64_t>(seq) * 1000 + i, 1.0));
  }
  return page;
}

SeriesDeclMsg simple_decl(std::uint32_t series) {
  SeriesDeclMsg decl;
  decl.series = series;
  decl.metric = 0;
  decl.endpoints = {WireEndpoint{"s", net::IpAddr(10, 2, 0, 1).raw(), 1},
                    WireEndpoint{"c", net::IpAddr(10, 2, 0, 2).raw(), 1}};
  return decl;
}

TEST_F(FedFixture, ParentSkipsDuplicatesAndCountsImplicitGaps) {
  FedParent parent(*parent_host, parent_db, {});
  parent.start();
  RawClient client(*child_host, net::IpAddr(10, 0, 0, 1), 7171);
  sim.run_for(Duration::ms(500));

  client.send(HelloMsg{"raw-zone", 1, 1});
  sim.run_for(Duration::ms(200));
  ASSERT_EQ(client.count<HelloAckMsg>(), 1);
  EXPECT_TRUE(parent.zone_known("raw-zone"));

  client.send(simple_decl(5));
  client.send(simple_page(5, 1, 3));
  sim.run_for(Duration::ms(200));
  EXPECT_EQ(parent.stats().pages_merged, 1u);
  EXPECT_EQ(parent.stats().points_merged, 3u);
  ASSERT_NE(client.last_ack(), nullptr);
  EXPECT_EQ(client.last_ack()->page_seq, 1u);

  // Replay of page 1: skipped, zero re-merge, still acked at the watermark.
  client.send(simple_page(5, 1, 3));
  sim.run_for(Duration::ms(200));
  EXPECT_EQ(parent.stats().duplicates_skipped, 1u);
  EXPECT_EQ(parent.stats().pages_merged, 1u);
  EXPECT_EQ(client.last_ack()->page_seq, 1u);

  // Jump to page 5: pages 2-4 vanished without a GapMsg — counted.
  client.send(simple_page(5, 5, 2));
  sim.run_for(Duration::ms(200));
  EXPECT_EQ(parent.stats().implicit_gap_pages, 3u);
  EXPECT_EQ(parent.stats().pages_merged, 2u);
  EXPECT_EQ(client.last_ack()->page_seq, 5u);

  // Gap entirely below the watermark: already accounted, must not add loss.
  client.send(GapMsg{5, 2, 4, 9});
  sim.run_for(Duration::ms(200));
  EXPECT_EQ(parent.stats().gap_reports, 1u);
  EXPECT_EQ(parent.stats().gaps_applied, 0u);
  EXPECT_EQ(parent.stats().points_lost, 0u);

  // Gap beyond the watermark: honest loss, watermark advances past it.
  client.send(GapMsg{5, 6, 7, 11});
  sim.run_for(Duration::ms(200));
  EXPECT_EQ(parent.stats().gaps_applied, 1u);
  EXPECT_EQ(parent.stats().points_lost, 11u);
  EXPECT_EQ(parent.zone_points_lost("raw-zone"), 11u);
  EXPECT_EQ(client.last_ack()->page_seq, 7u);
  EXPECT_EQ(parent.stats().protocol_errors, 0u);
  EXPECT_FALSE(client.closed);
}

TEST_F(FedFixture, ParentKillsProtocolViolatorsOnly) {
  FedParent parent(*parent_host, parent_db, {});
  parent.start();

  {  // page before Hello
    RawClient client(*child_host, net::IpAddr(10, 0, 0, 1), 7171);
    sim.run_for(Duration::ms(500));
    client.send(simple_page(1, 1, 1));
    sim.run_for(Duration::ms(500));
    EXPECT_EQ(parent.stats().protocol_errors, 1u);
    EXPECT_TRUE(client.closed);
  }
  {  // empty zone name
    RawClient client(*child_host, net::IpAddr(10, 0, 0, 1), 7171);
    sim.run_for(Duration::ms(500));
    client.send(HelloMsg{"", 1, 1});
    sim.run_for(Duration::ms(500));
    EXPECT_EQ(parent.stats().protocol_errors, 2u);
    EXPECT_TRUE(client.closed);
  }
  {  // page for a series never declared
    RawClient client(*child_host, net::IpAddr(10, 0, 0, 1), 7171);
    sim.run_for(Duration::ms(500));
    client.send(HelloMsg{"violator", 1, 1});
    client.send(simple_page(9, 1, 1));
    sim.run_for(Duration::ms(500));
    EXPECT_EQ(parent.stats().protocol_errors, 3u);
    EXPECT_TRUE(client.closed);
  }
  {  // framing garbage
    RawClient client(*child_host, net::IpAddr(10, 0, 0, 1), 7171);
    sim.run_for(Duration::ms(500));
    client.send_raw(std::vector<std::byte>(16, std::byte{0x00}));
    sim.run_for(Duration::ms(500));
    EXPECT_EQ(parent.stats().protocol_errors, 4u);
    EXPECT_TRUE(client.closed);
  }
  // A well-behaved zone still works after all of that.
  RawClient good(*child_host, net::IpAddr(10, 0, 0, 1), 7171);
  sim.run_for(Duration::ms(500));
  good.send(HelloMsg{"good", 1, 1});
  good.send(simple_decl(1));
  good.send(simple_page(1, 1, 2));
  sim.run_for(Duration::ms(500));
  EXPECT_EQ(parent.stats().pages_merged, 1u);
  EXPECT_FALSE(good.closed);
}

// --- end-to-end child <-> parent --------------------------------------------

TEST_F(FedFixture, StreamsEverySealedPointExactlyOnce) {
  FedParent parent(*parent_host, parent_db, {});
  FedChild child(*child_host, child_db, child_config());
  parent.start();
  child.start();
  sim.run_for(Duration::ms(500));
  ASSERT_TRUE(child.session_established());

  const Path path = app_path();
  record_samples(path, 40, Duration::ms(50));  // 5 pages of 8
  sim.run_for(Duration::sec(5));               // quiesce

  EXPECT_EQ(child.stats().pages_spooled, 5u);
  EXPECT_EQ(child.stats().points_spooled, 40u);
  EXPECT_EQ(child.stats().pages_shed, 0u);
  EXPECT_EQ(child.stats().pages_acked, 5u);
  EXPECT_EQ(child.spool_pages(), 0u);  // fully drained

  EXPECT_EQ(parent.stats().pages_merged, 5u);
  EXPECT_EQ(parent.stats().points_merged, 40u);
  EXPECT_EQ(parent.stats().duplicates_skipped, 0u);
  EXPECT_EQ(parent.stats().points_lost, 0u);
  EXPECT_EQ(parent.stats().implicit_gap_pages, 0u);
  EXPECT_EQ(merged_count(path), 40u);

  // Deltas kept the parent's current-value view fresh alongside the pages.
  EXPECT_GT(child.stats().deltas_sent, 0u);
  EXPECT_EQ(parent.stats().deltas_applied, child.stats().deltas_sent);
  EXPECT_FALSE(parent.zone_stale("zone-a", sim.now()));
  const core::PathId pid = parent_db.find(path);
  ASSERT_NE(pid, core::kInvalidPathId);
  const auto current = parent.zone_current("zone-a", pid, Metric::kThroughput,
                                           sim.now(), Duration::sec(30));
  ASSERT_TRUE(current.has_value());
  EXPECT_DOUBLE_EQ(current->value.value, 1000.0 + 39);
}

TEST_F(FedFixture, SpoolOverflowShedsOldestAndAccountsEveryPoint) {
  FedParent parent(*parent_host, parent_db, {});
  FedChildConfig cfg = child_config();
  cfg.spool_max_pages = 3;
  FedChild child(*child_host, child_db, cfg);
  child.start();  // parent not listening yet: connects fail into backoff

  const Path path = app_path();
  record_samples(path, 80, Duration::ms(10));  // 10 pages against a 3-page spool
  EXPECT_EQ(child.stats().pages_spooled, 10u);
  EXPECT_EQ(child.stats().pages_shed, 7u);
  EXPECT_EQ(child.stats().points_shed, 56u);
  EXPECT_EQ(child.spool_pages(), 3u);
  EXPECT_FALSE(child.session_established());

  // Let at least one connect attempt exhaust its SYN retransmissions so the
  // jittered-backoff retry path runs before the parent finally appears.
  sim.run_for(Duration::sec(150));
  EXPECT_GT(child.stats().connect_failures, 0u);

  parent.start();
  sim.run_for(Duration::sec(60));  // ride out connect backoff, then drain

  ASSERT_TRUE(child.session_established());
  EXPECT_EQ(child.stats().gap_reports, 7u);
  EXPECT_EQ(parent.stats().gap_reports, 7u);
  EXPECT_EQ(parent.stats().gaps_applied, 7u);
  EXPECT_EQ(parent.stats().points_lost, 56u);
  EXPECT_EQ(parent.stats().pages_merged, 3u);
  EXPECT_EQ(parent.stats().points_merged, 24u);
  // Conservation: every spooled point is accounted merged or lost, once.
  EXPECT_EQ(parent.stats().points_merged + parent.stats().points_lost,
            child.stats().points_spooled);
  EXPECT_EQ(merged_count(path), 24u);
  EXPECT_EQ(child.spool_pages(), 0u);
}

TEST_F(FedFixture, CrashRestartReplaysOnlyUnackedPages) {
  FedParent parent(*parent_host, parent_db, {});
  FedChild child(*child_host, child_db, child_config());
  parent.start();
  child.start();
  sim.run_for(Duration::ms(500));
  ASSERT_TRUE(child.session_established());

  const Path path = app_path();
  record_samples(path, 16, Duration::ms(20));  // pages 1-2
  sim.run_for(Duration::sec(2));
  EXPECT_EQ(child.stats().pages_acked, 2u);
  EXPECT_EQ(parent.stats().pages_merged, 2u);

  // Partition the parent: pages 3-4 go into a black hole, unacked.
  set_host_nics(*parent_host, false);
  record_samples(path, 16, Duration::ms(20));  // pages 3-4
  EXPECT_EQ(child.stats().pages_spooled, 4u);
  sim.run_for(Duration::sec(6));  // ack timeout fires, session drops

  child.crash();
  set_host_nics(*parent_host, true);
  child.restart();
  sim.run_for(Duration::sec(60));

  EXPECT_EQ(child.incarnation(), 2u);
  EXPECT_EQ(child.stats().crashes, 1u);
  EXPECT_EQ(child.stats().restarts, 1u);
  ASSERT_TRUE(child.session_established());

  // Pages 1-2 were acked before the crash and are never re-sent; pages 3-4
  // were sent once into the partition and re-sent after resume.
  EXPECT_EQ(child.stats().pages_resent, 2u);
  EXPECT_EQ(parent.stats().pages_merged, 4u);
  EXPECT_EQ(parent.stats().points_merged, 32u);
  EXPECT_EQ(parent.stats().points_lost, 0u);
  EXPECT_EQ(parent.stats().implicit_gap_pages, 0u);
  EXPECT_EQ(merged_count(path), 32u);  // zero duplicate points
  EXPECT_EQ(child.spool_pages(), 0u);
  EXPECT_EQ(parent.stats().resumes, 1u);
}

TEST_F(FedFixture, SilentZoneGoesStaleAndRefusesReads) {
  FedParent parent(*parent_host, parent_db, {});
  FedChild child(*child_host, child_db, child_config());
  parent.start();
  child.start();
  const Path path = app_path();
  record_samples(path, 16, Duration::ms(50));
  sim.run_for(Duration::sec(1));
  ASSERT_TRUE(child.session_established());
  ASSERT_FALSE(parent.zone_stale("zone-a", sim.now()));
  const core::PathId pid = parent_db.find(path);
  ASSERT_NE(pid, core::kInvalidPathId);
  ASSERT_TRUE(parent
                  .zone_current("zone-a", pid, Metric::kThroughput, sim.now(),
                                Duration::sec(30))
                  .has_value());
  const auto fresh_sen =
      parent.zone_senescence("zone-a", pid, Metric::kThroughput, sim.now());
  ASSERT_TRUE(fresh_sen.has_value());

  // Partition the child: heartbeats stop, silence grows past stale_after.
  set_host_nics(*child_host, false);
  sim.run_for(Duration::sec(8));

  EXPECT_TRUE(parent.zone_stale("zone-a", sim.now()));
  EXPECT_FALSE(parent
                   .zone_current("zone-a", pid, Metric::kThroughput, sim.now(),
                                 Duration::sec(300))
                   .has_value());
  // Senescence is floored by the silence: a dead child cannot look fresh.
  const auto sen =
      parent.zone_senescence("zone-a", pid, Metric::kThroughput, sim.now());
  ASSERT_TRUE(sen.has_value());
  const auto silence = parent.zone_silence("zone-a", sim.now());
  ASSERT_TRUE(silence.has_value());
  EXPECT_GE(sen->nanos(), silence->nanos());
  EXPECT_GT(silence->nanos(), Duration::sec(3).nanos());

  // Unknown zones are maximally stale, not fresh.
  EXPECT_TRUE(parent.zone_stale("never-heard-of-it", sim.now()));
}

// A fixed scenario with traffic, a partition window, and recovery; returns
// both replication logs for determinism comparison.
std::pair<std::string, std::string> run_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  net::Network network(sim, util::Rng(seed));
  net::Host& parent_host = network.add_host("parent");
  net::Host& child_host = network.add_host("child");
  network.connect(parent_host, net::IpAddr(10, 0, 0, 1), child_host,
                  net::IpAddr(10, 0, 0, 2), 24, 10e6, Duration::ms(1));
  network.auto_route();
  core::MeasurementDatabase parent_db(16);
  core::MeasurementDatabase child_db(16, small_tiers());
  FedParent parent(parent_host, parent_db, {});
  FedChildConfig cfg;
  cfg.zone = "det-zone";
  cfg.parent_ip = net::IpAddr(10, 0, 0, 1);
  FedChild child(child_host, child_db, cfg);
  parent.start();
  child.start();
  const Path path(ProcessEndpoint{"s", net::IpAddr(10, 1, 0, 1), 1},
                  ProcessEndpoint{"c", net::IpAddr(10, 1, 0, 2), 1});
  for (int i = 0; i < 30; ++i) {
    sim.run_for(Duration::ms(40));
    child_db.record(path, Metric::kThroughput,
                    MetricValue::of(100.0 + i, sim.now()));
  }
  for (const auto& nic : parent_host.nics()) nic->set_up(false);
  for (int i = 0; i < 30; ++i) {
    sim.run_for(Duration::ms(40));
    child_db.record(path, Metric::kThroughput,
                    MetricValue::of(200.0 + i, sim.now()));
  }
  sim.run_for(Duration::sec(5));
  for (const auto& nic : parent_host.nics()) nic->set_up(true);
  sim.run_for(Duration::sec(30));
  return {child.log().export_text(), parent.log().export_text()};
}

TEST(FedDeterminism, SameSeedProducesBitIdenticalReplicationLogs) {
  const auto first = run_scenario(21);
  const auto second = run_scenario(21);
  EXPECT_FALSE(first.first.empty());
  EXPECT_FALSE(first.second.empty());
  EXPECT_EQ(first.first, second.first);    // child log
  EXPECT_EQ(first.second, second.second);  // parent log
}

TEST_F(FedFixture, ObservabilityExportsFederationGauges) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Registry registry;
  FedParent parent(*parent_host, parent_db, {});
  FedChild child(*child_host, child_db, child_config());
  parent.attach_observability(registry);
  child.attach_observability(registry);
  parent.start();
  child.start();
  record_samples(app_path(), 16, Duration::ms(50));
  sim.run_for(Duration::sec(2));

  EXPECT_TRUE(registry.contains("fed.child.spool.pages"));
  EXPECT_TRUE(registry.contains("fed.child.watermark_lag_pages"));
  EXPECT_TRUE(registry.contains("fed.child.session_up"));
  EXPECT_TRUE(registry.contains("fed.parent.pages_merged"));
  EXPECT_TRUE(registry.contains("fed.parent.points_lost"));
  const std::string json = registry.export_json();
  EXPECT_NE(json.find("fed.child.pages_spooled"), std::string::npos);
  EXPECT_NE(json.find("fed.parent.sessions"), std::string::npos);

  child.detach_observability();
  parent.detach_observability();
  EXPECT_FALSE(registry.contains("fed.child.spool.pages"));
  EXPECT_FALSE(registry.contains("fed.parent.pages_merged"));
}

}  // namespace
}  // namespace netmon::fed
